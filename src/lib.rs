//! Umbrella crate for the L2BM reproduction: re-exports the public
//! API of every sub-crate so examples and downstream users can depend
//! on one name.

pub use dcn_experiments as experiments;
pub use dcn_fabric as fabric;
pub use dcn_metrics as metrics;
pub use dcn_net as net;
pub use dcn_sim as sim;
pub use dcn_switch as switch;
pub use dcn_transport as transport;
pub use dcn_workload as workload;
pub use l2bm;
