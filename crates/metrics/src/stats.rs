//! Percentiles, empirical CDFs and error-bar summaries.

/// The `p`-quantile (`0 ≤ p ≤ 1`) of a sample set using linear
/// interpolation between order statistics (type-7, the numpy default).
/// Returns `None` on an empty set.
///
/// # Example
///
/// ```
/// use dcn_metrics::percentile;
/// let v = vec![1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&v, 0.5), Some(2.5));
/// assert_eq!(percentile(&v, 1.0), Some(4.0));
/// ```
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or any sample is NaN.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    if samples.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    Some(percentile_sorted(&v, p))
}

/// Like [`percentile`] but assumes `sorted` is already ascending. Used in
/// hot loops to avoid repeated sorting.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample set");
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = p * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// An empirical cumulative distribution over collected samples.
///
/// # Example
///
/// ```
/// use dcn_metrics::Cdf;
/// let mut cdf = Cdf::new();
/// cdf.extend([3.0, 1.0, 2.0]);
/// assert_eq!(cdf.quantile(0.5), Some(2.0));
/// assert!((cdf.fraction_below(2.5) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl Cdf {
    /// An empty CDF.
    pub fn new() -> Self {
        Cdf::default()
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN sample");
        self.samples.push(x);
        self.sorted = false;
    }

    /// Adds many samples.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.push(x);
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
    }

    /// The `p`-quantile, or `None` if empty.
    pub fn quantile(&mut self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        Some(percentile_sorted(&self.samples, p))
    }

    /// Fraction of samples `≤ x` (0 if empty).
    pub fn fraction_below(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let k = self.samples.partition_point(|&s| s <= x);
        k as f64 / self.samples.len() as f64
    }

    /// The sample mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }

    /// The largest sample, or `None` if empty.
    pub fn max(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.last().copied()
    }

    /// `(value, cumulative_fraction)` points at `n` evenly spaced
    /// quantiles — the series a CDF plot draws.
    pub fn curve(&mut self, n: usize) -> Vec<(f64, f64)> {
        if self.samples.is_empty() || n == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        (0..=n)
            .map(|i| {
                let p = i as f64 / n as f64;
                (percentile_sorted(&self.samples, p), p)
            })
            .collect()
    }

    /// A view of the raw samples (unsorted order not guaranteed).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl FromIterator<f64> for Cdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut c = Cdf::new();
        c.extend(iter);
        c
    }
}

impl Extend<f64> for Cdf {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Box-plot style summary: mean, median, quartiles, 1.5·IQR whisker range
/// and extremes — what the paper's Fig. 10(b) error bars show.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBarStats {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (population, n denominator).
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// 25th percentile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q75: f64,
    /// Maximum sample.
    pub max: f64,
    /// Low end of the 1.5·IQR whisker (smallest sample ≥ q25 − 1.5·IQR).
    pub whisker_lo: f64,
    /// High end of the 1.5·IQR whisker (largest sample ≤ q75 + 1.5·IQR).
    pub whisker_hi: f64,
}

impl ErrorBarStats {
    /// Computes the summary, or `None` for an empty set.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn from_samples(samples: &[f64]) -> Option<ErrorBarStats> {
        if samples.is_empty() {
            return None;
        }
        let mut v = samples.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let n = v.len() as f64;
        let mean = v.iter().sum::<f64>() / n;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let q25 = percentile_sorted(&v, 0.25);
        let median = percentile_sorted(&v, 0.5);
        let q75 = percentile_sorted(&v, 0.75);
        let iqr = q75 - q25;
        let lo_limit = q25 - 1.5 * iqr;
        let hi_limit = q75 + 1.5 * iqr;
        let whisker_lo = *v
            .iter()
            .find(|&&x| x >= lo_limit)
            .expect("non-empty sorted set");
        let whisker_hi = *v
            .iter()
            .rev()
            .find(|&&x| x <= hi_limit)
            .expect("non-empty sorted set");
        Some(ErrorBarStats {
            mean,
            std_dev: var.sqrt(),
            min: v[0],
            q25,
            median,
            q75,
            max: *v.last().expect("non-empty"),
            whisker_lo,
            whisker_hi,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 0.0), Some(7.0));
        assert_eq!(percentile(&[7.0], 1.0), Some(7.0));
        let v = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 1.0), Some(4.0));
        assert_eq!(percentile(&v, 0.5), Some(2.5));
    }

    #[test]
    fn p99_on_uniform_grid() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let p99 = percentile(&v, 0.99).unwrap();
        assert!((p99 - 99.01).abs() < 1e-9);
    }

    #[test]
    fn cdf_fraction_below() {
        let mut c: Cdf = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(c.fraction_below(0.5), 0.0);
        assert_eq!(c.fraction_below(2.0), 0.5);
        assert_eq!(c.fraction_below(10.0), 1.0);
    }

    #[test]
    fn cdf_curve_is_monotonic() {
        let mut c: Cdf = (0..100).map(|i| ((i * 7919) % 100) as f64).collect();
        let curve = c.curve(20);
        assert_eq!(curve.len(), 21);
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn cdf_mean_and_max() {
        let mut c: Cdf = [2.0, 4.0].into_iter().collect();
        assert_eq!(c.mean(), Some(3.0));
        assert_eq!(c.max(), Some(4.0));
        assert!(Cdf::new().mean().is_none());
    }

    #[test]
    fn error_bars_basic() {
        let s = ErrorBarStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.median, 3.0);
        // 100 is far outside 1.5*IQR of [2,4]: whisker stops at 4.
        assert_eq!(s.whisker_hi, 4.0);
        assert_eq!(s.whisker_lo, 1.0);
        assert!((s.mean - 22.0).abs() < 1e-9);
    }

    #[test]
    fn error_bars_empty() {
        assert!(ErrorBarStats::from_samples(&[]).is_none());
    }

    #[test]
    fn error_bars_constant_samples() {
        let s = ErrorBarStats::from_samples(&[5.0; 10]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.whisker_lo, 5.0);
        assert_eq!(s.whisker_hi, 5.0);
    }
}
