//! Percentiles, empirical CDFs and error-bar summaries.

/// The `p`-quantile (`0 ≤ p ≤ 1`) of a sample set using linear
/// interpolation between order statistics (type-7, the numpy default).
/// Returns `None` on an empty set.
///
/// # Example
///
/// ```
/// use dcn_metrics::percentile;
/// let v = vec![1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&v, 0.5), Some(2.5));
/// assert_eq!(percentile(&v, 1.0), Some(4.0));
/// ```
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or any sample is NaN.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    if samples.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    Some(percentile_sorted(&v, p))
}

/// Like [`percentile`] but assumes `sorted` is already ascending. Used in
/// hot loops to avoid repeated sorting.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample set");
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = p * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// An empirical cumulative distribution over collected samples.
///
/// # Example
///
/// ```
/// use dcn_metrics::Cdf;
/// let mut cdf = Cdf::new();
/// cdf.extend([3.0, 1.0, 2.0]);
/// assert_eq!(cdf.quantile(0.5), Some(2.0));
/// assert!((cdf.fraction_below(2.5) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl Cdf {
    /// An empty CDF.
    pub fn new() -> Self {
        Cdf::default()
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN sample");
        self.samples.push(x);
        self.sorted = false;
    }

    /// Adds many samples.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.push(x);
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
    }

    /// The `p`-quantile, or `None` if empty.
    pub fn quantile(&mut self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        Some(percentile_sorted(&self.samples, p))
    }

    /// Fraction of samples `≤ x` (0 if empty).
    pub fn fraction_below(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let k = self.samples.partition_point(|&s| s <= x);
        k as f64 / self.samples.len() as f64
    }

    /// The sample mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }

    /// The largest sample, or `None` if empty.
    pub fn max(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.last().copied()
    }

    /// `(value, cumulative_fraction)` points at `n` evenly spaced
    /// quantiles — the series a CDF plot draws.
    pub fn curve(&mut self, n: usize) -> Vec<(f64, f64)> {
        if self.samples.is_empty() || n == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        (0..=n)
            .map(|i| {
                let p = i as f64 / n as f64;
                (percentile_sorted(&self.samples, p), p)
            })
            .collect()
    }

    /// A view of the raw samples (unsorted order not guaranteed).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl FromIterator<f64> for Cdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut c = Cdf::new();
        c.extend(iter);
        c
    }
}

impl Extend<f64> for Cdf {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Box-plot style summary: mean, median, quartiles, 1.5·IQR whisker range
/// and extremes — what the paper's Fig. 10(b) error bars show.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBarStats {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (population, n denominator).
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// 25th percentile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q75: f64,
    /// Maximum sample.
    pub max: f64,
    /// Low end of the 1.5·IQR whisker (smallest sample ≥ q25 − 1.5·IQR).
    pub whisker_lo: f64,
    /// High end of the 1.5·IQR whisker (largest sample ≤ q75 + 1.5·IQR).
    pub whisker_hi: f64,
}

impl ErrorBarStats {
    /// Computes the summary, or `None` for an empty set.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn from_samples(samples: &[f64]) -> Option<ErrorBarStats> {
        if samples.is_empty() {
            return None;
        }
        let mut v = samples.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let n = v.len() as f64;
        let mean = v.iter().sum::<f64>() / n;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let q25 = percentile_sorted(&v, 0.25);
        let median = percentile_sorted(&v, 0.5);
        let q75 = percentile_sorted(&v, 0.75);
        let iqr = q75 - q25;
        let lo_limit = q25 - 1.5 * iqr;
        let hi_limit = q75 + 1.5 * iqr;
        let whisker_lo = *v
            .iter()
            .find(|&&x| x >= lo_limit)
            .expect("non-empty sorted set");
        let whisker_hi = *v
            .iter()
            .rev()
            .find(|&&x| x <= hi_limit)
            .expect("non-empty sorted set");
        Some(ErrorBarStats {
            mean,
            std_dev: var.sqrt(),
            min: v[0],
            q25,
            median,
            q75,
            max: *v.last().expect("non-empty"),
            whisker_lo,
            whisker_hi,
        })
    }
}

/// Two-sided 97.5% Student-t critical values for df = 1..=30; beyond 30
/// degrees of freedom the normal approximation (1.96) is within 2%.
const T_CRIT_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

fn t_critical_975(df: usize) -> f64 {
    if df == 0 {
        f64::NAN
    } else if df <= T_CRIT_975.len() {
        T_CRIT_975[df - 1]
    } else {
        1.96
    }
}

/// Replication summary over the N seeded runs of one sweep cell: mean,
/// sample standard deviation, 95% confidence interval on the mean
/// (Student-t for small N), p99 and extremes.
///
/// Construction sorts the samples before any arithmetic, so the summary
/// is **bit-identical under any permutation of the input** — the
/// property the parallel sweep engine's determinism contract needs when
/// replicate results arrive in arbitrary completion order.
///
/// # Example
///
/// ```
/// use dcn_metrics::SeedStats;
/// let s = SeedStats::from_samples(&[10.0, 12.0, 11.0, 9.0]).unwrap();
/// assert_eq!(s.n, 4);
/// assert!((s.mean - 10.5).abs() < 1e-12);
/// assert!(s.ci95_half > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeedStats {
    /// Number of (finite) samples aggregated.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n = 1).
    pub std_dev: f64,
    /// Half-width of the 95% confidence interval on the mean
    /// (t·s/√n; 0 for n = 1).
    pub ci95_half: f64,
    /// 99th percentile of the samples.
    pub p99: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl SeedStats {
    /// Aggregates a set of per-seed samples. Non-finite samples (a
    /// replicate whose metric was undefined, e.g. a p99 over zero
    /// flows) are ignored; returns `None` if no finite sample remains.
    pub fn from_samples(samples: &[f64]) -> Option<SeedStats> {
        let mut v: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return None;
        }
        // Sorting fixes the summation order: shuffled inputs produce
        // bit-identical output.
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let n = v.len();
        let mean = v.iter().sum::<f64>() / n as f64;
        let std_dev = if n > 1 {
            (v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        let ci95_half = if n > 1 {
            t_critical_975(n - 1) * std_dev / (n as f64).sqrt()
        } else {
            0.0
        };
        Some(SeedStats {
            n,
            mean,
            std_dev,
            ci95_half,
            p99: percentile_sorted(&v, 0.99),
            min: v[0],
            max: v[n - 1],
        })
    }

    /// Lower edge of the 95% CI.
    pub fn ci_lo(&self) -> f64 {
        self.mean - self.ci95_half
    }

    /// Upper edge of the 95% CI.
    pub fn ci_hi(&self) -> f64 {
        self.mean + self.ci95_half
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 0.0), Some(7.0));
        assert_eq!(percentile(&[7.0], 1.0), Some(7.0));
        let v = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 1.0), Some(4.0));
        assert_eq!(percentile(&v, 0.5), Some(2.5));
    }

    #[test]
    fn p99_on_uniform_grid() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let p99 = percentile(&v, 0.99).unwrap();
        assert!((p99 - 99.01).abs() < 1e-9);
    }

    #[test]
    fn cdf_fraction_below() {
        let mut c: Cdf = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(c.fraction_below(0.5), 0.0);
        assert_eq!(c.fraction_below(2.0), 0.5);
        assert_eq!(c.fraction_below(10.0), 1.0);
    }

    #[test]
    fn cdf_curve_is_monotonic() {
        let mut c: Cdf = (0..100).map(|i| ((i * 7919) % 100) as f64).collect();
        let curve = c.curve(20);
        assert_eq!(curve.len(), 21);
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn cdf_mean_and_max() {
        let mut c: Cdf = [2.0, 4.0].into_iter().collect();
        assert_eq!(c.mean(), Some(3.0));
        assert_eq!(c.max(), Some(4.0));
        assert!(Cdf::new().mean().is_none());
    }

    #[test]
    fn error_bars_basic() {
        let s = ErrorBarStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.median, 3.0);
        // 100 is far outside 1.5*IQR of [2,4]: whisker stops at 4.
        assert_eq!(s.whisker_hi, 4.0);
        assert_eq!(s.whisker_lo, 1.0);
        assert!((s.mean - 22.0).abs() < 1e-9);
    }

    #[test]
    fn error_bars_empty() {
        assert!(ErrorBarStats::from_samples(&[]).is_none());
    }

    #[test]
    fn error_bars_constant_samples() {
        let s = ErrorBarStats::from_samples(&[5.0; 10]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.whisker_lo, 5.0);
        assert_eq!(s.whisker_hi, 5.0);
    }

    /// Deterministic synthetic noise: a fixed zig-zag around zero whose
    /// sample std dev is independent of how many periods are taken.
    fn synthetic_noise(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let z = ((i as f64 * 0.73).sin() * 10.0).round() / 10.0;
                50.0 + z
            })
            .collect()
    }

    #[test]
    fn seed_stats_basic() {
        let s = SeedStats::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.n, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
        // df = 2 -> t = 4.303; half-width = 4.303 / sqrt(3).
        assert!((s.ci95_half - 4.303 / 3f64.sqrt()).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn seed_stats_single_sample_and_empty() {
        let s = SeedStats::from_samples(&[7.0]).unwrap();
        assert_eq!((s.n, s.std_dev, s.ci95_half), (1, 0.0, 0.0));
        assert_eq!(s.mean, 7.0);
        assert!(SeedStats::from_samples(&[]).is_none());
        assert!(SeedStats::from_samples(&[f64::NAN]).is_none());
    }

    #[test]
    fn seed_stats_ignores_non_finite() {
        let s = SeedStats::from_samples(&[1.0, f64::NAN, 3.0, f64::INFINITY]).unwrap();
        assert_eq!(s.n, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ci_width_shrinks_like_inverse_sqrt_n() {
        // Quadrupling the replicate count should roughly halve the CI
        // half-width (t -> 1.96 as df grows, so allow a loose band).
        let small = SeedStats::from_samples(&synthetic_noise(16)).unwrap();
        let large = SeedStats::from_samples(&synthetic_noise(64)).unwrap();
        let ratio = small.ci95_half / large.ci95_half;
        assert!(
            (1.5..=3.0).contains(&ratio),
            "expected ~2x shrink from n=16 to n=64, got {ratio:.3} \
             (ci16={}, ci64={})",
            small.ci95_half,
            large.ci95_half
        );
    }

    #[test]
    fn seed_stats_is_order_independent() {
        // Bit-identical output under any permutation — the property the
        // parallel sweep's completion-order-free aggregation relies on.
        let base = synthetic_noise(17);
        let expect = SeedStats::from_samples(&base).unwrap();
        let mut shuffled = base.clone();
        shuffled.reverse();
        assert_eq!(SeedStats::from_samples(&shuffled), Some(expect));
        // An interleaved permutation too.
        let mut weird: Vec<f64> = Vec::new();
        for i in 0..base.len() {
            weird.push(base[(i * 5) % base.len()]);
        }
        assert_eq!(SeedStats::from_samples(&weird), Some(expect));
    }

    #[test]
    fn t_critical_tends_to_normal() {
        assert!((t_critical_975(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_975(30) - 2.042).abs() < 1e-9);
        assert_eq!(t_critical_975(31), 1.96);
    }
}
