//! Flow completion times and slowdown.

use dcn_net::{FlowId, TrafficClass};
use dcn_sim::{Bytes, SimDuration, SimTime};

use crate::stats::{percentile, Cdf};

/// One completed flow's timing record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FctRecord {
    /// The flow.
    pub flow: FlowId,
    /// Lossless (RDMA) or lossy (TCP).
    pub class: TrafficClass,
    /// Flow size in payload bytes.
    pub size: Bytes,
    /// When the sender started.
    pub start: SimTime,
    /// When the last payload byte reached the receiver.
    pub finish: SimTime,
    /// FCT the flow would have on an empty network (propagation +
    /// store-and-forward + serialization at the bottleneck).
    pub ideal: SimDuration,
}

impl FctRecord {
    /// Actual flow completion time.
    pub fn fct(&self) -> SimDuration {
        self.finish.saturating_since(self.start)
    }

    /// Normalized FCT: actual ÷ ideal (the paper's "FCT slowdown").
    /// Clamped below at 1.0 — a flow cannot beat the empty network; tiny
    /// negative error can appear from integer rounding of the ideal.
    pub fn slowdown(&self) -> f64 {
        let ideal = self.ideal.as_secs_f64();
        if ideal <= 0.0 {
            return 1.0;
        }
        (self.fct().as_secs_f64() / ideal).max(1.0)
    }
}

/// A set of completed-flow records with the paper's derived statistics.
#[derive(Debug, Clone, Default)]
pub struct FctSet {
    records: Vec<FctRecord>,
}

impl FctSet {
    /// An empty set.
    pub fn new() -> Self {
        FctSet::default()
    }

    /// Adds a record.
    pub fn push(&mut self, r: FctRecord) {
        self.records.push(r);
    }

    /// All records.
    pub fn records(&self) -> &[FctRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records of one traffic class.
    pub fn by_class(&self, class: TrafficClass) -> impl Iterator<Item = &FctRecord> {
        self.records.iter().filter(move |r| r.class == class)
    }

    /// Slowdowns of one traffic class.
    pub fn slowdowns(&self, class: TrafficClass) -> Vec<f64> {
        self.by_class(class).map(FctRecord::slowdown).collect()
    }

    /// The `p`-percentile slowdown of a class (e.g. `0.99` for the
    /// paper's tail latency), or `None` if no such flows completed.
    pub fn slowdown_percentile(&self, class: TrafficClass, p: f64) -> Option<f64> {
        let s = self.slowdowns(class);
        percentile(&s, p)
    }

    /// Mean slowdown of a class, or `None` if no such flows completed.
    pub fn mean_slowdown(&self, class: TrafficClass) -> Option<f64> {
        let s = self.slowdowns(class);
        if s.is_empty() {
            return None;
        }
        Some(s.iter().sum::<f64>() / s.len() as f64)
    }

    /// CDF over raw FCTs (seconds) of a class — Fig. 9's series.
    pub fn fct_cdf(&self, class: TrafficClass) -> Cdf {
        self.by_class(class)
            .map(|r| r.fct().as_secs_f64())
            .collect()
    }

    /// CDF over slowdowns of a class — Fig. 10(a)'s series.
    pub fn slowdown_cdf(&self, class: TrafficClass) -> Cdf {
        self.slowdowns(class).into_iter().collect()
    }

    /// Merges another set into this one.
    pub fn merge(&mut self, other: FctSet) {
        self.records.extend(other.records);
    }
}

impl FromIterator<FctRecord> for FctSet {
    fn from_iter<I: IntoIterator<Item = FctRecord>>(iter: I) -> Self {
        FctSet {
            records: iter.into_iter().collect(),
        }
    }
}

impl Extend<FctRecord> for FctSet {
    fn extend<I: IntoIterator<Item = FctRecord>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, class: TrafficClass, fct_us: u64, ideal_us: u64) -> FctRecord {
        FctRecord {
            flow: FlowId::new(id),
            class,
            size: Bytes::new(1_000),
            start: SimTime::from_micros(10),
            finish: SimTime::from_micros(10 + fct_us),
            ideal: SimDuration::from_micros(ideal_us),
        }
    }

    #[test]
    fn slowdown_is_ratio() {
        let r = rec(1, TrafficClass::Lossy, 30, 10);
        assert!((r.slowdown() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn slowdown_clamps_at_one() {
        let r = rec(1, TrafficClass::Lossy, 5, 10);
        assert_eq!(r.slowdown(), 1.0);
    }

    #[test]
    fn class_filtering() {
        let set: FctSet = vec![
            rec(1, TrafficClass::Lossless, 20, 10),
            rec(2, TrafficClass::Lossy, 40, 10),
            rec(3, TrafficClass::Lossless, 30, 10),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.by_class(TrafficClass::Lossless).count(), 2);
        assert_eq!(set.slowdowns(TrafficClass::Lossy), vec![4.0]);
    }

    #[test]
    fn percentiles_over_class() {
        let set: FctSet = (1..=100)
            .map(|i| rec(i, TrafficClass::Lossless, 10 * i, 10))
            .collect();
        let p99 = set
            .slowdown_percentile(TrafficClass::Lossless, 0.99)
            .unwrap();
        assert!((p99 - 99.01).abs() < 1e-6);
        assert!(set.slowdown_percentile(TrafficClass::Lossy, 0.99).is_none());
        let mean = set.mean_slowdown(TrafficClass::Lossless).unwrap();
        assert!((mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn cdfs_have_right_counts() {
        let set: FctSet = vec![
            rec(1, TrafficClass::Lossless, 20, 10),
            rec(2, TrafficClass::Lossy, 40, 10),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.fct_cdf(TrafficClass::Lossless).len(), 1);
        assert_eq!(set.slowdown_cdf(TrafficClass::Lossy).len(), 1);
    }

    #[test]
    fn merge_concatenates() {
        let mut a: FctSet = vec![rec(1, TrafficClass::Lossy, 20, 10)]
            .into_iter()
            .collect();
        let b: FctSet = vec![rec(2, TrafficClass::Lossy, 30, 10)]
            .into_iter()
            .collect();
        a.merge(b);
        assert_eq!(a.len(), 2);
    }
}
