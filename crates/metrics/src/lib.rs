//! Measurement utilities for the L2BM reproduction.
//!
//! Everything the paper reports is computed here:
//!
//! * [`FctRecord`] / [`FctSet`] — flow completion times and *slowdown*
//!   (actual FCT ÷ ideal FCT on an empty network); the paper's Figs. 7, 9,
//!   10(a) and 11(a) are percentiles and CDFs of these.
//! * [`Cdf`] — empirical distribution over `f64` samples (Figs. 8, 9, 10).
//! * [`ErrorBarStats`] — mean / median / quartiles / 1.5·IQR whiskers
//!   (Fig. 10(b)).
//! * [`OccupancySeries`] — periodically-sampled switch buffer occupancy
//!   (the paper samples every 1 ms; Figs. 7(c), 8, 10(c)).
//! * [`PfcCounters`] / [`DropCounters`] — pause-frame and drop totals
//!   (Fig. 7(d), Table II, Fig. 11(c)).
//! * [`SeedStats`] — multi-seed replication summary (mean, sample std
//!   dev, 95% CI on the mean) for the sweep engine's `--seeds N` mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod fct;
mod stats;

pub use counters::{DropCounters, IrnCounters, OccupancySeries, PfcCounters};
pub use fct::{FctRecord, FctSet};
pub use stats::{percentile, Cdf, ErrorBarStats, SeedStats};
