//! PFC / drop counters and buffer-occupancy time series.

use dcn_net::Priority;
use dcn_sim::{Bytes, SimTime};

use crate::stats::Cdf;

/// Counts PFC pause and resume frames, total and per priority.
///
/// The paper's Fig. 7(d), Table II and Fig. 11(c) report the number of
/// pause frames generated over a whole run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PfcCounters {
    pause_total: u64,
    resume_total: u64,
    watchdog_total: u64,
    pause_by_priority: [u64; Priority::COUNT],
}

impl PfcCounters {
    /// Zeroed counters.
    pub fn new() -> Self {
        PfcCounters::default()
    }

    /// Records one pause (XOFF) frame.
    pub fn record_pause(&mut self, priority: Priority) {
        self.pause_total += 1;
        self.pause_by_priority[priority.index()] += 1;
    }

    /// Records one resume (XON) frame.
    pub fn record_resume(&mut self, _priority: Priority) {
        self.resume_total += 1;
    }

    /// Records one PFC storm-watchdog forced resume.
    pub fn record_watchdog(&mut self) {
        self.watchdog_total += 1;
    }

    /// Total pause frames.
    pub fn pause_frames(&self) -> u64 {
        self.pause_total
    }

    /// Total resume frames.
    pub fn resume_frames(&self) -> u64 {
        self.resume_total
    }

    /// Total watchdog forced resumes (zero in a healthy fabric).
    pub fn watchdog_fires(&self) -> u64 {
        self.watchdog_total
    }

    /// Pause frames for one priority.
    pub fn pause_frames_for(&self, priority: Priority) -> u64 {
        self.pause_by_priority[priority.index()]
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &PfcCounters) {
        self.pause_total += other.pause_total;
        self.resume_total += other.resume_total;
        self.watchdog_total += other.watchdog_total;
        for (a, b) in self
            .pause_by_priority
            .iter_mut()
            .zip(other.pause_by_priority.iter())
        {
            *a += b;
        }
    }

    /// The counters accumulated since the `earlier` snapshot (which must
    /// be a prefix of this set — counters only grow).
    pub fn since(&self, earlier: &PfcCounters) -> PfcCounters {
        let mut d = self.clone();
        d.subtract(earlier);
        d
    }

    /// Removes a previously accumulated `delta`. The sharded executor
    /// uses this to revert mutations journaled past a run's completing
    /// event.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `delta` exceeds the accumulated totals.
    pub fn subtract(&mut self, delta: &PfcCounters) {
        debug_assert!(
            self.pause_total >= delta.pause_total
                && self.resume_total >= delta.resume_total
                && self.watchdog_total >= delta.watchdog_total,
            "subtracting a delta that was never accumulated"
        );
        self.pause_total -= delta.pause_total;
        self.resume_total -= delta.resume_total;
        self.watchdog_total -= delta.watchdog_total;
        for (a, b) in self
            .pause_by_priority
            .iter_mut()
            .zip(delta.pause_by_priority.iter())
        {
            *a -= b;
        }
    }
}

/// Counts dropped packets and bytes, split by traffic class semantics:
/// lossy drops are expected under congestion; lossless drops indicate
/// headroom exhaustion and should be zero in a healthy configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropCounters {
    /// Lossy (TCP) packets dropped.
    pub lossy_packets: u64,
    /// Lossy bytes dropped.
    pub lossy_bytes: u64,
    /// Lossless (RDMA) packets dropped — should stay zero.
    pub lossless_packets: u64,
    /// Lossless bytes dropped — should stay zero.
    pub lossless_bytes: u64,
    /// Packets preemptively evicted by the buffer policy (a subset of
    /// `lossy_packets`: every eviction is also recorded as a lossy drop).
    pub evicted_packets: u64,
    /// Bytes preemptively evicted (subset of `lossy_bytes`).
    pub evicted_bytes: u64,
    /// Lossy-RDMA (IRN) packets dropped — a subset of `lossy_packets`,
    /// split out so the resilience grid can attribute drops to the
    /// retransmitting transport rather than to TCP.
    pub lossy_rdma_packets: u64,
    /// Lossy-RDMA bytes dropped (subset of `lossy_bytes`).
    pub lossy_rdma_bytes: u64,
}

impl DropCounters {
    /// Zeroed counters.
    pub fn new() -> Self {
        DropCounters::default()
    }

    /// Records a lossy drop.
    pub fn record_lossy(&mut self, size: Bytes) {
        self.lossy_packets += 1;
        self.lossy_bytes += size.as_u64();
    }

    /// Records a lossless drop (headroom exhausted — a config failure).
    pub fn record_lossless(&mut self, size: Bytes) {
        self.lossless_packets += 1;
        self.lossless_bytes += size.as_u64();
    }

    /// Records a preemptive eviction. The evicted packet is lossy by
    /// construction, so this *also* counts it as a lossy drop — the
    /// eviction counters are a refinement, not a parallel total, which
    /// keeps `lossy + lossless == trace drops()` reconciliation exact.
    pub fn record_evicted(&mut self, size: Bytes) {
        self.record_lossy(size);
        self.evicted_packets += 1;
        self.evicted_bytes += size.as_u64();
    }

    /// Records a lossy-RDMA (IRN) drop. Like [`record_evicted`], this is
    /// a refinement of the lossy totals: the packet also counts as a
    /// lossy drop, so `lossy + lossless == trace drops()` stays exact.
    ///
    /// [`record_evicted`]: DropCounters::record_evicted
    pub fn record_lossy_rdma(&mut self, size: Bytes) {
        self.record_lossy(size);
        self.lossy_rdma_packets += 1;
        self.lossy_rdma_bytes += size.as_u64();
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &DropCounters) {
        self.lossy_packets += other.lossy_packets;
        self.lossy_bytes += other.lossy_bytes;
        self.lossless_packets += other.lossless_packets;
        self.lossless_bytes += other.lossless_bytes;
        self.evicted_packets += other.evicted_packets;
        self.evicted_bytes += other.evicted_bytes;
        self.lossy_rdma_packets += other.lossy_rdma_packets;
        self.lossy_rdma_bytes += other.lossy_rdma_bytes;
    }

    /// The counters accumulated since the `earlier` snapshot (which must
    /// be a prefix of this set — counters only grow).
    pub fn since(&self, earlier: &DropCounters) -> DropCounters {
        let mut d = *self;
        d.subtract(earlier);
        d
    }

    /// Removes a previously accumulated `delta` (see
    /// [`PfcCounters::subtract`]).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `delta` exceeds the accumulated totals.
    pub fn subtract(&mut self, delta: &DropCounters) {
        debug_assert!(
            self.lossy_packets >= delta.lossy_packets
                && self.lossless_packets >= delta.lossless_packets,
            "subtracting a delta that was never accumulated"
        );
        self.lossy_packets -= delta.lossy_packets;
        self.lossy_bytes -= delta.lossy_bytes;
        self.lossless_packets -= delta.lossless_packets;
        self.lossless_bytes -= delta.lossless_bytes;
        self.evicted_packets -= delta.evicted_packets;
        self.evicted_bytes -= delta.evicted_bytes;
        self.lossy_rdma_packets -= delta.lossy_rdma_packets;
        self.lossy_rdma_bytes -= delta.lossy_rdma_bytes;
    }
}

/// Per-run IRN (lossy RDMA) transport counters: NACK generation split by
/// origin, retransmission volume and RTO fires. All zero when no flow
/// runs the IRN transport, which keeps legacy digests unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IrnCounters {
    /// Flows that ran the IRN transport.
    pub flows: u64,
    /// NACKs generated by switches observing out-of-order transits.
    pub nacks_switch: u64,
    /// NACKs generated by receivers.
    pub nacks_receiver: u64,
    /// Data packets retransmitted (NACK- or RTO-triggered).
    pub retransmitted_packets: u64,
    /// Flow bytes retransmitted.
    pub retransmitted_bytes: u64,
    /// Retransmission timeouts that fired on IRN flows.
    pub rto_fires: u64,
}

impl IrnCounters {
    /// Zeroed counters.
    pub fn new() -> Self {
        IrnCounters::default()
    }

    /// Total NACKs from both origins.
    pub fn nacks(&self) -> u64 {
        self.nacks_switch + self.nacks_receiver
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &IrnCounters) {
        self.flows += other.flows;
        self.nacks_switch += other.nacks_switch;
        self.nacks_receiver += other.nacks_receiver;
        self.retransmitted_packets += other.retransmitted_packets;
        self.retransmitted_bytes += other.retransmitted_bytes;
        self.rto_fires += other.rto_fires;
    }

    /// The counters accumulated since the `earlier` snapshot. Leaves
    /// `flows` untouched: flow registrations are configuration, not
    /// run-time accumulation, so deltas never carry them.
    pub fn since(&self, earlier: &IrnCounters) -> IrnCounters {
        let mut d = *self;
        d.subtract(earlier);
        d.flows = 0;
        d
    }

    /// Removes a previously accumulated `delta` from the run-time
    /// counters (`flows` is never subtracted; see [`IrnCounters::since`]).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `delta` exceeds the accumulated totals.
    pub fn subtract(&mut self, delta: &IrnCounters) {
        debug_assert!(
            self.nacks_switch >= delta.nacks_switch
                && self.nacks_receiver >= delta.nacks_receiver
                && self.retransmitted_packets >= delta.retransmitted_packets
                && self.rto_fires >= delta.rto_fires,
            "subtracting a delta that was never accumulated"
        );
        self.nacks_switch -= delta.nacks_switch;
        self.nacks_receiver -= delta.nacks_receiver;
        self.retransmitted_packets -= delta.retransmitted_packets;
        self.retransmitted_bytes -= delta.retransmitted_bytes;
        self.rto_fires -= delta.rto_fires;
    }
}

/// A periodically-sampled buffer-occupancy trace for one switch.
///
/// The paper samples total occupancy every 1 ms (Fig. 8) and reports
/// CDFs over the trace.
#[derive(Debug, Clone, Default)]
pub struct OccupancySeries {
    samples: Vec<(SimTime, Bytes)>,
}

impl OccupancySeries {
    /// An empty series.
    pub fn new() -> Self {
        OccupancySeries::default()
    }

    /// Appends a sample. Samples must be pushed in time order.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` precedes the last sample.
    pub fn push(&mut self, at: SimTime, occupancy: Bytes) {
        debug_assert!(
            self.samples.last().is_none_or(|&(t, _)| at >= t),
            "occupancy samples out of order"
        );
        self.samples.push((at, occupancy));
    }

    /// The raw samples.
    pub fn samples(&self) -> &[(SimTime, Bytes)] {
        &self.samples
    }

    /// Drops the newest `n` samples. The sharded executor uses this to
    /// revert samples recorded past a run's completing event; `n` larger
    /// than the series clears it.
    pub fn drop_last(&mut self, n: usize) {
        let keep = self.samples.len().saturating_sub(n);
        self.samples.truncate(keep);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Peak occupancy over the trace.
    pub fn peak(&self) -> Bytes {
        self.samples
            .iter()
            .map(|&(_, b)| b)
            .max()
            .unwrap_or(Bytes::ZERO)
    }

    /// Mean occupancy in bytes over the trace (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&(_, b)| b.as_f64()).sum::<f64>() / self.samples.len() as f64
    }

    /// CDF over sampled occupancy in bytes — the series of Figs. 8, 10(c).
    pub fn cdf(&self) -> Cdf {
        self.samples.iter().map(|&(_, b)| b.as_f64()).collect()
    }

    /// The `p`-quantile of occupancy in bytes, or `None` if empty.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        let mut cdf = self.cdf();
        cdf.quantile(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pfc_counting() {
        let mut c = PfcCounters::new();
        c.record_pause(Priority::new(3));
        c.record_pause(Priority::new(3));
        c.record_pause(Priority::new(1));
        c.record_resume(Priority::new(3));
        assert_eq!(c.pause_frames(), 3);
        assert_eq!(c.resume_frames(), 1);
        assert_eq!(c.pause_frames_for(Priority::new(3)), 2);
        assert_eq!(c.pause_frames_for(Priority::new(0)), 0);
    }

    #[test]
    fn pfc_merge() {
        let mut a = PfcCounters::new();
        a.record_pause(Priority::new(1));
        let mut b = PfcCounters::new();
        b.record_pause(Priority::new(1));
        b.record_resume(Priority::new(1));
        a.merge(&b);
        assert_eq!(a.pause_frames(), 2);
        assert_eq!(a.resume_frames(), 1);
    }

    #[test]
    fn drop_counting_and_merge() {
        let mut d = DropCounters::new();
        d.record_lossy(Bytes::new(1_000));
        d.record_lossy(Bytes::new(500));
        d.record_lossless(Bytes::new(100));
        assert_eq!(d.lossy_packets, 2);
        assert_eq!(d.lossy_bytes, 1_500);
        assert_eq!(d.lossless_packets, 1);
        let mut e = DropCounters::new();
        e.merge(&d);
        assert_eq!(e.lossy_bytes, 1_500);
    }

    #[test]
    fn eviction_refines_lossy_total() {
        let mut d = DropCounters::new();
        d.record_evicted(Bytes::new(1_000));
        assert_eq!(d.evicted_packets, 1);
        assert_eq!(d.evicted_bytes, 1_000);
        assert_eq!(d.lossy_packets, 1, "eviction is also a lossy drop");
        assert_eq!(d.lossy_bytes, 1_000);
        let mut e = DropCounters::new();
        e.merge(&d);
        assert_eq!(e.evicted_packets, 1);
        assert_eq!(e.lossy_packets, 1);
    }

    #[test]
    fn lossy_rdma_refines_lossy_total() {
        let mut d = DropCounters::new();
        d.record_lossy_rdma(Bytes::new(1_048));
        assert_eq!(d.lossy_rdma_packets, 1);
        assert_eq!(d.lossy_rdma_bytes, 1_048);
        assert_eq!(d.lossy_packets, 1, "lossy-RDMA drop is also a lossy drop");
        let mut e = DropCounters::new();
        e.merge(&d);
        assert_eq!(e.lossy_rdma_packets, 1);
        assert_eq!(e.lossy_packets, 1);
    }

    #[test]
    fn irn_counters_merge_and_total() {
        let mut a = IrnCounters::new();
        a.flows = 2;
        a.nacks_switch = 3;
        a.nacks_receiver = 1;
        a.retransmitted_packets = 4;
        a.retransmitted_bytes = 4_000;
        a.rto_fires = 1;
        let mut b = IrnCounters::new();
        b.nacks_receiver = 2;
        b.merge(&a);
        assert_eq!(b.flows, 2);
        assert_eq!(b.nacks(), 6);
        assert_eq!(b.retransmitted_bytes, 4_000);
        assert_eq!(b.rto_fires, 1);
    }

    #[test]
    fn occupancy_series_stats() {
        let mut s = OccupancySeries::new();
        s.push(SimTime::from_millis(1), Bytes::new(100));
        s.push(SimTime::from_millis(2), Bytes::new(300));
        s.push(SimTime::from_millis(3), Bytes::new(200));
        assert_eq!(s.peak(), Bytes::new(300));
        assert!((s.mean() - 200.0).abs() < 1e-9);
        assert_eq!(s.quantile(0.5), Some(200.0));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_series() {
        let s = OccupancySeries::new();
        assert_eq!(s.peak(), Bytes::ZERO);
        assert_eq!(s.mean(), 0.0);
        assert!(s.quantile(0.5).is_none());
    }

    #[test]
    fn pfc_since_and_subtract_roundtrip() {
        let mut base = PfcCounters::new();
        base.record_pause(Priority::new(3));
        let snap = base.clone();
        base.record_pause(Priority::new(1));
        base.record_resume(Priority::new(3));
        base.record_watchdog();
        let delta = base.since(&snap);
        assert_eq!(delta.pause_frames(), 1);
        assert_eq!(delta.pause_frames_for(Priority::new(1)), 1);
        assert_eq!(delta.resume_frames(), 1);
        assert_eq!(delta.watchdog_fires(), 1);
        base.subtract(&delta);
        assert_eq!(base, snap, "subtract reverts since");
    }

    #[test]
    fn drop_since_and_subtract_roundtrip() {
        let mut base = DropCounters::new();
        base.record_lossy(Bytes::new(1_000));
        let snap = base;
        base.record_lossless(Bytes::new(500));
        base.record_evicted(Bytes::new(200));
        let delta = base.since(&snap);
        assert_eq!(delta.lossless_packets, 1);
        assert_eq!(delta.evicted_packets, 1);
        assert_eq!(delta.lossy_packets, 1, "eviction refines lossy");
        assert_eq!(delta.lossy_bytes, 200);
        base.subtract(&delta);
        assert_eq!(base, snap);
    }

    #[test]
    fn irn_since_skips_flow_registrations() {
        let mut base = IrnCounters::new();
        base.flows = 7;
        base.nacks_switch = 2;
        let snap = base;
        base.nacks_switch += 1;
        base.retransmitted_packets += 2;
        base.retransmitted_bytes += 2_000;
        let delta = base.since(&snap);
        assert_eq!(delta.flows, 0, "flows are configuration, not a delta");
        assert_eq!(delta.nacks_switch, 1);
        assert_eq!(delta.retransmitted_packets, 2);
        base.subtract(&delta);
        assert_eq!(base, snap);
        assert_eq!(base.flows, 7);
    }

    #[test]
    fn occupancy_drop_last() {
        let mut s = OccupancySeries::new();
        s.push(SimTime::from_millis(1), Bytes::new(100));
        s.push(SimTime::from_millis(2), Bytes::new(300));
        s.push(SimTime::from_millis(3), Bytes::new(200));
        s.drop_last(2);
        assert_eq!(s.samples(), &[(SimTime::from_millis(1), Bytes::new(100))]);
        s.drop_last(5);
        assert!(s.is_empty());
    }
}
