//! Differential property tests: the indexed 4-ary slab heap must pop
//! exactly the `(time, value)` sequence a reference `BinaryHeap`
//! implementation (the engine's previous internals) produces, on
//! seeded-random schedules with interleaved push/pop, heavy time ties,
//! and past-time clamping.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dcn_sim::{EventQueue, SimRng, SimTime};

/// The previous engine's queue, kept verbatim as the ordering oracle: a
/// std max-`BinaryHeap` of reverse-ordered `(time, seq)` entries with
/// the event payload stored inline.
struct ReferenceQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: SimTime,
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: earliest (time, seq) on top of the max-heap.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> ReferenceQueue<E> {
    fn new() -> Self {
        ReferenceQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }
}

/// One seeded scenario: a random interleaving of pushes and pops fed to
/// both queues, comparing every pop. `tie_span` controls how heavily
/// times collide (1 = everything ties), and `past_bias` occasionally
/// schedules before `now` to exercise the clamp edge.
fn run_case(seed: u64, tie_span: u64, past_bias: bool) {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut new_q: EventQueue<u64> = EventQueue::new();
    let mut ref_q: ReferenceQueue<u64> = ReferenceQueue::new();
    let mut next_value = 0u64;
    let mut expected_clamps = 0u64;

    for _ in 0..600 {
        let push = new_q.is_empty() || rng.uniform_f64() < 0.6;
        if push {
            let now = new_q.now().as_nanos();
            let at = if past_bias && rng.uniform_f64() < 0.25 && now > 0 {
                // Up to 100 ns into the past: must clamp to `now`.
                now.saturating_sub(1 + rng.below(100))
            } else {
                now + rng.below(tie_span)
            };
            if at < now {
                expected_clamps += 1;
            }
            new_q.schedule_at(SimTime::from_nanos(at), next_value);
            ref_q.schedule_at(SimTime::from_nanos(at), next_value);
            next_value += 1;
        } else {
            assert_eq!(
                new_q.pop(),
                ref_q.pop(),
                "pop mismatch (seed {seed}, tie_span {tie_span})"
            );
        }
    }
    // Drain both; every remaining pop must agree too.
    loop {
        let (a, b) = (new_q.pop(), ref_q.pop());
        assert_eq!(a, b, "drain mismatch (seed {seed}, tie_span {tie_span})");
        if a.is_none() {
            break;
        }
    }
    assert_eq!(
        new_q.past_clamps(),
        expected_clamps,
        "clamp count (seed {seed})"
    );
}

#[test]
fn differential_random_interleaving_64_seeds() {
    for seed in 0..64 {
        run_case(0xD1FF_0000 + seed, 1_000, false);
    }
}

#[test]
fn differential_heavy_ties_64_seeds() {
    // tie_span 3: almost every pending event shares a timestamp, so the
    // FIFO tie-break does all the ordering work.
    for seed in 0..64 {
        run_case(0x71E5_0000 + seed, 3, false);
    }
}

#[test]
fn differential_past_clamp_edge_64_seeds() {
    for seed in 0..64 {
        run_case(0xC1A3_0000 + seed, 500, true);
    }
}

#[test]
fn differential_all_identical_times() {
    // Degenerate case: one timestamp for everything — pure FIFO.
    let mut new_q: EventQueue<u64> = EventQueue::new();
    let mut ref_q: ReferenceQueue<u64> = ReferenceQueue::new();
    let t = SimTime::from_nanos(9);
    for v in 0..500 {
        new_q.schedule_at(t, v);
        ref_q.schedule_at(t, v);
    }
    for _ in 0..500 {
        assert_eq!(new_q.pop(), ref_q.pop());
    }
    assert_eq!(new_q.pop(), None);
}

#[test]
fn differential_across_forced_renumber() {
    // The rare u32-seq compaction must not reorder anything relative to
    // the reference (whose u64 seq never renumbers).
    for seed in 0..16 {
        let mut rng = SimRng::seed_from_u64(0x5E0_u64 ^ seed);
        let mut new_q: EventQueue<u64> = EventQueue::new();
        let mut ref_q: ReferenceQueue<u64> = ReferenceQueue::new();
        for v in 0..400 {
            let at = SimTime::from_nanos(rng.below(20));
            new_q.schedule_at(at, v);
            ref_q.schedule_at(at, v);
            if v % 97 == 0 {
                new_q.force_renumber();
            }
        }
        loop {
            let (a, b) = (new_q.pop(), ref_q.pop());
            assert_eq!(a, b, "renumber mismatch (seed {seed})");
            if a.is_none() {
                break;
            }
        }
    }
}
