//! Differential oracle for the timing wheel: an [`EventQueue`] mixing
//! plain heap events with wheel timers under cancel/re-arm storms must
//! pop exactly the `(time, value)` sequence of a reference tombstoning
//! `BinaryHeap` engine — the engine the wheel replaced — on seeded
//! random interleavings.
//!
//! The reference models cancellation the way the old engine did: the
//! dead entry stays in the heap and is popped (and discarded) when its
//! `(time, seq)` key surfaces. The wheel engine instead absorbs a
//! "ghost" per cancelled key at dispatch, so after every live pop the
//! two engines must agree not only on the popped event but on the
//! cumulative dead-pop count (`ghost_pops`). That equality is what
//! keeps `events_processed` — and therefore the golden digests —
//! byte-identical across the engine swap.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use dcn_sim::{EventQueue, SimRng, SimTime, TimerHandle};

/// The pre-wheel engine, kept as the oracle: a max-`BinaryHeap` of
/// reverse-ordered `(time, seq)` entries where cancellation tombstones
/// the value and the dead entry is popped lazily.
struct ReferenceQueue {
    heap: BinaryHeap<Scheduled>,
    tombstones: HashSet<u64>,
    seq: u64,
    now: SimTime,
    dead_pops: u64,
}

struct Scheduled {
    at: SimTime,
    seq: u64,
    value: u64,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: earliest (time, seq) on top of the max-heap.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl ReferenceQueue {
    fn new() -> Self {
        ReferenceQueue {
            heap: BinaryHeap::new(),
            tombstones: HashSet::new(),
            seq: 0,
            now: SimTime::ZERO,
            dead_pops: 0,
        }
    }

    /// Plain events and timers are the same entry kind here; both
    /// consume one sequence number, mirroring the wheel engine's shared
    /// `admit` counter.
    fn schedule_at(&mut self, at: SimTime, value: u64) {
        let at = at.max(self.now);
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            value,
        });
        self.seq += 1;
    }

    /// Tombstones a pending value; the entry itself stays queued.
    fn cancel(&mut self, value: u64) {
        self.tombstones.insert(value);
    }

    /// Pops the next *live* entry, spending a dead pop on every
    /// tombstoned entry passed on the way. When only dead entries
    /// remain they are left queued — the wheel engine likewise absorbs
    /// a cancelled key only when a live dispatch passes it (trailing
    /// ghosts wait for the window-close absorb).
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        if !self
            .heap
            .iter()
            .any(|s| !self.tombstones.contains(&s.value))
        {
            return None;
        }
        while let Some(s) = self.heap.pop() {
            self.now = s.at;
            if self.tombstones.remove(&s.value) {
                self.dead_pops += 1;
                continue;
            }
            return Some((s.at, s.value));
        }
        unreachable!("a live entry was present");
    }

    /// Window close: spends the dead pops of everything still queued,
    /// mirroring [`EventQueue::absorb_ghosts_before`] at the horizon.
    fn drain_dead(&mut self) {
        while let Some(s) = self.heap.pop() {
            assert!(
                self.tombstones.remove(&s.value),
                "only dead entries remain after a live drain"
            );
            self.dead_pops += 1;
        }
    }
}

/// A pending wheel timer on the real queue, with the bookkeeping needed
/// to drive cancels against both engines.
struct Armed {
    handle: TimerHandle,
    value: u64,
}

struct Harness {
    real: EventQueue<u64>,
    oracle: ReferenceQueue,
    /// Timers armed on the real queue and not yet known to have fired
    /// or been cancelled.
    armed: Vec<Armed>,
    /// Handles whose timers fired or were already cancelled; cancelling
    /// these again must return `None`.
    stale: Vec<TimerHandle>,
    /// Values that left the queues by firing.
    fired: HashSet<u64>,
    next_value: u64,
}

impl Harness {
    fn new() -> Self {
        Harness {
            real: EventQueue::new(),
            oracle: ReferenceQueue::new(),
            armed: Vec::new(),
            stale: Vec::new(),
            fired: HashSet::new(),
            next_value: 0,
        }
    }

    fn push_event(&mut self, at: SimTime) {
        let v = self.next_value;
        self.next_value += 1;
        self.real.schedule_at(at, v);
        self.oracle.schedule_at(at, v);
    }

    fn arm_timer(&mut self, at: SimTime) {
        let v = self.next_value;
        self.next_value += 1;
        let handle = self.real.schedule_timer_at(at, v);
        self.oracle.schedule_at(at, v);
        self.armed.push(Armed { handle, value: v });
    }

    /// Cancels the pending timer at `ix` on both engines, asserting the
    /// real queue surrenders the right payload. Returns its old value.
    fn cancel_at(&mut self, ix: usize) -> u64 {
        let Armed { handle, value } = self.armed.swap_remove(ix);
        if self.fired.contains(&value) {
            // Raced: the timer fired since we recorded it. The handle
            // is stale and cancellation must be a no-op.
            assert_eq!(self.real.cancel_timer(handle), None, "fired handle");
            self.stale.push(handle);
            return value;
        }
        assert_eq!(
            self.real.cancel_timer(handle),
            Some(value),
            "live cancel must surrender the payload"
        );
        self.oracle.cancel(value);
        self.stale.push(handle);
        value
    }

    /// Pops one event from both engines and asserts full agreement:
    /// payload, time, and cumulative dead-pop accounting.
    fn pop_both(&mut self, context: &str) -> Option<(SimTime, u64)> {
        let a = self.real.pop();
        let b = self.oracle.pop();
        assert_eq!(a, b, "pop mismatch ({context})");
        if let Some((_, v)) = a {
            self.fired.insert(v);
            self.armed.retain(|t| t.value != v);
        }
        assert_eq!(
            self.real.ghost_pops(),
            self.oracle.dead_pops,
            "ghost accounting diverged ({context})"
        );
        a
    }

    /// Drains both queues, then absorbs the ghosts of cancellations
    /// later than the last live event — the run-window close the fabric
    /// drivers perform — and asserts the engines spent the same total
    /// event budget.
    fn drain_and_reconcile(&mut self, context: &str) {
        while self.pop_both(context).is_some() {}
        self.real
            .absorb_ghosts_before(SimTime::from_nanos(u64::MAX));
        self.oracle.drain_dead();
        assert_eq!(
            self.real.ghost_pops(),
            self.oracle.dead_pops,
            "window-close ghost absorption must cover every cancel ({context})"
        );
        assert_eq!(
            self.real.processed() + self.real.ghost_pops(),
            self.oracle.seq,
            "total event budget must match the tombstoning engine ({context})"
        );
        assert_eq!(self.real.stats().stale_timer_pops, 0, "({context})");
        assert_eq!(self.real.past_clamps(), 0, "({context})");
    }
}

/// One seeded interleaving of pushes, timer arms, cancels, re-arms and
/// pops. `tie_span` controls time collisions (small = heavy ties);
/// `far_span` occasionally schedules far ahead so keys cross wheel
/// windows and levels (cascade + wrap coverage).
fn run_case(seed: u64, tie_span: u64, far_span: u64) {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut h = Harness::new();
    for step in 0..800 {
        let at = |h: &Harness, rng: &mut SimRng| {
            let span = if far_span > 0 && rng.below(8) == 0 {
                far_span
            } else {
                tie_span
            };
            SimTime::from_nanos(h.real.now().as_nanos() + rng.below(span))
        };
        match rng.below(10) {
            0..=2 => {
                let t = at(&h, &mut rng);
                h.push_event(t);
            }
            3..=5 => {
                let t = at(&h, &mut rng);
                h.arm_timer(t);
            }
            6 if !h.armed.is_empty() => {
                // Cancel storm: kill up to 4 pending timers at once.
                for _ in 0..=rng.below(4) {
                    if h.armed.is_empty() {
                        break;
                    }
                    let ix = rng.below(h.armed.len() as u64) as usize;
                    h.cancel_at(ix);
                }
            }
            7 if !h.armed.is_empty() => {
                // Re-arm storm: cancel + immediately arm a replacement,
                // sometimes at the exact same instant (RTO push-out).
                let ix = rng.below(h.armed.len() as u64) as usize;
                h.cancel_at(ix);
                let t = at(&h, &mut rng);
                h.arm_timer(t);
            }
            8 if !h.stale.is_empty() => {
                // Double-cancel: a stale handle must stay a no-op.
                let ix = rng.below(h.stale.len() as u64) as usize;
                let handle = h.stale[ix];
                assert_eq!(h.real.cancel_timer(handle), None, "stale handle");
            }
            _ => {
                h.pop_both(&format!("seed {seed} step {step}"));
            }
        }
    }
    h.drain_and_reconcile(&format!("seed {seed}"));
}

#[test]
fn wheel_differential_random_interleaving_64_seeds() {
    for seed in 0..64 {
        run_case(0x0EE1_0000 + seed, 2_000, 0);
    }
}

#[test]
fn wheel_differential_heavy_ties_64_seeds() {
    // tie_span 3: nearly every pending key shares a timestamp, so the
    // shared insertion sequence does all the ordering work — the case
    // where a wheel that merged non-deterministically would diverge.
    for seed in 0..64 {
        run_case(0x0EE2_0000 + seed, 3, 0);
    }
}

#[test]
fn wheel_differential_cross_window_cascades_64_seeds() {
    // Far keys land in outer wheel levels and cascade inward as time
    // advances; cancels must find them at every residence.
    for seed in 0..64 {
        run_case(0x0EE3_0000 + seed, 500, 40_000_000);
    }
}

#[test]
fn wheel_differential_survives_renumber() {
    // The u32-seq compaction renumbers heap entries, filed and staged
    // timers, and ghosts in one monotone pass; pop order and ghost
    // accounting must be unaffected even mid-storm.
    for seed in 0..16 {
        let mut rng = SimRng::seed_from_u64(0x0EE4_0000 + seed);
        let mut h = Harness::new();
        for step in 0..400 {
            let t = SimTime::from_nanos(h.real.now().as_nanos() + rng.below(50));
            match rng.below(6) {
                0 | 1 => h.push_event(t),
                2 | 3 => h.arm_timer(t),
                4 if !h.armed.is_empty() => {
                    let ix = rng.below(h.armed.len() as u64) as usize;
                    h.cancel_at(ix);
                }
                _ => {
                    h.pop_both(&format!("renumber seed {seed} step {step}"));
                }
            }
            if step % 61 == 0 {
                h.real.force_renumber();
            }
        }
        h.drain_and_reconcile(&format!("renumber seed {seed}"));
    }
}
