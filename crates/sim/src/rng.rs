//! Seeded randomness and the distributions the workload generators need.
//!
//! Everything is driven by [`SimRng`], a self-contained xoshiro256++
//! generator (public-domain algorithm by Blackman & Vigna) seeded through
//! SplitMix64, so that a run is fully reproducible from its seed with no
//! external crates. Exponential sampling (Poisson inter-arrivals) and
//! empirical-CDF sampling (flow sizes) are implemented here rather than
//! pulling in `rand_distr`.

use crate::time::SimDuration;

/// SplitMix64 step: the recommended seeder for xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, seedable random number generator for simulations.
///
/// # Example
///
/// ```
/// use dcn_sim::SimRng;
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child generator (e.g. one per traffic
    /// source) so that adding sources doesn't perturb others' streams.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        SimRng::seed_from_u64(self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)` (53 random mantissa bits).
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's multiply-shift with rejection for exact uniformity.
        loop {
            let x = self.next_u64();
            let m = x as u128 * n as u128;
            let low = m as u64;
            if low >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform index in `[0, n)`, excluding `skip` (used for "send to a
    /// random *other* server").
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `skip >= n`.
    pub fn below_excluding(&mut self, n: u64, skip: u64) -> u64 {
        assert!(n >= 2, "need at least two choices");
        assert!(skip < n, "skip index out of range");
        let v = self.below(n - 1);
        if v >= skip {
            v + 1
        } else {
            v
        }
    }

    /// An exponentially-distributed duration with the given mean (Poisson
    /// process inter-arrival time).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is zero.
    pub fn exponential(&mut self, mean: SimDuration) -> SimDuration {
        assert!(mean > SimDuration::ZERO, "mean must be positive");
        // Inverse transform: -ln(1-U) * mean, with U in [0,1).
        let u: f64 = self.uniform_f64();
        let x = -(1.0 - u).ln();
        SimDuration::from_secs_f64(x * mean.as_secs_f64())
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// An empirical cumulative distribution function over `u64` values,
/// sampled by inverse transform with linear interpolation between knots —
/// the standard way DCN studies encode the web-search flow-size
/// distribution.
///
/// # Example
///
/// ```
/// use dcn_sim::{EmpiricalCdf, SimRng};
/// let cdf = EmpiricalCdf::new(vec![(0, 0.0), (100, 0.5), (1_000, 1.0)]).unwrap();
/// let mut rng = SimRng::seed_from_u64(1);
/// let v = cdf.sample(&mut rng);
/// assert!(v <= 1_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalCdf {
    /// (value, cumulative probability) knots, strictly increasing in both.
    knots: Vec<(u64, f64)>,
    mean: f64,
}

/// Error building an [`EmpiricalCdf`] from knots that are not a valid CDF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidCdfError(String);

impl std::fmt::Display for InvalidCdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid empirical CDF: {}", self.0)
    }
}

impl std::error::Error for InvalidCdfError {}

impl EmpiricalCdf {
    /// Builds a CDF from `(value, cumulative_probability)` knots.
    ///
    /// # Errors
    ///
    /// Returns an error unless the knots are non-empty, non-decreasing in
    /// value, strictly increasing in probability, start at probability
    /// ≥ 0 and end at exactly 1.0.
    pub fn new(knots: Vec<(u64, f64)>) -> Result<Self, InvalidCdfError> {
        if knots.is_empty() {
            return Err(InvalidCdfError("no knots".into()));
        }
        for w in knots.windows(2) {
            if w[1].0 < w[0].0 {
                return Err(InvalidCdfError(format!(
                    "values must be non-decreasing: {} then {}",
                    w[0].0, w[1].0
                )));
            }
            if w[1].1 <= w[0].1 {
                return Err(InvalidCdfError(format!(
                    "probabilities must be strictly increasing: {} then {}",
                    w[0].1, w[1].1
                )));
            }
        }
        let first_p = knots[0].1;
        let last_p = knots[knots.len() - 1].1;
        if !(0.0..=1.0).contains(&first_p) {
            return Err(InvalidCdfError(format!(
                "first probability {first_p} out of range"
            )));
        }
        if (last_p - 1.0).abs() > 1e-9 {
            return Err(InvalidCdfError(format!(
                "last probability must be 1.0, got {last_p}"
            )));
        }
        let mut cdf = EmpiricalCdf { knots, mean: 0.0 };
        cdf.mean = cdf.compute_mean();
        Ok(cdf)
    }

    fn compute_mean(&self) -> f64 {
        // Piecewise-linear CDF => piecewise-uniform density; the mean is
        // the probability-weighted midpoint of each segment.
        let mut mean = self.knots[0].0 as f64 * self.knots[0].1;
        for w in self.knots.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            mean += (p1 - p0) * (v0 as f64 + v1 as f64) / 2.0;
        }
        mean
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The largest possible sample.
    pub fn max_value(&self) -> u64 {
        self.knots[self.knots.len() - 1].0
    }

    /// Draws a sample by inverse transform with linear interpolation.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.uniform_f64();
        self.quantile(u)
    }

    /// The value at cumulative probability `p` (clamped to `[0, 1]`).
    pub fn quantile(&self, p: f64) -> u64 {
        let p = p.clamp(0.0, 1.0);
        if p <= self.knots[0].1 {
            return self.knots[0].0;
        }
        for w in self.knots.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            if p <= p1 {
                let frac = (p - p0) / (p1 - p0);
                return v0 + ((v1 - v0) as f64 * frac).round() as u64;
            }
        }
        self.max_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_differ() {
        let mut root = SimRng::seed_from_u64(1);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_excluding_never_returns_skip() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1_000 {
            assert_ne!(rng.below_excluding(8, 5), 5);
        }
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::seed_from_u64(9);
        let mean = SimDuration::from_micros(100);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exponential(mean).as_secs_f64()).sum();
        let emp = total / n as f64;
        assert!((emp - 1e-4).abs() < 5e-6, "empirical mean {emp}");
    }

    #[test]
    fn cdf_rejects_bad_knots() {
        assert!(EmpiricalCdf::new(vec![]).is_err());
        assert!(EmpiricalCdf::new(vec![(0, 0.0), (10, 0.5)]).is_err());
        assert!(EmpiricalCdf::new(vec![(10, 0.0), (5, 1.0)]).is_err());
        assert!(EmpiricalCdf::new(vec![(0, 0.5), (10, 0.5), (20, 1.0)]).is_err());
    }

    #[test]
    fn cdf_quantiles_interpolate() {
        let cdf = EmpiricalCdf::new(vec![(0, 0.0), (100, 0.5), (1_000, 1.0)]).unwrap();
        assert_eq!(cdf.quantile(0.0), 0);
        assert_eq!(cdf.quantile(0.25), 50);
        assert_eq!(cdf.quantile(0.5), 100);
        assert_eq!(cdf.quantile(0.75), 550);
        assert_eq!(cdf.quantile(1.0), 1_000);
    }

    #[test]
    fn cdf_mean_matches_analytic() {
        // Uniform on [0, 100]: mean 50.
        let cdf = EmpiricalCdf::new(vec![(0, 0.0), (100, 1.0)]).unwrap();
        assert!((cdf.mean() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_sample_within_bounds_and_mean_close() {
        let cdf = EmpiricalCdf::new(vec![(0, 0.0), (100, 0.5), (1_000, 1.0)]).unwrap();
        let mut rng = SimRng::seed_from_u64(5);
        let n = 50_000;
        let mut total = 0u64;
        for _ in 0..n {
            let v = cdf.sample(&mut rng);
            assert!(v <= 1_000);
            total += v;
        }
        let emp = total as f64 / n as f64;
        assert!(
            (emp - cdf.mean()).abs() < 10.0,
            "empirical mean {emp} vs {}",
            cdf.mean()
        );
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
