//! Hierarchical timing wheel for the cancellable-timer population.
//!
//! The 4-ary heap in [`crate::EventQueue`] is the right structure for
//! packet and link events, which are scheduled once and always fire. The
//! protocol timers riding on top of it — TCP retransmission deadlines,
//! DCQCN alpha-decay and rate-increase timers, PFC storm-watchdog
//! deadlines — have the opposite life cycle: almost every one is
//! *cancelled or re-armed* before it fires (every ACK on a live TCP flow
//! pushes its RTO 2 ms further out). A heap cannot remove an interior
//! entry cheaply, so the previous engine tombstoned the stale entry and
//! filtered it at pop time, paying sifts and a pop per dead timer and
//! inflating the pending population by O(acks).
//!
//! This module provides the classic alternative (Varghese & Lauck's
//! hierarchical timing wheel): six levels of 64 slots, each slot an
//! intrusive doubly-linked list of timer nodes, with per-level occupancy
//! bitmaps. Level 0 slots are one 1.024 µs tick wide; each higher level
//! is 64× coarser, so the hierarchy spans ~19.5 hours before any entry
//! needs to revolve. Arming is O(1) (compute level + slot from the delta
//! to the cursor, push onto the list), cancelling is O(1) (unlink via the
//! node's links), and advancing the cursor cascades coarse slots into
//! finer ones a node at a time, so total cascade work per node is bounded
//! by the number of levels it descends.
//!
//! # Determinism contract
//!
//! The wheel stores the same `(time, ord)` key the heap uses and never
//! *orders* anything itself: entries that come due are staged into the
//! dispatcher's `due` min-heap (see `EventQueue::settle`) and merged with
//! heap pops in exact `(time, seq)` order. Slot-list order is therefore
//! irrelevant to dispatch order — the wheel only needs to deliver every
//! entry with `at <= target` when asked to advance to `target`, which the
//! cascade structure guarantees because a node is always re-filed by its
//! absolute tick. DESIGN.md §4.8 spells out the full argument.

use crate::time::SimTime;

/// log₂ of the level-0 tick width in nanoseconds (1.024 µs). Fine enough
/// that protocol timers (≥ 50 µs) never collide with their own re-arms at
/// wheel granularity; coarse enough that cursor walks are cheap.
const GRAIN_BITS: u32 = 10;
/// log₂ of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level (64 — one occupancy bitmap word per level).
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. Six levels of 64 slots at 1.024 µs granularity span
/// 2⁴⁶ ns ≈ 19.5 h; farther deadlines simply revolve (they re-cascade
/// from the top level, which preserves correctness).
const LEVELS: usize = 6;

/// Null link / list terminator.
const NIL: u32 = u32::MAX;
/// `home` value for nodes staged into the dispatcher's due heap.
const HOME_DUE: u32 = u32::MAX - 1;
/// `home` value for free-list nodes.
const HOME_FREE: u32 = u32::MAX - 2;

/// Opaque handle to an armed timer, returned by
/// [`crate::EventQueue::schedule_timer_at`] and consumed by
/// [`crate::EventQueue::cancel_timer`].
///
/// Generational like [`crate::SlotHandle`]: a handle to a timer that has
/// already fired, been cancelled, or been re-armed is detected and
/// rejected rather than corrupting a newer timer in the recycled node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerHandle {
    pub(crate) node: u32,
    pub(crate) generation: u32,
}

/// One timer node: the `(at, ord)` dispatch key plus intrusive links.
#[derive(Debug, Clone, Copy)]
struct Node {
    at: SimTime,
    ord: u64,
    prev: u32,
    next: u32,
    generation: u32,
    /// Where the node currently lives: `level * SLOTS + slot` while filed
    /// in the wheel, [`HOME_DUE`] while staged for dispatch, or
    /// [`HOME_FREE`] on the free list.
    home: u32,
}

/// Result of [`Wheel::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Cancelled {
    /// Handle was stale (already fired, cancelled, or re-armed).
    Invalid,
    /// Timer was still filed in the wheel; its dispatch key is returned.
    Filed { at: SimTime, ord: u64 },
    /// Timer had already been staged into the due heap; the stale due
    /// entry will be skipped at pop via the generation check.
    Staged { at: SimTime, ord: u64 },
}

/// The hierarchical wheel. Owns timer nodes; payloads stay in the
/// dispatcher's slab, addressed by the low 32 bits of `ord` exactly as
/// heap entries are.
#[derive(Debug)]
pub(crate) struct Wheel {
    nodes: Vec<Node>,
    free: u32,
    /// Head node of each slot list, indexed `level * SLOTS + slot`.
    heads: [u32; LEVELS * SLOTS],
    /// Bit `s` of `occupancy[l]` set ⇔ slot `s` of level `l` is non-empty.
    occupancy: [u64; LEVELS],
    /// Current position in level-0 ticks. Never moves backwards, and
    /// never moves past the dispatcher's last drain target.
    cursor: u64,
    /// Nodes filed in the wheel (staged nodes are counted by the
    /// dispatcher's `due_live` instead).
    len: usize,
    /// Lower bound on the earliest filed entry's time; `SimTime::MAX`
    /// when no entries are filed. Lets the dispatcher's fast path pop the
    /// heap without touching the wheel at all.
    bound: SimTime,
}

impl Wheel {
    pub(crate) fn new() -> Self {
        Wheel {
            nodes: Vec::new(),
            free: NIL,
            heads: [NIL; LEVELS * SLOTS],
            occupancy: [0; LEVELS],
            cursor: 0,
            len: 0,
            bound: SimTime::MAX,
        }
    }

    /// Filed entries (excludes staged nodes).
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lower bound on the earliest filed entry (`SimTime::MAX` if none).
    pub(crate) fn bound(&self) -> SimTime {
        self.bound
    }

    /// High-water bookkeeping: nodes ever allocated.
    #[cfg(test)]
    pub(crate) fn node_capacity(&self) -> usize {
        self.nodes.len()
    }

    /// Files a timer with dispatch key `(at, ord)`. `at` must not precede
    /// the dispatcher's clock (the caller clamps); times before the
    /// cursor's tick are tolerated and fire at the correct key anyway via
    /// the current-slot rescan.
    pub(crate) fn insert(&mut self, at: SimTime, ord: u64) -> TimerHandle {
        let idx = self.alloc();
        let t_ticks = at.as_nanos() >> GRAIN_BITS;
        let home = self.file_home(t_ticks);
        let node = &mut self.nodes[idx as usize];
        node.at = at;
        node.ord = ord;
        node.home = home;
        let generation = node.generation;
        self.link(idx, home);
        self.len += 1;
        self.bound = self.bound.min(at);
        TimerHandle {
            node: idx,
            generation,
        }
    }

    /// Cancels an armed timer in O(1). See [`Cancelled`].
    pub(crate) fn cancel(&mut self, h: TimerHandle) -> Cancelled {
        let Some(node) = self.nodes.get(h.node as usize) else {
            return Cancelled::Invalid;
        };
        if node.generation != h.generation || node.home == HOME_FREE {
            return Cancelled::Invalid;
        }
        let (at, ord, home) = (node.at, node.ord, node.home);
        if home == HOME_DUE {
            self.release(h.node);
            return Cancelled::Staged { at, ord };
        }
        self.unlink(h.node, home);
        self.len -= 1;
        if self.len == 0 {
            self.bound = SimTime::MAX;
        }
        self.release(h.node);
        Cancelled::Filed { at, ord }
    }

    /// Whether a due-heap entry `(node, generation)` still refers to a
    /// live staged timer (false once cancelled or recycled).
    pub(crate) fn is_staged_live(&self, node: u32, generation: u32) -> bool {
        self.nodes
            .get(node as usize)
            .is_some_and(|n| n.generation == generation && n.home == HOME_DUE)
    }

    /// Consumes a staged timer at dispatch, returning its `ord` (whose
    /// low 32 bits address the payload slab slot). `None` if the entry
    /// went stale (cancelled after staging).
    pub(crate) fn release_staged(&mut self, node: u32, generation: u32) -> Option<u64> {
        if !self.is_staged_live(node, generation) {
            return None;
        }
        let ord = self.nodes[node as usize].ord;
        self.release(node);
        Some(ord)
    }

    /// The staged/filed node's current `ord` (renumber support).
    pub(crate) fn node_ord(&self, node: u32) -> u64 {
        self.nodes[node as usize].ord
    }

    /// Rewrites one node's `ord` (renumber support).
    pub(crate) fn set_node_ord(&mut self, node: u32, ord: u64) {
        self.nodes[node as usize].ord = ord;
    }

    /// Every live node as `(index, ord)` — filed and staged alike
    /// (renumber support).
    pub(crate) fn live_nodes(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.home != HOME_FREE)
            .map(|(i, n)| (i as u32, n.ord))
    }

    /// Advances the cursor to `target`, staging every filed entry with
    /// `at <= target` via `sink(at, ord, node, generation)`. Afterwards
    /// [`Wheel::bound`] strictly exceeds `target`, so the dispatcher can
    /// pop any event at or before `target` without consulting the wheel
    /// again.
    pub(crate) fn drain_to(
        &mut self,
        target: SimTime,
        mut sink: impl FnMut(SimTime, u64, u32, u32),
    ) {
        let target_ticks = target.as_nanos() >> GRAIN_BITS;
        loop {
            self.drain_level0_slot(target, &mut sink);
            if self.cursor >= target_ticks {
                break;
            }
            // Jump straight to the next tick where anything can happen —
            // an occupied level-0 slot or an occupied coarse slot's
            // cascade boundary — instead of walking empty ticks.
            self.cursor = self.next_interesting_tick(target_ticks);
            // Entering a new slot window at a coarser level cascades that
            // window's entries down toward level 0. Boundaries skipped by
            // the jump had empty slots, so skipping their (no-op)
            // cascades is sound.
            for level in 1..LEVELS {
                if self.cursor & ((1u64 << (SLOT_BITS * level as u32)) - 1) != 0 {
                    break;
                }
                let slot =
                    ((self.cursor >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
                self.cascade(level, slot);
            }
        }
        let floor = SimTime::from_nanos(target.as_nanos().saturating_add(1));
        self.bound = self.refreshed_bound().max(floor);
        if self.len == 0 {
            self.bound = SimTime::MAX;
        }
    }

    /// End (inclusive) of the earliest slot window that will stage or
    /// cascade entries, used by the dispatcher to pick a drain target
    /// that guarantees progress when only wheel entries remain. `None`
    /// if the wheel is empty.
    pub(crate) fn next_window_end(&self) -> Option<SimTime> {
        let mut best: Option<(u64, u64)> = None; // (start_ticks, end_ticks)
        if self.occupancy[0] != 0 {
            let rot = self.occupancy[0].rotate_right((self.cursor & 63) as u32);
            let start = self.cursor + u64::from(rot.trailing_zeros());
            if best.is_none_or(|(s, _)| start < s) {
                best = Some((start, start + 1));
            }
        }
        for level in 1..LEVELS {
            if self.occupancy[level] == 0 {
                continue;
            }
            let shift = SLOT_BITS * level as u32;
            let cur = self.cursor >> shift;
            let rot = self.occupancy[level].rotate_right((cur & 63) as u32);
            // The current coarse slot only re-cascades a full revolution
            // from now (entries parked there lie beyond the wheel span).
            let ahead = if rot & !1 != 0 {
                u64::from((rot & !1).trailing_zeros())
            } else {
                SLOTS as u64
            };
            let start = (cur + ahead) << shift;
            if best.is_none_or(|(s, _)| start < s) {
                best = Some((start, start + (1 << shift)));
            }
        }
        best.map(|(_, end)| SimTime::from_nanos((end << GRAIN_BITS).saturating_sub(1)))
    }

    /// The next cursor tick (capped at `target_ticks`) where an occupied
    /// level-0 slot comes up or an occupied coarse slot cascades.
    fn next_interesting_tick(&self, target_ticks: u64) -> u64 {
        let mut jump = target_ticks;
        if self.occupancy[0] != 0 {
            // Skip bit 0: the current slot was just drained (anything
            // left in it is past the target).
            let rot = self.occupancy[0].rotate_right((self.cursor & 63) as u32) & !1;
            if rot != 0 {
                jump = jump.min(self.cursor + u64::from(rot.trailing_zeros()));
            }
        }
        for level in 1..LEVELS {
            if self.occupancy[level] == 0 {
                continue;
            }
            let shift = SLOT_BITS * level as u32;
            let cur = self.cursor >> shift;
            let rot = self.occupancy[level].rotate_right((cur & 63) as u32);
            let ahead = if rot & !1 != 0 {
                u64::from((rot & !1).trailing_zeros())
            } else {
                // Only the current coarse slot is occupied: it next
                // cascades a full revolution from now.
                SLOTS as u64
            };
            jump = jump.min((cur + ahead) << shift);
        }
        jump.max(self.cursor + 1)
    }

    // ---- internals ----------------------------------------------------

    /// Computes the `level * SLOTS + slot` home for an absolute tick,
    /// relative to the current cursor.
    fn file_home(&self, t_ticks: u64) -> u32 {
        let delta = t_ticks.saturating_sub(self.cursor);
        let level = if delta < SLOTS as u64 {
            0
        } else {
            (((63 - delta.leading_zeros()) / SLOT_BITS) as usize).min(LEVELS - 1)
        };
        let slot = ((t_ticks.max(self.cursor) >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1))
            as usize;
        (level * SLOTS + slot) as u32
    }

    /// Stages every entry in the cursor's level-0 slot with `at <= target`.
    fn drain_level0_slot(
        &mut self,
        target: SimTime,
        sink: &mut impl FnMut(SimTime, u64, u32, u32),
    ) {
        let slot = (self.cursor & (SLOTS as u64 - 1)) as usize;
        if self.occupancy[0] & (1 << slot) == 0 {
            return;
        }
        let mut idx = self.heads[slot];
        while idx != NIL {
            let node = self.nodes[idx as usize];
            let next = node.next;
            if node.at <= target {
                self.unlink(idx, node.home);
                self.len -= 1;
                self.nodes[idx as usize].home = HOME_DUE;
                sink(node.at, node.ord, idx, node.generation);
            }
            idx = next;
        }
    }

    /// Re-files every entry of a coarse slot relative to the new cursor.
    fn cascade(&mut self, level: usize, slot: usize) {
        let home = (level * SLOTS + slot) as u32;
        if self.occupancy[level] & (1 << slot) == 0 {
            return;
        }
        let mut idx = self.heads[home as usize];
        self.heads[home as usize] = NIL;
        self.occupancy[level] &= !(1 << slot);
        while idx != NIL {
            let next = self.nodes[idx as usize].next;
            let t_ticks = self.nodes[idx as usize].at.as_nanos() >> GRAIN_BITS;
            let new_home = self.file_home(t_ticks);
            self.nodes[idx as usize].home = new_home;
            self.link(idx, new_home);
            idx = next;
        }
    }

    /// Conservative lower bound on the earliest filed entry, from the
    /// occupancy bitmaps (slot starts, so it can undershoot within a
    /// window but never overshoot).
    ///
    /// The cursor's own level-0 slot is the one exception to the
    /// slot-start argument: the past-tick rescan path in
    /// [`Wheel::insert`] parks entries there whose times *precede* the
    /// slot's window, so its bound comes from scanning the (short)
    /// remaining list for the actual minimum key instead.
    fn refreshed_bound(&self) -> SimTime {
        let mut best = u64::MAX;
        let cur_slot = (self.cursor & (SLOTS as u64 - 1)) as usize;
        if self.occupancy[0] & (1 << cur_slot) != 0 {
            let mut idx = self.heads[cur_slot];
            while idx != NIL {
                let node = &self.nodes[idx as usize];
                best = best.min(node.at.as_nanos());
                idx = node.next;
            }
        }
        for level in 0..LEVELS {
            let occ = if level == 0 {
                self.occupancy[0] & !(1 << cur_slot)
            } else {
                self.occupancy[level]
            };
            if occ == 0 {
                continue;
            }
            let shift = SLOT_BITS * level as u32;
            let cur = self.cursor >> shift;
            let rot = occ.rotate_right((cur & 63) as u32);
            let ahead = u64::from(rot.trailing_zeros());
            let start = ((cur + ahead) << shift) << GRAIN_BITS;
            best = best.min(start);
        }
        SimTime::from_nanos(best)
    }

    fn alloc(&mut self) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            self.free = self.nodes[idx as usize].next;
            idx
        } else {
            let idx = u32::try_from(self.nodes.len()).expect("timer nodes fit u32");
            self.nodes.push(Node {
                at: SimTime::ZERO,
                ord: 0,
                prev: NIL,
                next: NIL,
                generation: 0,
                home: HOME_FREE,
            });
            idx
        }
    }

    /// Returns a node to the free list, bumping its generation so
    /// outstanding handles and due entries go stale.
    fn release(&mut self, idx: u32) {
        let node = &mut self.nodes[idx as usize];
        node.generation = node.generation.wrapping_add(1);
        node.home = HOME_FREE;
        node.prev = NIL;
        node.next = self.free;
        self.free = idx;
    }

    /// Pushes a node at the front of its home slot list.
    fn link(&mut self, idx: u32, home: u32) {
        let head = self.heads[home as usize];
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = head;
        if head != NIL {
            self.nodes[head as usize].prev = idx;
        }
        self.heads[home as usize] = idx;
        self.occupancy[home as usize / SLOTS] |= 1 << (home as usize % SLOTS);
    }

    /// Unlinks a node from its home slot list.
    fn unlink(&mut self, idx: u32, home: u32) {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.heads[home as usize] = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        }
        if self.heads[home as usize] == NIL {
            self.occupancy[home as usize / SLOTS] &= !(1 << (home as usize % SLOTS));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(w: &mut Wheel, target: SimTime) -> Vec<(SimTime, u64)> {
        let mut out = Vec::new();
        w.drain_to(target, |at, ord, _, _| out.push((at, ord)));
        out.sort();
        out
    }

    #[test]
    fn fires_in_key_order_after_sort() {
        let mut w = Wheel::new();
        w.insert(SimTime::from_micros(5), 1 << 32);
        w.insert(SimTime::from_micros(3), 2 << 32);
        w.insert(SimTime::from_micros(900), 3 << 32);
        let fired = drain_all(&mut w, SimTime::from_micros(10));
        assert_eq!(
            fired,
            vec![
                (SimTime::from_micros(3), 2 << 32),
                (SimTime::from_micros(5), 1 << 32),
            ]
        );
        assert_eq!(w.len(), 1);
        let fired = drain_all(&mut w, SimTime::from_millis(1));
        assert_eq!(fired, vec![(SimTime::from_micros(900), 3 << 32)]);
        assert!(w.is_empty());
        assert_eq!(w.bound(), SimTime::MAX);
    }

    #[test]
    fn cancel_filed_and_staged() {
        let mut w = Wheel::new();
        let a = w.insert(SimTime::from_micros(50), 1 << 32);
        let b = w.insert(SimTime::from_micros(50), 2 << 32);
        assert!(matches!(w.cancel(a), Cancelled::Filed { .. }));
        assert!(matches!(w.cancel(a), Cancelled::Invalid), "double cancel");
        let mut staged = Vec::new();
        w.drain_to(SimTime::from_micros(60), |at, ord, node, generation| {
            staged.push((at, ord, node, generation));
        });
        assert_eq!(staged.len(), 1);
        let (_, ord, node, generation) = staged[0];
        assert_eq!(ord, 2 << 32);
        assert!(w.is_staged_live(node, generation));
        assert!(matches!(w.cancel(b), Cancelled::Staged { .. }));
        assert!(!w.is_staged_live(node, generation));
        assert_eq!(w.release_staged(node, generation), None);
    }

    #[test]
    fn release_staged_returns_ord_once() {
        let mut w = Wheel::new();
        w.insert(SimTime::from_micros(2), 7 << 32);
        let mut staged = Vec::new();
        w.drain_to(SimTime::from_micros(4), |_, _, node, generation| {
            staged.push((node, generation));
        });
        let (node, generation) = staged[0];
        assert_eq!(w.release_staged(node, generation), Some(7 << 32));
        assert_eq!(w.release_staged(node, generation), None);
    }

    #[test]
    fn far_deadlines_cascade_down_on_time() {
        let mut w = Wheel::new();
        // One deadline per level's span, plus one beyond the wheel span
        // (revolves through the top level).
        let times = [
            SimTime::from_nanos(1 << 12),
            SimTime::from_nanos(1 << 18),
            SimTime::from_nanos(1 << 24),
            SimTime::from_nanos(1 << 32),
            SimTime::from_nanos(1 << 40),
            SimTime::from_nanos(1 << 45),
            SimTime::from_nanos(1 << 47),
        ];
        for (i, &t) in times.iter().enumerate() {
            w.insert(t, (i as u64) << 32);
        }
        for (i, &t) in times.iter().enumerate() {
            // Draining to just before the deadline must not fire it...
            let before = SimTime::from_nanos(t.as_nanos() - 1);
            assert!(drain_all(&mut w, before).is_empty(), "early fire at {i}");
            // ...and draining to the deadline fires exactly it.
            assert_eq!(drain_all(&mut w, t), vec![(t, (i as u64) << 32)]);
        }
        assert!(w.is_empty());
    }

    #[test]
    fn bound_allows_skipping_the_wheel() {
        let mut w = Wheel::new();
        w.insert(SimTime::from_millis(2), 1 << 32);
        assert!(w.bound() <= SimTime::from_millis(2));
        assert!(w.bound() > SimTime::ZERO);
        drain_all(&mut w, SimTime::from_micros(100));
        // After draining to t, the bound strictly exceeds t.
        assert!(w.bound() > SimTime::from_micros(100));
        assert!(w.bound() <= SimTime::from_millis(2));
    }

    #[test]
    fn same_tick_rearm_fires_at_new_key() {
        let mut w = Wheel::new();
        let h = w.insert(SimTime::from_nanos(1500), 1 << 32);
        assert!(matches!(w.cancel(h), Cancelled::Filed { .. }));
        w.insert(SimTime::from_nanos(1600), 2 << 32);
        let fired = drain_all(&mut w, SimTime::from_micros(2));
        assert_eq!(fired, vec![(SimTime::from_nanos(1600), 2 << 32)]);
    }

    #[test]
    fn node_recycling_goes_stale() {
        let mut w = Wheel::new();
        let a = w.insert(SimTime::from_micros(1), 1 << 32);
        assert!(matches!(w.cancel(a), Cancelled::Filed { .. }));
        let b = w.insert(SimTime::from_micros(1), 2 << 32);
        assert_eq!(a.node, b.node, "node recycled LIFO");
        assert!(matches!(w.cancel(a), Cancelled::Invalid));
        assert!(matches!(w.cancel(b), Cancelled::Filed { .. }));
        assert_eq!(w.node_capacity(), 1);
    }

    #[test]
    fn next_window_end_guarantees_progress() {
        let mut w = Wheel::new();
        let t = SimTime::from_millis(7);
        w.insert(t, 1 << 32);
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 32, "window-end stepping must converge");
            let end = w.next_window_end().expect("non-empty");
            assert!(end >= w.bound());
            let mut fired = Vec::new();
            w.drain_to(end, |at, ord, _, _| fired.push((at, ord)));
            if !fired.is_empty() {
                assert_eq!(fired, vec![(t, 1 << 32)]);
                break;
            }
        }
    }
}
