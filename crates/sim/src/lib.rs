//! Deterministic discrete-event simulation engine for data-center network
//! models.
//!
//! This crate is the foundation of the L2BM reproduction: a nanosecond-
//! resolution clock ([`SimTime`]), typed quantities ([`Bytes`], [`BitRate`]),
//! an indexed 4-ary-heap [`EventQueue`] (16-byte heap entries over a
//! generational event [`Slab`]) with deterministic FIFO tie-breaking, a
//! hierarchical timing wheel for cancellable timers (armed with
//! [`EventQueue::schedule_timer_at`], cancelled in O(1) via
//! [`TimerHandle`]), a [`Simulation`] driver trait, and seeded
//! random-number helpers ([`SimRng`]) with the distributions the
//! workload generators need.
//!
//! # Example
//!
//! ```
//! use dcn_sim::{EventQueue, SimDuration, SimTime, Simulation, run_until};
//!
//! struct Counter {
//!     fired: u32,
//! }
//!
//! enum Tick {
//!     Once,
//! }
//!
//! impl Simulation for Counter {
//!     type Event = Tick;
//!     fn handle(&mut self, now: SimTime, _ev: Tick, q: &mut EventQueue<Tick>) {
//!         self.fired += 1;
//!         if self.fired < 3 {
//!             q.schedule_after(now, SimDuration::from_micros(10), Tick::Once);
//!         }
//!     }
//! }
//!
//! let mut sim = Counter { fired: 0 };
//! let mut q = EventQueue::new();
//! q.schedule_at(SimTime::ZERO, Tick::Once);
//! run_until(&mut sim, &mut q, SimTime::from_millis(1));
//! assert_eq!(sim.fired, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod barrier;
mod event;
mod fault;
mod par;
mod rng;
mod slab;
mod stamp;
mod time;
mod trace;
mod units;
mod wheel;

pub use barrier::SpinBarrier;
pub use event::{run_until, run_while, EventQueue, QueueStats, Simulation};
pub use fault::{FaultEvent, FaultSchedule, ScheduledFault};
pub use par::{default_jobs, effective_jobs, par_map};
pub use rng::{EmpiricalCdf, SimRng};
pub use slab::{Slab, SlotHandle};
pub use stamp::{ambiguous_comparisons, ShardStats, Stamp, StampKey, STAMP_DEPTH};
pub use time::{SimDuration, SimTime};
pub use trace::{
    summarize_flow, FlightRecorder, TraceConfig, TraceDropCause, TraceEvent, TraceHandle,
    TraceRecord, TraceTotals,
};
pub use units::{BitRate, Bytes};
pub use wheel::TimerHandle;
