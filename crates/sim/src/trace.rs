//! Deterministic flight recorder: a zero-cost-when-disabled tracing
//! layer that records typed packet/transport lifecycle events into a
//! bounded ring buffer for offline "why did flow X stall / packet Y
//! drop" analysis.
//!
//! The recorder is deliberately defined on plain integer identifiers
//! (`u64` flow ids, `u32` node ids, `u16` ports, `u8` priorities) so it
//! can live in the dependency-free base crate and be shared by every
//! layer above it — switches record admission/ECN/PFC edges, the fabric
//! records transport state transitions, and the `trace` binary dumps
//! everything as JSONL.
//!
//! Cost model: call sites hold a [`TraceHandle`], which is a thin
//! `Option` around a shared recorder. When tracing is disabled the
//! handle is `None` and [`TraceHandle::record_with`] is a single branch
//! — the event itself is never constructed (it is built inside a
//! closure evaluated only when enabled), keeping the hot path within
//! noise of an untraced build.
//!
//! Besides the (evictable) ring, the recorder keeps small aggregate
//! counters (drops by cause, PFC pause/resume edges, RTO fires) that
//! are never evicted, so reconciliation against the switch-side
//! `DropCounters`/`PfcCounters` stays exact even if the ring wraps.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::time::SimTime;

/// Why a packet was dropped at a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceDropCause {
    /// A lossy packet exceeded its ingress-queue admission threshold.
    AdmissionDeniedIngress,
    /// A lossy packet exceeded the egress-queue dynamic threshold.
    AdmissionDeniedEgress,
    /// A lossless packet found both shared space and headroom exhausted.
    HeadroomExhausted,
    /// The packet was on the wire (or queued to the egress) of a link
    /// that went down before delivery.
    LinkDown,
    /// The switch had no live next hop towards the destination (every
    /// candidate port's link is down).
    NoRoute,
    /// The packet was corrupted in flight by an injected bit-error-rate
    /// fault and discarded at the receiver.
    Corrupted,
    /// The packet was already enqueued but was preemptively evicted by
    /// the buffer policy to admit a higher-value arrival (Occamy-style
    /// preemption). Only lossy packets are ever evicted.
    Evicted,
}

impl TraceDropCause {
    /// Stable machine-readable name (used in JSONL and summaries).
    pub const fn name(self) -> &'static str {
        match self {
            TraceDropCause::AdmissionDeniedIngress => "admission_denied_ingress",
            TraceDropCause::AdmissionDeniedEgress => "admission_denied_egress",
            TraceDropCause::HeadroomExhausted => "headroom_exhausted",
            TraceDropCause::LinkDown => "link_down",
            TraceDropCause::NoRoute => "no_route",
            TraceDropCause::Corrupted => "corrupted",
            TraceDropCause::Evicted => "evicted",
        }
    }
}

/// One typed lifecycle event. Queue-scoped events carry `(node, port,
/// prio)`; transport events carry only the flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A packet was admitted into an egress queue of a switch.
    Enqueue {
        /// Switch node id.
        node: u32,
        /// Arrival port.
        in_port: u16,
        /// Egress port the packet was queued on.
        out_port: u16,
        /// 802.1p priority.
        prio: u8,
        /// Flow id.
        flow: u64,
        /// Byte offset within the flow (0 for ACK/CNP).
        seq: u64,
        /// Wire size in bytes.
        size: u64,
    },
    /// A packet finished serializing out of a switch port.
    Dequeue {
        /// Switch node id.
        node: u32,
        /// Transmitting egress port.
        port: u16,
        /// 802.1p priority.
        prio: u8,
        /// Flow id.
        flow: u64,
        /// Byte offset within the flow.
        seq: u64,
        /// Wire size in bytes.
        size: u64,
    },
    /// A packet was rejected at admission, with the cause.
    Drop {
        /// Switch node id.
        node: u32,
        /// Arrival port.
        in_port: u16,
        /// 802.1p priority.
        prio: u8,
        /// Flow id.
        flow: u64,
        /// Byte offset within the flow.
        seq: u64,
        /// Wire size in bytes.
        size: u64,
        /// Whether the packet belonged to the lossless class.
        lossless: bool,
        /// Why admission refused it.
        cause: TraceDropCause,
    },
    /// The switch set the CE codepoint on a packet.
    EcnMark {
        /// Switch node id.
        node: u32,
        /// Egress port of the marked packet.
        port: u16,
        /// 802.1p priority.
        prio: u8,
        /// Flow id.
        flow: u64,
        /// Byte offset within the flow.
        seq: u64,
        /// Egress queue depth (bytes, after enqueue) that triggered it.
        queue_depth: u64,
    },
    /// The switch emitted a PFC XOFF for an ingress queue (pause edge).
    PfcPause {
        /// Switch node id.
        node: u32,
        /// Ingress port whose upstream neighbour is paused.
        port: u16,
        /// Paused priority.
        prio: u8,
    },
    /// The switch emitted a PFC XON (resume edge).
    PfcResume {
        /// Switch node id.
        node: u32,
        /// Ingress port whose upstream neighbour resumes.
        port: u16,
        /// Resumed priority.
        prio: u8,
    },
    /// A DCTCP sender's congestion window after processing an ACK.
    TcpCwnd {
        /// Flow id.
        flow: u64,
        /// Congestion window, bytes (rounded down).
        cwnd: u64,
        /// Slow-start threshold, bytes (`u64::MAX` when unset).
        ssthresh: u64,
        /// Whether the sender is in fast recovery.
        in_recovery: bool,
    },
    /// A DCTCP sender entered fast recovery (third dup-ACK).
    TcpEnterRecovery {
        /// Flow id.
        flow: u64,
        /// `snd_nxt` at entry; recovery ends when cumulatively acked.
        recover_seq: u64,
    },
    /// A partial ACK inside recovery triggered a hole retransmit.
    TcpPartialAckRetransmit {
        /// Flow id.
        flow: u64,
        /// The hole being retransmitted (the new `snd_una`).
        snd_una: u64,
    },
    /// A DCTCP sender left fast recovery (full window acked).
    TcpExitRecovery {
        /// Flow id.
        flow: u64,
    },
    /// A retransmission timeout fired (not stale).
    RtoFire {
        /// Flow id.
        flow: u64,
        /// Consecutive-timeout count after this fire (1 = first).
        backoff: u32,
        /// The RTO that will arm next, nanoseconds (post-backoff).
        next_rto_ns: u64,
    },
    /// A DCQCN sender's current rate after a CNP or timer event.
    RdmaRate {
        /// Flow id.
        flow: u64,
        /// Sending rate, bits per second.
        rate_bps: u64,
    },
    /// A DCQCN sender with payload outstanding has no scheduled pacing
    /// event — a stall that must never happen (defensive).
    RdmaStranded {
        /// Flow id.
        flow: u64,
        /// Next unsent byte offset.
        snd_nxt: u64,
    },
    /// The PFC storm watchdog force-resumed an egress queue whose pause
    /// exceeded the configured threshold (mirrors real ASIC watchdogs).
    PfcWatchdogFired {
        /// Switch node id whose egress queue was force-resumed.
        node: u32,
        /// The egress port that was stuck paused.
        port: u16,
        /// The priority that was stuck paused.
        prio: u8,
    },
    /// An IRN NACK was generated for a lossy-RDMA sequence gap — by a
    /// switch observing an out-of-order transit, or by the receiver.
    IrnNack {
        /// Flow id.
        flow: u64,
        /// First byte of the gap being NACKed.
        nack_seq: u64,
        /// Node that generated the NACK.
        node: u32,
        /// `true` when a switch generated it, `false` for the receiver.
        from_switch: bool,
    },
    /// An IRN sender retransmitted a data segment (seq below its
    /// first-transmission high-water mark) in response to a NACK or RTO.
    IrnRetransmit {
        /// Flow id.
        flow: u64,
        /// Byte offset of the retransmitted segment.
        seq: u64,
    },
    /// The flow liveness watchdog found an RDMA flow with unfinished
    /// payload and no receiver progress over a whole watchdog interval.
    FlowStalled {
        /// Flow id.
        flow: u64,
        /// In-order bytes received when the stall was flagged.
        received: u64,
    },
    /// An internal inconsistency was detected and survived (instead of
    /// panicking): an unattached link lookup, an unexpected packet kind,
    /// etc. Must stay zero in healthy runs; under injected faults it
    /// records the blast radius without aborting the sweep worker.
    Defect {
        /// Stable machine-readable description of the defect.
        what: &'static str,
        /// Node where it was detected.
        node: u32,
        /// Flow involved (0 if none).
        flow: u64,
    },
}

impl TraceEvent {
    /// Stable machine-readable event kind (the JSONL `ev` field).
    pub const fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Enqueue { .. } => "enqueue",
            TraceEvent::Dequeue { .. } => "dequeue",
            TraceEvent::Drop { .. } => "drop",
            TraceEvent::EcnMark { .. } => "ecn_mark",
            TraceEvent::PfcPause { .. } => "pfc_pause",
            TraceEvent::PfcResume { .. } => "pfc_resume",
            TraceEvent::TcpCwnd { .. } => "tcp_cwnd",
            TraceEvent::TcpEnterRecovery { .. } => "tcp_enter_recovery",
            TraceEvent::TcpPartialAckRetransmit { .. } => "tcp_partial_ack_rtx",
            TraceEvent::TcpExitRecovery { .. } => "tcp_exit_recovery",
            TraceEvent::RtoFire { .. } => "rto_fire",
            TraceEvent::RdmaRate { .. } => "rdma_rate",
            TraceEvent::RdmaStranded { .. } => "rdma_stranded",
            TraceEvent::PfcWatchdogFired { .. } => "pfc_watchdog_fired",
            TraceEvent::IrnNack { .. } => "irn_nack",
            TraceEvent::IrnRetransmit { .. } => "irn_retransmit",
            TraceEvent::FlowStalled { .. } => "flow_stalled",
            TraceEvent::Defect { .. } => "defect",
        }
    }

    /// The flow this event belongs to, if it is flow-scoped.
    pub const fn flow(&self) -> Option<u64> {
        match *self {
            TraceEvent::Enqueue { flow, .. }
            | TraceEvent::Dequeue { flow, .. }
            | TraceEvent::Drop { flow, .. }
            | TraceEvent::EcnMark { flow, .. }
            | TraceEvent::TcpCwnd { flow, .. }
            | TraceEvent::TcpEnterRecovery { flow, .. }
            | TraceEvent::TcpPartialAckRetransmit { flow, .. }
            | TraceEvent::TcpExitRecovery { flow, .. }
            | TraceEvent::RtoFire { flow, .. }
            | TraceEvent::RdmaRate { flow, .. }
            | TraceEvent::RdmaStranded { flow, .. }
            | TraceEvent::IrnNack { flow, .. }
            | TraceEvent::IrnRetransmit { flow, .. }
            | TraceEvent::FlowStalled { flow, .. } => Some(flow),
            // PFC edges, watchdog fires and defects are diagnostics, not
            // flow-scoped — they always pass flow filters.
            TraceEvent::PfcPause { .. }
            | TraceEvent::PfcResume { .. }
            | TraceEvent::PfcWatchdogFired { .. }
            | TraceEvent::Defect { .. } => None,
        }
    }

    /// The `(node, port, prio)` queue this event touches, if any. For
    /// [`TraceEvent::Enqueue`] this is the *egress* queue.
    pub const fn queue(&self) -> Option<(u32, u16, u8)> {
        match *self {
            TraceEvent::Enqueue {
                node,
                out_port,
                prio,
                ..
            } => Some((node, out_port, prio)),
            TraceEvent::Dequeue {
                node, port, prio, ..
            }
            | TraceEvent::EcnMark {
                node, port, prio, ..
            }
            | TraceEvent::PfcPause { node, port, prio }
            | TraceEvent::PfcResume { node, port, prio }
            | TraceEvent::PfcWatchdogFired { node, port, prio } => Some((node, port, prio)),
            TraceEvent::Drop {
                node,
                in_port,
                prio,
                ..
            } => Some((node, in_port, prio)),
            _ => None,
        }
    }

    /// Serializes the event as one JSON object (no trailing newline).
    /// Hand-rolled like the rest of the workspace's JSON output — every
    /// field is numeric or a fixed identifier, so no escaping is needed.
    pub fn to_json(&self, at: SimTime) -> String {
        let t = at.as_nanos();
        let k = self.kind();
        match *self {
            TraceEvent::Enqueue {
                node,
                in_port,
                out_port,
                prio,
                flow,
                seq,
                size,
            } => format!(
                "{{\"t\":{t},\"ev\":\"{k}\",\"node\":{node},\"in_port\":{in_port},\
                 \"out_port\":{out_port},\"prio\":{prio},\"flow\":{flow},\"seq\":{seq},\
                 \"size\":{size}}}"
            ),
            TraceEvent::Dequeue {
                node,
                port,
                prio,
                flow,
                seq,
                size,
            } => format!(
                "{{\"t\":{t},\"ev\":\"{k}\",\"node\":{node},\"port\":{port},\"prio\":{prio},\
                 \"flow\":{flow},\"seq\":{seq},\"size\":{size}}}"
            ),
            TraceEvent::Drop {
                node,
                in_port,
                prio,
                flow,
                seq,
                size,
                lossless,
                cause,
            } => format!(
                "{{\"t\":{t},\"ev\":\"{k}\",\"node\":{node},\"in_port\":{in_port},\
                 \"prio\":{prio},\"flow\":{flow},\"seq\":{seq},\"size\":{size},\
                 \"lossless\":{lossless},\"cause\":\"{}\"}}",
                cause.name()
            ),
            TraceEvent::EcnMark {
                node,
                port,
                prio,
                flow,
                seq,
                queue_depth,
            } => format!(
                "{{\"t\":{t},\"ev\":\"{k}\",\"node\":{node},\"port\":{port},\"prio\":{prio},\
                 \"flow\":{flow},\"seq\":{seq},\"queue_depth\":{queue_depth}}}"
            ),
            TraceEvent::PfcPause { node, port, prio }
            | TraceEvent::PfcResume { node, port, prio }
            | TraceEvent::PfcWatchdogFired { node, port, prio } => {
                format!(
                    "{{\"t\":{t},\"ev\":\"{k}\",\"node\":{node},\"port\":{port},\"prio\":{prio}}}"
                )
            }
            TraceEvent::Defect { what, node, flow } => format!(
                "{{\"t\":{t},\"ev\":\"{k}\",\"what\":\"{what}\",\"node\":{node},\"flow\":{flow}}}"
            ),
            TraceEvent::TcpCwnd {
                flow,
                cwnd,
                ssthresh,
                in_recovery,
            } => format!(
                "{{\"t\":{t},\"ev\":\"{k}\",\"flow\":{flow},\"cwnd\":{cwnd},\
                 \"ssthresh\":{ssthresh},\"in_recovery\":{in_recovery}}}"
            ),
            TraceEvent::TcpEnterRecovery { flow, recover_seq } => format!(
                "{{\"t\":{t},\"ev\":\"{k}\",\"flow\":{flow},\"recover_seq\":{recover_seq}}}"
            ),
            TraceEvent::TcpPartialAckRetransmit { flow, snd_una } => {
                format!("{{\"t\":{t},\"ev\":\"{k}\",\"flow\":{flow},\"snd_una\":{snd_una}}}")
            }
            TraceEvent::TcpExitRecovery { flow } => {
                format!("{{\"t\":{t},\"ev\":\"{k}\",\"flow\":{flow}}}")
            }
            TraceEvent::RtoFire {
                flow,
                backoff,
                next_rto_ns,
            } => format!(
                "{{\"t\":{t},\"ev\":\"{k}\",\"flow\":{flow},\"backoff\":{backoff},\
                 \"next_rto_ns\":{next_rto_ns}}}"
            ),
            TraceEvent::RdmaRate { flow, rate_bps } => {
                format!("{{\"t\":{t},\"ev\":\"{k}\",\"flow\":{flow},\"rate_bps\":{rate_bps}}}")
            }
            TraceEvent::RdmaStranded { flow, snd_nxt } => {
                format!("{{\"t\":{t},\"ev\":\"{k}\",\"flow\":{flow},\"snd_nxt\":{snd_nxt}}}")
            }
            TraceEvent::IrnNack {
                flow,
                nack_seq,
                node,
                from_switch,
            } => format!(
                "{{\"t\":{t},\"ev\":\"{k}\",\"flow\":{flow},\"nack_seq\":{nack_seq},\
                 \"node\":{node},\"from_switch\":{from_switch}}}"
            ),
            TraceEvent::IrnRetransmit { flow, seq } => {
                format!("{{\"t\":{t},\"ev\":\"{k}\",\"flow\":{flow},\"seq\":{seq}}}")
            }
            TraceEvent::FlowStalled { flow, received } => {
                format!("{{\"t\":{t},\"ev\":\"{k}\",\"flow\":{flow},\"received\":{received}}}")
            }
        }
    }
}

/// A recorded event with its timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// When the event happened.
    pub at: SimTime,
    /// The event.
    pub event: TraceEvent,
}

/// Flight-recorder configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Master switch. When `false` no recorder is allocated and every
    /// record site reduces to one `Option` branch.
    pub enabled: bool,
    /// Ring-buffer bound (records). Oldest records are evicted first;
    /// aggregate counters are unaffected by eviction.
    pub capacity: usize,
    /// Record only these flows (`None` = all). Queue-scoped events with
    /// no flow (PFC edges) always pass this filter.
    pub flows: Option<Vec<u64>>,
    /// Record only these `(node, port, prio)` queues (`None` = all).
    /// Flow-scoped transport events always pass this filter.
    pub queues: Option<Vec<(u32, u16, u8)>>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            capacity: 1 << 20,
            flows: None,
            queues: None,
        }
    }
}

impl TraceConfig {
    /// An enabled recorder with default capacity and no filters.
    pub fn enabled() -> Self {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }
}

/// Aggregate counters maintained outside the ring (never evicted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceTotals {
    /// Drops recorded with cause [`TraceDropCause::AdmissionDeniedIngress`].
    pub drops_ingress: u64,
    /// Drops recorded with cause [`TraceDropCause::AdmissionDeniedEgress`].
    pub drops_egress: u64,
    /// Drops recorded with cause [`TraceDropCause::HeadroomExhausted`].
    pub drops_headroom: u64,
    /// Drops recorded with cause [`TraceDropCause::LinkDown`].
    pub drops_link_down: u64,
    /// Drops recorded with cause [`TraceDropCause::NoRoute`].
    pub drops_no_route: u64,
    /// Drops recorded with cause [`TraceDropCause::Corrupted`].
    pub drops_corrupted: u64,
    /// Drops recorded with cause [`TraceDropCause::Evicted`].
    pub drops_evicted: u64,
    /// PFC pause edges recorded.
    pub pfc_pauses: u64,
    /// PFC resume edges recorded.
    pub pfc_resumes: u64,
    /// RTO fires recorded.
    pub rto_fires: u64,
    /// Stranded-RDMA-sender events recorded (must stay zero).
    pub rdma_stranded: u64,
    /// PFC watchdog force-resumes recorded.
    pub watchdog_fires: u64,
    /// IRN NACKs generated (switch- and receiver-origin combined).
    pub irn_nacks: u64,
    /// IRN data retransmissions recorded.
    pub irn_retransmits: u64,
    /// Flow liveness-watchdog stall flags recorded.
    pub flow_stalls: u64,
    /// Defect events recorded (must stay zero in healthy runs).
    pub defects: u64,
}

impl TraceTotals {
    /// Total drops across every cause.
    pub fn drops(&self) -> u64 {
        self.drops_ingress
            + self.drops_egress
            + self.drops_headroom
            + self.drops_link_down
            + self.drops_no_route
            + self.drops_corrupted
            + self.drops_evicted
    }
}

/// The bounded ring of [`TraceRecord`]s plus aggregate totals.
#[derive(Debug)]
pub struct FlightRecorder {
    cfg: TraceConfig,
    ring: VecDeque<TraceRecord>,
    evicted: u64,
    totals: TraceTotals,
    lossless_victims: std::collections::BTreeSet<u64>,
}

impl FlightRecorder {
    /// Creates a recorder for `cfg` (which should have `enabled: true`;
    /// a disabled config still records if driven directly — gating is
    /// the [`TraceHandle`]'s job).
    pub fn new(cfg: TraceConfig) -> FlightRecorder {
        let cap = cfg.capacity.max(1);
        FlightRecorder {
            cfg,
            ring: VecDeque::with_capacity(cap.min(1 << 16)),
            evicted: 0,
            totals: TraceTotals::default(),
            lossless_victims: std::collections::BTreeSet::new(),
        }
    }

    fn passes_filters(&self, event: &TraceEvent) -> bool {
        if let Some(flows) = &self.cfg.flows {
            if let Some(f) = event.flow() {
                if !flows.contains(&f) {
                    return false;
                }
            }
        }
        if let Some(queues) = &self.cfg.queues {
            if let Some(q) = event.queue() {
                if !queues.contains(&q) {
                    return false;
                }
            }
        }
        true
    }

    /// Records one event (applying filters and the ring bound).
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if !self.passes_filters(&event) {
            return;
        }
        match event {
            TraceEvent::Drop {
                cause,
                flow,
                lossless,
                ..
            } => {
                match cause {
                    TraceDropCause::AdmissionDeniedIngress => self.totals.drops_ingress += 1,
                    TraceDropCause::AdmissionDeniedEgress => self.totals.drops_egress += 1,
                    TraceDropCause::HeadroomExhausted => self.totals.drops_headroom += 1,
                    TraceDropCause::LinkDown => self.totals.drops_link_down += 1,
                    TraceDropCause::NoRoute => self.totals.drops_no_route += 1,
                    TraceDropCause::Corrupted => self.totals.drops_corrupted += 1,
                    TraceDropCause::Evicted => self.totals.drops_evicted += 1,
                }
                if lossless {
                    self.lossless_victims.insert(flow);
                }
            }
            TraceEvent::PfcPause { .. } => self.totals.pfc_pauses += 1,
            TraceEvent::PfcResume { .. } => self.totals.pfc_resumes += 1,
            TraceEvent::RtoFire { .. } => self.totals.rto_fires += 1,
            TraceEvent::RdmaStranded { .. } => self.totals.rdma_stranded += 1,
            TraceEvent::PfcWatchdogFired { .. } => self.totals.watchdog_fires += 1,
            TraceEvent::IrnNack { .. } => self.totals.irn_nacks += 1,
            TraceEvent::IrnRetransmit { .. } => self.totals.irn_retransmits += 1,
            TraceEvent::FlowStalled { .. } => self.totals.flow_stalls += 1,
            TraceEvent::Defect { .. } => self.totals.defects += 1,
            _ => {}
        }
        if self.ring.len() == self.cfg.capacity.max(1) {
            self.ring.pop_front();
            self.evicted += 1;
        }
        self.ring.push_back(TraceRecord { at, event });
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records evicted by the ring bound so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Aggregate totals (never evicted).
    pub fn totals(&self) -> TraceTotals {
        self.totals
    }

    /// Flows that lost at least one lossless-class packet, maintained
    /// outside the ring like [`Self::totals`]. The record-scan
    /// alternative silently loses victims once the ring wraps — the
    /// chaos battery's unfinished ⊆ victims check needs the exact set
    /// regardless of run length.
    pub fn lossless_victims(&self) -> &std::collections::BTreeSet<u64> {
        &self.lossless_victims
    }

    /// The configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Dumps every retained record as JSON Lines.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.ring.len() * 96);
        for r in &self.ring {
            out.push_str(&r.event.to_json(r.at));
            out.push('\n');
        }
        out
    }

    /// A causal, human-readable account of one flow's lifecycle: drops
    /// by cause, recovery episodes, RTO fires and ECN marks, in order —
    /// the "why did flow X stall" answer used to debug the Fig. 7(b)
    /// multi-loss recovery stall.
    pub fn summarize_flow(&self, flow: u64) -> String {
        summarize_flow(self.ring.iter().copied(), flow)
    }
}

/// Summarizes the lifecycle of `flow` from any record stream (oldest
/// first). Exposed separately so offline tools can run it over a parsed
/// JSONL dump as well as over a live recorder.
pub fn summarize_flow(records: impl Iterator<Item = TraceRecord>, flow: u64) -> String {
    let mut first: Option<SimTime> = None;
    let mut last: Option<SimTime> = None;
    let mut enq = 0u64;
    let mut deq = 0u64;
    let mut marks = 0u64;
    let mut drops: Vec<(SimTime, TraceDropCause, u64)> = Vec::new();
    let mut recoveries = 0u64;
    let mut partial_rtx = 0u64;
    let mut rto_fires: Vec<(SimTime, u32)> = Vec::new();
    let mut stranded = 0u64;
    let mut recovery_open: Option<SimTime> = None;
    let mut episodes: Vec<(SimTime, Option<SimTime>, u64)> = Vec::new();

    for r in records {
        if r.event.flow() != Some(flow) {
            continue;
        }
        first.get_or_insert(r.at);
        last = Some(r.at);
        match r.event {
            TraceEvent::Enqueue { .. } => enq += 1,
            TraceEvent::Dequeue { .. } => deq += 1,
            TraceEvent::EcnMark { .. } => marks += 1,
            TraceEvent::Drop { cause, seq, .. } => drops.push((r.at, cause, seq)),
            TraceEvent::TcpEnterRecovery { .. } => {
                recoveries += 1;
                recovery_open = Some(r.at);
                episodes.push((r.at, None, 0));
            }
            TraceEvent::TcpPartialAckRetransmit { .. } => {
                partial_rtx += 1;
                if let Some(e) = episodes.last_mut() {
                    e.2 += 1;
                }
            }
            TraceEvent::TcpExitRecovery { .. } => {
                recovery_open = None;
                if let Some(e) = episodes.last_mut() {
                    e.1 = Some(r.at);
                }
            }
            TraceEvent::RtoFire { backoff, .. } => rto_fires.push((r.at, backoff)),
            TraceEvent::RdmaStranded { .. } => stranded += 1,
            _ => {}
        }
    }

    let mut out = String::new();
    let Some(first) = first else {
        out.push_str(&format!("flow {flow}: no recorded events\n"));
        return out;
    };
    out.push_str(&format!(
        "flow {flow}: {enq} enqueues, {deq} dequeues, {marks} ECN marks, {} drops, \
         {recoveries} fast-recovery episodes ({partial_rtx} partial-ACK retransmits), \
         {} RTO fires over [{first}, {}]\n",
        drops.len(),
        rto_fires.len(),
        last.unwrap_or(first),
    ));
    for (at, cause, seq) in &drops {
        out.push_str(&format!("  {at} drop seq={seq} cause={}\n", cause.name()));
    }
    for (start, end, rtx) in &episodes {
        match end {
            Some(end) => out.push_str(&format!(
                "  {start} fast recovery → exited {end} after {rtx} partial-ACK retransmit(s)\n"
            )),
            None => out.push_str(&format!(
                "  {start} fast recovery → never exited (stall candidate), \
                 {rtx} partial-ACK retransmit(s)\n"
            )),
        }
    }
    for (at, backoff) in &rto_fires {
        out.push_str(&format!("  {at} RTO fired (consecutive #{backoff})\n"));
    }
    if recovery_open.is_some() && !rto_fires.is_empty() {
        out.push_str(
            "  verdict: flow stalled in recovery and needed an RTO — multi-loss window \
             not repaired by fast retransmit\n",
        );
    } else if stranded > 0 {
        out.push_str("  verdict: RDMA sender stranded without a pacing event\n");
    } else if !rto_fires.is_empty() {
        out.push_str("  verdict: progress required RTO(s) — window too small or tail loss\n");
    } else if recoveries > 0 {
        out.push_str("  verdict: all losses repaired by fast retransmit/partial ACKs\n");
    } else if !drops.is_empty() {
        out.push_str("  verdict: drops present but repaired without entering recovery\n");
    } else {
        out.push_str("  verdict: clean run (no drops, no timeouts)\n");
    }
    out
}

/// A cheaply cloneable, possibly-disabled reference to a shared
/// [`FlightRecorder`]. Every instrumented layer holds one.
#[derive(Debug, Clone, Default)]
pub struct TraceHandle(Option<Rc<RefCell<FlightRecorder>>>);

impl TraceHandle {
    /// A handle that records nothing (the default).
    pub fn disabled() -> TraceHandle {
        TraceHandle(None)
    }

    /// Builds a handle from `cfg`: enabled configs get a live recorder,
    /// disabled ones a no-op handle.
    pub fn from_config(cfg: &TraceConfig) -> TraceHandle {
        if cfg.enabled {
            TraceHandle(Some(Rc::new(RefCell::new(FlightRecorder::new(
                cfg.clone(),
            )))))
        } else {
            TraceHandle(None)
        }
    }

    /// Whether a recorder is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records the event produced by `f`. When disabled this is a
    /// single branch and `f` is never called, so event construction
    /// costs nothing on the hot path.
    #[inline]
    pub fn record_with(&self, at: SimTime, f: impl FnOnce() -> TraceEvent) {
        if let Some(rec) = &self.0 {
            rec.borrow_mut().record(at, f());
        }
    }

    /// Runs `f` against the recorder, if one is attached.
    pub fn with<R>(&self, f: impl FnOnce(&FlightRecorder) -> R) -> Option<R> {
        self.0.as_ref().map(|rec| f(&rec.borrow()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enq(flow: u64, node: u32) -> TraceEvent {
        TraceEvent::Enqueue {
            node,
            in_port: 0,
            out_port: 1,
            prio: 3,
            flow,
            seq: 0,
            size: 1_048,
        }
    }

    #[test]
    fn disabled_handle_records_nothing_and_skips_construction() {
        let h = TraceHandle::disabled();
        let mut constructed = false;
        h.record_with(SimTime::ZERO, || {
            constructed = true;
            enq(1, 0)
        });
        assert!(!constructed, "closure must not run when disabled");
        assert!(h.with(|r| r.len()).is_none());
    }

    #[test]
    fn from_config_respects_enabled_flag() {
        assert!(!TraceHandle::from_config(&TraceConfig::default()).is_enabled());
        assert!(TraceHandle::from_config(&TraceConfig::enabled()).is_enabled());
    }

    #[test]
    fn ring_bound_evicts_oldest_but_keeps_totals() {
        let mut rec = FlightRecorder::new(TraceConfig {
            enabled: true,
            capacity: 2,
            flows: None,
            queues: None,
        });
        for i in 0..5 {
            rec.record(
                SimTime::from_nanos(i),
                TraceEvent::PfcPause {
                    node: 0,
                    port: 0,
                    prio: 3,
                },
            );
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.evicted(), 3);
        assert_eq!(rec.totals().pfc_pauses, 5, "totals survive eviction");
        let first_retained = rec.records().next().unwrap().at;
        assert_eq!(first_retained, SimTime::from_nanos(3));
    }

    #[test]
    fn flow_filter_drops_other_flows_but_keeps_queue_events() {
        let mut rec = FlightRecorder::new(TraceConfig {
            enabled: true,
            capacity: 100,
            flows: Some(vec![7]),
            queues: None,
        });
        rec.record(SimTime::ZERO, enq(7, 0));
        rec.record(SimTime::ZERO, enq(8, 0));
        rec.record(
            SimTime::ZERO,
            TraceEvent::PfcPause {
                node: 0,
                port: 0,
                prio: 3,
            },
        );
        assert_eq!(rec.len(), 2, "flow 8 filtered; PFC edge passes");
    }

    #[test]
    fn queue_filter_matches_tuple() {
        let mut rec = FlightRecorder::new(TraceConfig {
            enabled: true,
            capacity: 100,
            flows: None,
            queues: Some(vec![(0, 1, 3)]),
        });
        rec.record(SimTime::ZERO, enq(1, 0)); // egress queue (0,1,3) — kept
        rec.record(SimTime::ZERO, enq(1, 9)); // node 9 — filtered
        rec.record(
            SimTime::ZERO,
            TraceEvent::TcpExitRecovery { flow: 1 }, // no queue — kept
        );
        assert_eq!(rec.len(), 2);
    }

    #[test]
    fn lossless_victim_set_survives_ring_wrap() {
        let mut rec = FlightRecorder::new(TraceConfig {
            enabled: true,
            capacity: 4,
            flows: None,
            queues: None,
        });
        rec.record(
            SimTime::ZERO,
            TraceEvent::Drop {
                node: 0,
                in_port: 0,
                prio: 3,
                flow: 7,
                seq: 0,
                size: 1_048,
                lossless: true,
                cause: TraceDropCause::LinkDown,
            },
        );
        // Flood the ring until the drop record is long gone.
        for i in 0..32 {
            rec.record(SimTime::from_nanos(i), enq(1, i as u32));
        }
        assert!(rec.evicted() > 0, "the wrap must actually happen");
        assert!(
            rec.records()
                .all(|r| !matches!(r.event, TraceEvent::Drop { .. })),
            "the drop record itself must be evicted for this test to bite"
        );
        assert_eq!(
            rec.lossless_victims().iter().copied().collect::<Vec<u64>>(),
            [7],
            "the aggregate victim set must outlive the ring"
        );
        assert_eq!(rec.totals().drops_link_down, 1);
    }

    #[test]
    fn jsonl_lines_are_valid_objects() {
        let mut rec = FlightRecorder::new(TraceConfig::enabled());
        rec.record(SimTime::from_nanos(5), enq(1, 2));
        rec.record(
            SimTime::from_nanos(6),
            TraceEvent::Drop {
                node: 2,
                in_port: 0,
                prio: 1,
                flow: 1,
                seq: 1_000,
                size: 1_048,
                lossless: false,
                cause: TraceDropCause::AdmissionDeniedEgress,
            },
        );
        let dump = rec.to_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"t\":"));
            assert!(line.contains("\"ev\":"));
        }
        assert!(lines[1].contains("\"cause\":\"admission_denied_egress\""));
    }

    #[test]
    fn summarizer_explains_multi_loss_stall() {
        let mut rec = FlightRecorder::new(TraceConfig::enabled());
        let f = 42;
        rec.record(
            SimTime::from_micros(1),
            TraceEvent::Drop {
                node: 0,
                in_port: 0,
                prio: 1,
                flow: f,
                seq: 0,
                size: 1_048,
                lossless: false,
                cause: TraceDropCause::AdmissionDeniedIngress,
            },
        );
        rec.record(
            SimTime::from_micros(2),
            TraceEvent::TcpEnterRecovery {
                flow: f,
                recover_seq: 10_000,
            },
        );
        rec.record(
            SimTime::from_micros(3),
            TraceEvent::TcpPartialAckRetransmit {
                flow: f,
                snd_una: 2_000,
            },
        );
        rec.record(
            SimTime::from_micros(4),
            TraceEvent::TcpExitRecovery { flow: f },
        );
        let s = rec.summarize_flow(f);
        assert!(s.contains("1 fast-recovery episodes"), "{s}");
        assert!(s.contains("1 partial-ACK retransmits"), "{s}");
        assert!(s.contains("all losses repaired by fast retransmit"), "{s}");

        // A stalled variant: recovery entered, never exited, RTO fired.
        let mut rec2 = FlightRecorder::new(TraceConfig::enabled());
        rec2.record(
            SimTime::from_micros(2),
            TraceEvent::TcpEnterRecovery {
                flow: f,
                recover_seq: 10_000,
            },
        );
        rec2.record(
            SimTime::from_micros(9),
            TraceEvent::RtoFire {
                flow: f,
                backoff: 1,
                next_rto_ns: 4_000_000,
            },
        );
        let s2 = rec2.summarize_flow(f);
        assert!(s2.contains("stalled in recovery"), "{s2}");
        assert_eq!(rec2.totals().rto_fires, 1);
    }

    #[test]
    fn fault_events_count_into_totals_and_serialize() {
        let mut rec = FlightRecorder::new(TraceConfig {
            enabled: true,
            capacity: 100,
            flows: Some(vec![7]), // diagnostics must pass flow filters
            queues: None,
        });
        for cause in [
            TraceDropCause::LinkDown,
            TraceDropCause::NoRoute,
            TraceDropCause::Corrupted,
        ] {
            rec.record(
                SimTime::from_nanos(1),
                TraceEvent::Drop {
                    node: 3,
                    in_port: 1,
                    prio: 3,
                    flow: 7,
                    seq: 0,
                    size: 1_048,
                    lossless: true,
                    cause,
                },
            );
        }
        rec.record(
            SimTime::from_nanos(2),
            TraceEvent::PfcWatchdogFired {
                node: 3,
                port: 1,
                prio: 3,
            },
        );
        rec.record(
            SimTime::from_nanos(3),
            TraceEvent::Defect {
                what: "unattached_link",
                node: 3,
                flow: 0,
            },
        );
        let t = rec.totals();
        assert_eq!(t.drops_link_down, 1);
        assert_eq!(t.drops_no_route, 1);
        assert_eq!(t.drops_corrupted, 1);
        assert_eq!(t.drops(), 3, "fault causes join the drop total");
        assert_eq!(t.watchdog_fires, 1);
        assert_eq!(t.defects, 1);
        let dump = rec.to_jsonl();
        assert!(dump.contains("\"cause\":\"link_down\""), "{dump}");
        assert!(dump.contains("\"cause\":\"no_route\""), "{dump}");
        assert!(dump.contains("\"cause\":\"corrupted\""), "{dump}");
        assert!(dump.contains("\"ev\":\"pfc_watchdog_fired\""), "{dump}");
        assert!(dump.contains("\"what\":\"unattached_link\""), "{dump}");
        assert_eq!(
            TraceEvent::PfcWatchdogFired {
                node: 3,
                port: 1,
                prio: 3
            }
            .queue(),
            Some((3, 1, 3))
        );
    }

    #[test]
    fn irn_events_count_into_totals_and_serialize() {
        let mut rec = FlightRecorder::new(TraceConfig::enabled());
        rec.record(
            SimTime::from_nanos(1),
            TraceEvent::IrnNack {
                flow: 7,
                nack_seq: 3_000,
                node: 2,
                from_switch: true,
            },
        );
        rec.record(
            SimTime::from_nanos(2),
            TraceEvent::IrnNack {
                flow: 7,
                nack_seq: 3_000,
                node: 9,
                from_switch: false,
            },
        );
        rec.record(
            SimTime::from_nanos(3),
            TraceEvent::IrnRetransmit {
                flow: 7,
                seq: 3_000,
            },
        );
        rec.record(
            SimTime::from_nanos(4),
            TraceEvent::FlowStalled {
                flow: 8,
                received: 12_000,
            },
        );
        let t = rec.totals();
        assert_eq!(t.irn_nacks, 2);
        assert_eq!(t.irn_retransmits, 1);
        assert_eq!(t.flow_stalls, 1);
        let dump = rec.to_jsonl();
        assert!(dump.contains("\"ev\":\"irn_nack\""), "{dump}");
        assert!(dump.contains("\"from_switch\":true"), "{dump}");
        assert!(dump.contains("\"ev\":\"irn_retransmit\""), "{dump}");
        assert!(dump.contains("\"ev\":\"flow_stalled\""), "{dump}");
        assert_eq!(
            TraceEvent::IrnRetransmit { flow: 7, seq: 0 }.flow(),
            Some(7),
            "IRN events are flow-scoped"
        );
    }

    #[test]
    fn summarizer_handles_unknown_flow() {
        let rec = FlightRecorder::new(TraceConfig::enabled());
        assert!(rec.summarize_flow(9).contains("no recorded events"));
    }
}
