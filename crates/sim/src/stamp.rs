//! Admission stamps: a shard-invariant total order over simultaneous
//! events.
//!
//! The serial engine breaks ties between events scheduled for the same
//! nanosecond by *insertion order* (a global sequence number). A
//! spatially sharded run has no global insertion counter, so it needs a
//! tie-break that (a) every shard can compute locally and (b) reproduces
//! the serial insertion order exactly — otherwise digests diverge.
//!
//! A [`Stamp`] captures the event's *admission lineage*: the admission
//! time and per-pop emission index of the event itself and of its most
//! recent ancestors (leaf first), terminated by the setup-time root
//! ordinal of the chain. Because the model schedules no zero-delay
//! events, an event's admission time is strictly before its fire time,
//! and the serial insertion order of two simultaneous events is exactly:
//!
//! 1. the earlier *admission time* wins (leaf level first; if those tie,
//!    the parents' admission times, and so on);
//! 2. if every compared admission time ties and one chain reaches its
//!    setup root first, that chain wins (setup admissions precede every
//!    runtime admission);
//! 3. if both chains reach roots, the smaller root ordinal wins;
//! 4. identical roots and times mean the chains share every ancestor
//!    pop, so the outermost (root-most) diverging emission index `k`
//!    decides — the order the shared ancestor emitted them.
//!
//! Chains are stored **run-length compressed**: consecutive levels
//! with the same emission index and a constant admission-time step
//! collapse into one arithmetic run `(t_leaf, step, k, n)`. This is
//! what makes the order exact in practice — the model's dominant deep
//! chains are *periodic* (a saturated link's back-to-back dequeue
//! chain ticks every serialization time; a paced sender ticks every
//! packet time), so a thousand-generation phase-locked run costs one
//! slot and the decisive pre-lock divergence stays visible in the
//! remaining slots. Plain depth-bounded storage provably cannot order
//! such chains: two links phase-locked for longer than any fixed depth
//! have identical recent levels all the way down.
//!
//! When a chain exceeds [`STAMP_DEPTH`] *runs*, root-most runs fold
//! into a lineage hash. Two truncated chains whose stored runs tie and
//! whose hashes are *equal* have identical dropped histories, so the
//! comparison passes through the dropped region exactly and decides by
//! root ordinal. Only truncated chains with tied stored levels and
//! *differing* hashes are *ambiguous*: the decisive divergence lies in
//! the dropped region where the hash cannot locate it. Those fall back
//! to hash order (deterministic and shard-invariant, but not provably
//! the serial order) and are counted so tests can assert the fallback
//! never fired.

use std::cmp::Ordering;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use crate::time::SimTime;

/// Ancestor *runs* kept per stamp (each run compresses an arbitrarily
/// long arithmetic stretch of admissions). Deep enough that two
/// distinct lineages would need this many consecutive identical
/// admission-time *regimes* before the comparison goes ambiguous.
pub const STAMP_DEPTH: usize = 8;

/// Ambiguous stamp comparisons (truncated chains that could not be
/// ordered exactly) across the process. Exposed per run through shard
/// statistics; asserted zero by the determinism tests.
static AMBIGUOUS: AtomicU64 = AtomicU64::new(0);

/// Total ambiguous stamp comparisons observed process-wide so far.
pub fn ambiguous_comparisons() -> u64 {
    AMBIGUOUS.load(AtomicOrdering::Relaxed)
}

/// One run of admission levels: `n` consecutive admissions with the
/// same emission index `k`, at times `t_leaf, t_leaf - step, …,
/// t_leaf - (n-1)·step` (leaf-most first). A run with `n == 1` has an
/// undefined `step` (stored 0). The index `k` packs `(lane << 16) | n`
/// (see [`Stamp::lane_k`]): lanes keep emission indices comparable when
/// a replicated pop (fault application) runs a different subset of its
/// emissions on each shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Run {
    /// Admission time of the run's leaf-most (latest) level, ns.
    t: u64,
    /// Spacing between consecutive admissions; 0 when `n == 1`.
    step: u64,
    /// The shared emission index.
    k: u32,
    /// Number of levels in the run (≥ 1 for live runs).
    n: u32,
}

const EMPTY_RUN: Run = Run {
    t: 0,
    step: 0,
    k: 0,
    n: 0,
};

/// A shard-invariant admission lineage; see the module docs for the
/// total order it induces. Plain `Copy` data so handoffs can carry it
/// across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamp {
    /// Live runs, leaf (most recent admissions) first.
    runs: [Run; STAMP_DEPTH],
    /// Number of live runs. `nruns < STAMP_DEPTH` means the chain ends
    /// at its setup root; `nruns == STAMP_DEPTH` with `truncated` means
    /// root-side runs were dropped.
    nruns: u8,
    /// Whether root-side runs were dropped to fit `STAMP_DEPTH`.
    truncated: bool,
    /// Total stored levels (sum of the runs' `n`).
    len: u32,
    /// Setup-admission ordinal of the chain's root. Meaningful even
    /// when `truncated`: truncation drops intermediate runs, never the
    /// root identity, so two lockstep chains with identical
    /// (hash-verified) dropped histories still order by their roots.
    root: u32,
    /// Order-preserving-ish fallback for ambiguous comparisons: a hash
    /// folding in every run ever dropped by truncation. Deterministic
    /// per lineage, hence shard-invariant.
    overflow: u64,
}

impl Stamp {
    /// The stamp of an event admitted during setup (before the first
    /// pop), ordered by `ordinal`.
    pub fn root(ordinal: u32) -> Stamp {
        Stamp {
            runs: [EMPTY_RUN; STAMP_DEPTH],
            nruns: 0,
            truncated: false,
            len: 0,
            root: ordinal,
            overflow: 0,
        }
    }

    /// The stamp of an event admitted at `at` as the `k`-th emission of
    /// the pop whose own stamp is `self`.
    pub fn child(&self, at: SimTime, k: u32) -> Stamp {
        let mut s = *self;
        let at = at.as_nanos();
        if s.nruns > 0 {
            let r = &mut s.runs[0];
            // Extend the leaf run when the emission index matches and
            // the admission keeps (or establishes) its arithmetic step.
            // The model schedules no zero-delay events, so `at` is
            // strictly past the previous admission.
            if r.k == k && r.n < u32::MAX && at > r.t && (r.n == 1 || at - r.t == r.step) {
                r.step = at - r.t;
                r.t = at;
                r.n += 1;
                s.len += 1;
                return s;
            }
        }
        if (s.nruns as usize) == STAMP_DEPTH {
            // Drop the root-most run into the overflow hash.
            let d = s.runs[STAMP_DEPTH - 1];
            s.overflow = fnv_fold(
                fnv_fold(
                    fnv_fold(fnv_fold(s.overflow.max(1), d.t), d.step),
                    u64::from(d.k),
                ),
                u64::from(d.n),
            );
            s.truncated = true;
            s.len -= d.n;
            s.runs.copy_within(0..STAMP_DEPTH - 1, 1);
        } else {
            s.runs.copy_within(0..s.nruns as usize, 1);
            s.nruns += 1;
        }
        s.runs[0] = Run {
            t: at,
            step: 0,
            k,
            n: 1,
        };
        s.len += 1;
        s
    }

    /// Compares two stamps of *simultaneous* events, reproducing the
    /// serial engine's insertion-order tie-break (module docs).
    pub fn order(&self, other: &Stamp) -> Ordering {
        let (a, b) = (self, other);
        // Phase 1: admission times, leaf-first. The first level whose
        // times differ decides; aligned runs (same step) skip their
        // whole overlap at once, so phase-locked periodic chains cost
        // O(runs), not O(levels).
        let mut left = a.len.min(b.len);
        let (mut ca, mut cb) = (LevelCursor::new(a), LevelCursor::new(b));
        while left > 0 {
            let (ta, tb) = (ca.time(), cb.time());
            if ta != tb {
                return ta.cmp(&tb);
            }
            let (ra, rb) = (ca.left_in_run(), cb.left_in_run());
            let m = if ra > 1 && rb > 1 && ca.step() == cb.step() {
                ra.min(rb).min(left)
            } else {
                1
            };
            ca.advance(m);
            cb.advance(m);
            left -= m;
        }
        // All compared admission times equal.
        if a.len != b.len {
            let (short, long) = if a.len < b.len { (a, b) } else { (b, a) };
            if !short.truncated {
                // The shorter chain reaches its setup root at a depth
                // where the longer still has a runtime admission;
                // setup precedes every runtime admission.
                return a.len.cmp(&b.len);
            }
            // The shorter chain truncated while the longer one stored
            // more (its leaf-side runs compressed better). If the
            // longer chain's region beyond the comparison window folds
            // to the same hash as the shorter one's dropped region,
            // the two histories are identical beyond the window —
            // shared ancestry, same grouping, same total depth — and
            // the comparison proceeds exactly: root ordinal, then the
            // outermost diverging emission index inside the window.
            match beyond_hash(long, long.len - short.len) {
                Some(h) if h == short.overflow => {
                    if a.root != b.root {
                        return a.root.cmp(&b.root);
                    }
                    return k_scan(a, b, short.len);
                }
                // Different histories (or the window cuts inside one
                // of the longer chain's runs, which identical
                // histories cannot do): the decisive divergence is in
                // the shorter chain's dropped region — undecidable.
                _ => return ambiguous(a, b),
            }
        }
        match (a.truncated, b.truncated) {
            (false, false) => {
                if a.root != b.root {
                    return a.root.cmp(&b.root);
                }
            }
            (true, true) => {
                if a.overflow != b.overflow {
                    // The dropped histories differ somewhere, and any
                    // divergence there (admission time or emission
                    // index) outranks every stored emission index. The
                    // hash cannot locate it: genuinely ambiguous.
                    return ambiguous(a, b);
                }
                // Equal overflow hashes: the dropped run sequences are
                // identical, so the serial recursion passes straight
                // through the dropped region and bottoms out at the
                // roots. This is the lockstep case — e.g. symmetric
                // incast responders paced at identical rates — and it
                // is exact: the smaller setup root admitted first.
                if a.root != b.root {
                    return a.root.cmp(&b.root);
                }
                // Same root and identical dropped history: the
                // outermost diverging emission index lies in the
                // stored region — fall through to the scan below.
            }
            // A full untruncated chain vs a truncated one of equal
            // length with equal times: the untruncated chain's deepest
            // level is its root-adjacent admission, the truncated one
            // has more history — the untruncated (setup-rooted sooner)
            // chain is earlier.
            (false, true) => return Ordering::Less,
            (true, false) => return Ordering::Greater,
        }
        // Same root and shared ancestry where compared: the outermost
        // (root-most) diverging emission index decides.
        k_scan(a, b, a.len)
    }

    /// Packs a lane and an in-lane emission index into the `k` value
    /// carried by a level: lanes order emissions of replicated pops that
    /// run different subsets per shard.
    pub fn lane_k(lane: u16, n: u32) -> u32 {
        (u32::from(lane) << 16) | (n & 0xFFFF)
    }
}

/// Leaf-first walker over a stamp's stored admission levels.
struct LevelCursor<'a> {
    runs: &'a [Run; STAMP_DEPTH],
    slot: usize,
    off: u32,
}

impl<'a> LevelCursor<'a> {
    fn new(s: &'a Stamp) -> Self {
        LevelCursor {
            runs: &s.runs,
            slot: 0,
            off: 0,
        }
    }

    /// Admission time of the current level.
    fn time(&self) -> u64 {
        let r = &self.runs[self.slot];
        r.t - u64::from(self.off) * r.step
    }

    /// The current run's step (only meaningful while `left_in_run() > 1`).
    fn step(&self) -> u64 {
        self.runs[self.slot].step
    }

    /// Levels left in the current run, including the current one.
    fn left_in_run(&self) -> u32 {
        self.runs[self.slot].n - self.off
    }

    /// Moves `m ≤ left_in_run()` levels rootward. The cursor may end up
    /// one-past-the-last level; callers bound iteration by `len`.
    fn advance(&mut self, m: u32) {
        self.off += m;
        if self.off >= self.runs[self.slot].n {
            self.slot += 1;
            self.off = 0;
        }
    }
}

/// Folds the `beyond` root-most stored levels of `long` (and its own
/// dropped history) exactly as truncation would have folded them, so a
/// shorter chain's `overflow` can be checked against the longer chain's
/// known history. Returns `None` when the window boundary cuts inside
/// one of `long`'s runs — identical histories share their inherited run
/// grouping, so a straddle proves the histories differ.
fn beyond_hash(long: &Stamp, beyond: u32) -> Option<u64> {
    let mut h = long.overflow.max(1);
    let mut left = beyond;
    let mut i = long.nruns as usize;
    while left > 0 {
        i -= 1;
        let r = long.runs[i];
        if r.n > left {
            return None;
        }
        h = fnv_fold(
            fnv_fold(fnv_fold(fnv_fold(h, r.t), r.step), u64::from(r.k)),
            u64::from(r.n),
        );
        left -= r.n;
    }
    Some(h)
}

/// Compares the outermost (root-most) diverging emission index over the
/// leaf-most `window` levels of each chain, root-first. Everything
/// root-ward of the window is known to tie. Runs may be grouped
/// differently when the chains differ only in emission indices, so the
/// walk is element-wise with run-sized skips.
fn k_scan(a: &Stamp, b: &Stamp, window: u32) -> Ordering {
    let (mut ia, mut rema) = skip_rootmost(a, a.len - window);
    let (mut ib, mut remb) = skip_rootmost(b, b.len - window);
    let mut left = window;
    while left > 0 {
        if rema == 0 {
            ia -= 1;
            rema = a.runs[ia].n;
        }
        if remb == 0 {
            ib -= 1;
            remb = b.runs[ib].n;
        }
        match a.runs[ia].k.cmp(&b.runs[ib].k) {
            Ordering::Equal => {}
            ne => return ne,
        }
        let m = rema.min(remb).min(left);
        rema -= m;
        remb -= m;
        left -= m;
    }
    // Fully identical lineage (times, emission indices, root and any
    // dropped history): the same event.
    Ordering::Equal
}

/// Positions a root-first walk past the `skip` root-most stored levels:
/// returns the slot index to resume above and the levels left in it.
fn skip_rootmost(s: &Stamp, mut skip: u32) -> (usize, u32) {
    let mut i = s.nruns as usize;
    while skip > 0 {
        i -= 1;
        let n = s.runs[i].n;
        if n <= skip {
            skip -= n;
        } else {
            return (i, n - skip);
        }
    }
    (i, 0)
}

/// Counts and deterministically resolves an ambiguous comparison (see
/// module docs): fall back to the lineage hash, then stored length and
/// root — shard-invariant, antisymmetric, but not provably the serial
/// order.
#[cold]
fn ambiguous(a: &Stamp, b: &Stamp) -> Ordering {
    AMBIGUOUS.fetch_add(1, AtomicOrdering::Relaxed);
    if std::env::var_os("STAMP_DEBUG").is_some() {
        eprintln!("AMBIG a={a:?}\n      b={b:?}");
    }
    a.overflow
        .cmp(&b.overflow)
        .then_with(|| a.len.cmp(&b.len))
        .then_with(|| a.root.cmp(&b.root))
}

#[inline]
fn fnv_fold(mut h: u64, x: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for byte in x.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A `(fire time, stamp)` dispatch key: the shard-invariant equivalent
/// of the serial engine's `(time, seq)`.
#[derive(Debug, Clone, Copy)]
pub struct StampKey {
    /// The event's fire (or ghost) time.
    pub at: SimTime,
    /// Its admission stamp.
    pub stamp: Stamp,
}

impl StampKey {
    /// Total order: fire time, then stamp order.
    pub fn order(&self, other: &StampKey) -> Ordering {
        self.at
            .cmp(&other.at)
            .then_with(|| self.stamp.order(&other.stamp))
    }
}

/// Per-shard executor counters, merged into run results so barrier and
/// handoff overhead is observable rather than guessed. Diagnostics
/// only — excluded from result digests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Events this shard dispatched (before replica corrections).
    pub events_processed: u64,
    /// Synchronization windows this shard participated in.
    pub barriers: u64,
    /// Largest number of events dispatched within one window.
    pub max_window_events: u64,
    /// Cross-shard handoffs this shard sent.
    pub handoffs_out: u64,
    /// Cross-shard handoffs this shard admitted.
    pub handoffs_in: u64,
    /// Ambiguous stamp comparisons attributed to this run (must be 0
    /// for the serial-order guarantee to hold; asserted by tests).
    pub stamp_ambiguities: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn roots_order_by_ordinal() {
        assert_eq!(Stamp::root(1).order(&Stamp::root(2)), Ordering::Less);
        assert_eq!(Stamp::root(2).order(&Stamp::root(2)), Ordering::Equal);
        assert_eq!(Stamp::root(3).order(&Stamp::root(2)), Ordering::Greater);
    }

    #[test]
    fn earlier_admission_time_wins_regardless_of_root() {
        // Root 5 admitted a child at t=1; root 2 admitted one at t=100.
        // Serial insertion order: the t=1 admission came first.
        let x = Stamp::root(5).child(t(1), 0);
        let y = Stamp::root(2).child(t(100), 0);
        assert_eq!(x.order(&y), Ordering::Less);
    }

    #[test]
    fn root_termination_beats_runtime_admission() {
        // A setup-admitted event vs a runtime-admitted one: setup came
        // first even though its root ordinal is larger.
        let x = Stamp::root(9);
        let y = Stamp::root(0).child(t(5), 0);
        assert_eq!(x.order(&y), Ordering::Less);
        assert_eq!(y.order(&x), Ordering::Greater);
        // Deeper: chains equal for one level, then one roots out.
        let a = Stamp::root(9).child(t(7), 3);
        let b = Stamp::root(0).child(t(2), 0).child(t(7), 0);
        assert_eq!(a.order(&b), Ordering::Less);
    }

    #[test]
    fn same_parent_orders_by_emission_index() {
        let p = Stamp::root(0).child(t(10), 2);
        let a = p.child(t(20), 0);
        let b = p.child(t(20), 1);
        assert_eq!(a.order(&b), Ordering::Less);
        assert_eq!(b.order(&a), Ordering::Greater);
        assert_eq!(a.order(&a), Ordering::Equal);
    }

    #[test]
    fn outermost_divergence_decides_on_equal_times() {
        // Two pops P0 (k=0) and P1 (k=1) of the same parent fire at the
        // same time and each admits a child at the same time: the
        // children order by the *ancestor* divergence, not the leaf.
        let parent = Stamp::root(0);
        let p0 = parent.child(t(10), 0);
        let p1 = parent.child(t(10), 1);
        let c0 = p0.child(t(20), 5);
        let c1 = p1.child(t(20), 0);
        assert_eq!(c0.order(&c1), Ordering::Less, "ancestor k decides");
    }

    #[test]
    fn lane_packing_preserves_order() {
        assert!(Stamp::lane_k(0, 7) < Stamp::lane_k(1, 0));
        assert!(Stamp::lane_k(1, 3) < Stamp::lane_k(1, 4));
    }

    #[test]
    fn lockstep_chains_order_by_root_beyond_truncation() {
        // Two chains in perfect lockstep (identical admission times and
        // emission indices every generation) driven far past the stored
        // depth: their dropped histories stay identical, so the order
        // must remain the exact serial order — root 0 before root 1 —
        // with no ambiguity, and must not collapse to Equal (distinct
        // events must never tie, or dispatch order falls back to heap
        // internals).
        let before = ambiguous_comparisons();
        let mut a = Stamp::root(0);
        let mut b = Stamp::root(1);
        for gen in 1..=(4 * STAMP_DEPTH as u64) {
            a = a.child(t(gen * 10), 1);
            b = b.child(t(gen * 10), 1);
            assert_eq!(a.order(&b), Ordering::Less, "generation {gen}");
            assert_eq!(b.order(&a), Ordering::Greater, "generation {gen}");
        }
        assert_eq!(a.order(&a), Ordering::Equal, "identical stamps tie");
        assert_eq!(
            ambiguous_comparisons(),
            before,
            "lockstep ordering is exact, not ambiguous"
        );
    }

    #[test]
    fn periodic_chains_compress_instead_of_truncating() {
        // A phase-locked periodic chain (constant step, constant k) —
        // a saturated link's dequeue chain — collapses into one run no
        // matter how long it gets, so a pre-lock divergence stays
        // decidable exactly.
        let mut a = Stamp::root(0).child(t(5), 0);
        let mut b = Stamp::root(0).child(t(6), 0);
        for gen in 1..=(4 * STAMP_DEPTH as u64) {
            a = a.child(t(100 + gen * 10), 1);
            b = b.child(t(100 + gen * 10), 1);
        }
        let before = ambiguous_comparisons();
        // The divergence (t=5 vs t=6) is 32 generations deep, far past
        // any plain depth bound, yet still stored: exact order, no
        // ambiguity.
        assert_eq!(a.order(&b), Ordering::Less);
        assert_eq!(b.order(&a), Ordering::Greater);
        assert_eq!(ambiguous_comparisons(), before);
    }

    #[test]
    fn diverged_dropped_histories_are_counted_ambiguous() {
        // Alternating emission indices defeat run compression (one run
        // per generation), so deep chains truncate; a divergence buried
        // in the dropped region is unrecoverable, and the comparison
        // must fall back to hash order and count itself.
        let mut a = Stamp::root(0).child(t(5), 0);
        let mut b = Stamp::root(0).child(t(6), 0);
        for gen in 1..=(2 * STAMP_DEPTH as u64) {
            a = a.child(t(100 + gen * 10), 1 + (gen as u32 % 2));
            b = b.child(t(100 + gen * 10), 1 + (gen as u32 % 2));
        }
        assert!(a.truncated && b.truncated, "alternating k defeats runs");
        let before = ambiguous_comparisons();
        let ord = a.order(&b);
        assert_ne!(ord, Ordering::Equal);
        assert_eq!(b.order(&a), ord.reverse(), "still antisymmetric");
        assert_eq!(ambiguous_comparisons(), before + 2);
    }

    #[test]
    fn matches_serial_insertion_order_on_random_trees() {
        // Build a random admission forest with colliding times and check
        // stamp order == serial insertion order for every simultaneous
        // pair. Times are coarse (many collisions) to stress the tie
        // paths.
        use crate::rng::SimRng;
        let mut rng = SimRng::seed_from_u64(0xD15EA5E);
        // A faithful serial run: pop the minimal (fire, seq) pending
        // event, admit its children with the next seq numbers — exactly
        // how the real queue assigns insertion order.
        let mut seq = 0u64;
        let mut pending: Vec<(Stamp, u64, u64)> = Vec::new();
        for root in 0..4u32 {
            pending.push((Stamp::root(root), seq, 1 + rng.below(3)));
            seq += 1;
        }
        let mut done: Vec<(Stamp, u64, u64)> = Vec::new();
        while !pending.is_empty() {
            let pos = pending
                .iter()
                .enumerate()
                .min_by_key(|&(_, &(_, s, f))| (f, s))
                .map(|(i, _)| i)
                .expect("non-empty");
            let (stamp, sq, fire) = pending.swap_remove(pos);
            done.push((stamp, sq, fire));
            if done.len() + pending.len() < 4000 {
                for k in 0..rng.below(4) {
                    // Coarse enough that simultaneous events are common,
                    // spread enough that identical admission-time chains
                    // deeper than STAMP_DEPTH (which would be ambiguous)
                    // stay as unlikely as in the real model.
                    let delay = 1 + rng.below(17);
                    pending.push((stamp.child(t(fire), k as u32), seq, fire + delay));
                    seq += 1;
                }
            }
        }
        assert!(done.len() > 2000, "tree actually grew");
        let before = ambiguous_comparisons();
        for i in 0..done.len() {
            for j in (i + 1)..done.len() {
                let (sa, qa, fa) = &done[i];
                let (sb, qb, fb) = &done[j];
                if fa != fb {
                    continue; // only simultaneous events are compared
                }
                assert_eq!(
                    sa.order(sb),
                    qa.cmp(qb),
                    "stamp order must equal serial insertion order\n a={sa:?}\n b={sb:?}"
                );
            }
        }
        assert_eq!(
            ambiguous_comparisons(),
            before,
            "no ambiguous comparisons on depth-{STAMP_DEPTH} chains"
        );
    }
}
