//! A dependency-free scoped-thread worker pool for embarrassingly
//! parallel sweeps.
//!
//! The engine's experiment cells (one `(policy, load, seed)` simulation
//! each) are independent, so fanning them across OS threads is safe as
//! long as the *aggregation* stays deterministic. [`par_map`] guarantees
//! that: workers pull items from a shared atomic cursor (dynamic load
//! balancing), but every result is written into the slot of its *input
//! index*, never appended in completion order. The returned vector is
//! therefore bit-identical for any worker count, which is the contract
//! the sweep engine's reports rely on.
//!
//! # Example
//!
//! ```
//! use dcn_sim::par_map;
//! let squares = par_map(4, &[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A conservative default worker count: the machine's available
/// parallelism, or 1 when it cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a user-requested worker/shard count: `0` means "auto"
/// (the machine's [`default_jobs`]), anything else is taken literally.
///
/// This is the single core-detection path shared by sweep `--jobs` and
/// run `--shards` so the two flags cannot drift apart.
pub fn effective_jobs(requested: usize) -> usize {
    if requested == 0 {
        default_jobs()
    } else {
        requested
    }
}

/// Maps `f` over `items` on `jobs` worker threads, returning results in
/// **input order** regardless of which worker finished which item first.
///
/// * `jobs == 0` is treated as 1; `jobs` is clamped to `items.len()` so
///   no idle thread is ever spawned.
/// * With `jobs <= 1` (or fewer than two items) the map runs inline on
///   the caller's thread — no threads, identical results.
/// * Work distribution is dynamic (an atomic cursor), so a slow cell
///   does not serialize the rest of the sweep behind it.
///
/// Determinism contract: the output at index `i` is exactly
/// `f(&items[i])`, and `f` must itself be a pure function of its input
/// (all simulation cells are: they are seeded). Under that assumption
/// the returned vector is byte-identical at any `jobs`.
///
/// # Panics
///
/// Propagates a panic from `f`: the first panicking worker's payload is
/// re-raised on the caller's thread with `resume_unwind`, so the
/// original message survives.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 || items.len() < 2 {
        return items.iter().map(&f).collect();
    }

    // One slot per item; workers lock only the slot they own for the
    // duration of a single store, so contention is negligible next to
    // the cost of a simulation cell.
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else {
                        break;
                    };
                    let r = f(item);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                })
            })
            .collect();
        // Join explicitly so a worker's panic payload (not the scope's
        // generic "a scoped thread panicked") reaches the caller.
        for w in workers {
            if let Err(payload) = w.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("result slot poisoned")
                .unwrap_or_else(|| panic!("worker never filled slot {i}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(8, &items, |&x| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn order_is_independent_of_completion_order() {
        // Early items sleep longest, so with several workers the
        // *completion* order is roughly reversed — the output order
        // must not care.
        let items: Vec<u64> = (0..16).collect();
        let out = par_map(4, &items, |&x| {
            std::thread::sleep(std::time::Duration::from_micros((16 - x) * 200));
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn same_result_at_every_job_count() {
        let items: Vec<u64> = (0..33).collect();
        let expect: Vec<u64> = items.iter().map(|x| x.wrapping_mul(0x9E37)).collect();
        for jobs in [0, 1, 2, 3, 8, 64] {
            assert_eq!(
                par_map(jobs, &items, |&x| x.wrapping_mul(0x9E37)),
                expect,
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let count = AtomicUsize::new(0);
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(7, &items, |&x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(8, &empty, |&x| x).is_empty());
        assert_eq!(par_map(8, &[5u32], |&x| x + 1), vec![6]);
    }

    #[test]
    #[should_panic(expected = "cell exploded")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..8).collect();
        par_map(4, &items, |&x| {
            if x == 5 {
                panic!("cell exploded");
            }
            x
        });
    }

    #[test]
    fn default_jobs_is_at_least_one() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn effective_jobs_resolves_zero_to_auto() {
        assert_eq!(effective_jobs(0), default_jobs());
        assert_eq!(effective_jobs(1), 1);
        assert_eq!(effective_jobs(7), 7);
    }
}
