//! Event queue and simulation driver.
//!
//! Events are an application-defined type `E`; the queue orders them by
//! scheduled time, breaking ties by insertion order so that runs are fully
//! deterministic regardless of heap internals.
//!
//! # Internals: indexed 4-ary heap + timing wheel + event slab
//!
//! The queue is two structures behind one dispatch order:
//!
//! * **Fire-and-forget events** (packets, link completions, samples) go
//!   to a hand-rolled 4-ary array heap whose entries are 16 bytes — the
//!   scheduled [`SimTime`] plus a packed `(seq, slot)` key — while the
//!   event payloads live out-of-line in a generational [`Slab`] with an
//!   intrusive free-list. Sifts move 16 bytes, not `16 + size_of::<E>()`,
//!   and steady-state dispatch allocates nothing.
//! * **Cancellable timers** (RTO deadlines, DCQCN rate/alpha timers, PFC
//!   watchdogs) go to a hierarchical timing wheel ([`crate::wheel`]) via
//!   [`EventQueue::schedule_timer_at`], which returns a [`TimerHandle`]
//!   for true O(1) cancel/re-arm. Re-arming a timer *removes* the old
//!   entry instead of leaving a tombstone in the heap, so the pending
//!   population no longer grows with every ACK on a live flow.
//!
//! The dispatcher merges the two sources deterministically: wheel entries
//! that come due are staged into a small `due` min-heap keyed by the same
//! `(time, seq)` order the main heap uses, and [`EventQueue::pop`] always
//! returns the global minimum. Timer arms consume insertion sequence
//! numbers exactly where the tombstoning engine scheduled replacement
//! events, so the dispatch stream is byte-identical to the old engine's
//! (golden digests included) — see DESIGN.md §4.8.
//!
//! Cancelled timers leave a *ghost* — their `(time, seq)` key — which is
//! lazily absorbed when dispatch passes that key. Ghost pops are exactly
//! the pops the tombstoning engine spent on dead entries, so
//! `processed + ghost_pops` reproduces the legacy `events_processed`
//! count that the result digests pin.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::slab::Slab;
use crate::stamp::Stamp;
use crate::time::{SimDuration, SimTime};
use crate::wheel::{Cancelled, TimerHandle, Wheel};

/// A model that consumes events and schedules new ones.
///
/// The driver functions [`run_until`] / [`run_while`] pop events in time
/// order and pass them to [`Simulation::handle`] together with the current
/// simulated time and the queue (for scheduling follow-up events).
pub trait Simulation {
    /// The event type dispatched through the queue.
    type Event;

    /// Processes one event at simulated time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// One heap entry: 16 bytes, ordered by `(at, ord)`.
///
/// `ord` packs `(seq << 32) | slot`: the high 32 bits are the insertion
/// sequence number (the FIFO tie-break for equal times), the low 32 bits
/// address the payload's slab slot. Comparing `ord` as one `u64` compares
/// `seq` first, and live entries always differ in `seq`, so the total
/// order is exactly `(at, seq)`.
#[derive(Debug, Clone, Copy)]
struct Entry {
    at: SimTime,
    ord: u64,
}

impl Entry {
    #[inline]
    fn precedes(self, other: Entry) -> bool {
        (self.at, self.ord) < (other.at, other.ord)
    }

    #[inline]
    fn slot(self) -> u32 {
        (self.ord & u64::from(u32::MAX)) as u32
    }
}

/// A staged wheel entry awaiting dispatch: `(at, ord, node, generation)`.
/// Ordered by `(at, ord)` — node and generation only validate the entry
/// against cancel-after-staging at pop time.
type DueEntry = (SimTime, u64, u32, u32);

/// Where a gathered group member's payload still lives.
#[derive(Debug, Clone, Copy)]
enum GroupSrc {
    /// Removed from the heap array; payload in the slab.
    Heap,
    /// Removed from the `due` stage but still *staged* in the wheel, so
    /// a mid-group `cancel_timer` takes the normal `Staged` path and
    /// dispatch detects the cancellation via `release_staged → None`.
    Due { node: u32, generation: u32 },
}

/// One member of a gathered simultaneous-event group.
#[derive(Debug, Clone, Copy)]
struct GroupMember {
    at: SimTime,
    ord: u64,
    src: GroupSrc,
}

/// Opt-in state for *stamp mode*, the sharded executor's dispatch
/// discipline. Serial runs never allocate this; every hook below is a
/// single `Option` check on their paths.
///
/// In stamp mode the `(time, seq)` insertion order is replaced by
/// `(time, `[`Stamp`]`)`: every admission records an admission-lineage
/// stamp in a side table, [`EventQueue::begin_group`] gathers all events
/// at the earliest pending time, and the caller dispatches them in stamp
/// order — an order every shard of a partitioned run computes
/// identically. Cancelled timers log `(time, stamp)` ghosts instead of
/// `(time, seq)` ones, since the executor settles ghost accounting at
/// window barriers rather than at dispatch.
#[derive(Debug)]
struct StampState {
    /// Stamp of each pending payload, indexed by slab slot.
    stamps: Vec<Stamp>,
    /// Stamp of the pop currently dispatching (children derive from it).
    current: Stamp,
    /// Emission lane of the current pop (see [`Stamp::lane_k`]).
    lane: u16,
    /// Emissions so far in the current lane of the current pop.
    emit_n: u32,
    /// Root ordinal for the next setup (pre-dispatch) admission.
    next_root: u32,
    /// Whether any group member has been dispatched yet: admissions
    /// before that are setup roots, after it children of `current`.
    dispatching: bool,
    /// Min-heap of cancelled-timer fire times (`(time, slot)` into
    /// `ghost_stamps`), folded into `ghost_pops` by the executor at
    /// window barriers. A heap keyed by fire time makes each fold
    /// O(folded · log live) — a paper-scale run crosses tens of
    /// thousands of windows while RTO-style timers keep a large pool of
    /// far-future ghosts alive, so a scan-the-log fold is quadratic.
    ghost_due: BinaryHeap<Reverse<(SimTime, u32)>>,
    /// Stamps of unfolded ghosts, slab-indexed by `ghost_due` entries.
    ghost_stamps: Vec<Stamp>,
    /// Free slots in `ghost_stamps`.
    ghost_free: Vec<u32>,
    /// The gathered simultaneous group currently being dispatched.
    group: Vec<GroupMember>,
    /// Gathered-but-undispatched heap members (kept so `len()` stays
    /// exact mid-group; due members are still counted by `due_live`).
    group_live: usize,
}

/// Scheduler counters for perf reporting and model-bug detection.
///
/// Returned by [`EventQueue::stats`]; all plain data, so results can ship
/// it across threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events currently pending (heap + wheel + staged timers).
    pub pending: usize,
    /// High-water mark of pending events over the queue's lifetime.
    pub max_pending: usize,
    /// Heap levels at the *heap's* high-water mark (sift work is bounded
    /// by this; wheel timers never sift).
    pub max_depth: u32,
    /// Bytes moved per sift step: the size of one heap entry.
    pub entry_bytes: usize,
    /// Slots ever allocated in the event slab (its high-water mark).
    pub slab_capacity: usize,
    /// Events dispatched to the model.
    pub processed: u64,
    /// Times a schedule call clamped a past timestamp up to `now`.
    /// Always zero in a correct model; see [`EventQueue::past_clamps`].
    /// Wheel-routed timers count here identically to heap events.
    pub past_clamps: u64,
    /// Timers currently armed (filed in the wheel or staged for
    /// dispatch).
    pub timers_pending: usize,
    /// Timers cancelled or re-armed before firing. Each one the
    /// tombstoning engine would have left to rot in the heap.
    pub timer_cancels: u64,
    /// Cancelled-timer keys lazily absorbed at dispatch: exactly the
    /// pops the tombstoning engine spent discarding dead entries, kept
    /// so `processed + ghost_pops` matches its `events_processed`.
    pub ghost_pops: u64,
    /// Timer events dispatched to the model after their handle was
    /// cancelled. Structurally zero with the wheel (cancellation removes
    /// the entry before dispatch); a nonzero value means tombstoning has
    /// crept back in. Asserted zero by the golden and chaos checks.
    pub stale_timer_pops: u64,
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use dcn_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime::from_nanos(5), "b");
/// q.schedule_at(SimTime::from_nanos(1), "a");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(5), "b")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: Vec<Entry>,
    slab: Slab<E>,
    wheel: Wheel,
    /// Wheel entries that have come due, merged with heap pops in
    /// `(time, seq)` order. Usually a handful of entries.
    due: BinaryHeap<Reverse<DueEntry>>,
    /// Live entries in `due` (cancel-after-staging leaves stale heap
    /// entries that are skipped, not removed).
    due_live: usize,
    /// `(time, seq)` keys of cancelled timers, absorbed lazily as
    /// dispatch passes them. See [`QueueStats::ghost_pops`].
    ghosts: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// Stamp-mode state; `None` (and untouched) on serial runs.
    stamp: Option<Box<StampState>>,
    /// Next insertion sequence number (the FIFO tie-break).
    seq: u32,
    now: SimTime,
    processed: u64,
    ghost_pops: u64,
    timer_cancels: u64,
    stale_timer_pops: u64,
    past_clamps: u64,
    max_pending: usize,
    max_heap: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slab: Slab::new(),
            wheel: Wheel::new(),
            due: BinaryHeap::new(),
            due_live: 0,
            ghosts: BinaryHeap::new(),
            stamp: None,
            seq: 0,
            now: SimTime::ZERO,
            processed: 0,
            ghost_pops: 0,
            timer_cancels: 0,
            stale_timer_pops: 0,
            past_clamps: 0,
            max_pending: 0,
            max_heap: 0,
        }
    }

    /// Clamps a requested time into the non-past, counting violations.
    #[inline]
    fn clamp_time(&mut self, at: SimTime) -> SimTime {
        if at < self.now {
            self.past_clamps += 1;
            self.now
        } else {
            at
        }
    }

    /// Allocates the payload slot and packed `(seq, slot)` key for one
    /// scheduled entry — shared by heap events and wheel timers so both
    /// consume insertion numbers from the same sequence.
    ///
    /// In stamp mode (`carried` or an enabled [`StampState`]) the slot's
    /// admission stamp is recorded: `carried` verbatim (cross-shard
    /// handoffs), otherwise a child of the dispatching pop, or a setup
    /// root before the first dispatch.
    #[inline]
    fn admit(&mut self, event: E, carried: Option<Stamp>) -> u64 {
        if self.seq == u32::MAX {
            self.renumber();
        }
        let handle = self.slab.insert(event);
        let ord = (u64::from(self.seq) << 32) | u64::from(handle.slot);
        self.seq += 1;
        if let Some(st) = self.stamp.as_deref_mut() {
            let stamp = match carried {
                Some(s) => s,
                None if st.dispatching => {
                    debug_assert!(st.emit_n < 0x10000, "emission lane overflow");
                    let k = Stamp::lane_k(st.lane, st.emit_n);
                    st.emit_n += 1;
                    st.current.child(self.now, k)
                }
                None => {
                    let root = st.next_root;
                    st.next_root += 1;
                    Stamp::root(root)
                }
            };
            let slot = handle.slot as usize;
            if st.stamps.len() <= slot {
                st.stamps.resize(slot + 1, Stamp::root(0));
            }
            st.stamps[slot] = stamp;
        } else {
            debug_assert!(carried.is_none(), "stamped admission without stamp mode");
        }
        ord
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a model bug; the time is clamped to
    /// `now` and the incident is counted in [`EventQueue::past_clamps`],
    /// which correctness tests assert to be zero — a latent model bug
    /// cannot hide behind the clamp.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.schedule_entry(at, event, None);
    }

    fn schedule_entry(&mut self, at: SimTime, event: E, carried: Option<Stamp>) {
        let at = self.clamp_time(at);
        self.assert_future_in_stamp_mode(at);
        let ord = self.admit(event, carried);
        self.heap.push(Entry { at, ord });
        self.sift_up(self.heap.len() - 1);
        self.max_heap = self.max_heap.max(self.heap.len());
        self.max_pending = self.max_pending.max(self.len());
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_after(&mut self, now: SimTime, delay: SimDuration, event: E) {
        self.schedule_at(now + delay, event);
    }

    /// Arms a cancellable timer at absolute time `at`, returning a handle
    /// for [`EventQueue::cancel_timer`]. Timers dispatch through
    /// [`EventQueue::pop`] in the same `(time, seq)` order as heap
    /// events; past times are clamped and counted exactly like
    /// [`EventQueue::schedule_at`].
    pub fn schedule_timer_at(&mut self, at: SimTime, event: E) -> TimerHandle {
        self.schedule_timer_entry(at, event, None)
    }

    fn schedule_timer_entry(
        &mut self,
        at: SimTime,
        event: E,
        carried: Option<Stamp>,
    ) -> TimerHandle {
        let at = self.clamp_time(at);
        self.assert_future_in_stamp_mode(at);
        let ord = self.admit(event, carried);
        let handle = self.wheel.insert(at, ord);
        self.max_pending = self.max_pending.max(self.len());
        handle
    }

    /// Arms a cancellable timer at `now + delay`.
    pub fn schedule_timer_after(
        &mut self,
        now: SimTime,
        delay: SimDuration,
        event: E,
    ) -> TimerHandle {
        self.schedule_timer_at(now + delay, event)
    }

    /// Cancels an armed timer in O(1), returning its payload. `None` if
    /// the handle is stale (the timer already fired or was cancelled).
    ///
    /// The cancelled deadline's `(time, seq)` key is kept as a ghost and
    /// absorbed when dispatch passes it, reproducing the pop the
    /// tombstoning engine would have spent on the dead entry.
    pub fn cancel_timer(&mut self, handle: TimerHandle) -> Option<E> {
        let (at, ord) = match self.wheel.cancel(handle) {
            Cancelled::Invalid => return None,
            Cancelled::Filed { at, ord } => (at, ord),
            Cancelled::Staged { at, ord } => {
                self.due_live -= 1;
                (at, ord)
            }
        };
        self.timer_cancels += 1;
        let slot = (ord & u64::from(u32::MAX)) as u32;
        if let Some(st) = self.stamp.as_deref_mut() {
            // Stamp mode: the executor folds ghosts at window barriers
            // keyed by stamp, not lazily at dispatch keyed by seq.
            let stamp = st.stamps[slot as usize];
            let gslot = match st.ghost_free.pop() {
                Some(g) => {
                    st.ghost_stamps[g as usize] = stamp;
                    g
                }
                None => {
                    st.ghost_stamps.push(stamp);
                    (st.ghost_stamps.len() - 1) as u32
                }
            };
            st.ghost_due.push(Reverse((at, gslot)));
        } else {
            self.ghosts.push(Reverse((at, ord)));
        }
        Some(self.slab.take(slot))
    }

    /// Establishes the dispatch invariant: stale due entries are gone
    /// and the earliest pending key (heap or due) precedes everything
    /// still filed in the wheel — or all three are empty.
    fn settle(&mut self) {
        loop {
            while let Some(&Reverse((_, _, node, generation))) = self.due.peek() {
                if self.wheel.is_staged_live(node, generation) {
                    break;
                }
                // Cancelled after staging; already ghosted by the cancel.
                self.due.pop();
            }
            if self.wheel.is_empty() {
                return;
            }
            let target = match self.next_key() {
                Some((at, _)) if at < self.wheel.bound() => return,
                Some((at, _)) => at,
                None => match self.wheel.next_window_end() {
                    Some(end) => end,
                    None => return,
                },
            };
            let due = &mut self.due;
            let due_live = &mut self.due_live;
            self.wheel.drain_to(target, |at, ord, node, generation| {
                due.push(Reverse((at, ord, node, generation)));
                *due_live += 1;
            });
        }
    }

    /// The earliest `(at, ord)` key across the heap and the due stage.
    /// Only meaningful after [`EventQueue::settle`] (due head live).
    #[inline]
    fn next_key(&self) -> Option<(SimTime, u64)> {
        let heap_key = self.heap.first().map(|e| (e.at, e.ord));
        let due_key = self.due.peek().map(|r| (r.0 .0, r.0 .1));
        match (heap_key, due_key) {
            (Some(h), Some(d)) => Some(h.min(d)),
            (h, d) => h.or(d),
        }
    }

    /// Pops the earliest event, advancing the queue's clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.settle();
        let heap_key = self.heap.first().map(|e| (e.at, e.ord));
        let due_key = self.due.peek().map(|r| (r.0 .0, r.0 .1));
        match (heap_key, due_key) {
            (None, None) => None,
            (Some(h), d) if d.is_none_or(|d| h < d) => Some(self.pop_heap_top()),
            _ => Some(self.pop_due_top()),
        }
    }

    fn pop_heap_top(&mut self) -> (SimTime, E) {
        let root = *self.heap.first().expect("pop_heap_top on non-empty heap");
        let last = self.heap.pop().expect("peeked heap is non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
        let event = self.slab.take(root.slot());
        self.finish_pop(root.at, root.ord);
        (root.at, event)
    }

    fn pop_due_top(&mut self) -> (SimTime, E) {
        let Reverse((at, ord, node, generation)) = self.due.pop().expect("settled due top");
        match self.wheel.release_staged(node, generation) {
            Some(released) => debug_assert_eq!(released, ord),
            None => {
                // Unreachable by construction: settle() just validated
                // this entry. Counted rather than ignored so tombstoning
                // regressions can't hide.
                self.stale_timer_pops += 1;
            }
        }
        self.due_live -= 1;
        let event = self.slab.take((ord & u64::from(u32::MAX)) as u32);
        self.finish_pop(at, ord);
        (at, event)
    }

    /// Advances the clock and absorbs every ghost the tombstoning engine
    /// would have popped before dispatching this key.
    fn finish_pop(&mut self, at: SimTime, ord: u64) {
        while let Some(&Reverse(ghost)) = self.ghosts.peek() {
            if ghost < (at, ord) {
                self.ghosts.pop();
                self.ghost_pops += 1;
            } else {
                break;
            }
        }
        self.now = at;
        self.processed += 1;
    }

    /// Absorbs every ghost strictly before `horizon`, mirroring the pops
    /// a tombstoning engine would have spent draining dead entries up to
    /// (but excluding) that time. The run drivers call this when a run
    /// window closes so `processed + ghost_pops` stays exactly
    /// comparable across engines.
    pub fn absorb_ghosts_before(&mut self, horizon: SimTime) {
        while let Some(&Reverse((at, _))) = self.ghosts.peek() {
            if at < horizon {
                self.ghosts.pop();
                self.ghost_pops += 1;
            } else {
                break;
            }
        }
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.settle();
        self.next_key().map(|(at, _)| at)
    }

    /// The current simulated time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Stamp-mode group gathering removes events from their structures
    /// before dispatch; a member emitting at (or before) the group's
    /// time would silently miss its own group, so it is a model bug.
    #[inline]
    fn assert_future_in_stamp_mode(&self, at: SimTime) {
        if let Some(st) = self.stamp.as_deref() {
            debug_assert!(
                !st.dispatching || at > self.now,
                "stamp mode forbids zero-delay emissions"
            );
        }
        let _ = at;
    }

    /// Number of pending events (heap events plus armed timers).
    pub fn len(&self) -> usize {
        let in_group = self.stamp.as_deref().map_or(0, |st| st.group_live);
        self.heap.len() + self.wheel.len() + self.due_live + in_group
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dispatched to the model so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Cancelled-timer keys absorbed at dispatch. Adding this to
    /// [`EventQueue::processed`] reproduces the event count of the
    /// tombstoning engine, which popped (and discarded) each dead entry.
    pub fn ghost_pops(&self) -> u64 {
        self.ghost_pops
    }

    /// How many times a schedule call was handed a time before `now`
    /// and clamped it. A correct model never schedules into the past, so
    /// this is asserted zero by the golden-digest and chaos checks.
    pub fn past_clamps(&self) -> u64 {
        self.past_clamps
    }

    /// Scheduler counters: pending high-water mark, heap depth, entry
    /// size, slab capacity, dispatch/ghost/cancel counts and past-time
    /// clamps.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            pending: self.len(),
            max_pending: self.max_pending,
            max_depth: depth_4ary(self.max_heap),
            entry_bytes: std::mem::size_of::<Entry>(),
            slab_capacity: self.slab.capacity(),
            processed: self.processed,
            past_clamps: self.past_clamps,
            timers_pending: self.wheel.len() + self.due_live,
            timer_cancels: self.timer_cancels,
            ghost_pops: self.ghost_pops,
            stale_timer_pops: self.stale_timer_pops,
        }
    }

    // ---- stamp mode (sharded executor) --------------------------------

    /// Switches the queue into stamp mode (see [`StampState`]). Must be
    /// called on a fresh queue, before anything is scheduled; serial
    /// queues that never call this pay only dead `Option` checks.
    pub fn enable_stamps(&mut self) {
        assert!(
            self.is_empty() && self.processed == 0 && self.ghosts.is_empty(),
            "enable_stamps requires a fresh queue"
        );
        self.stamp = Some(Box::new(StampState {
            stamps: Vec::new(),
            current: Stamp::root(0),
            lane: 0,
            emit_n: 0,
            next_root: 0,
            dispatching: false,
            ghost_due: BinaryHeap::new(),
            ghost_stamps: Vec::new(),
            ghost_free: Vec::new(),
            group: Vec::new(),
            group_live: 0,
        }));
    }

    /// Whether stamp mode is enabled.
    pub fn stamps_enabled(&self) -> bool {
        self.stamp.is_some()
    }

    /// Sets the root ordinal assigned to the *next* setup admission
    /// (ordinals auto-increment between calls). Shards use this to give
    /// replicated setup events identical stamps and shard-local ones
    /// their global ordinals.
    pub fn stamp_next_root(&mut self, ordinal: u32) {
        let st = self.stamp.as_deref_mut().expect("stamp mode required");
        assert!(!st.dispatching, "setup roots only before the first pop");
        st.next_root = ordinal;
    }

    /// Switches the current pop's emission lane and restarts its
    /// per-lane emission counter. Handlers whose per-shard replicas emit
    /// different *subsets* of the serial emission sequence (fault
    /// application touches both link endpoints) assign one lane per
    /// subset so emission indices stay comparable across shards.
    pub fn set_stamp_lane(&mut self, lane: u16) {
        let st = self.stamp.as_deref_mut().expect("stamp mode required");
        st.lane = lane;
        st.emit_n = 0;
    }

    /// The stamp of the pop currently dispatching — with
    /// [`EventQueue::now`], the `(time, stamp)` key the executor journals
    /// digest-relevant mutations under.
    pub fn current_stamp(&self) -> Stamp {
        self.stamp.as_deref().expect("stamp mode required").current
    }

    /// Consumes the current pop's next emission index and returns the
    /// stamp its child would get if it were admitted locally. Used to
    /// stamp a cross-shard handoff: the remote shard admits the payload
    /// with this exact stamp via the `*_stamped` schedulers, so the
    /// dispatch order is as if the event had stayed local.
    pub fn next_child_stamp(&mut self) -> Stamp {
        let now = self.now;
        let st = self.stamp.as_deref_mut().expect("stamp mode required");
        debug_assert!(st.dispatching, "handoffs originate from a pop");
        debug_assert!(st.emit_n < 0x10000, "emission lane overflow");
        let k = Stamp::lane_k(st.lane, st.emit_n);
        st.emit_n += 1;
        st.current.child(now, k)
    }

    /// Schedules `event` carrying an explicit admission stamp (a
    /// cross-shard handoff admitted at a window barrier).
    pub fn schedule_at_stamped(&mut self, at: SimTime, event: E, stamp: Stamp) {
        self.schedule_entry(at, event, Some(stamp));
    }

    /// Arms a cancellable timer carrying an explicit admission stamp (a
    /// cross-shard watchdog-arm handoff).
    pub fn schedule_timer_at_stamped(
        &mut self,
        at: SimTime,
        event: E,
        stamp: Stamp,
    ) -> TimerHandle {
        self.schedule_timer_entry(at, event, Some(stamp))
    }

    /// Gathers every pending event at the earliest pending time into a
    /// dispatch group and fills `out` with `(member index, stamp)` pairs.
    /// Returns the group's time, or `None` if the queue is empty.
    ///
    /// The caller sorts `out` by [`Stamp::order`] and feeds each index to
    /// [`EventQueue::dispatch_member`]. Payloads are *not* removed here:
    /// heap members stay in the slab and wheel members stay staged, so a
    /// member cancelling a not-yet-dispatched same-time timer goes
    /// through the ordinary `cancel_timer` path and the cancelled
    /// member is skipped at dispatch. (The model must not schedule
    /// zero-delay events, so a member can never *add* to its own group —
    /// `debug_assert`ed in the schedulers via `past_clamps` plus the
    /// strict-future check below.)
    pub fn begin_group(&mut self, out: &mut Vec<(u32, Stamp)>) -> Option<SimTime> {
        out.clear();
        self.settle();
        let (t, _) = self.next_key()?;
        let mut group = {
            let st = self.stamp.as_deref_mut().expect("stamp mode required");
            debug_assert_eq!(st.group_live, 0, "previous group fully dispatched");
            let mut g = std::mem::take(&mut st.group);
            g.clear();
            g
        };
        while let Some(&e) = self.heap.first() {
            if e.at != t {
                break;
            }
            self.remove_heap_top();
            group.push(GroupMember {
                at: e.at,
                ord: e.ord,
                src: GroupSrc::Heap,
            });
        }
        while let Some(&Reverse((at, ord, node, generation))) = self.due.peek() {
            if at != t {
                break;
            }
            self.due.pop();
            if self.wheel.is_staged_live(node, generation) {
                group.push(GroupMember {
                    at,
                    ord,
                    src: GroupSrc::Due { node, generation },
                });
            }
            // Stale (cancelled after staging): already ghosted.
        }
        let heap_members = group
            .iter()
            .filter(|m| matches!(m.src, GroupSrc::Heap))
            .count();
        let st = self.stamp.as_deref_mut().expect("stamp mode required");
        st.group_live = heap_members;
        for (i, m) in group.iter().enumerate() {
            let slot = (m.ord & u64::from(u32::MAX)) as usize;
            out.push((i as u32, st.stamps[slot]));
        }
        st.group = group;
        Some(t)
    }

    /// Dispatches one gathered group member, advancing the clock to its
    /// time. Returns `None` if the member was a timer cancelled by an
    /// earlier member of the same group (serial order would never have
    /// dispatched it either).
    pub fn dispatch_member(&mut self, index: u32) -> Option<(SimTime, E)> {
        let m = {
            let st = self.stamp.as_deref().expect("stamp mode required");
            st.group[index as usize]
        };
        match m.src {
            GroupSrc::Heap => {
                let st = self.stamp.as_deref_mut().expect("stamp mode required");
                st.group_live -= 1;
            }
            GroupSrc::Due { node, generation } => {
                match self.wheel.release_staged(node, generation) {
                    Some(released) => {
                        debug_assert_eq!(released, m.ord);
                        self.due_live -= 1;
                    }
                    // Cancelled mid-group; cancel_timer already took the
                    // payload, ghosted the key and adjusted `due_live`.
                    None => return None,
                }
            }
        }
        let slot = (m.ord & u64::from(u32::MAX)) as u32;
        {
            let st = self.stamp.as_deref_mut().expect("stamp mode required");
            st.dispatching = true;
            st.current = st.stamps[slot as usize];
            st.lane = 0;
            st.emit_n = 0;
        }
        let event = self.slab.take(slot);
        self.finish_pop(m.at, m.ord);
        Some((m.at, event))
    }

    /// Removes and counts stamp-mode ghosts strictly before `horizon`
    /// into [`QueueStats::ghost_pops`] — the barrier-time equivalent of
    /// the serial engine's lazy absorption. Returns the count folded.
    pub fn fold_stamped_ghosts_before(&mut self, horizon: SimTime) -> u64 {
        let st = self.stamp.as_deref_mut().expect("stamp mode required");
        let mut folded = 0u64;
        while let Some(&Reverse((at, g))) = st.ghost_due.peek() {
            if at >= horizon {
                break;
            }
            st.ghost_due.pop();
            st.ghost_free.push(g);
            folded += 1;
        }
        self.ghost_pops += folded;
        folded
    }

    /// Stamp-mode ghosts not yet folded (unordered). The executor counts
    /// the qualifying tail at run end (ghost keys below the run's stop
    /// key) and credits them via [`EventQueue::add_ghost_pops`].
    pub fn stamped_ghosts(&self) -> impl Iterator<Item = (SimTime, Stamp)> + '_ {
        let st = self.stamp.as_deref().expect("stamp mode required");
        st.ghost_due
            .iter()
            .map(|&Reverse((at, g))| (at, st.ghost_stamps[g as usize]))
    }

    /// Credits `n` ghost pops decided outside the queue (the sharded
    /// executor's end-of-run ghost reconciliation).
    pub fn add_ghost_pops(&mut self, n: u64) {
        self.ghost_pops += n;
    }

    /// Removes the heap's root entry without touching its slab payload.
    fn remove_heap_top(&mut self) {
        let last = self.heap.pop().expect("remove_heap_top on non-empty heap");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
    }

    // ---- 4-ary heap internals -----------------------------------------

    /// Moves the entry at `i` up until its parent precedes it.
    fn sift_up(&mut self, mut i: usize) {
        let e = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 4;
            if e.precedes(self.heap[parent]) {
                self.heap[i] = self.heap[parent];
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = e;
    }

    /// Moves the entry at `i` down until it precedes all its children.
    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        let e = self.heap[i];
        loop {
            let first = 4 * i + 1;
            if first >= n {
                break;
            }
            // Smallest of up to four children.
            let mut min = first;
            let last = (first + 4).min(n);
            for c in first + 1..last {
                if self.heap[c].precedes(self.heap[min]) {
                    min = c;
                }
            }
            if self.heap[min].precedes(e) {
                self.heap[i] = self.heap[min];
                i = min;
            } else {
                break;
            }
        }
        self.heap[i] = e;
    }

    /// Compacts the 32-bit sequence counter by reassigning every pending
    /// key — heap entries, wheel timers, staged timers, and ghosts — the
    /// numbers `0..n` in their existing order.
    ///
    /// Triggered once per 2³² insertions — in practice never for the
    /// workloads in this repository, but it makes the u32 tie-break safe
    /// at any run length. The reassignment is monotone in `seq`, so every
    /// pairwise `(time, seq)` comparison (and thus pop order, heap shape
    /// and ghost absorption) is unchanged; covered by `force_renumber`
    /// tests and the wheel differential oracle.
    fn renumber(&mut self) {
        #[derive(Clone, Copy)]
        enum Src {
            Heap(u32),
            Node(u32),
            Ghost(u32),
        }
        let mut ghosts: Vec<(SimTime, u64)> = std::mem::take(&mut self.ghosts)
            .into_iter()
            .map(|r| r.0)
            .collect();
        let mut all: Vec<(u64, Src)> =
            Vec::with_capacity(self.heap.len() + self.wheel.len() + self.due_live + ghosts.len());
        for (i, e) in self.heap.iter().enumerate() {
            all.push((e.ord, Src::Heap(i as u32)));
        }
        for (node, ord) in self.wheel.live_nodes() {
            all.push((ord, Src::Node(node)));
        }
        for (i, g) in ghosts.iter().enumerate() {
            all.push((g.1, Src::Ghost(i as u32)));
        }
        // Distinct live seqs: sorting by ord sorts by insertion order.
        all.sort_unstable_by_key(|&(ord, _)| ord);
        for (i, &(old, src)) in all.iter().enumerate() {
            let new_ord = ((i as u64) << 32) | (old & u64::from(u32::MAX));
            match src {
                Src::Heap(j) => self.heap[j as usize].ord = new_ord,
                Src::Node(node) => self.wheel.set_node_ord(node, new_ord),
                Src::Ghost(j) => ghosts[j as usize].1 = new_ord,
            }
        }
        self.seq = u32::try_from(all.len()).expect("pending fits u32");
        // A monotone ord remap preserves every pairwise ordering, so the
        // heap property still holds; only the derived heaps that copied
        // ords need rebuilding.
        self.ghosts = ghosts.into_iter().map(Reverse).collect();
        let due = std::mem::take(&mut self.due);
        self.due = due
            .into_iter()
            .filter(|&Reverse((_, _, node, generation))| {
                self.wheel.is_staged_live(node, generation)
            })
            .map(|Reverse((at, _old, node, generation))| {
                Reverse((at, self.wheel.node_ord(node), node, generation))
            })
            .collect();
    }

    /// Test hook: forces the rare sequence-renumber path.
    #[doc(hidden)]
    pub fn force_renumber(&mut self) {
        self.renumber();
    }
}

/// Levels of a 4-ary heap holding `n` entries (0 for an empty heap).
fn depth_4ary(n: usize) -> u32 {
    let mut depth = 0;
    let mut level_first = 0usize; // index of the first node at `depth`
    let mut level_size = 1usize;
    while level_first < n {
        depth += 1;
        level_first += level_size;
        level_size *= 4;
    }
    depth
}

/// Runs `sim` until the queue drains or the next event is at or past
/// `horizon`. Returns the number of events dispatched.
///
/// Events scheduled exactly at `horizon` are *not* processed, so
/// `run_until(.., t)` covers the half-open interval `[start, t)`. Ghosts
/// of timers cancelled before `horizon` are absorbed when the window
/// closes (a tombstoning engine would have popped them within it).
pub fn run_until<S: Simulation>(
    sim: &mut S,
    queue: &mut EventQueue<S::Event>,
    horizon: SimTime,
) -> u64 {
    let mut n = 0;
    while let Some(at) = queue.peek_time() {
        if at >= horizon {
            break;
        }
        let (now, ev) = queue.pop().expect("peeked event must pop");
        sim.handle(now, ev, queue);
        n += 1;
    }
    queue.absorb_ghosts_before(horizon);
    n
}

/// Runs `sim` until the queue drains or `keep_going` returns false
/// (checked before each event). Returns the number of events dispatched.
///
/// Callers that compare event counts against a deadline-bounded engine
/// should call [`EventQueue::absorb_ghosts_before`] with their own
/// stopping time afterwards; `run_while` cannot see inside the
/// predicate.
pub fn run_while<S: Simulation>(
    sim: &mut S,
    queue: &mut EventQueue<S::Event>,
    mut keep_going: impl FnMut(&S, SimTime) -> bool,
) -> u64 {
    let mut n = 0;
    while let Some(at) = queue.peek_time() {
        if !keep_going(sim, at) {
            break;
        }
        let (now, ev) = queue.pop().expect("peeked event must pop");
        sim.handle(now, ev, queue);
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_is_16_bytes() {
        assert_eq!(std::mem::size_of::<Entry>(), 16);
    }

    #[test]
    fn fifo_tie_breaking() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn time_ordering() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(30), 3);
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(42));
    }

    struct Chain {
        hops: u32,
        last: SimTime,
    }

    impl Simulation for Chain {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, q: &mut EventQueue<u32>) {
            self.hops = ev;
            self.last = now;
            if ev < 100 {
                q.schedule_after(now, SimDuration::from_nanos(10), ev + 1);
            }
        }
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Chain {
            hops: 0,
            last: SimTime::ZERO,
        };
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, 1);
        // Events at 0,10,...; horizon 55 processes t=0..50 (6 events).
        let n = run_until(&mut sim, &mut q, SimTime::from_nanos(55));
        assert_eq!(n, 6);
        assert_eq!(sim.hops, 6);
        assert_eq!(sim.last, SimTime::from_nanos(50));
        // Event exactly at the horizon is not processed.
        q.schedule_at(SimTime::from_nanos(55), 999);
        let n2 = run_until(&mut sim, &mut q, SimTime::from_nanos(55));
        assert_eq!(n2, 0);
    }

    #[test]
    fn run_while_predicate() {
        let mut sim = Chain {
            hops: 0,
            last: SimTime::ZERO,
        };
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, 1);
        let n = run_while(&mut sim, &mut q, |s, _| s.hops < 5);
        assert_eq!(n, 5);
    }

    #[test]
    fn processed_counter() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(1), ());
        q.schedule_at(SimTime::from_nanos(2), ());
        q.pop();
        q.pop();
        assert_eq!(q.processed(), 2);
    }

    #[test]
    fn past_scheduling_clamps_and_counts() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(100), 1);
        q.pop();
        assert_eq!(q.past_clamps(), 0);
        // now = 100; scheduling at 40 is a (counted) model bug.
        q.schedule_at(SimTime::from_nanos(40), 2);
        assert_eq!(q.past_clamps(), 1);
        let (at, ev) = q.pop().expect("clamped event pops");
        assert_eq!(ev, 2);
        assert_eq!(at, SimTime::from_nanos(100), "clamped up to now");
        // Scheduling exactly at `now` is legal and not counted.
        q.schedule_at(SimTime::from_nanos(100), 3);
        assert_eq!(q.past_clamps(), 1);
    }

    #[test]
    fn timer_past_scheduling_clamps_identically() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(100), 0);
        q.pop();
        // Wheel-routed timers share the clamp-and-count path.
        q.schedule_timer_at(SimTime::from_nanos(40), 7);
        assert_eq!(q.past_clamps(), 1);
        let (at, ev) = q.pop().expect("clamped timer fires");
        assert_eq!((at, ev), (SimTime::from_nanos(100), 7));
    }

    #[test]
    fn stats_report_high_water_mark_and_entry_size() {
        let mut q = EventQueue::new();
        for i in 0..21u64 {
            q.schedule_at(SimTime::from_nanos(i), i);
        }
        for _ in 0..21 {
            q.pop();
        }
        let s = q.stats();
        assert_eq!(s.pending, 0);
        assert_eq!(s.max_pending, 21);
        // 21 entries: level sizes 1 + 4 + 16 = 21 → 3 levels.
        assert_eq!(s.max_depth, 3);
        assert_eq!(s.entry_bytes, 16);
        assert_eq!(s.slab_capacity, 21);
        assert_eq!(s.processed, 21);
        assert_eq!(s.past_clamps, 0);
        assert_eq!(s.stale_timer_pops, 0);
    }

    #[test]
    fn depth_4ary_levels() {
        assert_eq!(depth_4ary(0), 0);
        assert_eq!(depth_4ary(1), 1);
        assert_eq!(depth_4ary(5), 2);
        assert_eq!(depth_4ary(21), 3);
        assert_eq!(depth_4ary(22), 4);
    }

    #[test]
    fn renumber_preserves_pop_order() {
        // Heavy ties across a forced renumber: FIFO order must survive
        // the seq compaction.
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(50);
        for i in 0..40 {
            q.schedule_at(t, i);
            if i == 17 {
                q.force_renumber();
            }
        }
        q.force_renumber();
        for i in 40..60 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..60).collect::<Vec<_>>());
    }

    #[test]
    fn renumber_with_mixed_times_keeps_total_order() {
        let mut q = EventQueue::new();
        for i in 0..100u64 {
            q.schedule_at(SimTime::from_nanos((i * 37) % 10), i);
        }
        q.force_renumber();
        for i in 100..200u64 {
            q.schedule_at(SimTime::from_nanos((i * 37) % 10), i);
        }
        let mut popped = Vec::new();
        while let Some((at, ev)) = q.pop() {
            popped.push((at, ev));
        }
        // Reference: stable sort by time of the same schedule (insertion
        // order is the tie-break, which a stable sort preserves).
        let mut expect: Vec<(SimTime, u64)> = (0..200u64)
            .map(|i| (SimTime::from_nanos((i * 37) % 10), i))
            .collect();
        expect.sort_by_key(|&(at, _)| at);
        assert_eq!(popped, expect);
    }

    #[test]
    fn steady_state_dispatch_reuses_heap_and_slab_storage() {
        // A self-rescheduling workload with bounded pending events: after
        // warm-up, neither the heap nor the slab may grow — steady-state
        // dispatch is allocation-free.
        let mut q = EventQueue::new();
        for i in 0..64u64 {
            q.schedule_at(SimTime::from_nanos(i), i);
        }
        let warm_cap = q.stats().slab_capacity;
        for _ in 0..100_000 {
            let (now, ev) = q.pop().expect("chain never drains");
            q.schedule_after(now, SimDuration::from_nanos(1 + ev % 7), ev);
        }
        let s = q.stats();
        assert_eq!(s.pending, 64);
        assert_eq!(s.max_pending, 64);
        assert_eq!(
            s.slab_capacity, warm_cap,
            "slab must recycle slots, not allocate"
        );
    }

    #[test]
    fn timers_merge_with_heap_events_in_key_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(5), 1);
        q.schedule_timer_at(SimTime::from_micros(3), 2);
        q.schedule_at(SimTime::from_micros(3), 3); // later seq, same time
        q.schedule_timer_at(SimTime::from_micros(9), 4);
        q.schedule_at(SimTime::from_micros(7), 5);
        let order: Vec<(u64, i32)> =
            std::iter::from_fn(|| q.pop().map(|(at, e)| (at.as_nanos() / 1_000, e))).collect();
        // Ties (3 µs) break by insertion order: timer 2 armed before
        // event 3 was scheduled.
        assert_eq!(order, vec![(3, 2), (3, 3), (5, 1), (7, 5), (9, 4)]);
        assert_eq!(q.stats().stale_timer_pops, 0);
    }

    #[test]
    fn cancel_returns_payload_and_goes_stale() {
        let mut q = EventQueue::new();
        let h = q.schedule_timer_at(SimTime::from_micros(10), 42);
        assert_eq!(q.len(), 1);
        assert_eq!(q.cancel_timer(h), Some(42));
        assert_eq!(q.cancel_timer(h), None, "double cancel");
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None);
        let s = q.stats();
        assert_eq!(s.timer_cancels, 1);
        assert_eq!(s.stale_timer_pops, 0);
    }

    #[test]
    fn fired_timer_handle_is_stale() {
        let mut q = EventQueue::new();
        let h = q.schedule_timer_at(SimTime::from_micros(1), 1);
        assert_eq!(q.pop(), Some((SimTime::from_micros(1), 1)));
        assert_eq!(q.cancel_timer(h), None);
    }

    #[test]
    fn rearm_storm_keeps_pending_bounded() {
        // The tombstoning engine grew by one dead entry per re-arm; the
        // wheel must hold pending constant under arbitrarily long
        // cancel/re-arm chains.
        let mut q = EventQueue::new();
        let mut t = SimTime::ZERO;
        let mut h = q.schedule_timer_at(t + SimDuration::from_millis(2), 0u64);
        for i in 0..50_000u64 {
            t += SimDuration::from_micros(1);
            // Keep the clock moving like ACK arrivals would.
            q.schedule_at(t, u64::MAX);
            q.pop();
            assert_eq!(q.cancel_timer(h), Some(i));
            h = q.schedule_timer_at(t + SimDuration::from_millis(2), i + 1);
            assert!(q.len() <= 1, "re-arm must not tombstone");
        }
        let s = q.stats();
        assert_eq!(s.timer_cancels, 50_000);
        assert!(s.max_pending <= 2);
    }

    #[test]
    fn ghost_pops_reproduce_tombstone_counting() {
        // Legacy engine: cancel = leave a dead entry that still pops.
        // New engine: processed + ghost_pops must equal the legacy pop
        // count for the same schedule.
        let mut q = EventQueue::new();
        let h = q.schedule_timer_at(SimTime::from_micros(1), 1);
        q.schedule_at(SimTime::from_micros(2), 2);
        q.cancel_timer(h); // ghost at 1 µs
        assert_eq!(q.pop(), Some((SimTime::from_micros(2), 2)));
        assert_eq!(q.processed(), 1);
        assert_eq!(q.ghost_pops(), 1, "ghost absorbed before the 2 µs pop");
        // A ghost beyond the last dispatch is absorbed by the window
        // close, exactly where the legacy drain would have popped it.
        let h2 = q.schedule_timer_at(SimTime::from_micros(5), 3);
        q.cancel_timer(h2);
        assert_eq!(q.ghost_pops(), 1);
        q.absorb_ghosts_before(SimTime::from_micros(10));
        assert_eq!(q.ghost_pops(), 2);
    }

    #[test]
    fn peek_time_sees_wheel_timers() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(5), 1);
        q.schedule_timer_at(SimTime::from_micros(40), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(40)));
        assert_eq!(q.pop(), Some((SimTime::from_micros(40), 2)));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(5)));
    }

    #[test]
    fn peek_time_skips_cancelled_staged_timers() {
        let mut q = EventQueue::new();
        let h = q.schedule_timer_at(SimTime::from_micros(1), 1);
        q.schedule_at(SimTime::from_micros(1), 2);
        // Stage the timer by peeking, then cancel it: the phantom must
        // not be reported as the next event time's occupant.
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(1)));
        q.cancel_timer(h);
        assert_eq!(q.pop(), Some((SimTime::from_micros(1), 2)));
        assert_eq!(q.stats().stale_timer_pops, 0);
    }

    #[test]
    fn renumber_covers_timers_and_ghosts() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(3);
        let mut handles = Vec::new();
        for i in 0..20 {
            if i % 2 == 0 {
                handles.push(Some(q.schedule_timer_at(t, i)));
            } else {
                q.schedule_at(t, i);
                handles.push(None);
            }
        }
        // Cancel a few timers (ghosts), then force the renumber.
        assert_eq!(q.cancel_timer(handles[4].unwrap()), Some(4));
        assert_eq!(q.cancel_timer(handles[10].unwrap()), Some(10));
        q.force_renumber();
        q.schedule_at(t, 20);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        let expect: Vec<i32> = (0..21).filter(|&i| i != 4 && i != 10).collect();
        assert_eq!(order, expect, "FIFO ties survive renumber across sources");
        assert_eq!(q.ghost_pops() + q.processed(), 21, "ghosts renumbered too");
    }

    /// A deterministic branching workload driven identically through the
    /// serial `(time, seq)` pop path and the stamp-mode group path: every
    /// event is a pure function of its id, children go to the heap or
    /// the wheel by id, and some events cancel the oldest armed timer.
    struct Branchy {
        order: Vec<u64>,
        armed: std::collections::VecDeque<TimerHandle>,
        budget: u32,
    }

    impl Branchy {
        fn new(budget: u32) -> Branchy {
            Branchy {
                order: Vec::new(),
                armed: std::collections::VecDeque::new(),
                budget,
            }
        }

        fn on_event(&mut self, now: SimTime, id: u64, q: &mut EventQueue<u64>) {
            self.order.push(id);
            if id.is_multiple_of(7) {
                if let Some(h) = self.armed.pop_front() {
                    q.cancel_timer(h);
                }
            }
            for k in 0..1 + id % 2 {
                if self.budget == 0 {
                    return;
                }
                self.budget -= 1;
                let child = id
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407 + k);
                // Coarse enough for frequent same-time groups, spread
                // enough that >STAMP_DEPTH-deep identical admission-time
                // chains (the ambiguous case) don't occur.
                let at = now + SimDuration::from_nanos(1 + child % 19);
                if child.is_multiple_of(5) {
                    self.armed.push_back(q.schedule_timer_at(at, child));
                } else {
                    q.schedule_at(at, child);
                }
            }
        }
    }

    fn branchy_roots(q: &mut EventQueue<u64>) {
        for i in 0..24u64 {
            // Colliding times across both sources.
            let at = SimTime::from_nanos(1 + (i * 13) % 5);
            if i % 2 == 0 {
                q.schedule_at(at, i * 1000 + 3);
            } else {
                q.schedule_timer_at(at, i * 1000 + 5);
            }
        }
    }

    #[test]
    fn group_dispatch_matches_serial_pop_order() {
        // Serial reference.
        let mut serial = Branchy::new(4000);
        let mut qs = EventQueue::new();
        branchy_roots(&mut qs);
        while let Some((now, id)) = qs.pop() {
            serial.on_event(now, id, &mut qs);
        }
        qs.absorb_ghosts_before(SimTime::from_nanos(u64::MAX));

        // Stamp-mode group dispatch of the same workload.
        let mut grouped = Branchy::new(4000);
        let mut qg = EventQueue::new();
        qg.enable_stamps();
        branchy_roots(&mut qg);
        let mut scratch: Vec<(u32, crate::stamp::Stamp)> = Vec::new();
        while qg.begin_group(&mut scratch).is_some() {
            scratch.sort_by(|a, b| a.1.order(&b.1));
            let members: Vec<u32> = scratch.iter().map(|&(i, _)| i).collect();
            for i in members {
                if let Some((now, id)) = qg.dispatch_member(i) {
                    grouped.on_event(now, id, &mut qg);
                }
            }
        }
        qg.fold_stamped_ghosts_before(SimTime::from_nanos(u64::MAX));

        assert!(serial.order.len() > 1000, "workload actually branched");
        assert_eq!(grouped.order, serial.order, "dispatch order diverged");
        assert_eq!(qg.processed(), qs.processed());
        assert_eq!(qg.ghost_pops(), qs.ghost_pops(), "ghost accounting");
        assert_eq!(qg.stats().timer_cancels, qs.stats().timer_cancels);
        assert_eq!(qg.stats().stale_timer_pops, 0);
        assert_eq!(qg.len(), 0);
    }

    #[test]
    fn carried_stamps_override_insertion_order() {
        // Two same-time events inserted in the order B, A but carrying
        // stamps that order A first (a handoff admitted "late" must
        // still dispatch in its origin order).
        let mut q = EventQueue::new();
        q.enable_stamps();
        let t = SimTime::from_nanos(9);
        q.schedule_at_stamped(t, "b", crate::stamp::Stamp::root(7));
        q.schedule_at_stamped(t, "a", crate::stamp::Stamp::root(2));
        let mut scratch = Vec::new();
        q.begin_group(&mut scratch).expect("group at t=9");
        scratch.sort_by(|x, y| x.1.order(&y.1));
        let order: Vec<&str> = scratch
            .iter()
            .filter_map(|&(i, _)| q.dispatch_member(i).map(|(_, e)| e))
            .collect();
        assert_eq!(order, vec!["a", "b"]);
    }

    #[test]
    fn mid_group_cancel_skips_member() {
        // An event and a timer share t=10; the event (earlier stamp)
        // cancels the timer from inside the group. The timer member must
        // dispatch as None, its ghost logged, exactly one event
        // processed — matching what the serial engine would do.
        let mut q = EventQueue::new();
        q.enable_stamps();
        q.schedule_at(SimTime::from_nanos(10), 1u64);
        let h = q.schedule_timer_at(SimTime::from_nanos(10), 2u64);
        let mut scratch = Vec::new();
        q.begin_group(&mut scratch).expect("group at t=10");
        assert_eq!(scratch.len(), 2);
        scratch.sort_by(|a, b| a.1.order(&b.1));
        let mut seen = Vec::new();
        for &(i, _) in &scratch {
            match q.dispatch_member(i) {
                Some((_, 1)) => {
                    seen.push(1);
                    assert_eq!(q.cancel_timer(h), Some(2));
                }
                Some((_, other)) => seen.push(other),
                None => seen.push(0),
            }
        }
        assert_eq!(seen, vec![1, 0], "timer skipped after mid-group cancel");
        assert_eq!(q.processed(), 1);
        assert_eq!(q.stamped_ghosts().count(), 1);
        assert_eq!(q.fold_stamped_ghosts_before(SimTime::from_nanos(11)), 1);
        assert_eq!(q.ghost_pops(), 1);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn stamp_roots_can_be_pinned() {
        // Explicit root ordinals reorder setup admissions (shards give
        // replicated events their *global* ordinals, not local ones).
        let mut q = EventQueue::new();
        q.enable_stamps();
        let t = SimTime::from_nanos(3);
        q.stamp_next_root(5);
        q.schedule_at(t, "late");
        q.stamp_next_root(1);
        q.schedule_at(t, "early");
        let mut scratch = Vec::new();
        q.begin_group(&mut scratch).expect("group");
        scratch.sort_by(|a, b| a.1.order(&b.1));
        let order: Vec<&str> = scratch
            .iter()
            .filter_map(|&(i, _)| q.dispatch_member(i).map(|(_, e)| e))
            .collect();
        assert_eq!(order, vec!["early", "late"]);
    }

    #[test]
    fn run_until_absorbs_ghosts_in_window() {
        struct Noop;
        impl Simulation for Noop {
            type Event = u8;
            fn handle(&mut self, _: SimTime, _: u8, _: &mut EventQueue<u8>) {}
        }
        let mut q = EventQueue::new();
        let h = q.schedule_timer_at(SimTime::from_micros(50), 1);
        q.cancel_timer(h);
        // Nothing dispatches, but the ghost lies inside the window: a
        // tombstoning engine would have popped it.
        let n = run_until(&mut Noop, &mut q, SimTime::from_millis(1));
        assert_eq!(n, 0);
        assert_eq!(q.ghost_pops(), 1);
        // Ghost at/after the horizon stays (legacy would not have
        // popped it inside this window either).
        let h2 = q.schedule_timer_at(SimTime::from_millis(2), 2);
        q.cancel_timer(h2);
        run_until(&mut Noop, &mut q, SimTime::from_millis(2));
        assert_eq!(q.ghost_pops(), 1);
    }
}
