//! Event queue and simulation driver.
//!
//! Events are an application-defined type `E`; the queue orders them by
//! scheduled time, breaking ties by insertion order so that runs are fully
//! deterministic regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A model that consumes events and schedules new ones.
///
/// The driver functions [`run_until`] / [`run_while`] pop events in time
/// order and pass them to [`Simulation::handle`] together with the current
/// simulated time and the queue (for scheduling follow-up events).
pub trait Simulation {
    /// The event type dispatched through the queue.
    type Event;

    /// Processes one event at simulated time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: the BinaryHeap is a max-heap, we want the
        // earliest (time, seq) on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use dcn_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime::from_nanos(5), "b");
/// q.schedule_at(SimTime::from_nanos(1), "a");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(5), "b")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: SimTime,
    processed: u64,
}

impl<E: std::fmt::Debug> std::fmt::Debug for Scheduled<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduled")
            .field("at", &self.at)
            .field("seq", &self.seq)
            .field("event", &self.event)
            .finish()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a model bug; this is checked in debug
    /// builds and clamped to `now` in release builds.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling in the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_after(&mut self, now: SimTime, delay: SimDuration, event: E) {
        self.schedule_at(now + delay, event);
    }

    /// Pops the earliest event, advancing the queue's clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        self.processed += 1;
        Some((s.at, s.event))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// The current simulated time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events processed so far (for throughput reporting).
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

/// Runs `sim` until the queue drains or the next event is at or past
/// `horizon`. Returns the number of events processed.
///
/// Events scheduled exactly at `horizon` are *not* processed, so
/// `run_until(.., t)` covers the half-open interval `[start, t)`.
pub fn run_until<S: Simulation>(
    sim: &mut S,
    queue: &mut EventQueue<S::Event>,
    horizon: SimTime,
) -> u64 {
    let mut n = 0;
    while let Some(at) = queue.peek_time() {
        if at >= horizon {
            break;
        }
        let (now, ev) = queue.pop().expect("peeked event must pop");
        sim.handle(now, ev, queue);
        n += 1;
    }
    n
}

/// Runs `sim` until the queue drains or `keep_going` returns false
/// (checked before each event). Returns the number of events processed.
pub fn run_while<S: Simulation>(
    sim: &mut S,
    queue: &mut EventQueue<S::Event>,
    mut keep_going: impl FnMut(&S, SimTime) -> bool,
) -> u64 {
    let mut n = 0;
    while let Some(at) = queue.peek_time() {
        if !keep_going(sim, at) {
            break;
        }
        let (now, ev) = queue.pop().expect("peeked event must pop");
        sim.handle(now, ev, queue);
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_tie_breaking() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn time_ordering() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(30), 3);
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(42));
    }

    struct Chain {
        hops: u32,
        last: SimTime,
    }

    impl Simulation for Chain {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, q: &mut EventQueue<u32>) {
            self.hops = ev;
            self.last = now;
            if ev < 100 {
                q.schedule_after(now, SimDuration::from_nanos(10), ev + 1);
            }
        }
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Chain {
            hops: 0,
            last: SimTime::ZERO,
        };
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, 1);
        // Events at 0,10,...; horizon 55 processes t=0..50 (6 events).
        let n = run_until(&mut sim, &mut q, SimTime::from_nanos(55));
        assert_eq!(n, 6);
        assert_eq!(sim.hops, 6);
        assert_eq!(sim.last, SimTime::from_nanos(50));
        // Event exactly at the horizon is not processed.
        q.schedule_at(SimTime::from_nanos(55), 999);
        let n2 = run_until(&mut sim, &mut q, SimTime::from_nanos(55));
        assert_eq!(n2, 0);
    }

    #[test]
    fn run_while_predicate() {
        let mut sim = Chain {
            hops: 0,
            last: SimTime::ZERO,
        };
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, 1);
        let n = run_while(&mut sim, &mut q, |s, _| s.hops < 5);
        assert_eq!(n, 5);
    }

    #[test]
    fn processed_counter() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(1), ());
        q.schedule_at(SimTime::from_nanos(2), ());
        q.pop();
        q.pop();
        assert_eq!(q.processed(), 2);
    }
}
