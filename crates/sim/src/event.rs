//! Event queue and simulation driver.
//!
//! Events are an application-defined type `E`; the queue orders them by
//! scheduled time, breaking ties by insertion order so that runs are fully
//! deterministic regardless of heap internals.
//!
//! # Internals: indexed 4-ary heap + event slab
//!
//! The priority queue is a hand-rolled 4-ary array heap whose entries are
//! 16 bytes — the scheduled [`SimTime`] plus a packed `(seq, slot)` key —
//! while the event payloads live out-of-line in a generational [`Slab`]
//! with an intrusive free-list. Two consequences:
//!
//! * **Sifts move 16 bytes**, not `16 + size_of::<E>()` bytes. With a
//!   fabric event inlining a full packet (~100 B) the std
//!   `BinaryHeap<(time, seq, E)>` moved ~7× more memory per level.
//! * **Steady-state dispatch allocates nothing**: the heap `Vec` and the
//!   slab only grow to the run's high-water mark of pending events, and
//!   the slab's free-list recycles slots LIFO after that.
//!
//! A 4-ary layout halves tree depth versus a binary heap (log₄ vs log₂),
//! trading two extra comparisons per level for half the cache-missing
//! hops — the standard win for small keys (see `Slab` for the payloads).
//!
//! Determinism is unchanged: entries are totally ordered by
//! `(time, seq)` where `seq` is the insertion number, so `pop` returns
//! exactly the sequence the previous `BinaryHeap` implementation did
//! (verified by the differential property tests in
//! `crates/sim/tests/event_queue_differential.rs`).

use crate::slab::Slab;
use crate::time::{SimDuration, SimTime};

/// A model that consumes events and schedules new ones.
///
/// The driver functions [`run_until`] / [`run_while`] pop events in time
/// order and pass them to [`Simulation::handle`] together with the current
/// simulated time and the queue (for scheduling follow-up events).
pub trait Simulation {
    /// The event type dispatched through the queue.
    type Event;

    /// Processes one event at simulated time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// One heap entry: 16 bytes, ordered by `(at, ord)`.
///
/// `ord` packs `(seq << 32) | slot`: the high 32 bits are the insertion
/// sequence number (the FIFO tie-break for equal times), the low 32 bits
/// address the payload's slab slot. Comparing `ord` as one `u64` compares
/// `seq` first, and live entries always differ in `seq`, so the total
/// order is exactly `(at, seq)`.
#[derive(Debug, Clone, Copy)]
struct Entry {
    at: SimTime,
    ord: u64,
}

impl Entry {
    #[inline]
    fn precedes(self, other: Entry) -> bool {
        (self.at, self.ord) < (other.at, other.ord)
    }

    #[inline]
    fn slot(self) -> u32 {
        (self.ord & u64::from(u32::MAX)) as u32
    }
}

/// Scheduler counters for perf reporting and model-bug detection.
///
/// Returned by [`EventQueue::stats`]; all plain data, so results can ship
/// it across threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events currently pending.
    pub pending: usize,
    /// High-water mark of pending events over the queue's lifetime.
    pub max_pending: usize,
    /// Heap levels at the high-water mark (sift work is bounded by this).
    pub max_depth: u32,
    /// Bytes moved per sift step: the size of one heap entry.
    pub entry_bytes: usize,
    /// Slots ever allocated in the event slab (its high-water mark).
    pub slab_capacity: usize,
    /// Total events popped.
    pub processed: u64,
    /// Times `schedule_at` clamped a past timestamp up to `now`. Always
    /// zero in a correct model; see [`EventQueue::past_clamps`].
    pub past_clamps: u64,
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use dcn_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime::from_nanos(5), "b");
/// q.schedule_at(SimTime::from_nanos(1), "a");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(5), "b")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: Vec<Entry>,
    slab: Slab<E>,
    /// Next insertion sequence number (the FIFO tie-break).
    seq: u32,
    now: SimTime,
    processed: u64,
    past_clamps: u64,
    max_pending: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slab: Slab::new(),
            seq: 0,
            now: SimTime::ZERO,
            processed: 0,
            past_clamps: 0,
            max_pending: 0,
        }
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a model bug; the time is clamped to
    /// `now` and the incident is counted in [`EventQueue::past_clamps`],
    /// which correctness tests assert to be zero — a latent model bug
    /// cannot hide behind the clamp.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = if at < self.now {
            self.past_clamps += 1;
            self.now
        } else {
            at
        };
        if self.seq == u32::MAX {
            self.renumber();
        }
        let handle = self.slab.insert(event);
        let ord = (u64::from(self.seq) << 32) | u64::from(handle.slot);
        self.seq += 1;
        self.heap.push(Entry { at, ord });
        self.sift_up(self.heap.len() - 1);
        self.max_pending = self.max_pending.max(self.heap.len());
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_after(&mut self, now: SimTime, delay: SimDuration, event: E) {
        self.schedule_at(now + delay, event);
    }

    /// Pops the earliest event, advancing the queue's clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let root = *self.heap.first()?;
        let last = self.heap.pop().expect("peeked heap is non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
        let event = self.slab.take(root.slot());
        self.now = root.at;
        self.processed += 1;
        Some((root.at, event))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.at)
    }

    /// The current simulated time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events processed so far (for throughput reporting).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// How many times [`EventQueue::schedule_at`] was handed a time
    /// before `now` and clamped it. A correct model never schedules into
    /// the past, so this is asserted zero by the golden-digest test.
    pub fn past_clamps(&self) -> u64 {
        self.past_clamps
    }

    /// Scheduler counters: pending high-water mark, heap depth, entry
    /// size, slab capacity, processed events and past-time clamps.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            pending: self.heap.len(),
            max_pending: self.max_pending,
            max_depth: depth_4ary(self.max_pending),
            entry_bytes: std::mem::size_of::<Entry>(),
            slab_capacity: self.slab.capacity(),
            processed: self.processed,
            past_clamps: self.past_clamps,
        }
    }

    // ---- 4-ary heap internals -----------------------------------------

    /// Moves the entry at `i` up until its parent precedes it.
    fn sift_up(&mut self, mut i: usize) {
        let e = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 4;
            if e.precedes(self.heap[parent]) {
                self.heap[i] = self.heap[parent];
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = e;
    }

    /// Moves the entry at `i` down until it precedes all its children.
    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        let e = self.heap[i];
        loop {
            let first = 4 * i + 1;
            if first >= n {
                break;
            }
            // Smallest of up to four children.
            let mut min = first;
            let last = (first + 4).min(n);
            for c in first + 1..last {
                if self.heap[c].precedes(self.heap[min]) {
                    min = c;
                }
            }
            if self.heap[min].precedes(e) {
                self.heap[i] = self.heap[min];
                i = min;
            } else {
                break;
            }
        }
        self.heap[i] = e;
    }

    /// Compacts the 32-bit sequence counter by reassigning pending
    /// entries the numbers `0..len` in their existing order.
    ///
    /// Triggered once per 2³² insertions — in practice never for the
    /// workloads in this repository, but it makes the u32 tie-break safe
    /// at any run length. Relative `(time, seq)` order is preserved (the
    /// reassignment is monotone in `seq`), so pop order is unchanged;
    /// this is covered by `force_renumber` tests.
    fn renumber(&mut self) {
        // Pending entries hold distinct live seqs; sorting by `ord`
        // sorts by seq (high bits) and thus by insertion order.
        self.heap.sort_unstable_by_key(|e| e.ord);
        for (i, e) in self.heap.iter_mut().enumerate() {
            e.ord = ((i as u64) << 32) | u64::from(e.slot());
        }
        self.seq = u32::try_from(self.heap.len()).expect("pending fits u32");
        // Re-establish the heap property bottom-up (O(n)).
        for i in (0..self.heap.len() / 4 + 1).rev() {
            if i < self.heap.len() {
                self.sift_down(i);
            }
        }
    }

    /// Test hook: forces the rare sequence-renumber path.
    #[doc(hidden)]
    pub fn force_renumber(&mut self) {
        self.renumber();
    }
}

/// Levels of a 4-ary heap holding `n` entries (0 for an empty heap).
fn depth_4ary(n: usize) -> u32 {
    let mut depth = 0;
    let mut level_first = 0usize; // index of the first node at `depth`
    let mut level_size = 1usize;
    while level_first < n {
        depth += 1;
        level_first += level_size;
        level_size *= 4;
    }
    depth
}

/// Runs `sim` until the queue drains or the next event is at or past
/// `horizon`. Returns the number of events processed.
///
/// Events scheduled exactly at `horizon` are *not* processed, so
/// `run_until(.., t)` covers the half-open interval `[start, t)`.
pub fn run_until<S: Simulation>(
    sim: &mut S,
    queue: &mut EventQueue<S::Event>,
    horizon: SimTime,
) -> u64 {
    let mut n = 0;
    while let Some(at) = queue.peek_time() {
        if at >= horizon {
            break;
        }
        let (now, ev) = queue.pop().expect("peeked event must pop");
        sim.handle(now, ev, queue);
        n += 1;
    }
    n
}

/// Runs `sim` until the queue drains or `keep_going` returns false
/// (checked before each event). Returns the number of events processed.
pub fn run_while<S: Simulation>(
    sim: &mut S,
    queue: &mut EventQueue<S::Event>,
    mut keep_going: impl FnMut(&S, SimTime) -> bool,
) -> u64 {
    let mut n = 0;
    while let Some(at) = queue.peek_time() {
        if !keep_going(sim, at) {
            break;
        }
        let (now, ev) = queue.pop().expect("peeked event must pop");
        sim.handle(now, ev, queue);
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_is_16_bytes() {
        assert_eq!(std::mem::size_of::<Entry>(), 16);
    }

    #[test]
    fn fifo_tie_breaking() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn time_ordering() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(30), 3);
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(42));
    }

    struct Chain {
        hops: u32,
        last: SimTime,
    }

    impl Simulation for Chain {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, q: &mut EventQueue<u32>) {
            self.hops = ev;
            self.last = now;
            if ev < 100 {
                q.schedule_after(now, SimDuration::from_nanos(10), ev + 1);
            }
        }
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Chain {
            hops: 0,
            last: SimTime::ZERO,
        };
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, 1);
        // Events at 0,10,...; horizon 55 processes t=0..50 (6 events).
        let n = run_until(&mut sim, &mut q, SimTime::from_nanos(55));
        assert_eq!(n, 6);
        assert_eq!(sim.hops, 6);
        assert_eq!(sim.last, SimTime::from_nanos(50));
        // Event exactly at the horizon is not processed.
        q.schedule_at(SimTime::from_nanos(55), 999);
        let n2 = run_until(&mut sim, &mut q, SimTime::from_nanos(55));
        assert_eq!(n2, 0);
    }

    #[test]
    fn run_while_predicate() {
        let mut sim = Chain {
            hops: 0,
            last: SimTime::ZERO,
        };
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, 1);
        let n = run_while(&mut sim, &mut q, |s, _| s.hops < 5);
        assert_eq!(n, 5);
    }

    #[test]
    fn processed_counter() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(1), ());
        q.schedule_at(SimTime::from_nanos(2), ());
        q.pop();
        q.pop();
        assert_eq!(q.processed(), 2);
    }

    #[test]
    fn past_scheduling_clamps_and_counts() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(100), 1);
        q.pop();
        assert_eq!(q.past_clamps(), 0);
        // now = 100; scheduling at 40 is a (counted) model bug.
        q.schedule_at(SimTime::from_nanos(40), 2);
        assert_eq!(q.past_clamps(), 1);
        let (at, ev) = q.pop().expect("clamped event pops");
        assert_eq!(ev, 2);
        assert_eq!(at, SimTime::from_nanos(100), "clamped up to now");
        // Scheduling exactly at `now` is legal and not counted.
        q.schedule_at(SimTime::from_nanos(100), 3);
        assert_eq!(q.past_clamps(), 1);
    }

    #[test]
    fn stats_report_high_water_mark_and_entry_size() {
        let mut q = EventQueue::new();
        for i in 0..21u64 {
            q.schedule_at(SimTime::from_nanos(i), i);
        }
        for _ in 0..21 {
            q.pop();
        }
        let s = q.stats();
        assert_eq!(s.pending, 0);
        assert_eq!(s.max_pending, 21);
        // 21 entries: level sizes 1 + 4 + 16 = 21 → 3 levels.
        assert_eq!(s.max_depth, 3);
        assert_eq!(s.entry_bytes, 16);
        assert_eq!(s.slab_capacity, 21);
        assert_eq!(s.processed, 21);
        assert_eq!(s.past_clamps, 0);
    }

    #[test]
    fn depth_4ary_levels() {
        assert_eq!(depth_4ary(0), 0);
        assert_eq!(depth_4ary(1), 1);
        assert_eq!(depth_4ary(5), 2);
        assert_eq!(depth_4ary(21), 3);
        assert_eq!(depth_4ary(22), 4);
    }

    #[test]
    fn renumber_preserves_pop_order() {
        // Heavy ties across a forced renumber: FIFO order must survive
        // the seq compaction.
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(50);
        for i in 0..40 {
            q.schedule_at(t, i);
            if i == 17 {
                q.force_renumber();
            }
        }
        q.force_renumber();
        for i in 40..60 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..60).collect::<Vec<_>>());
    }

    #[test]
    fn renumber_with_mixed_times_keeps_total_order() {
        let mut q = EventQueue::new();
        for i in 0..100u64 {
            q.schedule_at(SimTime::from_nanos((i * 37) % 10), i);
        }
        q.force_renumber();
        for i in 100..200u64 {
            q.schedule_at(SimTime::from_nanos((i * 37) % 10), i);
        }
        let mut popped = Vec::new();
        while let Some((at, ev)) = q.pop() {
            popped.push((at, ev));
        }
        // Reference: stable sort by time of the same schedule (insertion
        // order is the tie-break, which a stable sort preserves).
        let mut expect: Vec<(SimTime, u64)> = (0..200u64)
            .map(|i| (SimTime::from_nanos((i * 37) % 10), i))
            .collect();
        expect.sort_by_key(|&(at, _)| at);
        assert_eq!(popped, expect);
    }

    #[test]
    fn steady_state_dispatch_reuses_heap_and_slab_storage() {
        // A self-rescheduling workload with bounded pending events: after
        // warm-up, neither the heap nor the slab may grow — steady-state
        // dispatch is allocation-free.
        let mut q = EventQueue::new();
        for i in 0..64u64 {
            q.schedule_at(SimTime::from_nanos(i), i);
        }
        let warm_cap = q.stats().slab_capacity;
        for _ in 0..100_000 {
            let (now, ev) = q.pop().expect("chain never drains");
            q.schedule_after(now, SimDuration::from_nanos(1 + ev % 7), ev);
        }
        let s = q.stats();
        assert_eq!(s.pending, 64);
        assert_eq!(s.max_pending, 64);
        assert_eq!(
            s.slab_capacity, warm_cap,
            "slab must recycle slots, not allocate"
        );
    }
}
