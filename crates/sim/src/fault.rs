//! Deterministic fault injection: a typed, seeded schedule of failures
//! that compiles into ordinary event-queue entries.
//!
//! Like the flight recorder, this module is defined on plain integer
//! identifiers (`u32` link/node ids, `u16` ports, `u8` priorities) so it
//! can live in the dependency-free base crate; the fabric layer maps the
//! ids onto its typed topology when it executes each fault.
//!
//! Determinism contract: a [`FaultSchedule`] is plain data fixed before
//! the simulation starts. The fabric turns every entry into a regular
//! event at schedule-build time, so fault arrival order is governed by
//! the same `(time, seq)` FIFO tie-break as every other event and runs
//! are bit-identical across `--jobs` settings. An empty schedule injects
//! no events and draws no random numbers — a zero-fault run is
//! byte-identical to a build without this module.

use crate::time::{SimDuration, SimTime};

/// One typed fault, applied at its scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Take a link down: packets queued to it are discharged and
    /// dropped, packets on the wire are lost, routing excludes it.
    LinkDown {
        /// Link id (the topology's `LinkId::index()`).
        link: u32,
    },
    /// Bring a link back up: routing re-includes it and PFC state on
    /// both ends resets, as a real port renegotiation would.
    LinkUp {
        /// Link id.
        link: u32,
    },
    /// Start corrupting packets on a link with the given bit-error
    /// rate. A packet of `n` bits survives with probability
    /// `(1 - ber)^n`; corrupted packets are discarded at the receiver.
    CorruptionStart {
        /// Link id.
        link: u32,
        /// Per-bit error probability (tiny; e.g. `1e-7`).
        ber: f64,
    },
    /// Stop corrupting packets on a link.
    CorruptionEnd {
        /// Link id.
        link: u32,
    },
    /// Assert a PFC XOFF against one egress queue of a device and hold
    /// it (as a babbling or wedged peer would). Only the paired
    /// [`FaultEvent::PauseRelease`] — or the PFC storm watchdog —
    /// clears it.
    PauseStuck {
        /// Device (switch or host) whose egress queue is paused.
        node: u32,
        /// Egress port held paused.
        port: u16,
        /// Priority held paused.
        prio: u8,
    },
    /// Release a previously stuck pause (no-op if the watchdog already
    /// force-resumed the queue).
    PauseRelease {
        /// Device whose egress queue resumes.
        node: u32,
        /// Egress port.
        port: u16,
        /// Priority.
        prio: u8,
    },
}

/// A fault with its injection time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledFault {
    /// When the fault is applied.
    pub at: SimTime,
    /// What happens.
    pub fault: FaultEvent,
}

/// An ordered list of [`ScheduledFault`]s, fixed before the run starts.
///
/// Entries need not be pushed in time order — the event queue orders
/// them — but helpers emit cause before effect (down before up) so
/// same-instant pairs resolve deterministically by insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<ScheduledFault>,
}

impl FaultSchedule {
    /// The empty schedule: injects nothing, perturbs nothing.
    pub fn none() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Adds one fault at `at`.
    pub fn push(&mut self, at: SimTime, fault: FaultEvent) -> &mut Self {
        self.events.push(ScheduledFault { at, fault });
        self
    }

    /// A link goes down at `at` and comes back after `outage`.
    pub fn link_flap(&mut self, link: u32, at: SimTime, outage: SimDuration) -> &mut Self {
        self.push(at, FaultEvent::LinkDown { link });
        self.push(at + outage, FaultEvent::LinkUp { link });
        self
    }

    /// A link corrupts packets at bit-error rate `ber` for `window`.
    pub fn corruption_window(
        &mut self,
        link: u32,
        at: SimTime,
        window: SimDuration,
        ber: f64,
    ) -> &mut Self {
        self.push(at, FaultEvent::CorruptionStart { link, ber });
        self.push(at + window, FaultEvent::CorruptionEnd { link });
        self
    }

    /// A PFC XOFF sticks against `(node, port, prio)` at `at` and is
    /// released only after `hold` (or earlier by the watchdog).
    pub fn pause_stuck(
        &mut self,
        node: u32,
        port: u16,
        prio: u8,
        at: SimTime,
        hold: SimDuration,
    ) -> &mut Self {
        self.push(at, FaultEvent::PauseStuck { node, port, prio });
        self.push(at + hold, FaultEvent::PauseRelease { node, port, prio });
        self
    }

    /// The scheduled faults, in insertion order.
    pub fn events(&self) -> &[ScheduledFault] {
        &self.events
    }

    /// Whether the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_is_empty() {
        let s = FaultSchedule::none();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.events(), &[]);
    }

    #[test]
    fn link_flap_compiles_to_down_then_up() {
        let mut s = FaultSchedule::none();
        s.link_flap(3, SimTime::from_micros(100), SimDuration::from_millis(1));
        assert_eq!(s.len(), 2);
        assert_eq!(
            s.events()[0],
            ScheduledFault {
                at: SimTime::from_micros(100),
                fault: FaultEvent::LinkDown { link: 3 },
            }
        );
        assert_eq!(
            s.events()[1],
            ScheduledFault {
                at: SimTime::from_micros(1_100),
                fault: FaultEvent::LinkUp { link: 3 },
            }
        );
    }

    #[test]
    fn pause_stuck_compiles_to_assert_then_release() {
        let mut s = FaultSchedule::none();
        s.pause_stuck(
            7,
            2,
            3,
            SimTime::from_micros(50),
            SimDuration::from_millis(4),
        );
        assert_eq!(s.len(), 2);
        assert!(matches!(
            s.events()[0].fault,
            FaultEvent::PauseStuck {
                node: 7,
                port: 2,
                prio: 3
            }
        ));
        assert!(matches!(
            s.events()[1].fault,
            FaultEvent::PauseRelease { .. }
        ));
        assert_eq!(s.events()[1].at, SimTime::from_micros(4_050));
    }

    #[test]
    fn corruption_window_brackets_the_ber() {
        let mut s = FaultSchedule::none();
        s.corruption_window(
            1,
            SimTime::from_micros(10),
            SimDuration::from_micros(500),
            1e-7,
        );
        match s.events()[0].fault {
            FaultEvent::CorruptionStart { link, ber } => {
                assert_eq!(link, 1);
                assert!((ber - 1e-7).abs() < 1e-18);
            }
            other => panic!("expected CorruptionStart, got {other:?}"),
        }
        assert_eq!(
            s.events()[1],
            ScheduledFault {
                at: SimTime::from_micros(510),
                fault: FaultEvent::CorruptionEnd { link: 1 },
            }
        );
    }

    #[test]
    fn chained_builders_accumulate() {
        let mut s = FaultSchedule::none();
        s.link_flap(0, SimTime::from_micros(1), SimDuration::from_micros(10))
            .pause_stuck(
                1,
                0,
                3,
                SimTime::from_micros(2),
                SimDuration::from_micros(20),
            )
            .corruption_window(
                2,
                SimTime::from_micros(3),
                SimDuration::from_micros(30),
                1e-6,
            );
        assert_eq!(s.len(), 6);
    }
}
