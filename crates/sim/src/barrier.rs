//! A sense-reversing spin barrier for the sharded executor.
//!
//! A paper-scale sharded run crosses hundreds of thousands of
//! microsecond-wide synchronization windows, two barriers each.
//! `std::sync::Barrier` (mutex + condvar) costs several microseconds
//! per crossing at that cadence; this spin barrier stays in the
//! hundreds of nanoseconds when every participant has a core, and
//! yields to the scheduler when it doesn't.

use std::sync::atomic::{AtomicU32, Ordering};

/// A reusable sense-reversing barrier for a fixed set of participants.
#[derive(Debug)]
pub struct SpinBarrier {
    parties: u32,
    /// Spin iterations before falling back to `yield_now`. Sized at
    /// construction: when the machine has a core per participant a long
    /// spin wins (the straggler is running *right now*), but when
    /// oversubscribed every spin cycle is stolen from the straggler, so
    /// the limit drops to almost nothing.
    spin_limit: u32,
    arrived: AtomicU32,
    sense: AtomicU32,
}

impl SpinBarrier {
    /// Creates a barrier for `parties` participants (≥ 1).
    pub fn new(parties: usize) -> SpinBarrier {
        assert!(parties >= 1, "barrier needs at least one participant");
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let spin_limit = if cores >= parties { 1 << 14 } else { 1 << 6 };
        SpinBarrier {
            parties: parties as u32,
            spin_limit,
            arrived: AtomicU32::new(0),
            sense: AtomicU32::new(0),
        }
    }

    /// Blocks until all participants have called `wait`. Returns `true`
    /// on exactly one participant per crossing (the last to arrive).
    pub fn wait(&self) -> bool {
        let sense = self.sense.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Last arrival: reset the count, flip the sense to release.
            self.arrived.store(0, Ordering::Release);
            self.sense.store(sense.wrapping_add(1), Ordering::Release);
            return true;
        }
        let mut spins = 0u32;
        while self.sense.load(Ordering::Acquire) == sense {
            spins = spins.wrapping_add(1);
            if spins < self.spin_limit {
                std::hint::spin_loop();
            } else {
                // Oversubscribed (more shards than cores): let the
                // straggler run instead of burning its core.
                std::thread::yield_now();
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_party_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..1000 {
            assert!(b.wait());
        }
    }

    #[test]
    fn synchronizes_phases_across_threads() {
        const THREADS: usize = 4;
        const ROUNDS: u64 = 2000;
        let barrier = SpinBarrier::new(THREADS);
        let phase = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for round in 0..ROUNDS {
                        // Everyone must observe the phase of the current
                        // round before anyone moves to the next.
                        assert_eq!(phase.load(Ordering::SeqCst), round);
                        if barrier.wait() {
                            phase.store(round + 1, Ordering::SeqCst);
                        }
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(phase.load(Ordering::SeqCst), ROUNDS);
    }

    #[test]
    fn exactly_one_leader_per_crossing() {
        const THREADS: usize = 3;
        const ROUNDS: usize = 500;
        let barrier = SpinBarrier::new(THREADS);
        let leaders = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..ROUNDS {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), ROUNDS as u64);
    }
}
