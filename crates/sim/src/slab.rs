//! Generational slab storage for in-flight events.
//!
//! The event queue's heap keeps only compact 16-byte `(time, key)`
//! entries; the event payloads themselves live here, addressed by slot
//! index. Freed slots are chained through an intrusive free-list (the
//! `next` pointer lives inside the vacant slot itself), so steady-state
//! insert/remove cycles perform **zero heap allocations**: a run only
//! allocates while growing to its high-water mark of pending events.
//!
//! Each slot carries a generation counter, bumped on every free. A
//! [`SlotHandle`] captures the generation at insert time, and the
//! checked [`Slab::remove`] refuses a handle whose generation is stale —
//! so a handle that outlives its slot (e.g. through a future
//! event-cancellation API) is detected instead of silently returning an
//! unrelated event that reused the slot.

/// Sentinel for "no next free slot" in the intrusive free-list.
const NIL: u32 = u32::MAX;

/// A reference to a slab slot, valid until that slot is freed.
///
/// The generation makes staleness detectable: once the slot is removed
/// and reused, the handle no longer resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotHandle {
    /// Slot index within the slab.
    pub slot: u32,
    /// Generation of the slot at insert time.
    pub generation: u32,
}

#[derive(Debug)]
enum SlotState<E> {
    Occupied(E),
    Free { next: u32 },
}

#[derive(Debug)]
struct Slot<E> {
    generation: u32,
    state: SlotState<E>,
}

/// A generational slab with an intrusive free-list.
///
/// # Example
///
/// ```
/// use dcn_sim::Slab;
/// let mut slab: Slab<&str> = Slab::new();
/// let a = slab.insert("a");
/// assert_eq!(slab.remove(a), Some("a"));
/// let b = slab.insert("b");
/// assert_eq!(b.slot, a.slot, "freed slot is reused first");
/// assert_ne!(b.generation, a.generation, "…at a new generation");
/// assert_eq!(slab.remove(a), None, "stale handle no longer resolves");
/// ```
#[derive(Debug)]
pub struct Slab<E> {
    slots: Vec<Slot<E>>,
    free_head: u32,
    len: usize,
}

impl<E> Default for Slab<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Slab<E> {
    /// Creates an empty slab (no allocation until the first insert).
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free_head: NIL,
            len: 0,
        }
    }

    /// Creates an empty slab with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(capacity),
            free_head: NIL,
            len: 0,
        }
    }

    /// Stores `event`, reusing the most recently freed slot if one
    /// exists (LIFO keeps the hot slots cache-resident).
    pub fn insert(&mut self, event: E) -> SlotHandle {
        self.len += 1;
        if self.free_head != NIL {
            let slot = self.free_head;
            let s = &mut self.slots[slot as usize];
            let SlotState::Free { next } = s.state else {
                unreachable!("free-list head points at an occupied slot");
            };
            self.free_head = next;
            s.state = SlotState::Occupied(event);
            SlotHandle {
                slot,
                generation: s.generation,
            }
        } else {
            let slot = u32::try_from(self.slots.len()).expect("slab capped at u32 slots");
            assert!(slot != NIL, "slab full: 2^32 - 1 live events");
            self.slots.push(Slot {
                generation: 0,
                state: SlotState::Occupied(event),
            });
            SlotHandle {
                slot,
                generation: 0,
            }
        }
    }

    /// Removes and returns the event behind `handle`, or `None` if the
    /// handle is stale (its slot was freed, and possibly reused at a
    /// newer generation, since the handle was issued).
    pub fn remove(&mut self, handle: SlotHandle) -> Option<E> {
        let s = self.slots.get_mut(handle.slot as usize)?;
        if s.generation != handle.generation || matches!(s.state, SlotState::Free { .. }) {
            return None;
        }
        Some(self.free_slot(handle.slot))
    }

    /// Removes and returns the event in `slot`, which must be occupied.
    ///
    /// This is the event queue's pop path: the queue holds exactly one
    /// heap entry per occupied slot, so liveness is guaranteed by
    /// construction and no generation needs to travel through the heap.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is vacant or out of bounds — either indicates
    /// heap/slab desynchronization, which must not be ignored.
    pub fn take(&mut self, slot: u32) -> E {
        assert!(
            matches!(
                self.slots.get(slot as usize),
                Some(Slot {
                    state: SlotState::Occupied(_),
                    ..
                })
            ),
            "slab slot {slot} is not occupied"
        );
        self.free_slot(slot)
    }

    fn free_slot(&mut self, slot: u32) -> E {
        let s = &mut self.slots[slot as usize];
        let state = std::mem::replace(
            &mut s.state,
            SlotState::Free {
                next: self.free_head,
            },
        );
        let SlotState::Occupied(event) = state else {
            unreachable!("free_slot called on a vacant slot");
        };
        s.generation = s.generation.wrapping_add(1);
        self.free_head = slot;
        self.len -= 1;
        event
    }

    /// Live (occupied) slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots ever allocated (occupied + free-listed). This is the
    /// slab's high-water mark of concurrently live events; it only grows.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut slab = Slab::new();
        let h = slab.insert(42u64);
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.remove(h), Some(42));
        assert_eq!(slab.len(), 0);
        assert!(slab.is_empty());
    }

    #[test]
    fn freed_slot_is_reused_lifo() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        let c = slab.insert("c");
        assert_eq!(slab.capacity(), 3);
        slab.remove(b).unwrap();
        slab.remove(a).unwrap();
        // LIFO: 'a' was freed last, so it is reused first.
        let d = slab.insert("d");
        assert_eq!(d.slot, a.slot);
        let e = slab.insert("e");
        assert_eq!(e.slot, b.slot);
        // No new slots were allocated for the reuses.
        assert_eq!(slab.capacity(), 3);
        assert_eq!(slab.remove(c), Some("c"));
        assert_eq!(slab.remove(d), Some("d"));
        assert_eq!(slab.remove(e), Some("e"));
    }

    #[test]
    fn stale_generation_is_rejected() {
        let mut slab = Slab::new();
        let a = slab.insert(1u32);
        assert_eq!(slab.remove(a), Some(1));
        // Same slot, new generation.
        let b = slab.insert(2u32);
        assert_eq!(b.slot, a.slot);
        assert_ne!(b.generation, a.generation);
        // The stale handle must not resolve to the new occupant.
        assert_eq!(slab.remove(a), None);
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.remove(b), Some(2));
        // Double-remove of a vacant slot is also rejected.
        assert_eq!(slab.remove(b), None);
    }

    #[test]
    fn take_pops_occupied_slot() {
        let mut slab = Slab::new();
        let a = slab.insert(7i32);
        assert_eq!(slab.take(a.slot), 7);
        assert!(slab.is_empty());
    }

    #[test]
    #[should_panic(expected = "not occupied")]
    fn take_panics_on_vacant_slot() {
        let mut slab = Slab::new();
        let a = slab.insert(7i32);
        slab.take(a.slot);
        slab.take(a.slot); // vacant now: heap/slab desync must be loud
    }

    #[test]
    fn steady_state_churn_does_not_grow_capacity() {
        let mut slab = Slab::with_capacity(8);
        let mut live: Vec<SlotHandle> = (0..8).map(|i| slab.insert(i)).collect();
        let cap = slab.capacity();
        for round in 0..10_000u64 {
            let h = live.remove((round % 7) as usize);
            slab.remove(h).unwrap();
            live.push(slab.insert(round));
        }
        assert_eq!(slab.capacity(), cap, "free-list reuse must cover churn");
        assert_eq!(slab.len(), 8);
    }
}
