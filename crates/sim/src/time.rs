//! Simulation clock types.
//!
//! [`SimTime`] is an absolute instant measured in integer nanoseconds since
//! the start of the simulation; [`SimDuration`] is a span between two
//! instants. Integer nanoseconds keep event ordering exact and runs
//! reproducible — no floating-point drift.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute simulation instant, in nanoseconds since simulation start.
///
/// # Example
///
/// ```
/// use dcn_sim::{SimDuration, SimTime};
/// let t = SimTime::from_micros(3) + SimDuration::from_nanos(500);
/// assert_eq!(t.as_nanos(), 3_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use dcn_sim::SimDuration;
/// assert_eq!(SimDuration::from_micros(2).as_secs_f64(), 2e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a span from a float number of seconds, rounding to the
    /// nearest nanosecond and saturating at the representable range.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or NaN.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs >= 0.0, "duration must be non-negative, got {secs}");
        SimDuration((secs * 1e9).round().min(u64::MAX as f64) as u64)
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the span by an integer count (e.g. packets × per-packet
    /// serialization time), saturating on overflow.
    pub fn saturating_mul(self, count: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(count))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering isn't guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative duration: {self} - {rhs}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative duration: {self} - {rhs}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.6}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::from_micros(5);
        let d = SimDuration::from_nanos(123);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_nanos(10));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1e-9), SimDuration::from_nanos(1));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=3).map(SimDuration::from_nanos).sum();
        assert_eq!(total, SimDuration::from_nanos(6));
    }
}
