//! Typed quantities: byte counts and link rates.
//!
//! Buffer accounting throughout the switch model is in [`Bytes`]; link and
//! drain rates are [`BitRate`]s. Keeping these as newtypes prevents the
//! classic bits/bytes mix-up in threshold formulas.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use crate::time::SimDuration;

/// A byte count (buffer occupancy, packet size, threshold...).
///
/// # Example
///
/// ```
/// use dcn_sim::Bytes;
/// let mtu = Bytes::new(1_048);
/// assert_eq!(mtu + mtu, Bytes::new(2_096));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);
    /// The largest representable count; useful as an "unlimited" threshold.
    pub const MAX: Bytes = Bytes(u64::MAX);

    /// Creates a byte count.
    pub const fn new(n: u64) -> Self {
        Bytes(n)
    }

    /// Creates a byte count from kilobytes (×1000).
    pub const fn from_kb(kb: u64) -> Self {
        Bytes(kb * 1_000)
    }

    /// Creates a byte count from megabytes (×10⁶).
    pub const fn from_mb(mb: u64) -> Self {
        Bytes(mb * 1_000_000)
    }

    /// The raw count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The count as a float (for ratios and reporting).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Scales the count by a non-negative factor, saturating at the
    /// representable range. Used by threshold formulas (`α × remaining`).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn scale(self, factor: f64) -> Bytes {
        assert!(
            factor >= 0.0 && !factor.is_nan(),
            "scale factor must be non-negative, got {factor}"
        );
        Bytes((self.0 as f64 * factor).min(u64::MAX as f64) as u64)
    }

    /// Integer ceiling division, e.g. packets needed to carry this many
    /// bytes at a given MTU.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero bytes.
    pub fn div_ceil_by(self, chunk: Bytes) -> u64 {
        assert!(chunk.0 > 0, "chunk must be non-zero");
        self.0.div_ceil(chunk.0)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        *self = *self + rhs;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        debug_assert!(self.0 >= rhs.0, "negative byte count: {self} - {rhs}");
        Bytes(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Bytes {
    type Output = Bytes;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> Bytes {
        Bytes(self.0 / rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 10_000 {
            write!(f, "{}B", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}KB", self.0 as f64 / 1e3)
        } else {
            write!(f, "{:.2}MB", self.0 as f64 / 1e6)
        }
    }
}

/// A transmission or drain rate in bits per second.
///
/// # Example
///
/// ```
/// use dcn_sim::{BitRate, Bytes};
/// let link = BitRate::from_gbps(25);
/// // Serializing a 1000-byte packet at 25 Gbps takes 320 ns.
/// assert_eq!(link.tx_time(Bytes::new(1_000)).as_nanos(), 320);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BitRate(u64);

impl BitRate {
    /// A zero rate (a fully paused or disconnected drain).
    pub const ZERO: BitRate = BitRate(0);

    /// Creates a rate in bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        BitRate(bps)
    }

    /// Creates a rate in megabits per second.
    pub const fn from_mbps(mbps: u64) -> Self {
        BitRate(mbps * 1_000_000)
    }

    /// Creates a rate in gigabits per second.
    pub const fn from_gbps(gbps: u64) -> Self {
        BitRate(gbps * 1_000_000_000)
    }

    /// The raw rate in bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// The rate as a float in bits per second.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Whether the rate is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Time to serialize `bytes` at this rate, rounded up to whole
    /// nanoseconds. A zero rate yields [`SimDuration::MAX`] (never
    /// completes), which models a fully-paused drain.
    pub fn tx_time(self, bytes: Bytes) -> SimDuration {
        if self.0 == 0 {
            return SimDuration::MAX;
        }
        let bits = bytes.as_u64().saturating_mul(8);
        // ns = bits / (bps / 1e9), computed as bits * 1e9 / bps using
        // u128 to avoid overflow for large byte counts.
        let ns = (bits as u128 * 1_000_000_000).div_ceil(self.0 as u128);
        SimDuration::from_nanos(ns.min(u64::MAX as u128) as u64)
    }

    /// Bytes fully drained over `dur` at this rate (floor).
    pub fn bytes_over(self, dur: SimDuration) -> Bytes {
        let bits = self.0 as u128 * dur.as_nanos() as u128 / 1_000_000_000;
        Bytes::new((bits / 8).min(u64::MAX as u128) as u64)
    }

    /// Scales the rate by a non-negative factor (e.g. DCQCN rate cuts),
    /// saturating at the representable range.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn scale(self, factor: f64) -> BitRate {
        assert!(
            factor >= 0.0 && !factor.is_nan(),
            "scale factor must be non-negative, got {factor}"
        );
        BitRate((self.0 as f64 * factor).min(u64::MAX as f64) as u64)
    }

    /// Saturating addition (DCQCN additive increase).
    pub fn saturating_add(self, rhs: BitRate) -> BitRate {
        BitRate(self.0.saturating_add(rhs.0))
    }

    /// The smaller of two rates.
    pub fn min(self, rhs: BitRate) -> BitRate {
        BitRate(self.0.min(rhs.0))
    }
}

impl Add for BitRate {
    type Output = BitRate;
    fn add(self, rhs: BitRate) -> BitRate {
        self.saturating_add(rhs)
    }
}

impl Div<u64> for BitRate {
    type Output = BitRate;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> BitRate {
        BitRate(self.0 / rhs)
    }
}

impl fmt::Display for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.1}Gbps", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.1}Mbps", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_rounds_up() {
        // 1 byte at 3 bps: 8/3 s -> ceil in ns.
        let r = BitRate::from_bps(3);
        assert_eq!(r.tx_time(Bytes::new(1)).as_nanos(), 2_666_666_667);
    }

    #[test]
    fn tx_time_zero_rate_is_never() {
        assert_eq!(BitRate::ZERO.tx_time(Bytes::new(1)), SimDuration::MAX);
    }

    #[test]
    fn bytes_over_inverts_tx_time() {
        let r = BitRate::from_gbps(100);
        let b = Bytes::new(1_048);
        let drained = r.bytes_over(r.tx_time(b));
        // Rounding up tx time may slightly overshoot, never undershoot.
        assert!(drained >= b);
    }

    #[test]
    fn scale_bounds() {
        assert_eq!(Bytes::new(100).scale(0.5), Bytes::new(50));
        assert_eq!(BitRate::from_gbps(10).scale(0.5), BitRate::from_gbps(5));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn scale_rejects_negative() {
        let _ = Bytes::new(1).scale(-0.1);
    }

    #[test]
    fn div_ceil_by_counts_packets() {
        assert_eq!(Bytes::new(2_500).div_ceil_by(Bytes::new(1_000)), 3);
        assert_eq!(Bytes::new(2_000).div_ceil_by(Bytes::new(1_000)), 2);
        assert_eq!(Bytes::ZERO.div_ceil_by(Bytes::new(1_000)), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Bytes::from_mb(4).to_string(), "4.00MB");
        assert_eq!(BitRate::from_gbps(25).to_string(), "25.0Gbps");
    }
}
