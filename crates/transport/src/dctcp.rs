//! DCTCP: TCP with ECN-fraction congestion control (Alizadeh et al.,
//! SIGCOMM 2010), plus NewReno-style loss recovery for the lossy class.

use dcn_net::{FlowId, NodeId, Packet, Priority, TrafficClass};
use dcn_sim::{Bytes, SimDuration, SimTime};
use std::collections::BTreeMap;

/// DCTCP tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DctcpConfig {
    /// Maximum segment size (payload bytes per packet).
    pub mss: u64,
    /// Header overhead added to each data packet on the wire.
    pub header: Bytes,
    /// Initial congestion window, in segments.
    pub init_cwnd_segments: u64,
    /// EWMA gain `g` of the marked-fraction estimator.
    pub g: f64,
    /// Base retransmission timeout (DCN-tuned minimum). Doubled on
    /// each consecutive timeout up to [`DctcpConfig::max_rto`].
    pub rto: SimDuration,
    /// Upper bound on the backed-off RTO.
    pub max_rto: SimDuration,
}

impl Default for DctcpConfig {
    fn default() -> Self {
        DctcpConfig {
            mss: 1_000,
            header: Bytes::new(48),
            init_cwnd_segments: 10,
            g: 1.0 / 16.0,
            rto: SimDuration::from_millis(2),
            max_rto: SimDuration::from_millis(64),
        }
    }
}

/// A loss-recovery state transition that happened while processing an
/// ACK, reported so the caller can log or trace it. At most one
/// transition can happen per ACK, so it travels as an `Option` and the
/// common no-transition ACK stays allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpEvent {
    /// Third duplicate ACK: entered fast recovery.
    EnterRecovery {
        /// `snd_nxt` at entry; recovery ends once this is acked.
        recover_seq: u64,
    },
    /// Partial ACK inside recovery: the hole at the new `snd_una` was
    /// retransmitted (NewReno).
    PartialAckRetransmit {
        /// The retransmitted hole.
        snd_una: u64,
    },
    /// Cumulative ACK covered `recover_seq`: left fast recovery.
    ExitRecovery,
}

/// What the sender wants done after processing an ACK.
///
/// Segments to transmit are appended to the `out` buffer the caller
/// passes to [`DctcpSender::on_ack`] / [`DctcpSender::on_timeout`], so
/// the per-ACK hot path allocates nothing; this struct carries only the
/// plain-data side effects.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AckAction {
    /// Whether the retransmission timer should be (re)armed at
    /// `now + rto` (the caller cancels and re-arms its wheel timer).
    pub rearm_timer: bool,
    /// All data acknowledged — the flow is complete at the sender.
    pub completed: bool,
    /// Recovery-state transition taken by this ACK, if any.
    pub transition: Option<TcpEvent>,
}

/// Sender-side DCTCP state machine for one flow.
#[derive(Debug, Clone)]
pub struct DctcpSender {
    cfg: DctcpConfig,
    flow: FlowId,
    src: NodeId,
    dst: NodeId,
    priority: Priority,
    size: u64,

    snd_nxt: u64,
    snd_una: u64,
    cwnd: f64,
    ssthresh: f64,

    // DCTCP estimator.
    alpha: f64,
    acked_bytes: u64,
    marked_bytes: u64,
    window_end: u64,
    cut_this_window: bool,

    // Loss recovery.
    dup_acks: u32,
    in_recovery: bool,
    recover_seq: u64,
    backoff: u32,

    completed: bool,
}

impl DctcpSender {
    /// Creates a sender for a flow of `size` payload bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(
        cfg: DctcpConfig,
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        priority: Priority,
        size: Bytes,
    ) -> DctcpSender {
        assert!(size > Bytes::ZERO, "flow must carry at least one byte");
        let cwnd = (cfg.init_cwnd_segments * cfg.mss) as f64;
        DctcpSender {
            cfg,
            flow,
            src,
            dst,
            priority,
            size: size.as_u64(),
            snd_nxt: 0,
            snd_una: 0,
            cwnd,
            ssthresh: f64::MAX,
            // DCTCP convention: start α at 1 so the first congestion
            // signal cuts conservatively before the estimator converges.
            alpha: 1.0,
            acked_bytes: 0,
            marked_bytes: 0,
            window_end: 0,
            cut_this_window: false,
            dup_acks: 0,
            in_recovery: false,
            recover_seq: 0,
            backoff: 0,
            completed: false,
        }
    }

    /// The flow id.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current DCTCP α estimate.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Whether all payload has been acknowledged.
    pub fn is_completed(&self) -> bool {
        self.completed
    }

    /// Slow-start threshold in bytes (`f64::MAX` until the first cut).
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// Whether the sender is in NewReno fast recovery.
    pub fn in_recovery(&self) -> bool {
        self.in_recovery
    }

    /// Consecutive timeouts since the last forward progress.
    pub fn backoff(&self) -> u32 {
        self.backoff
    }

    /// The RTO to arm next: the base RTO doubled once per consecutive
    /// timeout, capped at [`DctcpConfig::max_rto`].
    pub fn rto(&self) -> SimDuration {
        let shift = self.backoff.min(32);
        self.cfg
            .rto
            .saturating_mul(1u64 << shift)
            .min(self.cfg.max_rto)
    }

    fn segment(&self, seq: u64) -> Packet {
        let payload = self.cfg.mss.min(self.size - seq);
        Packet::data(
            self.flow,
            self.src,
            self.dst,
            self.priority,
            TrafficClass::Lossy,
            seq,
            Bytes::new(payload),
            self.cfg.header,
        )
    }

    /// Appends every segment the window currently allows to `out`.
    /// Called at flow start and internally after each ACK ([`on_ack`]
    /// pushes the ready batch into its own `out` buffer).
    ///
    /// [`on_ack`]: DctcpSender::on_ack
    pub fn take_ready(&mut self, _now: SimTime, out: &mut Vec<Packet>) {
        let limit = (self.snd_una as f64 + self.cwnd) as u64;
        while self.snd_nxt < self.size
            && self.snd_nxt + self.cfg.mss.min(self.size - self.snd_nxt) <= limit
        {
            let pkt = self.segment(self.snd_nxt);
            self.snd_nxt += pkt.payload.as_u64();
            out.push(pkt);
        }
        if self.window_end == 0 {
            self.window_end = self.snd_nxt;
        }
    }

    /// Processes a cumulative ACK with its ECN-echo bit, appending any
    /// segments to transmit (retransmissions and newly allowed data) to
    /// `out`.
    pub fn on_ack(
        &mut self,
        now: SimTime,
        cumulative_ack: u64,
        ecn_echo: bool,
        out: &mut Vec<Packet>,
    ) -> AckAction {
        let mut action = AckAction::default();
        if self.completed {
            return action;
        }

        if cumulative_ack > self.snd_una {
            let newly = cumulative_ack - self.snd_una;
            self.snd_una = cumulative_ack;
            self.dup_acks = 0;
            self.backoff = 0;
            self.acked_bytes += newly;
            if ecn_echo {
                self.marked_bytes += newly;
            }

            if self.in_recovery {
                if cumulative_ack >= self.recover_seq {
                    // Full ACK: the whole outstanding window at entry is
                    // repaired — leave recovery at the halved window.
                    self.in_recovery = false;
                    self.cwnd = self.ssthresh.max(self.cfg.mss as f64);
                    action.transition = Some(TcpEvent::ExitRecovery);
                } else {
                    // Partial ACK (NewReno): the ACK advanced but did not
                    // cover the recovery point, so the next hole starts at
                    // the new snd_una — retransmit it immediately instead
                    // of stalling until the RTO.
                    out.push(self.segment(self.snd_una));
                    action.transition = Some(TcpEvent::PartialAckRetransmit {
                        snd_una: self.snd_una,
                    });
                }
            }

            // The ECE of this ACK belongs to the window it closes, so
            // react before rolling the window boundary over.
            if ecn_echo && !self.cut_this_window && !self.in_recovery {
                // DCTCP cut: once per window, proportional to α.
                self.cwnd = (self.cwnd * (1.0 - self.alpha / 2.0)).max(self.cfg.mss as f64);
                self.ssthresh = self.cwnd;
                self.cut_this_window = true;
            } else if !self.in_recovery {
                if self.cwnd < self.ssthresh {
                    self.cwnd += newly as f64; // slow start
                } else {
                    self.cwnd += self.cfg.mss as f64 * newly as f64 / self.cwnd;
                }
            }

            // DCTCP window-boundary α update.
            if cumulative_ack >= self.window_end {
                if self.acked_bytes > 0 {
                    let f = self.marked_bytes as f64 / self.acked_bytes as f64;
                    self.alpha = (1.0 - self.cfg.g) * self.alpha + self.cfg.g * f;
                }
                self.acked_bytes = 0;
                self.marked_bytes = 0;
                self.window_end = self.snd_nxt.max(cumulative_ack);
                self.cut_this_window = false;
            }

            if self.snd_una >= self.size {
                // The caller cancels the outstanding RTO timer.
                self.completed = true;
                action.completed = true;
                return action;
            }
            action.rearm_timer = true;
            self.take_ready(now, out);
        } else {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.dup_acks == 3 && !self.in_recovery {
                self.in_recovery = true;
                self.recover_seq = self.snd_nxt;
                self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.cfg.mss as f64);
                self.cwnd = self.ssthresh;
                out.push(self.segment(self.snd_una));
                action.transition = Some(TcpEvent::EnterRecovery {
                    recover_seq: self.recover_seq,
                });
                action.rearm_timer = true;
            }
        }
        action
    }

    /// Handles a retransmission timeout, appending the go-back-N resend
    /// to `out`. With wheel-armed timers every progress ACK cancels and
    /// re-arms the deadline, so a firing timer is live by construction;
    /// the completed guard is defence in depth only.
    pub fn on_timeout(&mut self, now: SimTime, out: &mut Vec<Packet>) -> AckAction {
        let mut action = AckAction::default();
        if self.completed {
            return action;
        }
        // Go-back-N: collapse to one segment and resend from snd_una.
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.cfg.mss as f64);
        self.cwnd = self.cfg.mss as f64;
        self.in_recovery = false;
        self.dup_acks = 0;
        self.snd_nxt = self.snd_una;
        // Consecutive timeouts with no forward progress back the RTO
        // off exponentially (Karn); reset on the next new ACK.
        self.backoff = self.backoff.saturating_add(1);
        self.take_ready(now, out);
        action.rearm_timer = true;
        action
    }
}

/// Receiver-side state: cumulative ACK generation with out-of-order
/// segment tracking and per-packet ECN echo (the DCTCP receiver echoes
/// the CE state of each segment).
#[derive(Debug, Clone)]
pub struct DctcpReceiver {
    flow: FlowId,
    host: NodeId,
    peer: NodeId,
    priority: Priority,
    size: u64,
    rcv_nxt: u64,
    /// Out-of-order segments: start → end (exclusive).
    ooo: BTreeMap<u64, u64>,
    finished_at: Option<SimTime>,
}

impl DctcpReceiver {
    /// Creates receiver state for a flow of `size` payload bytes
    /// arriving at `host` from `peer`.
    pub fn new(flow: FlowId, host: NodeId, peer: NodeId, priority: Priority, size: Bytes) -> Self {
        DctcpReceiver {
            flow,
            host,
            peer,
            priority,
            size: size.as_u64(),
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            finished_at: None,
        }
    }

    /// Bytes received in order so far.
    pub fn received(&self) -> u64 {
        self.rcv_nxt
    }

    /// When the last payload byte arrived, if the flow is complete.
    pub fn finished_at(&self) -> Option<SimTime> {
        self.finished_at
    }

    /// Processes a data segment; returns the ACK to send back.
    pub fn on_data(&mut self, now: SimTime, seq: u64, payload: Bytes, ce: bool) -> Packet {
        let end = seq + payload.as_u64();
        if end > self.rcv_nxt {
            if seq <= self.rcv_nxt {
                self.rcv_nxt = end;
            } else {
                // Store and merge later.
                let e = self.ooo.entry(seq).or_insert(end);
                if *e < end {
                    *e = end;
                }
            }
            // Pull any now-contiguous segments.
            while let Some((&s, &e)) = self.ooo.first_key_value() {
                if s <= self.rcv_nxt {
                    self.ooo.remove(&s);
                    if e > self.rcv_nxt {
                        self.rcv_nxt = e;
                    }
                } else {
                    break;
                }
            }
        }
        if self.rcv_nxt >= self.size && self.finished_at.is_none() {
            self.finished_at = Some(now);
        }
        Packet::ack(
            self.flow,
            self.host,
            self.peer,
            self.priority,
            TrafficClass::Lossy,
            self.rcv_nxt,
            ce,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sender(size: u64) -> DctcpSender {
        DctcpSender::new(
            DctcpConfig::default(),
            FlowId::new(1),
            NodeId::new(0),
            NodeId::new(1),
            Priority::new(1),
            Bytes::new(size),
        )
    }

    /// Collects the ready batch into a fresh Vec (test convenience for
    /// the buffer-filling API).
    fn ready(s: &mut DctcpSender, now: SimTime) -> Vec<Packet> {
        let mut out = Vec::new();
        s.take_ready(now, &mut out);
        out
    }

    /// Runs one ACK and returns the action plus the emitted segments.
    fn ack(s: &mut DctcpSender, now: SimTime, cum: u64, ecn: bool) -> (AckAction, Vec<Packet>) {
        let mut out = Vec::new();
        let a = s.on_ack(now, cum, ecn, &mut out);
        (a, out)
    }

    /// Runs one timeout and returns the action plus the resent segments.
    fn timeout(s: &mut DctcpSender, now: SimTime) -> (AckAction, Vec<Packet>) {
        let mut out = Vec::new();
        let a = s.on_timeout(now, &mut out);
        (a, out)
    }

    #[test]
    fn initial_window_burst() {
        let mut s = sender(100_000);
        let burst = ready(&mut s, SimTime::ZERO);
        assert_eq!(burst.len(), 10, "init cwnd = 10 segments");
        assert_eq!(burst[0].seq, 0);
        assert_eq!(burst[9].seq, 9_000);
        // No more until acked.
        assert!(ready(&mut s, SimTime::ZERO).is_empty());
    }

    #[test]
    fn short_flow_single_segment() {
        let mut s = sender(500);
        let burst = ready(&mut s, SimTime::ZERO);
        assert_eq!(burst.len(), 1);
        assert_eq!(burst[0].payload, Bytes::new(500));
        let (a, _) = ack(&mut s, SimTime::from_micros(10), 500, false);
        assert!(a.completed);
        assert!(s.is_completed());
    }

    #[test]
    fn slow_start_doubles() {
        let mut s = sender(10_000_000);
        let w0 = s.cwnd();
        let burst = ready(&mut s, SimTime::ZERO);
        let mut t = SimTime::from_micros(10);
        for p in &burst {
            ack(&mut s, t, p.seq + p.payload.as_u64(), false);
            t += SimDuration::from_nanos(100);
        }
        assert!(
            (s.cwnd() - 2.0 * w0).abs() < 1.0,
            "cwnd {} vs {}",
            s.cwnd(),
            2.0 * w0
        );
    }

    #[test]
    fn ecn_cut_uses_alpha_once_per_window() {
        let mut s = sender(10_000_000);
        let burst = ready(&mut s, SimTime::ZERO);
        let mut t = SimTime::from_micros(10);
        // Whole first window marked: alpha jumps to g·1 at the boundary,
        // and the window is cut once.
        let before = s.cwnd();
        let mut cut_seen = 0;
        let mut last_cwnd = before;
        for p in &burst {
            ack(&mut s, t, p.seq + p.payload.as_u64(), true);
            if s.cwnd() < last_cwnd {
                cut_seen += 1;
            }
            last_cwnd = s.cwnd();
            t += SimDuration::from_nanos(100);
        }
        assert_eq!(cut_seen, 1, "exactly one multiplicative cut per window");
        assert!(s.alpha() > 0.0);
    }

    #[test]
    fn unmarked_traffic_decays_alpha() {
        let mut s = sender(10_000_000);
        let mut t = SimTime::from_micros(1);
        let mut inflight = ready(&mut s, SimTime::ZERO);
        let ack_all =
            |s: &mut DctcpSender, inflight: &mut Vec<Packet>, t: &mut SimTime, marked: bool| {
                let pkts = std::mem::take(inflight);
                for p in pkts {
                    s.on_ack(*t, p.seq + p.payload.as_u64(), marked, inflight);
                    *t += SimDuration::from_nanos(100);
                }
            };
        // Marked phase keeps α high.
        for _ in 0..3 {
            ack_all(&mut s, &mut inflight, &mut t, true);
        }
        let a1 = s.alpha();
        assert!(a1 > 0.5, "α after marked phase: {a1}");
        // Clean phase decays it window by window.
        for _ in 0..3 {
            ack_all(&mut s, &mut inflight, &mut t, false);
        }
        assert!(s.alpha() < a1, "α {} did not decay from {a1}", s.alpha());
    }

    #[test]
    fn triple_dup_ack_fast_retransmits() {
        let mut s = sender(100_000);
        let burst = ready(&mut s, SimTime::ZERO);
        assert!(burst.len() >= 4);
        let t = SimTime::from_micros(10);
        // First segment lost: acks for later segments all carry cum = 0...
        // Receiver semantics: cumulative stays at 0 (well, seq 0 missing).
        let w_before = s.cwnd();
        assert!(ack(&mut s, t, 0, false).1.is_empty());
        assert!(ack(&mut s, t, 0, false).1.is_empty());
        let (_, third) = ack(&mut s, t, 0, false);
        assert_eq!(third.len(), 1, "fast retransmit");
        assert_eq!(third[0].seq, 0);
        assert!(s.cwnd() < w_before);
    }

    #[test]
    fn timeout_collapses_window() {
        let mut s = sender(100_000);
        let _ = ready(&mut s, SimTime::ZERO);
        let (_, resent) = timeout(&mut s, SimTime::from_millis(3));
        assert_eq!(resent.len(), 1);
        assert_eq!(resent[0].seq, 0);
        assert_eq!(s.cwnd(), 1_000.0);
    }

    #[test]
    fn timeout_after_completion_is_ignored() {
        // Defence in depth: the fabric cancels the RTO wheel timer at
        // completion, so this cannot fire in a correct run — but a
        // stray call must still be a no-op.
        let mut s = sender(500);
        let _ = ready(&mut s, SimTime::ZERO);
        let (a, _) = ack(&mut s, SimTime::from_micros(10), 500, false);
        assert!(a.completed);
        let (a, resent) = timeout(&mut s, SimTime::from_millis(3));
        assert_eq!(a, AckAction::default());
        assert!(resent.is_empty());
    }

    #[test]
    fn partial_ack_retransmits_hole_immediately() {
        // Two holes in one window: the third dup-ACK retransmits the
        // first; the partial ACK that repairs it must retransmit the
        // second instead of falling through silently.
        let mut s = sender(100_000);
        let _ = ready(&mut s, SimTime::ZERO); // segs 0..10_000
        let t = SimTime::from_micros(10);
        ack(&mut s, t, 0, false);
        ack(&mut s, t, 0, false);
        let (third, third_out) = ack(&mut s, t, 0, false);
        assert_eq!(third_out[0].seq, 0);
        assert!(matches!(
            third.transition,
            Some(TcpEvent::EnterRecovery {
                recover_seq: 10_000
            })
        ));
        assert!(s.in_recovery());
        // Retransmitted seg 0 repairs up to the second hole at 5000.
        let (partial, partial_out) = ack(&mut s, t, 5_000, false);
        assert!(s.in_recovery(), "partial ACK must not exit recovery");
        assert_eq!(partial_out.len(), 1, "{partial_out:?}");
        assert_eq!(partial_out[0].seq, 5_000, "retransmit new snd_una");
        assert!(matches!(
            partial.transition,
            Some(TcpEvent::PartialAckRetransmit { snd_una: 5_000 })
        ));
        assert!(partial.rearm_timer, "progress re-arms the timer");
        // The full ACK exits recovery.
        let (full, _) = ack(&mut s, t, 10_000, false);
        assert!(!s.in_recovery());
        assert!(matches!(full.transition, Some(TcpEvent::ExitRecovery)));
    }

    #[test]
    fn multi_loss_window_completes_via_fast_recovery_without_rto() {
        // End-to-end against the real receiver: drop two segments of
        // the initial window and replay the ACK clock. The flow must
        // complete without on_timeout ever being called — the stall
        // this regression test pins down previously needed an RTO.
        let mut s = sender(10_000);
        let mut r = DctcpReceiver::new(
            FlowId::new(1),
            NodeId::new(1),
            NodeId::new(0),
            Priority::new(1),
            Bytes::new(10_000),
        );
        let mut inflight = ready(&mut s, SimTime::ZERO);
        assert_eq!(inflight.len(), 10);
        // Lose seq 0 and seq 5000 on the first pass.
        inflight.retain(|p| p.seq != 0 && p.seq != 5_000);
        let mut t = SimTime::from_micros(10);
        let mut rounds = 0;
        while !s.is_completed() {
            rounds += 1;
            assert!(rounds < 10, "flow failed to complete via fast recovery");
            let delivered = std::mem::take(&mut inflight);
            assert!(!delivered.is_empty(), "stalled with nothing in flight");
            for p in delivered {
                let ack = r.on_data(t, p.seq, p.payload, false);
                let cum = match ack.kind {
                    dcn_net::PacketKind::Ack { cumulative_ack, .. } => cumulative_ack,
                    _ => unreachable!(),
                };
                s.on_ack(t, cum, false, &mut inflight);
                t += SimDuration::from_nanos(100);
            }
        }
        assert_eq!(r.received(), 10_000);
        assert_eq!(s.backoff(), 0, "no timeout was needed");
    }

    #[test]
    fn consecutive_timeouts_back_off_exponentially() {
        let mut s = sender(100_000);
        let _ = ready(&mut s, SimTime::ZERO);
        assert_eq!(s.rto(), SimDuration::from_millis(2), "base RTO");
        let mut t = SimTime::from_millis(3);
        let mut expected_ms = 2u64;
        for i in 1..=7u32 {
            let (a, _) = timeout(&mut s, t);
            assert!(a.rearm_timer);
            assert_eq!(s.backoff(), i);
            expected_ms = (expected_ms * 2).min(64);
            assert_eq!(
                s.rto(),
                SimDuration::from_millis(expected_ms),
                "doubled and capped at 64ms after timeout #{i}"
            );
            t += s.rto();
        }
        // Forward progress resets the backoff.
        let (a, _) = ack(&mut s, t, 1_000, false);
        assert!(a.rearm_timer);
        assert_eq!(s.backoff(), 0);
        assert_eq!(s.rto(), SimDuration::from_millis(2));
    }

    #[test]
    fn receiver_cumulative_and_ooo() {
        let mut r = DctcpReceiver::new(
            FlowId::new(1),
            NodeId::new(1),
            NodeId::new(0),
            Priority::new(1),
            Bytes::new(3_000),
        );
        // Segment 1 (1000..2000) arrives before segment 0.
        let a1 = r.on_data(SimTime::from_micros(1), 1_000, Bytes::new(1_000), false);
        match a1.kind {
            dcn_net::PacketKind::Ack { cumulative_ack, .. } => assert_eq!(cumulative_ack, 0),
            _ => panic!("expected ack"),
        }
        let a0 = r.on_data(SimTime::from_micros(2), 0, Bytes::new(1_000), false);
        match a0.kind {
            dcn_net::PacketKind::Ack { cumulative_ack, .. } => assert_eq!(cumulative_ack, 2_000),
            _ => panic!("expected ack"),
        }
        assert!(r.finished_at().is_none());
        let _ = r.on_data(SimTime::from_micros(3), 2_000, Bytes::new(1_000), true);
        assert_eq!(r.finished_at(), Some(SimTime::from_micros(3)));
    }

    #[test]
    fn receiver_echoes_ce() {
        let mut r = DctcpReceiver::new(
            FlowId::new(1),
            NodeId::new(1),
            NodeId::new(0),
            Priority::new(1),
            Bytes::new(2_000),
        );
        let ack = r.on_data(SimTime::ZERO, 0, Bytes::new(1_000), true);
        match ack.kind {
            dcn_net::PacketKind::Ack { ecn_echo, .. } => assert!(ecn_echo),
            _ => panic!("expected ack"),
        }
    }

    #[test]
    fn duplicate_data_does_not_regress() {
        let mut r = DctcpReceiver::new(
            FlowId::new(1),
            NodeId::new(1),
            NodeId::new(0),
            Priority::new(1),
            Bytes::new(2_000),
        );
        r.on_data(SimTime::ZERO, 0, Bytes::new(1_000), false);
        let again = r.on_data(SimTime::from_micros(1), 0, Bytes::new(1_000), false);
        match again.kind {
            dcn_net::PacketKind::Ack { cumulative_ack, .. } => assert_eq!(cumulative_ack, 1_000),
            _ => panic!("expected ack"),
        }
        assert_eq!(r.received(), 1_000);
    }
}
