//! Transport protocols for the hybrid DCN: DCTCP (lossy TCP), DCQCN
//! (lossless RDMA) and IRN (lossy RDMA).
//!
//! The paper's evaluation runs DCTCP on the TCP/lossy class and DCQCN on
//! the RDMA/lossless class (§IV), both reacting to ECN set by the
//! switches. This crate implements them — plus IRN-style lossy RDMA for
//! the lossless-vs-lossy resilience comparison — as passive state
//! machines: the fabric event loop feeds them arrivals/timers and
//! transmits the packets they emit.
//!
//! * [`DctcpSender`] / [`DctcpReceiver`] — window-based congestion
//!   control with the DCTCP fraction-of-marked-bytes `α`, slow start,
//!   fast retransmit/recovery and RTO (packets may be dropped).
//! * [`DcqcnSender`] / [`DcqcnReceiver`] — rate-based control: the
//!   receiver (NP) reflects CE marks as CNPs at most once per 50 µs, the
//!   sender (RP) multiplicatively cuts on CNP and recovers through
//!   fast-recovery / additive-increase / hyper-increase stages.
//! * [`IrnSender`] / [`IrnReceiver`] — lossy RDMA: a fixed BDP-bounded
//!   window, NACK-driven go-back-N or selective-repeat recovery and an
//!   exponentially backed-off RTO; packets ride the droppable
//!   `LossyRdma` class, so no PFC is ever generated for them.
//!
//! All senders are deterministic; all pacing/timers surface as explicit
//! "call me back at T" values the event loop schedules.
//!
//! # Example
//!
//! ```
//! use dcn_net::{FlowId, NodeId, Priority};
//! use dcn_sim::{Bytes, SimTime};
//! use dcn_transport::{DctcpConfig, DctcpSender};
//!
//! let mut s = DctcpSender::new(
//!     DctcpConfig::default(),
//!     FlowId::new(1),
//!     NodeId::new(0),
//!     NodeId::new(1),
//!     Priority::new(1),
//!     Bytes::new(30_000),
//! );
//! // Initial window: packets ready to hand to the NIC. The sender
//! // appends into a caller-owned buffer so the per-ACK hot path can
//! // reuse one scratch Vec instead of allocating.
//! let mut burst = Vec::new();
//! s.take_ready(SimTime::ZERO, &mut burst);
//! assert!(!burst.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dcqcn;
mod dctcp;
mod irn;

pub use dcqcn::{DcqcnConfig, DcqcnReceiver, DcqcnSender, RpTimerKind};
pub use dctcp::{AckAction, DctcpConfig, DctcpReceiver, DctcpSender, TcpEvent};
pub use irn::{irn_feedback_cum, IrnConfig, IrnReceiver, IrnRecovery, IrnSender};
