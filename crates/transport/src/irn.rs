//! IRN-style lossy RDMA (Mittal et al., SIGCOMM 2018): a fixed
//! BDP-bounded window, NACK-driven loss recovery (go-back-N or
//! selective repeat) and a retransmission timeout with the same
//! exponential backoff/reset discipline as [`crate::DctcpSender`].
//!
//! Unlike DCQCN, an IRN flow's packets travel in the droppable
//! [`TrafficClass::LossyRdma`] class: switches never pause for them and
//! may drop or evict them under pressure. Recovery is end-to-end:
//! switches and the receiver generate [`PacketKind::Nack`]s when an
//! out-of-order arrival exposes a sequence gap, and the sender
//! retransmits. The receiver keeps the out-of-order byte-range set (the
//! simulator's equivalent of IRN's per-packet sack bitmap); the sender
//! keeps cumulative state plus per-hole retransmit dedup so duplicate
//! NACKs from multiple observers (every switch on the path plus the
//! receiver) trigger exactly one recovery each.

use dcn_net::{FlowId, NodeId, Packet, PacketKind, Priority, TrafficClass};
use dcn_sim::{Bytes, SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

use crate::dctcp::AckAction;

/// How an [`IrnSender`] repairs a NACKed hole.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IrnRecovery {
    /// Rewind `snd_nxt` to the hole and resend everything from there
    /// (IRN's baseline mode; simple, but resends delivered data).
    #[default]
    GoBackN,
    /// Resend only the missing segment; later data already delivered
    /// stays delivered (IRN's optimized mode).
    SelectiveRepeat,
}

/// IRN tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IrnConfig {
    /// Maximum transmission unit (payload bytes per packet).
    pub mtu: u64,
    /// Header overhead added to each data packet on the wire.
    pub header: Bytes,
    /// The fixed in-flight byte bound (one bandwidth-delay product:
    /// IRN caps outstanding data at a BDP instead of running a
    /// congestion window).
    pub window: Bytes,
    /// Base retransmission timeout. Doubled on each consecutive
    /// timeout up to [`IrnConfig::max_rto`], reset on progress — the
    /// same discipline as [`crate::DctcpConfig`].
    pub rto: SimDuration,
    /// Upper bound on the backed-off RTO.
    pub max_rto: SimDuration,
    /// Loss-recovery mode.
    pub recovery: IrnRecovery,
}

impl Default for IrnConfig {
    fn default() -> Self {
        IrnConfig {
            mtu: 1_000,
            header: Bytes::new(48),
            // ~1 BDP of a 25 Gbit/s host link at a small-clos RTT.
            window: Bytes::new(25_000),
            rto: SimDuration::from_millis(2),
            max_rto: SimDuration::from_millis(64),
            recovery: IrnRecovery::GoBackN,
        }
    }
}

/// Sender-side IRN state machine for one flow.
#[derive(Debug, Clone)]
pub struct IrnSender {
    cfg: IrnConfig,
    flow: FlowId,
    src: NodeId,
    dst: NodeId,
    priority: Priority,
    size: u64,

    snd_una: u64,
    snd_nxt: u64,
    /// High-water mark of first-time transmissions: any emitted segment
    /// with `seq < snd_max` at call entry is a retransmission.
    snd_max: u64,

    /// Holes already rewound to (go-back-N) — duplicate NACKs for the
    /// same gap from different observers are ignored. Pruned as
    /// `snd_una` advances past them.
    handled_holes: BTreeSet<u64>,
    /// Holes already re-sent once (selective repeat). Pruned the same
    /// way.
    sr_retx: BTreeSet<u64>,

    backoff: u32,
    completed: bool,
}

impl IrnSender {
    /// Creates a sender for a flow of `size` payload bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(
        cfg: IrnConfig,
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        priority: Priority,
        size: Bytes,
    ) -> IrnSender {
        assert!(size > Bytes::ZERO, "flow must carry at least one byte");
        IrnSender {
            cfg,
            flow,
            src,
            dst,
            priority,
            size: size.as_u64(),
            snd_una: 0,
            snd_nxt: 0,
            snd_max: 0,
            handled_holes: BTreeSet::new(),
            sr_retx: BTreeSet::new(),
            backoff: 0,
            completed: false,
        }
    }

    /// The flow id.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Whether all payload has been acknowledged.
    pub fn is_completed(&self) -> bool {
        self.completed
    }

    /// Lowest unacknowledged byte.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// High-water mark of first-time transmissions; segments emitted
    /// below it are retransmissions.
    pub fn snd_max(&self) -> u64 {
        self.snd_max
    }

    /// Consecutive timeouts since the last forward progress.
    pub fn backoff(&self) -> u32 {
        self.backoff
    }

    /// The RTO to arm next: the base RTO doubled once per consecutive
    /// timeout, capped at [`IrnConfig::max_rto`] — byte-for-byte the
    /// [`crate::DctcpSender::rto`] discipline.
    pub fn rto(&self) -> SimDuration {
        let shift = self.backoff.min(32);
        self.cfg
            .rto
            .saturating_mul(1u64 << shift)
            .min(self.cfg.max_rto)
    }

    fn segment(&self, seq: u64) -> Packet {
        let payload = self.cfg.mtu.min(self.size - seq);
        Packet::data(
            self.flow,
            self.src,
            self.dst,
            self.priority,
            TrafficClass::LossyRdma,
            seq,
            Bytes::new(payload),
            self.cfg.header,
        )
    }

    /// Appends every segment the BDP window currently allows to `out`.
    /// Called at flow start; [`on_ack`], [`on_nack`] and [`on_timeout`]
    /// refill through it internally.
    ///
    /// [`on_ack`]: IrnSender::on_ack
    /// [`on_nack`]: IrnSender::on_nack
    /// [`on_timeout`]: IrnSender::on_timeout
    pub fn take_ready(&mut self, _now: SimTime, out: &mut Vec<Packet>) {
        let window = self.cfg.window.as_u64();
        while self.snd_nxt < self.size {
            let payload = self.cfg.mtu.min(self.size - self.snd_nxt);
            if self.snd_nxt - self.snd_una + payload > window {
                break;
            }
            let pkt = self.segment(self.snd_nxt);
            self.snd_nxt += payload;
            out.push(pkt);
        }
        self.snd_max = self.snd_max.max(self.snd_nxt);
    }

    /// Applies cumulative progress shared by ACK and NACK processing.
    /// Returns `true` if the ack advanced `snd_una`.
    fn advance(&mut self, cumulative_ack: u64) -> bool {
        if cumulative_ack <= self.snd_una {
            return false;
        }
        self.snd_una = cumulative_ack.min(self.size);
        self.backoff = 0;
        // A cumulative ack may cover a rewound snd_nxt.
        self.snd_nxt = self.snd_nxt.max(self.snd_una);
        // Holes behind the cumulative point are repaired.
        self.handled_holes = self.handled_holes.split_off(&self.snd_una);
        self.sr_retx = self.sr_retx.split_off(&self.snd_una);
        if self.snd_una >= self.size {
            self.completed = true;
        }
        true
    }

    /// Processes a cumulative ACK, appending any newly allowed segments
    /// to `out`. Duplicate ACKs are ignored: IRN recovery is driven by
    /// NACKs and the RTO, not dup-ack counting.
    pub fn on_ack(
        &mut self,
        now: SimTime,
        cumulative_ack: u64,
        out: &mut Vec<Packet>,
    ) -> AckAction {
        let mut action = AckAction::default();
        if self.completed {
            return action;
        }
        if self.advance(cumulative_ack) {
            if self.completed {
                // The caller cancels the outstanding RTO timer.
                action.completed = true;
                return action;
            }
            action.rearm_timer = true;
            self.take_ready(now, out);
        }
        action
    }

    /// Processes a NACK for the gap starting at `nack_seq`, appending
    /// retransmissions (and any newly allowed data) to `out`.
    ///
    /// Go-back-N rewinds `snd_nxt` to the hole; selective repeat
    /// resends exactly the missing segment. Either way a given hole is
    /// acted on once — duplicate NACKs from other path observers are
    /// ignored until progress proves the repair lost.
    pub fn on_nack(
        &mut self,
        now: SimTime,
        nack_seq: u64,
        cumulative_ack: u64,
        out: &mut Vec<Packet>,
    ) -> AckAction {
        let mut action = AckAction::default();
        if self.completed {
            return action;
        }
        if self.advance(cumulative_ack) {
            if self.completed {
                action.completed = true;
                return action;
            }
            action.rearm_timer = true;
        }
        if nack_seq >= self.snd_una && nack_seq < self.snd_max {
            match self.cfg.recovery {
                IrnRecovery::GoBackN => {
                    if self.handled_holes.insert(nack_seq) {
                        // Never move forward: an older hole may already
                        // have rewound below this one.
                        self.snd_nxt = self.snd_nxt.min(nack_seq);
                        action.rearm_timer = true;
                    }
                }
                IrnRecovery::SelectiveRepeat => {
                    if self.sr_retx.insert(nack_seq) {
                        out.push(self.segment(nack_seq));
                        action.rearm_timer = true;
                    }
                }
            }
        }
        self.take_ready(now, out);
        action
    }

    /// Handles a retransmission timeout: go-back-N from `snd_una`
    /// regardless of recovery mode (the RTO is the last-resort repair
    /// for lost NACKs/ACKs), with exponential backoff until the next
    /// forward progress — mirroring [`crate::DctcpSender::on_timeout`].
    pub fn on_timeout(&mut self, now: SimTime, out: &mut Vec<Packet>) -> AckAction {
        let mut action = AckAction::default();
        if self.completed {
            return action;
        }
        self.snd_nxt = self.snd_una;
        self.handled_holes.clear();
        self.sr_retx.clear();
        self.backoff = self.backoff.saturating_add(1);
        self.take_ready(now, out);
        action.rearm_timer = true;
        action
    }
}

/// Receiver-side IRN state: cumulative delivery plus the out-of-order
/// byte-range set (the sack bitmap), generating a cumulative ACK for
/// every in-order arrival and a NACK whenever a new gap appears.
#[derive(Debug, Clone)]
pub struct IrnReceiver {
    flow: FlowId,
    host: NodeId,
    peer: NodeId,
    priority: Priority,
    size: u64,
    rcv_nxt: u64,
    /// Out-of-order segments: start → end (exclusive).
    ooo: BTreeMap<u64, u64>,
    /// Highest byte end ever seen; an arrival starting beyond it is the
    /// first evidence of a new gap (retransmissions and duplicates stay
    /// below it and must not re-NACK).
    high_water: u64,
    finished_at: Option<SimTime>,
}

impl IrnReceiver {
    /// Creates receiver state for a flow of `size` payload bytes
    /// arriving at `host` from `peer`.
    pub fn new(flow: FlowId, host: NodeId, peer: NodeId, priority: Priority, size: Bytes) -> Self {
        IrnReceiver {
            flow,
            host,
            peer,
            priority,
            size: size.as_u64(),
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            high_water: 0,
            finished_at: None,
        }
    }

    /// Bytes received in order so far.
    pub fn received(&self) -> u64 {
        self.rcv_nxt
    }

    /// When the last payload byte arrived, if the flow is complete.
    pub fn finished_at(&self) -> Option<SimTime> {
        self.finished_at
    }

    /// Processes a data segment; returns the feedback packet to send:
    /// a NACK for the adjacent hole when this arrival exposes a new
    /// gap, a cumulative ACK otherwise.
    pub fn on_data(&mut self, now: SimTime, seq: u64, payload: Bytes, ce: bool) -> Packet {
        let end = seq + payload.as_u64();
        let new_gap = seq > self.rcv_nxt && seq > self.high_water;
        self.high_water = self.high_water.max(end);
        if end > self.rcv_nxt {
            if seq <= self.rcv_nxt {
                self.rcv_nxt = end;
            } else {
                let e = self.ooo.entry(seq).or_insert(end);
                if *e < end {
                    *e = end;
                }
            }
            // Pull any now-contiguous segments.
            while let Some((&s, &e)) = self.ooo.first_key_value() {
                if s <= self.rcv_nxt {
                    self.ooo.remove(&s);
                    if e > self.rcv_nxt {
                        self.rcv_nxt = e;
                    }
                } else {
                    break;
                }
            }
        }
        if self.rcv_nxt >= self.size && self.finished_at.is_none() {
            self.finished_at = Some(now);
        }
        if new_gap {
            // NACK the hole immediately before the block this arrival
            // landed in: its start is the end of the previous
            // out-of-order block, or the cumulative point if there is
            // none. (Earlier holes were NACKed when they appeared.)
            let block_start = self
                .ooo
                .range(..=seq)
                .next_back()
                .map(|(&s, _)| s)
                .unwrap_or(self.rcv_nxt);
            let nack_seq = self
                .ooo
                .range(..block_start)
                .next_back()
                .map(|(_, &e)| e)
                .unwrap_or(self.rcv_nxt)
                .max(self.rcv_nxt);
            return Packet::nack(
                self.flow,
                self.host,
                self.peer,
                self.priority,
                nack_seq,
                self.rcv_nxt,
            );
        }
        Packet::ack(
            self.flow,
            self.host,
            self.peer,
            self.priority,
            TrafficClass::LossyRdma,
            self.rcv_nxt,
            ce,
        )
    }
}

/// Extracts the cumulative ack of an IRN feedback packet (test helper
/// and fabric convenience).
pub fn irn_feedback_cum(kind: &PacketKind) -> Option<u64> {
    match kind {
        PacketKind::Ack { cumulative_ack, .. } | PacketKind::Nack { cumulative_ack, .. } => {
            Some(*cumulative_ack)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dctcp::{DctcpConfig, DctcpSender};

    fn sender(size: u64) -> IrnSender {
        sender_with(IrnConfig::default(), size)
    }

    fn sender_with(cfg: IrnConfig, size: u64) -> IrnSender {
        IrnSender::new(
            cfg,
            FlowId::new(1),
            NodeId::new(0),
            NodeId::new(1),
            Priority::new(3),
            Bytes::new(size),
        )
    }

    fn receiver(size: u64) -> IrnReceiver {
        IrnReceiver::new(
            FlowId::new(1),
            NodeId::new(1),
            NodeId::new(0),
            Priority::new(3),
            Bytes::new(size),
        )
    }

    fn ready(s: &mut IrnSender, now: SimTime) -> Vec<Packet> {
        let mut out = Vec::new();
        s.take_ready(now, &mut out);
        out
    }

    fn ack(s: &mut IrnSender, now: SimTime, cum: u64) -> (AckAction, Vec<Packet>) {
        let mut out = Vec::new();
        let a = s.on_ack(now, cum, &mut out);
        (a, out)
    }

    fn nack(s: &mut IrnSender, now: SimTime, seq: u64, cum: u64) -> (AckAction, Vec<Packet>) {
        let mut out = Vec::new();
        let a = s.on_nack(now, seq, cum, &mut out);
        (a, out)
    }

    fn timeout(s: &mut IrnSender, now: SimTime) -> (AckAction, Vec<Packet>) {
        let mut out = Vec::new();
        let a = s.on_timeout(now, &mut out);
        (a, out)
    }

    #[test]
    fn initial_burst_is_bdp_bounded() {
        let mut s = sender(100_000);
        let burst = ready(&mut s, SimTime::ZERO);
        assert_eq!(burst.len(), 25, "window 25 KB / mtu 1 KB");
        assert_eq!(burst[0].seq, 0);
        assert_eq!(burst[0].class, TrafficClass::LossyRdma);
        assert!(ready(&mut s, SimTime::ZERO).is_empty(), "window is full");
        // Progress slides the window.
        let (a, more) = ack(&mut s, SimTime::from_micros(5), 1_000);
        assert!(a.rearm_timer);
        assert_eq!(more.len(), 1);
        assert_eq!(more[0].seq, 25_000);
    }

    #[test]
    fn single_loss_nack_retransmits_and_dedups() {
        let mut s = sender(100_000);
        let _ = ready(&mut s, SimTime::ZERO);
        let t = SimTime::from_micros(10);
        // Segment 0 lost; a switch NACKs the gap (cum unknown = 0).
        let (a, resent) = nack(&mut s, t, 0, 0);
        assert!(a.rearm_timer);
        assert_eq!(resent.len(), 25, "go-back-N refills the whole window");
        assert_eq!(resent[0].seq, 0);
        // The receiver's duplicate NACK for the same hole is a no-op.
        let (a2, dup) = nack(&mut s, t, 0, 0);
        assert!(!a2.rearm_timer);
        assert!(dup.is_empty(), "duplicate NACK must not re-trigger");
        // Progress past the hole clears the dedup record.
        let (_, _) = ack(&mut s, t, 26_000);
        assert_eq!(s.snd_una(), 26_000);
        assert_eq!(s.backoff(), 0);
    }

    #[test]
    fn multi_hole_go_back_n_vs_selective_repeat() {
        // Two holes at 0 and 5000; the rest of the window delivered.
        let t = SimTime::from_micros(10);

        let mut gbn = sender(100_000);
        let _ = ready(&mut gbn, SimTime::ZERO);
        let (_, first) = nack(&mut gbn, t, 0, 0);
        assert_eq!(first.len(), 25, "GBN resends everything from the hole");
        assert_eq!(first[0].seq, 0);
        let (_, second) = nack(&mut gbn, t, 5_000, 0);
        assert_eq!(second.len(), 20, "GBN rewinds again to the second hole");
        assert_eq!(second[0].seq, 5_000);

        let mut sr = sender_with(
            IrnConfig {
                recovery: IrnRecovery::SelectiveRepeat,
                ..IrnConfig::default()
            },
            100_000,
        );
        let _ = ready(&mut sr, SimTime::ZERO);
        let (_, first) = nack(&mut sr, t, 0, 0);
        assert_eq!(first.len(), 1, "SR resends exactly the missing segment");
        assert_eq!(first[0].seq, 0);
        let (_, second) = nack(&mut sr, t, 5_000, 0);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].seq, 5_000);
        let (_, dup) = nack(&mut sr, t, 5_000, 0);
        assert!(dup.is_empty(), "SR dedups holes too");
    }

    #[test]
    fn rto_backoff_and_reset_matches_dctcp_discipline() {
        let mut irn = sender(100_000);
        let mut tcp = DctcpSender::new(
            DctcpConfig::default(),
            FlowId::new(2),
            NodeId::new(0),
            NodeId::new(1),
            Priority::new(1),
            Bytes::new(100_000),
        );
        let _ = ready(&mut irn, SimTime::ZERO);
        let mut tcp_out = Vec::new();
        tcp.take_ready(SimTime::ZERO, &mut tcp_out);
        assert_eq!(irn.rto(), tcp.rto(), "same base RTO");
        let mut t = SimTime::from_millis(3);
        for i in 1..=8u32 {
            let (a, resent) = timeout(&mut irn, t);
            assert!(a.rearm_timer);
            assert_eq!(resent[0].seq, 0, "go-back-N from snd_una");
            let mut out = Vec::new();
            tcp.on_timeout(t, &mut out);
            assert_eq!(irn.backoff(), i);
            assert_eq!(
                irn.rto(),
                tcp.rto(),
                "backed-off RTO must match DctcpSender at timeout #{i}"
            );
            t += irn.rto();
        }
        // Forward progress resets the backoff on both.
        let _ = ack(&mut irn, t, 1_000);
        let mut out = Vec::new();
        tcp.on_ack(t, 1_000, false, &mut out);
        assert_eq!(irn.backoff(), 0);
        assert_eq!(irn.rto(), tcp.rto());
        assert_eq!(irn.rto(), SimDuration::from_millis(2));
    }

    #[test]
    fn completion_and_stray_events_after_it() {
        let mut s = sender(500);
        let burst = ready(&mut s, SimTime::ZERO);
        assert_eq!(burst.len(), 1);
        let (a, _) = ack(&mut s, SimTime::from_micros(10), 500);
        assert!(a.completed);
        assert!(s.is_completed());
        let (a, out) = timeout(&mut s, SimTime::from_millis(3));
        assert_eq!(a, AckAction::default());
        assert!(out.is_empty());
        let (a, out) = nack(&mut s, SimTime::from_millis(3), 0, 0);
        assert_eq!(a, AckAction::default());
        assert!(out.is_empty());
    }

    #[test]
    fn receiver_acks_in_order_and_nacks_new_gaps() {
        let mut r = receiver(10_000);
        let t = SimTime::from_micros(1);
        // In-order arrival: plain cumulative ACK.
        let a = r.on_data(t, 0, Bytes::new(1_000), false);
        assert_eq!(
            irn_feedback_cum(&a.kind),
            Some(1_000),
            "in-order data acks cumulatively"
        );
        assert!(matches!(a.kind, PacketKind::Ack { .. }));
        assert_eq!(a.class, TrafficClass::LossyRdma);
        // 1000..2000 lost; 2000 arrives: a new gap → NACK(1000).
        let n = r.on_data(t, 2_000, Bytes::new(1_000), false);
        assert_eq!(
            n.kind,
            PacketKind::Nack {
                nack_seq: 1_000,
                cumulative_ack: 1_000
            }
        );
        // The next in-sequence arrival beyond the gap is not a new gap.
        let a = r.on_data(t, 3_000, Bytes::new(1_000), false);
        assert!(matches!(a.kind, PacketKind::Ack { .. }));
        // A second hole at 4000: arrival of 5000 NACKs that hole, not
        // the first one (its NACK is already out).
        let n = r.on_data(t, 5_000, Bytes::new(1_000), false);
        assert_eq!(
            n.kind,
            PacketKind::Nack {
                nack_seq: 4_000,
                cumulative_ack: 1_000
            }
        );
        // The retransmission filling the first hole merges everything
        // up to the second hole.
        let a = r.on_data(t, 1_000, Bytes::new(1_000), false);
        assert_eq!(irn_feedback_cum(&a.kind), Some(4_000));
        assert!(matches!(a.kind, PacketKind::Ack { .. }));
        assert!(r.finished_at().is_none());
        // Fill the second hole and the tail.
        let _ = r.on_data(t, 4_000, Bytes::new(1_000), false);
        let mut done = SimTime::from_micros(9);
        for seq in [6_000u64, 7_000, 8_000, 9_000] {
            done += SimDuration::from_nanos(100);
            let _ = r.on_data(done, seq, Bytes::new(1_000), false);
        }
        assert_eq!(r.received(), 10_000);
        assert_eq!(r.finished_at(), Some(done));
    }

    #[test]
    fn duplicate_and_retransmitted_data_does_not_renack() {
        let mut r = receiver(10_000);
        let t = SimTime::ZERO;
        let _ = r.on_data(t, 0, Bytes::new(1_000), false);
        let n = r.on_data(t, 2_000, Bytes::new(1_000), false);
        assert!(matches!(n.kind, PacketKind::Nack { .. }));
        // A duplicate of the out-of-order block stays below the high
        // water mark: ACK, not another NACK.
        let a = r.on_data(t, 2_000, Bytes::new(1_000), false);
        assert!(matches!(a.kind, PacketKind::Ack { .. }));
        // A go-back-N resend of already-delivered data likewise.
        let a = r.on_data(t, 0, Bytes::new(1_000), false);
        assert!(matches!(a.kind, PacketKind::Ack { .. }));
        assert_eq!(irn_feedback_cum(&a.kind), Some(1_000));
    }

    #[test]
    fn end_to_end_loss_recovery_without_rto() {
        // Drop two segments of the initial window and replay the
        // feedback clock. NACK-driven go-back-N must complete the flow
        // without on_timeout ever firing.
        let mut s = sender(25_000);
        let mut r = receiver(25_000);
        let mut inflight = ready(&mut s, SimTime::ZERO);
        assert_eq!(inflight.len(), 25);
        inflight.retain(|p| p.seq != 3_000 && p.seq != 17_000);
        let mut t = SimTime::from_micros(10);
        let mut rounds = 0;
        while !s.is_completed() {
            rounds += 1;
            assert!(rounds < 10, "flow failed to complete via NACK recovery");
            let delivered = std::mem::take(&mut inflight);
            assert!(!delivered.is_empty(), "stalled with nothing in flight");
            for p in delivered {
                let fb = r.on_data(t, p.seq, p.payload, false);
                match fb.kind {
                    PacketKind::Ack { cumulative_ack, .. } => {
                        s.on_ack(t, cumulative_ack, &mut inflight);
                    }
                    PacketKind::Nack {
                        nack_seq,
                        cumulative_ack,
                    } => {
                        s.on_nack(t, nack_seq, cumulative_ack, &mut inflight);
                    }
                    _ => unreachable!(),
                }
                t += SimDuration::from_nanos(100);
            }
        }
        assert_eq!(r.received(), 25_000);
        assert!(r.finished_at().is_some());
        assert_eq!(s.backoff(), 0, "no timeout was needed");
    }

    #[test]
    fn stale_nack_below_snd_una_is_ignored() {
        let mut s = sender(100_000);
        let _ = ready(&mut s, SimTime::ZERO);
        let t = SimTime::from_micros(10);
        let _ = ack(&mut s, t, 10_000);
        let (a, out) = nack(&mut s, t, 2_000, 0);
        assert!(!a.rearm_timer);
        assert!(
            out.iter().all(|p| p.seq >= 10_000),
            "stale hole must not rewind below snd_una: {out:?}"
        );
    }
}
