//! DCQCN: rate-based congestion control for RoCEv2 (Zhu et al.,
//! SIGCOMM 2015).
//!
//! Roles: the switch is the congestion point (CP) and marks ECN; the
//! receiver NIC is the notification point (NP), reflecting marks as CNPs
//! at most once per 50 µs per flow; the sender NIC is the reaction point
//! (RP), cutting its rate multiplicatively on CNP and recovering through
//! fast-recovery / additive-increase / hyper-increase stages driven by a
//! timer and a byte counter.

use dcn_net::{FlowId, NodeId, Packet, Priority, TrafficClass};
use dcn_sim::{BitRate, Bytes, SimDuration, SimTime};

/// DCQCN tunables (paper-standard defaults, scaled for 25 G links).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcqcnConfig {
    /// Payload bytes per packet.
    pub mtu: u64,
    /// Header overhead per data packet.
    pub header: Bytes,
    /// Rate floor after cuts.
    pub min_rate: BitRate,
    /// EWMA gain `g` for the α estimator.
    pub g: f64,
    /// α-decay timer period (the DCQCN paper's 55 µs).
    pub alpha_timer: SimDuration,
    /// Rate-increase timer period.
    pub rate_timer: SimDuration,
    /// Byte counter triggering a rate-increase stage event.
    pub byte_counter: Bytes,
    /// Stage threshold `F` separating fast recovery from additive /
    /// hyper increase.
    pub f: u32,
    /// Additive increase step.
    pub rai: BitRate,
    /// Hyper increase step.
    pub rhai: BitRate,
    /// Minimum spacing between CNPs at the notification point.
    pub cnp_interval: SimDuration,
}

impl Default for DcqcnConfig {
    fn default() -> Self {
        DcqcnConfig {
            mtu: 1_000,
            header: Bytes::new(48),
            min_rate: BitRate::from_mbps(10),
            g: 1.0 / 16.0,
            alpha_timer: SimDuration::from_micros(55),
            rate_timer: SimDuration::from_micros(100),
            byte_counter: Bytes::from_mb(10),
            f: 5,
            rai: BitRate::from_mbps(100),
            rhai: BitRate::from_mbps(500),
            cnp_interval: SimDuration::from_micros(50),
        }
    }
}

/// Which RP timer fired (each is armed as a cancellable wheel timer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpTimerKind {
    /// The α-decay timer.
    Alpha,
    /// The rate-increase timer.
    Rate,
}

/// Sender-side (reaction point) DCQCN state machine for one flow.
#[derive(Debug, Clone)]
pub struct DcqcnSender {
    cfg: DcqcnConfig,
    flow: FlowId,
    src: NodeId,
    dst: NodeId,
    priority: Priority,
    size: u64,
    line_rate: BitRate,

    snd_nxt: u64,
    rc: BitRate,
    rt: BitRate,
    alpha: f64,
    t_stage: u32,
    b_stage: u32,
    bytes_since_stage: u64,
    ever_cut: bool,
}

impl DcqcnSender {
    /// Creates a sender for a flow of `size` payload bytes, starting at
    /// `line_rate` (RoCEv2 NICs start at line rate).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or `line_rate` is zero.
    pub fn new(
        cfg: DcqcnConfig,
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        priority: Priority,
        size: Bytes,
        line_rate: BitRate,
    ) -> DcqcnSender {
        assert!(size > Bytes::ZERO, "flow must carry at least one byte");
        assert!(!line_rate.is_zero(), "line rate must be positive");
        DcqcnSender {
            cfg,
            flow,
            src,
            dst,
            priority,
            size: size.as_u64(),
            line_rate,
            snd_nxt: 0,
            rc: line_rate,
            rt: line_rate,
            alpha: 1.0,
            t_stage: 0,
            b_stage: 0,
            bytes_since_stage: 0,
            ever_cut: false,
        }
    }

    /// The flow id.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Current sending rate `Rc`.
    pub fn rate(&self) -> BitRate {
        self.rc
    }

    /// Current α estimate.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Whether payload remains to be sent.
    pub fn has_more(&self) -> bool {
        self.snd_nxt < self.size
    }

    /// The next unsent byte offset (for diagnostics).
    pub fn snd_nxt(&self) -> u64 {
        self.snd_nxt
    }

    /// The configuration (for timer periods).
    pub fn config(&self) -> &DcqcnConfig {
        &self.cfg
    }

    /// Emits the next paced packet, or `None` when the flow has sent
    /// everything. The caller transmits it and schedules the next
    /// emission after [`DcqcnSender::gap_for`] of it.
    pub fn emit_next(&mut self, _now: SimTime) -> Option<Packet> {
        if !self.has_more() {
            return None;
        }
        let payload = self.cfg.mtu.min(self.size - self.snd_nxt);
        let pkt = Packet::data(
            self.flow,
            self.src,
            self.dst,
            self.priority,
            TrafficClass::Lossless,
            self.snd_nxt,
            Bytes::new(payload),
            self.cfg.header,
        );
        self.snd_nxt += payload;
        // Byte-counter stage events.
        self.bytes_since_stage += pkt.size.as_u64();
        if self.ever_cut && self.bytes_since_stage >= self.cfg.byte_counter.as_u64() {
            self.bytes_since_stage = 0;
            self.b_stage += 1;
            self.increase_rate();
        }
        Some(pkt)
    }

    /// Inter-packet pacing gap for a packet of `size` wire bytes at the
    /// current rate.
    pub fn gap_for(&self, size: Bytes) -> SimDuration {
        self.rc.tx_time(size)
    }

    /// Reacts to a CNP: multiplicative cut, α refresh, stage reset.
    /// Returns `true` when the caller must cancel any outstanding RP
    /// timers and (re)arm both afresh.
    pub fn on_cnp(&mut self, _now: SimTime) -> bool {
        self.rt = self.rc;
        self.rc = self.rc.scale(1.0 - self.alpha / 2.0).max(self.cfg.min_rate);
        self.alpha = (1.0 - self.cfg.g) * self.alpha + self.cfg.g;
        self.t_stage = 0;
        self.b_stage = 0;
        self.bytes_since_stage = 0;
        self.ever_cut = true;
        true
    }

    /// Handles an RP timer firing. Returns whether to rearm. With
    /// wheel-armed timers a CNP cancels the old deadline outright, so a
    /// firing timer is always current — no generation check needed.
    pub fn on_timer(&mut self, kind: RpTimerKind) -> bool {
        match kind {
            RpTimerKind::Alpha => {
                self.alpha *= 1.0 - self.cfg.g;
                // Keep decaying while meaningfully non-zero.
                self.alpha > 1e-4 && self.has_more()
            }
            RpTimerKind::Rate => {
                self.t_stage += 1;
                self.increase_rate();
                self.rc < self.line_rate && self.has_more()
            }
        }
    }

    fn increase_rate(&mut self) {
        let f = self.cfg.f;
        if self.t_stage < f && self.b_stage < f {
            // Fast recovery: halve the distance to Rt.
        } else if self.t_stage >= f && self.b_stage >= f {
            self.rt = self.rt.saturating_add(self.cfg.rhai).min(self.line_rate);
        } else {
            self.rt = self.rt.saturating_add(self.cfg.rai).min(self.line_rate);
        }
        let avg = BitRate::from_bps((self.rc.as_bps() + self.rt.as_bps()) / 2);
        // Snap to line rate once within 1 Mbps so recovery terminates
        // (the integer average otherwise approaches it asymptotically).
        self.rc =
            if self.line_rate.as_bps() - avg.as_bps().min(self.line_rate.as_bps()) <= 1_000_000 {
                self.line_rate
            } else {
                avg
            };
    }
}

/// Receiver-side (notification point) state for one flow: counts payload
/// and reflects CE marks as CNPs with the 50 µs filter.
#[derive(Debug, Clone)]
pub struct DcqcnReceiver {
    flow: FlowId,
    host: NodeId,
    peer: NodeId,
    priority: Priority,
    size: u64,
    received: u64,
    last_cnp: Option<SimTime>,
    finished_at: Option<SimTime>,
}

impl DcqcnReceiver {
    /// Creates receiver state for a flow of `size` payload bytes.
    pub fn new(flow: FlowId, host: NodeId, peer: NodeId, priority: Priority, size: Bytes) -> Self {
        DcqcnReceiver {
            flow,
            host,
            peer,
            priority,
            size: size.as_u64(),
            received: 0,
            last_cnp: None,
            finished_at: None,
        }
    }

    /// Payload bytes received so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// When the last payload byte arrived, if complete.
    pub fn finished_at(&self) -> Option<SimTime> {
        self.finished_at
    }

    /// Cnp interval used by this receiver (from its sender's config at
    /// wiring time; the default matches the DCQCN paper).
    const CNP_INTERVAL: SimDuration = SimDuration::from_micros(50);

    /// Processes a data packet; returns a CNP to send if the packet was
    /// CE-marked and the 50 µs filter allows one.
    pub fn on_data(&mut self, now: SimTime, payload: Bytes, ce: bool) -> Option<Packet> {
        self.received += payload.as_u64();
        if self.received >= self.size && self.finished_at.is_none() {
            self.finished_at = Some(now);
        }
        if !ce {
            return None;
        }
        let allow = match self.last_cnp {
            None => true,
            Some(t) => now.saturating_since(t) >= Self::CNP_INTERVAL,
        };
        if allow {
            self.last_cnp = Some(now);
            Some(Packet::cnp(self.flow, self.host, self.peer, self.priority))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sender(size: u64) -> DcqcnSender {
        DcqcnSender::new(
            DcqcnConfig::default(),
            FlowId::new(1),
            NodeId::new(0),
            NodeId::new(1),
            Priority::new(3),
            Bytes::new(size),
            BitRate::from_gbps(25),
        )
    }

    #[test]
    fn starts_at_line_rate_and_paces() {
        let mut s = sender(5_000);
        assert_eq!(s.rate(), BitRate::from_gbps(25));
        let p = s.emit_next(SimTime::ZERO).unwrap();
        assert_eq!(p.seq, 0);
        assert_eq!(p.size, Bytes::new(1_048));
        // Gap at 25 Gbps for 1048 B = 336 ns (rounded up).
        assert_eq!(s.gap_for(p.size).as_nanos(), 336);
    }

    #[test]
    fn emits_whole_flow_then_stops() {
        let mut s = sender(2_500);
        let sizes: Vec<u64> = std::iter::from_fn(|| s.emit_next(SimTime::ZERO))
            .map(|p| p.payload.as_u64())
            .collect();
        assert_eq!(sizes, vec![1_000, 1_000, 500]);
        assert!(!s.has_more());
        assert!(s.emit_next(SimTime::ZERO).is_none());
    }

    #[test]
    fn cnp_cuts_rate_multiplicatively() {
        let mut s = sender(1_000_000);
        let r0 = s.rate();
        assert!(s.on_cnp(SimTime::from_micros(10)));
        // α starts at 1: first cut halves.
        assert_eq!(s.rate().as_bps(), r0.as_bps() / 2);
        let a1 = s.alpha();
        assert!(a1 >= 1.0 - 1e-12, "α refreshed toward 1");
        // Second CNP cuts again from the lower rate.
        s.on_cnp(SimTime::from_micros(20));
        assert!(s.rate().as_bps() < r0.as_bps() / 2);
    }

    #[test]
    fn rate_never_below_floor() {
        let mut s = sender(1_000_000);
        for i in 0..100 {
            s.on_cnp(SimTime::from_micros(i * 50));
        }
        assert!(s.rate() >= BitRate::from_mbps(10));
    }

    #[test]
    fn alpha_timer_decays() {
        let mut s = sender(1_000_000);
        s.on_cnp(SimTime::from_micros(10));
        let a = s.alpha();
        assert!(s.on_timer(RpTimerKind::Alpha));
        assert!(s.alpha() < a);
    }

    #[test]
    fn fast_recovery_converges_to_target() {
        let mut s = sender(10_000_000);
        s.on_cnp(SimTime::from_micros(10));
        let rt = BitRate::from_gbps(25); // rt was line rate pre-cut
        for _ in 0..4 {
            assert!(s.on_timer(RpTimerKind::Rate));
        }
        // After several fast-recovery steps Rc approaches Rt = 25 G.
        assert!(s.rate().as_bps() > rt.as_bps() * 9 / 10);
    }

    #[test]
    fn additive_then_hyper_increase_engage() {
        let cfg = DcqcnConfig {
            f: 2,
            ..DcqcnConfig::default()
        };
        let mut s = DcqcnSender::new(
            cfg,
            FlowId::new(1),
            NodeId::new(0),
            NodeId::new(1),
            Priority::new(3),
            Bytes::from_mb(100),
            BitRate::from_gbps(25),
        );
        s.on_cnp(SimTime::ZERO);
        // Drive only the timer: after F stages, additive increase raises
        // Rt beyond line-rate-capped fast recovery ceiling.
        for _ in 0..50 {
            if !s.on_timer(RpTimerKind::Rate) {
                break;
            }
        }
        assert_eq!(s.rate(), BitRate::from_gbps(25), "recovers to line rate");
    }

    #[test]
    fn np_cnp_filter() {
        let mut r = DcqcnReceiver::new(
            FlowId::new(1),
            NodeId::new(1),
            NodeId::new(0),
            Priority::new(3),
            Bytes::new(10_000),
        );
        assert!(r
            .on_data(SimTime::from_micros(0), Bytes::new(1_000), true)
            .is_some());
        // 10 µs later: suppressed.
        assert!(r
            .on_data(SimTime::from_micros(10), Bytes::new(1_000), true)
            .is_none());
        // 60 µs after the first: allowed again.
        assert!(r
            .on_data(SimTime::from_micros(60), Bytes::new(1_000), true)
            .is_some());
        // Unmarked packets never trigger CNPs.
        assert!(r
            .on_data(SimTime::from_micros(200), Bytes::new(1_000), false)
            .is_none());
    }

    #[test]
    fn receiver_completion() {
        let mut r = DcqcnReceiver::new(
            FlowId::new(1),
            NodeId::new(1),
            NodeId::new(0),
            Priority::new(3),
            Bytes::new(2_000),
        );
        r.on_data(SimTime::from_micros(1), Bytes::new(1_000), false);
        assert!(r.finished_at().is_none());
        r.on_data(SimTime::from_micros(2), Bytes::new(1_000), false);
        assert_eq!(r.finished_at(), Some(SimTime::from_micros(2)));
        assert_eq!(r.received(), 2_000);
    }
}
