//! Packets and PFC frames.
//!
//! A [`Packet`] is the unit stored in switch buffers and delivered over
//! links. Data packets carry a byte range of a flow; ACKs and CNPs are the
//! transports' feedback. PFC pause/resume frames are separate control
//! messages ([`PfcFrame`]) that bypass data queues, as on real hardware.

use dcn_sim::Bytes;

use crate::ids::{FlowId, NodeId, Priority, TrafficClass};

/// Wire size of an ACK packet (header-only segment).
pub const ACK_SIZE: Bytes = Bytes::new(60);
/// Wire size of a DCQCN Congestion Notification Packet.
pub const CNP_SIZE: Bytes = Bytes::new(60);
/// Wire size of an IEEE 802.1Qbb PFC pause frame.
pub const PFC_FRAME_SIZE: Bytes = Bytes::new(64);

/// The ECN codepoint of a packet (RFC 3168).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EcnCodepoint {
    /// Not ECN-capable transport.
    #[default]
    NotEct,
    /// ECN-capable, not marked.
    Ect,
    /// Congestion experienced — set by switches, echoed by receivers.
    Ce,
}

impl EcnCodepoint {
    /// Whether the congestion-experienced mark is set.
    pub const fn is_ce(self) -> bool {
        matches!(self, EcnCodepoint::Ce)
    }
}

/// What role a packet plays for its transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// A data segment carrying `payload` bytes at offset `seq`.
    Data,
    /// A (DC)TCP acknowledgement: cumulative ack plus the echoed ECN bit.
    Ack {
        /// Next expected byte offset at the receiver.
        cumulative_ack: u64,
        /// ECN-echo: the acked data arrived CE-marked.
        ecn_echo: bool,
    },
    /// A DCQCN congestion notification packet from receiver to sender.
    Cnp,
}

/// A simulated packet.
///
/// `size` is the wire size used for buffer accounting and serialization
/// time; `payload` is the flow bytes carried (zero for ACK/CNP).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Originating host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// 802.1p priority — selects the queue and PFC channel at every hop.
    pub priority: Priority,
    /// Lossless (RDMA) or lossy (TCP) handling.
    pub class: TrafficClass,
    /// Role of the packet.
    pub kind: PacketKind,
    /// Byte offset of the first payload byte within the flow.
    pub seq: u64,
    /// Flow payload bytes carried.
    pub payload: Bytes,
    /// Wire size (payload + headers) used for buffers and serialization.
    pub size: Bytes,
    /// ECN codepoint, possibly rewritten to CE by congested switches.
    pub ecn: EcnCodepoint,
}

impl Packet {
    /// Builds a data packet of `payload` flow bytes plus `header` overhead.
    #[allow(clippy::too_many_arguments)]
    pub fn data(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        priority: Priority,
        class: TrafficClass,
        seq: u64,
        payload: Bytes,
        header: Bytes,
    ) -> Packet {
        Packet {
            flow,
            src,
            dst,
            priority,
            class,
            kind: PacketKind::Data,
            seq,
            payload,
            size: payload + header,
            ecn: EcnCodepoint::Ect,
        }
    }

    /// Builds an ACK from `src` back to `dst` (receiver → sender).
    pub fn ack(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        priority: Priority,
        class: TrafficClass,
        cumulative_ack: u64,
        ecn_echo: bool,
    ) -> Packet {
        Packet {
            flow,
            src,
            dst,
            priority,
            class,
            kind: PacketKind::Ack {
                cumulative_ack,
                ecn_echo,
            },
            seq: 0,
            payload: Bytes::ZERO,
            size: ACK_SIZE,
            ecn: EcnCodepoint::NotEct,
        }
    }

    /// Builds a DCQCN CNP from the notification point back to the sender.
    pub fn cnp(flow: FlowId, src: NodeId, dst: NodeId, priority: Priority) -> Packet {
        Packet {
            flow,
            src,
            dst,
            priority,
            class: TrafficClass::Lossless,
            kind: PacketKind::Cnp,
            seq: 0,
            payload: Bytes::ZERO,
            size: CNP_SIZE,
            ecn: EcnCodepoint::NotEct,
        }
    }

    /// Whether this is a data packet (vs transport feedback).
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PacketKind::Data)
    }

    /// Marks the packet with congestion-experienced if it is ECN-capable.
    /// Returns whether the mark was applied.
    pub fn mark_ce(&mut self) -> bool {
        match self.ecn {
            EcnCodepoint::Ect | EcnCodepoint::Ce => {
                self.ecn = EcnCodepoint::Ce;
                true
            }
            EcnCodepoint::NotEct => false,
        }
    }
}

/// An IEEE 802.1Qbb per-priority pause or resume frame.
///
/// PFC frames travel hop-by-hop from a congested ingress port back to the
/// upstream transmitter. They are control-plane messages here: delivered
/// with link propagation delay, never queued behind data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PfcFrame {
    /// The priority (virtual channel) being paused or resumed.
    pub priority: Priority,
    /// `true` = XOFF (pause), `false` = XON (resume).
    pub pause: bool,
}

impl PfcFrame {
    /// An XOFF frame for `priority`.
    pub const fn pause(priority: Priority) -> Self {
        PfcFrame {
            priority,
            pause: true,
        }
    }

    /// An XON frame for `priority`.
    pub const fn resume(priority: Priority) -> Self {
        PfcFrame {
            priority,
            pause: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> (FlowId, NodeId, NodeId) {
        (FlowId::new(1), NodeId::new(0), NodeId::new(1))
    }

    #[test]
    fn data_packet_sizes() {
        let (f, a, b) = ids();
        let p = Packet::data(
            f,
            a,
            b,
            Priority::new(3),
            TrafficClass::Lossless,
            0,
            Bytes::new(1_000),
            Bytes::new(48),
        );
        assert_eq!(p.size, Bytes::new(1_048));
        assert_eq!(p.payload, Bytes::new(1_000));
        assert!(p.is_data());
    }

    #[test]
    fn ack_and_cnp_are_not_data() {
        let (f, a, b) = ids();
        let ack = Packet::ack(f, b, a, Priority::new(1), TrafficClass::Lossy, 5_000, true);
        assert!(!ack.is_data());
        assert_eq!(ack.size, ACK_SIZE);
        let cnp = Packet::cnp(f, b, a, Priority::new(3));
        assert!(!cnp.is_data());
        assert_eq!(cnp.size, CNP_SIZE);
    }

    #[test]
    fn ecn_marking_rules() {
        let (f, a, b) = ids();
        let mut p = Packet::data(
            f,
            a,
            b,
            Priority::new(0),
            TrafficClass::Lossy,
            0,
            Bytes::new(10),
            Bytes::new(48),
        );
        assert!(p.mark_ce());
        assert!(p.ecn.is_ce());
        // Already CE stays CE.
        assert!(p.mark_ce());
        // Non-ECT cannot be marked.
        let mut ack = Packet::ack(f, b, a, Priority::new(0), TrafficClass::Lossy, 0, false);
        assert!(!ack.mark_ce());
        assert_eq!(ack.ecn, EcnCodepoint::NotEct);
    }

    #[test]
    fn pfc_frame_constructors() {
        let p = PfcFrame::pause(Priority::new(3));
        assert!(p.pause);
        let r = PfcFrame::resume(Priority::new(3));
        assert!(!r.pause);
        assert_eq!(p.priority, r.priority);
    }
}
