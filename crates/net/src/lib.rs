//! Network substrate for DCN simulation: identifiers, packets, links,
//! topology builders and ECMP routing.
//!
//! This crate provides the passive data model shared by the switch,
//! transport and fabric crates:
//!
//! * [`NodeId`], [`PortId`], [`FlowId`], [`Priority`] — typed identifiers.
//! * [`Packet`] — a data/ACK/CNP unit with ECN codepoint and traffic class.
//! * [`Link`] — full-duplex point-to-point link (rate + propagation delay).
//! * [`Topology`] — node/link graph with builders for the paper's 3-layer
//!   clos fabric ([`Topology::clos`]), plus small test topologies.
//! * [`RoutingTable`] — all-shortest-path next-hop sets with per-flow ECMP.
//!
//! # Example
//!
//! ```
//! use dcn_net::{ClosConfig, FlowId, RoutingTable, Topology};
//!
//! let topo = Topology::clos(&ClosConfig::paper());
//! assert_eq!(topo.hosts().count(), 128);
//! let routes = RoutingTable::shortest_paths(&topo);
//! let src = topo.hosts().next().unwrap();
//! let dst = topo.hosts().last().unwrap();
//! // Every switch on the way knows a next hop for dst.
//! let port = routes.next_port(topo.host_uplink_switch(src).unwrap(), dst, FlowId::new(1));
//! assert!(port.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ids;
mod link;
mod packet;
mod partition;
mod routing;
mod topology;

pub use ids::{FlowId, NodeId, PortId, Priority, TrafficClass};
pub use link::{Link, LinkEnd, LinkId, NotAttached};
pub use packet::{
    EcnCodepoint, Packet, PacketKind, PfcFrame, ACK_SIZE, CNP_SIZE, NACK_SIZE, PFC_FRAME_SIZE,
};
pub use partition::Partition;
pub use routing::RoutingTable;
pub use topology::{ClosConfig, FatTreeConfig, Node, NodeKind, Topology};
