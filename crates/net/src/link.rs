//! Point-to-point full-duplex links.

use std::fmt;

use dcn_sim::{BitRate, SimDuration};

use crate::ids::{NodeId, PortId};

/// Identifies a link in a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(u32);

impl LinkId {
    /// Creates a link id from its index in the topology.
    pub const fn new(ix: u32) -> Self {
        LinkId(ix)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// One attachment point of a link: which node, and which of its ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkEnd {
    /// The attached node.
    pub node: NodeId,
    /// The port on that node.
    pub port: PortId,
}

impl LinkEnd {
    /// Creates an attachment point.
    pub const fn new(node: NodeId, port: PortId) -> Self {
        LinkEnd { node, port }
    }
}

/// A lookup named a node that is not an endpoint of the link — a wiring
/// defect. Returned (not panicked) so a corrupted or fault-injected
/// lookup can be recorded as a `Defect` trace event instead of aborting
/// a whole sweep worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotAttached {
    /// The node that was looked up.
    pub node: NodeId,
    /// The link it is not attached to.
    pub link: LinkId,
}

impl fmt::Display for NotAttached {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} is not attached to {}", self.node, self.link)
    }
}

impl std::error::Error for NotAttached {}

/// A full-duplex point-to-point link. Both directions share the same rate
/// and propagation delay; each direction serializes independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// This link's id.
    pub id: LinkId,
    /// One endpoint.
    pub a: LinkEnd,
    /// The other endpoint.
    pub b: LinkEnd,
    /// Transmission rate of each direction.
    pub rate: BitRate,
    /// One-way propagation delay.
    pub propagation: SimDuration,
}

impl Link {
    /// The endpoint opposite `node`.
    ///
    /// # Errors
    ///
    /// Returns [`NotAttached`] if `node` is not an endpoint.
    pub fn peer_of(&self, node: NodeId) -> Result<LinkEnd, NotAttached> {
        if self.a.node == node {
            Ok(self.b)
        } else if self.b.node == node {
            Ok(self.a)
        } else {
            Err(NotAttached {
                node,
                link: self.id,
            })
        }
    }

    /// The local attachment point for `node`.
    ///
    /// # Errors
    ///
    /// Returns [`NotAttached`] if `node` is not an endpoint.
    pub fn end_of(&self, node: NodeId) -> Result<LinkEnd, NotAttached> {
        if self.a.node == node {
            Ok(self.a)
        } else if self.b.node == node {
            Ok(self.b)
        } else {
            Err(NotAttached {
                node,
                link: self.id,
            })
        }
    }

    /// Whether `node` is one of the endpoints.
    pub fn touches(&self, node: NodeId) -> bool {
        self.a.node == node || self.b.node == node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        Link {
            id: LinkId::new(0),
            a: LinkEnd::new(NodeId::new(1), PortId::new(0)),
            b: LinkEnd::new(NodeId::new(2), PortId::new(3)),
            rate: BitRate::from_gbps(100),
            propagation: SimDuration::from_micros(1),
        }
    }

    #[test]
    fn peer_lookup() {
        let l = link();
        assert_eq!(l.peer_of(NodeId::new(1)).unwrap().node, NodeId::new(2));
        assert_eq!(l.peer_of(NodeId::new(2)).unwrap().port, PortId::new(0));
        assert_eq!(l.end_of(NodeId::new(2)).unwrap().port, PortId::new(3));
        assert!(l.touches(NodeId::new(1)));
        assert!(!l.touches(NodeId::new(9)));
    }

    #[test]
    fn unattached_lookup_is_a_typed_error_not_a_panic() {
        let err = link().peer_of(NodeId::new(7)).unwrap_err();
        assert_eq!(
            err,
            NotAttached {
                node: NodeId::new(7),
                link: LinkId::new(0),
            }
        );
        assert_eq!(err.to_string(), "n7 is not attached to l0");
        assert_eq!(link().end_of(NodeId::new(7)).unwrap_err(), err);
    }
}
