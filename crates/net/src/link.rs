//! Point-to-point full-duplex links.

use std::fmt;

use dcn_sim::{BitRate, SimDuration};

use crate::ids::{NodeId, PortId};

/// Identifies a link in a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(u32);

impl LinkId {
    /// Creates a link id from its index in the topology.
    pub const fn new(ix: u32) -> Self {
        LinkId(ix)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// One attachment point of a link: which node, and which of its ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkEnd {
    /// The attached node.
    pub node: NodeId,
    /// The port on that node.
    pub port: PortId,
}

impl LinkEnd {
    /// Creates an attachment point.
    pub const fn new(node: NodeId, port: PortId) -> Self {
        LinkEnd { node, port }
    }
}

/// A full-duplex point-to-point link. Both directions share the same rate
/// and propagation delay; each direction serializes independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// This link's id.
    pub id: LinkId,
    /// One endpoint.
    pub a: LinkEnd,
    /// The other endpoint.
    pub b: LinkEnd,
    /// Transmission rate of each direction.
    pub rate: BitRate,
    /// One-way propagation delay.
    pub propagation: SimDuration,
}

impl Link {
    /// The endpoint opposite `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not attached to this link.
    pub fn peer_of(&self, node: NodeId) -> LinkEnd {
        if self.a.node == node {
            self.b
        } else if self.b.node == node {
            self.a
        } else {
            panic!("{node} is not attached to {}", self.id)
        }
    }

    /// The local attachment point for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not attached to this link.
    pub fn end_of(&self, node: NodeId) -> LinkEnd {
        if self.a.node == node {
            self.a
        } else if self.b.node == node {
            self.b
        } else {
            panic!("{node} is not attached to {}", self.id)
        }
    }

    /// Whether `node` is one of the endpoints.
    pub fn touches(&self, node: NodeId) -> bool {
        self.a.node == node || self.b.node == node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        Link {
            id: LinkId::new(0),
            a: LinkEnd::new(NodeId::new(1), PortId::new(0)),
            b: LinkEnd::new(NodeId::new(2), PortId::new(3)),
            rate: BitRate::from_gbps(100),
            propagation: SimDuration::from_micros(1),
        }
    }

    #[test]
    fn peer_lookup() {
        let l = link();
        assert_eq!(l.peer_of(NodeId::new(1)).node, NodeId::new(2));
        assert_eq!(l.peer_of(NodeId::new(2)).port, PortId::new(0));
        assert_eq!(l.end_of(NodeId::new(2)).port, PortId::new(3));
        assert!(l.touches(NodeId::new(1)));
        assert!(!l.touches(NodeId::new(9)));
    }

    #[test]
    #[should_panic(expected = "not attached")]
    fn peer_of_unattached_panics() {
        link().peer_of(NodeId::new(7));
    }
}
