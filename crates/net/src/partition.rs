//! Spatial sharding of a topology for the parallel (sharded) executor.
//!
//! A [`Partition`] assigns every node to one shard such that a host is
//! always co-sharded with its ToR — host↔ToR links never cross shards,
//! so the only cross-shard traffic rides fabric links whose propagation
//! delay is at least a microsecond. That minimum cross-link propagation
//! is the partition's **lookahead**: an event popped at time `t` in one
//! shard can influence another shard no earlier than `t + lookahead`
//! (PFC frames travel with propagation delay only, data packets add
//! serialization on top), so shards may advance through a window of
//! that width in lockstep and exchange handoffs at window barriers
//! without ever seeing a message in their past.
//!
//! The assignment is a pure function of the topology and the requested
//! shard count — every shard computes it identically, which the
//! deterministic handoff-ordering protocol relies on.

use dcn_sim::SimDuration;

use crate::ids::NodeId;
use crate::link::LinkId;
use crate::topology::{NodeKind, Topology};

/// A deterministic node→shard assignment with its cross-link lookahead.
#[derive(Debug, Clone)]
pub struct Partition {
    shard_of: Vec<u32>,
    shards: usize,
    cross: Vec<bool>,
    cross_links: Vec<LinkId>,
    lookahead: Option<SimDuration>,
}

impl Partition {
    /// Partitions `topo` into at most `requested` shards (≥ 1).
    ///
    /// ToR switches (switches adjacent to at least one host) are grouped
    /// contiguously by node id into `min(requested, #ToRs)` balanced
    /// groups; hosts join their ToR's shard. Every other switch is
    /// assigned by deterministic fixed-point passes: in node-id order,
    /// an unassigned switch takes one of its assigned neighbors' shards,
    /// rotated round-robin so aggregation and core layers spread across
    /// shards instead of piling onto the first one.
    ///
    /// # Panics
    ///
    /// Panics if `requested` is zero or the topology has no nodes.
    pub fn new(topo: &Topology, requested: usize) -> Partition {
        assert!(requested >= 1, "at least one shard");
        assert!(topo.node_count() > 0, "empty topology");
        const UNASSIGNED: u32 = u32::MAX;
        let mut shard_of = vec![UNASSIGNED; topo.node_count()];

        // ToRs: switches with a host neighbor, in id order.
        let tors: Vec<NodeId> = topo
            .switches()
            .filter(|&sw| {
                topo.node(sw).ports.iter().any(|&lid| {
                    let l = topo.link(lid);
                    let peer = l.peer_of(sw).expect("port link attaches its node").node;
                    topo.node(peer).kind == NodeKind::Host
                })
            })
            .collect();
        let shards = requested.min(tors.len()).max(1);

        // Contiguous balanced ToR groups; hosts follow their ToR.
        for (i, &tor) in tors.iter().enumerate() {
            let shard = (i * shards / tors.len()) as u32;
            shard_of[tor.index()] = shard;
            for &lid in &topo.node(tor).ports {
                let peer = topo.link(lid).peer_of(tor).expect("attached").node;
                if topo.node(peer).kind == NodeKind::Host {
                    shard_of[peer.index()] = shard;
                }
            }
        }

        // Fixed-point passes for the remaining switches (aggs, cores):
        // take an assigned neighbor's shard, rotating among the sorted
        // candidate shards so upper layers spread out deterministically.
        let mut rotation = 0usize;
        loop {
            let mut progress = false;
            for node in topo.nodes() {
                if shard_of[node.id.index()] != UNASSIGNED {
                    continue;
                }
                let mut candidates: Vec<u32> = node
                    .ports
                    .iter()
                    .map(|&lid| {
                        let peer = topo.link(lid).peer_of(node.id).expect("attached").node;
                        shard_of[peer.index()]
                    })
                    .filter(|&s| s != UNASSIGNED)
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                candidates.sort_unstable();
                candidates.dedup();
                shard_of[node.id.index()] = candidates[rotation % candidates.len()];
                rotation += 1;
                progress = true;
            }
            if !progress {
                break;
            }
        }
        // Disconnected leftovers (none in our builders, but total anyway).
        for s in shard_of.iter_mut() {
            if *s == UNASSIGNED {
                *s = 0;
            }
        }

        let mut cross = vec![false; topo.links().len()];
        let mut cross_links = Vec::new();
        let mut lookahead: Option<SimDuration> = None;
        for l in topo.links() {
            if shard_of[l.a.node.index()] != shard_of[l.b.node.index()] {
                cross[l.id.index()] = true;
                cross_links.push(l.id);
                lookahead = Some(match lookahead {
                    Some(cur) => cur.min(l.propagation),
                    None => l.propagation,
                });
            }
        }

        Partition {
            shard_of,
            shards,
            cross,
            cross_links,
            lookahead,
        }
    }

    /// Effective shard count (≤ the requested count; at most one shard
    /// per ToR).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.shard_of[node.index()] as usize
    }

    /// Whether `link` connects two different shards.
    pub fn is_cross(&self, link: LinkId) -> bool {
        self.cross[link.index()]
    }

    /// All cross-shard links, in id order.
    pub fn cross_links(&self) -> &[LinkId] {
        &self.cross_links
    }

    /// The conservative-sync lookahead: the minimum propagation delay
    /// over all cross-shard links. `None` when nothing crosses (a
    /// single-shard partition).
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{ClosConfig, FatTreeConfig};

    fn check_invariants(topo: &Topology, requested: usize) -> Partition {
        let p = Partition::new(topo, requested);
        assert!(p.shards() >= 1 && p.shards() <= requested);
        // Total assignment within range.
        for n in topo.nodes() {
            assert!(p.shard_of(n.id) < p.shards(), "{:?} out of range", n.id);
        }
        // Every shard non-empty.
        let mut seen = vec![false; p.shards()];
        for n in topo.nodes() {
            seen[p.shard_of(n.id)] = true;
        }
        assert!(seen.iter().all(|&s| s), "empty shard");
        // Hosts co-sharded with their ToR: host links never cross.
        for h in topo.hosts() {
            let tor = topo.host_uplink_switch(h).unwrap();
            assert_eq!(p.shard_of(h), p.shard_of(tor), "host split from ToR");
        }
        // The lookahead claim: every cross link's propagation (the
        // minimum latency any influence needs to cross shards) is at
        // least the claimed lookahead, and cross/is_cross agree.
        let mut n_cross = 0;
        for l in topo.links() {
            let crosses = p.shard_of(l.a.node) != p.shard_of(l.b.node);
            assert_eq!(p.is_cross(l.id), crosses);
            if crosses {
                n_cross += 1;
                assert!(
                    l.propagation >= p.lookahead().expect("cross links imply lookahead"),
                    "cross link faster than lookahead"
                );
            }
        }
        assert_eq!(p.cross_links().len(), n_cross);
        if p.shards() > 1 {
            assert!(p.lookahead().is_some(), "multi-shard needs cross links");
        }
        p
    }

    #[test]
    fn cross_shard_min_latency_property() {
        let topos = [
            Topology::clos(&ClosConfig::paper()),
            Topology::clos(&ClosConfig::small(4)),
            Topology::fat_tree(&FatTreeConfig::new(4)),
            Topology::fat_tree(&FatTreeConfig::new(8)),
        ];
        for topo in &topos {
            for requested in [1, 2, 3, 4, 8, 64] {
                check_invariants(topo, requested);
            }
        }
    }

    #[test]
    fn paper_clos_four_shards_balance() {
        let topo = Topology::clos(&ClosConfig::paper());
        let p = check_invariants(&topo, 4);
        assert_eq!(p.shards(), 4);
        // One ToR (+ its 32 hosts) per shard, and the 4 aggs spread one
        // per shard by rotation instead of piling onto shard 0.
        let mut agg_shards: Vec<usize> = (128 + 4..128 + 8)
            .map(|i| p.shard_of(crate::ids::NodeId::new(i as u32)))
            .collect();
        agg_shards.sort_unstable();
        assert_eq!(agg_shards, vec![0, 1, 2, 3]);
        // Cross lookahead is the 1 µs ToR–agg propagation.
        assert_eq!(p.lookahead(), Some(dcn_sim::SimDuration::from_micros(1)));
    }

    #[test]
    fn shards_clamp_to_tor_count() {
        let topo = Topology::clos(&ClosConfig::paper());
        let p = Partition::new(&topo, 8);
        assert_eq!(p.shards(), 4, "paper clos has 4 ToRs");
        let single = Partition::new(&topo, 1);
        assert_eq!(single.shards(), 1);
        assert_eq!(single.lookahead(), None);
        assert!(single.cross_links().is_empty());
    }

    #[test]
    fn fat_tree_eight_shards_spread_pods() {
        let topo = Topology::fat_tree(&FatTreeConfig::new(8));
        let p = check_invariants(&topo, 8);
        assert_eq!(p.shards(), 8);
        // 32 edge switches → 4 per shard; pods are contiguous in id, so
        // each shard holds exactly one pod's edge layer (8 pods).
        for e in 0..32usize {
            let edge = crate::ids::NodeId::new((128 + e) as u32);
            assert_eq!(p.shard_of(edge), e / 4, "pod-contiguous grouping");
        }
    }

    #[test]
    fn deterministic_assignment() {
        let topo = Topology::fat_tree(&FatTreeConfig::new(4));
        let a = Partition::new(&topo, 4);
        let b = Partition::new(&topo, 4);
        for n in topo.nodes() {
            assert_eq!(a.shard_of(n.id), b.shard_of(n.id));
        }
        assert_eq!(a.cross_links(), b.cross_links());
    }
}
