//! Typed identifiers for nodes, ports, flows and priorities.

use std::fmt;

/// Identifies a node (host or switch) in a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its index in the topology.
    pub const fn new(ix: u32) -> Self {
        NodeId(ix)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a port within one switch (or the single port of a host).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PortId(u16);

impl PortId {
    /// Creates a port id from its index on the node.
    pub const fn new(ix: u16) -> Self {
        PortId(ix)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifies one flow (a transfer of a given size between two hosts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(u64);

impl FlowId {
    /// Creates a flow id.
    pub const fn new(id: u64) -> Self {
        FlowId(id)
    }

    /// The raw id.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// A stable hash of (flow, salt), used for ECMP path selection so a
    /// flow's packets stay on one path.
    pub fn ecmp_hash(self, salt: u64) -> u64 {
        // SplitMix64 finalizer — cheap and well distributed.
        let mut z = self.0 ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// An IEEE 802.1p priority (0–7), selecting one of the eight per-port
/// queues and one of the eight PFC virtual channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Priority(u8);

impl Priority {
    /// Number of priorities per port (fixed by 802.1p / PFC).
    pub const COUNT: usize = 8;

    /// Creates a priority.
    ///
    /// # Panics
    ///
    /// Panics if `p >= 8`.
    pub const fn new(p: u8) -> Self {
        assert!(p < 8, "priority out of range");
        Priority(p)
    }

    /// The raw value (0–7).
    pub const fn as_u8(self) -> u8 {
        self.0
    }

    /// The raw value as an index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// All eight priorities in order.
    pub fn all() -> impl Iterator<Item = Priority> {
        (0..8).map(Priority)
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio{}", self.0)
    }
}

/// Whether a traffic class tolerates drops (TCP) or requires PFC-backed
/// lossless delivery (RDMA / RoCEv2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Lossless traffic: protected by PFC, never intentionally dropped.
    Lossless,
    /// Lossy traffic: dropped when it exceeds buffer thresholds.
    Lossy,
    /// Lossy RDMA (IRN-style): droppable like [`TrafficClass::Lossy`] —
    /// no PFC protection, evictable — but switches track per-flow
    /// sequence progress on these packets and generate NACKs toward the
    /// sender when an out-of-order arrival exposes a gap, so the
    /// transport recovers by retransmission instead of pausing.
    LossyRdma,
}

impl TrafficClass {
    /// Whether this class is lossless.
    pub const fn is_lossless(self) -> bool {
        matches!(self, TrafficClass::Lossless)
    }

    /// Whether this class is IRN-style lossy RDMA.
    pub const fn is_lossy_rdma(self) -> bool {
        matches!(self, TrafficClass::LossyRdma)
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficClass::Lossless => write!(f, "lossless"),
            TrafficClass::Lossy => write!(f, "lossy"),
            TrafficClass::LossyRdma => write!(f, "lossy-rdma"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_bounds() {
        assert_eq!(Priority::new(7).as_u8(), 7);
        assert_eq!(Priority::all().count(), 8);
    }

    #[test]
    #[should_panic(expected = "priority out of range")]
    fn priority_rejects_8() {
        let _ = Priority::new(8);
    }

    #[test]
    fn ecmp_hash_is_stable_and_spreads() {
        let f = FlowId::new(1234);
        assert_eq!(f.ecmp_hash(7), f.ecmp_hash(7));
        // Different salts give different choices most of the time.
        let distinct: std::collections::HashSet<u64> =
            (0..32).map(|s| f.ecmp_hash(s) % 4).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn display_impls() {
        assert_eq!(NodeId::new(3).to_string(), "n3");
        assert_eq!(PortId::new(2).to_string(), "p2");
        assert_eq!(FlowId::new(9).to_string(), "f9");
        assert_eq!(Priority::new(1).to_string(), "prio1");
        assert_eq!(TrafficClass::Lossless.to_string(), "lossless");
    }
}
