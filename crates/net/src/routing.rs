//! All-shortest-path routing with per-flow ECMP.
//!
//! For every (switch, destination host) pair we precompute the set of
//! output ports that lie on some shortest path (by hop count, breaking
//! distance ties by keeping all minimal next hops). At forwarding time a
//! flow hashes onto one of the candidates so that all its packets follow
//! one path — standard per-flow ECMP, which is what the paper's ns-3
//! setup uses.

use std::collections::VecDeque;

use crate::ids::{FlowId, NodeId, PortId};
use crate::topology::{NodeKind, Topology};

/// Precomputed next-hop sets: for each node and destination host, the
/// output ports on shortest paths.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    /// `ports[node][dst_host_rank]` = candidate output ports.
    ports: Vec<Vec<Vec<PortId>>>,
    /// Maps host NodeId -> dense rank used to index `ports`.
    host_rank: Vec<Option<usize>>,
    /// ECMP hash salt (per-topology constant; change to re-roll paths).
    salt: u64,
}

impl RoutingTable {
    /// Builds shortest-path next-hop sets for every destination host by
    /// BFS from each host over the topology.
    pub fn shortest_paths(topo: &Topology) -> RoutingTable {
        let n = topo.node_count();
        let hosts: Vec<NodeId> = topo.hosts().collect();
        let mut host_rank = vec![None; n];
        for (rank, h) in hosts.iter().enumerate() {
            host_rank[h.index()] = Some(rank);
        }
        let mut ports = vec![vec![Vec::new(); hosts.len()]; n];

        for (rank, &dst) in hosts.iter().enumerate() {
            // BFS from dst; dist[v] = hops from v to dst.
            let mut dist = vec![u32::MAX; n];
            dist[dst.index()] = 0;
            let mut q = VecDeque::new();
            q.push_back(dst);
            while let Some(v) = q.pop_front() {
                let dv = dist[v.index()];
                for &lid in &topo.node(v).ports {
                    let peer = topo.link(lid).peer_of(v).node;
                    if dist[peer.index()] == u32::MAX {
                        dist[peer.index()] = dv + 1;
                        q.push_back(peer);
                    }
                }
            }
            // Next hops: every port whose peer is strictly closer to dst.
            for node in topo.nodes() {
                if dist[node.id.index()] == u32::MAX || node.id == dst {
                    continue;
                }
                let dn = dist[node.id.index()];
                for (pix, &lid) in node.ports.iter().enumerate() {
                    let peer = topo.link(lid).peer_of(node.id).node;
                    if dist[peer.index()] != u32::MAX && dist[peer.index()] + 1 == dn {
                        ports[node.id.index()][rank].push(PortId::new(pix as u16));
                    }
                }
            }
        }

        RoutingTable {
            ports,
            host_rank,
            salt: 0x005E_ED0F_ECA7,
        }
    }

    /// All candidate output ports at `node` toward `dst`, or an empty
    /// slice if unreachable / `dst` is not a host.
    pub fn candidates(&self, node: NodeId, dst: NodeId) -> &[PortId] {
        match self.host_rank.get(dst.index()).copied().flatten() {
            Some(rank) => &self.ports[node.index()][rank],
            None => &[],
        }
    }

    /// The ECMP-selected output port for `flow` at `node` toward `dst`,
    /// or `None` if unreachable.
    ///
    /// All packets of one flow at one node get the same port.
    pub fn next_port(&self, node: NodeId, dst: NodeId, flow: FlowId) -> Option<PortId> {
        let c = self.candidates(node, dst);
        if c.is_empty() {
            return None;
        }
        // Salt with the node id so a flow re-rolls independently per hop.
        let h = flow.ecmp_hash(self.salt ^ (node.index() as u64) << 17);
        Some(c[(h % c.len() as u64) as usize])
    }

    /// Hop count from `node` to `dst` following shortest paths, or `None`
    /// if unreachable. Useful for ideal-FCT computation.
    pub fn hop_count(&self, topo: &Topology, mut node: NodeId, dst: NodeId) -> Option<u32> {
        let mut hops = 0;
        let flow = FlowId::new(0);
        while node != dst {
            if topo.node(node).kind == NodeKind::Host && hops > 0 {
                return None; // wandered into a wrong host
            }
            let port = self.next_port(node, dst, flow)?;
            node = topo.link_at(node, port).peer_of(node).node;
            hops += 1;
            if hops > 64 {
                return None; // routing loop guard
            }
        }
        Some(hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ClosConfig;
    use dcn_sim::{BitRate, SimDuration};

    fn paper() -> (Topology, RoutingTable) {
        let t = Topology::clos(&ClosConfig::paper());
        let r = RoutingTable::shortest_paths(&t);
        (t, r)
    }

    #[test]
    fn same_tor_is_two_hops() {
        let (t, r) = paper();
        let hosts: Vec<NodeId> = t.hosts().collect();
        // hosts 0 and 1 share a ToR: host -> tor -> host = 2 hops.
        assert_eq!(r.hop_count(&t, hosts[0], hosts[1]), Some(2));
    }

    #[test]
    fn cross_tor_is_four_hops() {
        let (t, r) = paper();
        let hosts: Vec<NodeId> = t.hosts().collect();
        // host 0 (ToR 0) to host 32 (ToR 1): host-tor-agg-tor-host.
        assert_eq!(r.hop_count(&t, hosts[0], hosts[32]), Some(4));
    }

    #[test]
    fn tor_has_four_ecmp_uplinks_cross_rack() {
        let (t, r) = paper();
        let hosts: Vec<NodeId> = t.hosts().collect();
        let tor0 = t.host_uplink_switch(hosts[0]).unwrap();
        let c = r.candidates(tor0, hosts[32]);
        assert_eq!(c.len(), 4, "one per aggregation switch");
    }

    #[test]
    fn tor_has_single_downlink_same_rack() {
        let (t, r) = paper();
        let hosts: Vec<NodeId> = t.hosts().collect();
        let tor0 = t.host_uplink_switch(hosts[0]).unwrap();
        let c = r.candidates(tor0, hosts[1]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn flow_pinning_is_stable() {
        let (t, r) = paper();
        let hosts: Vec<NodeId> = t.hosts().collect();
        let tor0 = t.host_uplink_switch(hosts[0]).unwrap();
        let f = FlowId::new(77);
        let p1 = r.next_port(tor0, hosts[32], f);
        let p2 = r.next_port(tor0, hosts[32], f);
        assert_eq!(p1, p2);
    }

    #[test]
    fn ecmp_spreads_flows() {
        let (t, r) = paper();
        let hosts: Vec<NodeId> = t.hosts().collect();
        let tor0 = t.host_uplink_switch(hosts[0]).unwrap();
        let distinct: std::collections::HashSet<PortId> = (0..256)
            .filter_map(|i| r.next_port(tor0, hosts[32], FlowId::new(i)))
            .collect();
        assert!(
            distinct.len() >= 3,
            "got {} distinct uplinks",
            distinct.len()
        );
    }

    #[test]
    fn unreachable_and_non_host_destinations() {
        let (t, r) = paper();
        let sw = t.switches().next().unwrap();
        let host = t.hosts().next().unwrap();
        // Switch as destination: not a host, no routes.
        assert!(r.candidates(host, sw).is_empty());
        assert_eq!(r.next_port(host, sw, FlowId::new(1)), None);
    }

    #[test]
    fn works_on_dumbbell() {
        let t = Topology::dumbbell(
            2,
            2,
            BitRate::from_gbps(25),
            BitRate::from_gbps(10),
            SimDuration::from_micros(1),
        );
        let r = RoutingTable::shortest_paths(&t);
        let hosts: Vec<NodeId> = t.hosts().collect();
        // left host to right host: host-swL-swR-host = 3 hops.
        assert_eq!(r.hop_count(&t, hosts[0], hosts[2]), Some(3));
    }
}
