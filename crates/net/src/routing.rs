//! All-shortest-path routing with per-flow ECMP.
//!
//! For every (switch, destination host) pair we precompute the set of
//! output ports that lie on some shortest path (by hop count, breaking
//! distance ties by keeping all minimal next hops). At forwarding time a
//! flow hashes onto one of the candidates so that all its packets follow
//! one path — standard per-flow ECMP, which is what the paper's ns-3
//! setup uses.

use std::collections::{HashSet, VecDeque};

use crate::ids::{FlowId, NodeId, PortId};
use crate::link::Link;
use crate::topology::{NodeKind, Topology};

/// Precomputed next-hop sets: for each node and destination host, the
/// output ports on shortest paths.
///
/// Link failures are handled incrementally: [`RoutingTable::fail_link`]
/// marks both endpoint ports dead without recomputing the BFS, and
/// [`RoutingTable::next_port`] re-hashes an affected flow onto the live
/// subset of its candidate set. In a clos fabric every minimal path
/// shares the same hop count, so excluding dead candidates keeps routing
/// minimal as long as any shortest path survives; restoring the link
/// restores the exact pre-failure selection for every flow.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    /// `ports[node][dst_host_rank]` = candidate output ports.
    ports: Vec<Vec<Vec<PortId>>>,
    /// Maps host NodeId -> dense rank used to index `ports`.
    host_rank: Vec<Option<usize>>,
    /// ECMP hash salt (per-topology constant; change to re-roll paths).
    salt: u64,
    /// Ports whose link is currently down. Empty in a healthy fabric,
    /// so the forwarding fast path stays byte-identical to a build
    /// without fault support.
    down: HashSet<(NodeId, PortId)>,
}

impl RoutingTable {
    /// Builds shortest-path next-hop sets for every destination host by
    /// BFS from each host over the topology.
    pub fn shortest_paths(topo: &Topology) -> RoutingTable {
        let n = topo.node_count();
        let hosts: Vec<NodeId> = topo.hosts().collect();
        let mut host_rank = vec![None; n];
        for (rank, h) in hosts.iter().enumerate() {
            host_rank[h.index()] = Some(rank);
        }
        let mut ports = vec![vec![Vec::new(); hosts.len()]; n];

        for (rank, &dst) in hosts.iter().enumerate() {
            // BFS from dst; dist[v] = hops from v to dst.
            let mut dist = vec![u32::MAX; n];
            dist[dst.index()] = 0;
            let mut q = VecDeque::new();
            q.push_back(dst);
            while let Some(v) = q.pop_front() {
                let dv = dist[v.index()];
                for &lid in &topo.node(v).ports {
                    let Ok(end) = topo.link(lid).peer_of(v) else {
                        continue; // wiring defect: skip, don't abort
                    };
                    let peer = end.node;
                    if dist[peer.index()] == u32::MAX {
                        dist[peer.index()] = dv + 1;
                        q.push_back(peer);
                    }
                }
            }
            // Next hops: every port whose peer is strictly closer to dst.
            for node in topo.nodes() {
                if dist[node.id.index()] == u32::MAX || node.id == dst {
                    continue;
                }
                let dn = dist[node.id.index()];
                for (pix, &lid) in node.ports.iter().enumerate() {
                    let Ok(end) = topo.link(lid).peer_of(node.id) else {
                        continue;
                    };
                    let peer = end.node;
                    if dist[peer.index()] != u32::MAX && dist[peer.index()] + 1 == dn {
                        ports[node.id.index()][rank].push(PortId::new(pix as u16));
                    }
                }
            }
        }

        RoutingTable {
            ports,
            host_rank,
            salt: 0x005E_ED0F_ECA7,
            down: HashSet::new(),
        }
    }

    /// Marks both endpoint ports of `link` dead. O(1); forwarding
    /// excludes them until [`RoutingTable::restore_link`].
    pub fn fail_link(&mut self, link: &Link) {
        self.down.insert((link.a.node, link.a.port));
        self.down.insert((link.b.node, link.b.port));
    }

    /// Restores both endpoint ports of `link`. Flow-to-port pinning
    /// returns to exactly the pre-failure selection.
    pub fn restore_link(&mut self, link: &Link) {
        self.down.remove(&(link.a.node, link.a.port));
        self.down.remove(&(link.b.node, link.b.port));
    }

    /// Whether `port` at `node` is currently marked dead.
    pub fn is_port_down(&self, node: NodeId, port: PortId) -> bool {
        self.down.contains(&(node, port))
    }

    /// All candidate output ports at `node` toward `dst`, or an empty
    /// slice if unreachable / `dst` is not a host.
    pub fn candidates(&self, node: NodeId, dst: NodeId) -> &[PortId] {
        match self.host_rank.get(dst.index()).copied().flatten() {
            Some(rank) => &self.ports[node.index()][rank],
            None => &[],
        }
    }

    /// The ECMP-selected output port for `flow` at `node` toward `dst`,
    /// or `None` if unreachable (including when every candidate's link
    /// is down).
    ///
    /// All packets of one flow at one node get the same port. Flows
    /// whose hashed port is alive are never re-pinned by an unrelated
    /// failure; flows on a dead port re-hash onto the live subset and
    /// return to their original port once the link is restored.
    pub fn next_port(&self, node: NodeId, dst: NodeId, flow: FlowId) -> Option<PortId> {
        let c = self.candidates(node, dst);
        if c.is_empty() {
            return None;
        }
        // Salt with the node id so a flow re-rolls independently per hop.
        let h = flow.ecmp_hash(self.salt ^ (node.index() as u64) << 17);
        let primary = c[(h % c.len() as u64) as usize];
        if self.down.is_empty() || !self.down.contains(&(node, primary)) {
            return Some(primary);
        }
        let live: Vec<PortId> = c
            .iter()
            .copied()
            .filter(|&p| !self.down.contains(&(node, p)))
            .collect();
        if live.is_empty() {
            return None;
        }
        Some(live[(h % live.len() as u64) as usize])
    }

    /// Hop count from `node` to `dst` following shortest paths, or `None`
    /// if unreachable. Useful for ideal-FCT computation.
    pub fn hop_count(&self, topo: &Topology, mut node: NodeId, dst: NodeId) -> Option<u32> {
        let mut hops = 0;
        let flow = FlowId::new(0);
        while node != dst {
            if topo.node(node).kind == NodeKind::Host && hops > 0 {
                return None; // wandered into a wrong host
            }
            let port = self.next_port(node, dst, flow)?;
            node = topo.link_at(node, port).peer_of(node).ok()?.node;
            hops += 1;
            if hops > 64 {
                return None; // routing loop guard
            }
        }
        Some(hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ClosConfig;
    use dcn_sim::{BitRate, SimDuration};

    fn paper() -> (Topology, RoutingTable) {
        let t = Topology::clos(&ClosConfig::paper());
        let r = RoutingTable::shortest_paths(&t);
        (t, r)
    }

    #[test]
    fn same_tor_is_two_hops() {
        let (t, r) = paper();
        let hosts: Vec<NodeId> = t.hosts().collect();
        // hosts 0 and 1 share a ToR: host -> tor -> host = 2 hops.
        assert_eq!(r.hop_count(&t, hosts[0], hosts[1]), Some(2));
    }

    #[test]
    fn cross_tor_is_four_hops() {
        let (t, r) = paper();
        let hosts: Vec<NodeId> = t.hosts().collect();
        // host 0 (ToR 0) to host 32 (ToR 1): host-tor-agg-tor-host.
        assert_eq!(r.hop_count(&t, hosts[0], hosts[32]), Some(4));
    }

    #[test]
    fn tor_has_four_ecmp_uplinks_cross_rack() {
        let (t, r) = paper();
        let hosts: Vec<NodeId> = t.hosts().collect();
        let tor0 = t.host_uplink_switch(hosts[0]).unwrap();
        let c = r.candidates(tor0, hosts[32]);
        assert_eq!(c.len(), 4, "one per aggregation switch");
    }

    #[test]
    fn tor_has_single_downlink_same_rack() {
        let (t, r) = paper();
        let hosts: Vec<NodeId> = t.hosts().collect();
        let tor0 = t.host_uplink_switch(hosts[0]).unwrap();
        let c = r.candidates(tor0, hosts[1]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn flow_pinning_is_stable() {
        let (t, r) = paper();
        let hosts: Vec<NodeId> = t.hosts().collect();
        let tor0 = t.host_uplink_switch(hosts[0]).unwrap();
        let f = FlowId::new(77);
        let p1 = r.next_port(tor0, hosts[32], f);
        let p2 = r.next_port(tor0, hosts[32], f);
        assert_eq!(p1, p2);
    }

    #[test]
    fn ecmp_spreads_flows() {
        let (t, r) = paper();
        let hosts: Vec<NodeId> = t.hosts().collect();
        let tor0 = t.host_uplink_switch(hosts[0]).unwrap();
        let distinct: std::collections::HashSet<PortId> = (0..256)
            .filter_map(|i| r.next_port(tor0, hosts[32], FlowId::new(i)))
            .collect();
        assert!(
            distinct.len() >= 3,
            "got {} distinct uplinks",
            distinct.len()
        );
    }

    #[test]
    fn unreachable_and_non_host_destinations() {
        let (t, r) = paper();
        let sw = t.switches().next().unwrap();
        let host = t.hosts().next().unwrap();
        // Switch as destination: not a host, no routes.
        assert!(r.candidates(host, sw).is_empty());
        assert_eq!(r.next_port(host, sw, FlowId::new(1)), None);
    }

    #[test]
    fn failed_uplink_repins_only_affected_flows_and_restores_exactly() {
        let (t, mut r) = paper();
        let hosts: Vec<NodeId> = t.hosts().collect();
        let tor0 = t.host_uplink_switch(hosts[0]).unwrap();
        let dst = hosts[32];

        // Pin a pre-failure port for many flows.
        let before: Vec<Option<PortId>> = (0..64)
            .map(|i| r.next_port(tor0, dst, FlowId::new(i)))
            .collect();

        // Fail the link behind some flow's selected port.
        let victim_port = before[0].unwrap();
        let link = *t.link_at(tor0, victim_port);
        r.fail_link(&link);
        assert!(r.is_port_down(tor0, victim_port));

        for (i, &was) in before.iter().enumerate() {
            let now = r.next_port(tor0, dst, FlowId::new(i as u64));
            let was = was.unwrap();
            if was == victim_port {
                let now = now.expect("three live uplinks remain");
                assert_ne!(now, victim_port, "flow {i} moved off the dead port");
            } else {
                assert_eq!(now, Some(was), "flow {i} must not be re-pinned");
            }
        }

        // Recovery restores the exact pre-failure selection.
        r.restore_link(&link);
        assert!(!r.is_port_down(tor0, victim_port));
        for (i, &was) in before.iter().enumerate() {
            assert_eq!(r.next_port(tor0, dst, FlowId::new(i as u64)), was);
        }
    }

    #[test]
    fn all_candidates_down_means_no_route() {
        let (t, mut r) = paper();
        let hosts: Vec<NodeId> = t.hosts().collect();
        let tor0 = t.host_uplink_switch(hosts[0]).unwrap();
        let dst = hosts[32];
        for &p in r.candidates(tor0, dst).to_vec().iter() {
            let link = *t.link_at(tor0, p);
            r.fail_link(&link);
        }
        assert_eq!(r.next_port(tor0, dst, FlowId::new(1)), None);
    }

    #[test]
    fn works_on_dumbbell() {
        let t = Topology::dumbbell(
            2,
            2,
            BitRate::from_gbps(25),
            BitRate::from_gbps(10),
            SimDuration::from_micros(1),
        );
        let r = RoutingTable::shortest_paths(&t);
        let hosts: Vec<NodeId> = t.hosts().collect();
        // left host to right host: host-swL-swR-host = 3 hops.
        assert_eq!(r.hop_count(&t, hosts[0], hosts[2]), Some(3));
    }
}
