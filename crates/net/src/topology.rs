//! Topology graph and builders.
//!
//! The paper evaluates on a 3-layer clos (Fig. 6): 2 core switches, 4
//! aggregation switches, 4 ToR switches, 32 servers per ToR, 25 Gbps host
//! links and 100 Gbps fabric links, 1 µs propagation everywhere except
//! 5 µs between aggregation and core. [`ClosConfig::paper`] reproduces
//! exactly that; scaled-down variants are used in tests and benches.

use dcn_sim::{BitRate, SimDuration};

use crate::ids::{NodeId, PortId};
use crate::link::{Link, LinkEnd, LinkId};

/// What kind of device a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An end host with a single NIC port.
    Host,
    /// A shared-memory switch.
    Switch,
}

/// A node in the topology: a host or a switch, with its attached links
/// indexed by port.
#[derive(Debug, Clone)]
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// Host or switch.
    pub kind: NodeKind,
    /// Attached link per port, in port order.
    pub ports: Vec<LinkId>,
}

impl Node {
    /// Number of ports in use.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }
}

/// An immutable node/link graph.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
}

/// Configuration for the 3-layer clos fabric of the paper's Fig. 6.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosConfig {
    /// Number of ToR (leaf) switches.
    pub tors: usize,
    /// Number of aggregation switches.
    pub aggs: usize,
    /// Number of core switches.
    pub cores: usize,
    /// Servers attached to each ToR.
    pub hosts_per_tor: usize,
    /// Host access link rate.
    pub host_rate: BitRate,
    /// Switch-to-switch link rate.
    pub fabric_rate: BitRate,
    /// Propagation delay of host and ToR–Agg links.
    pub edge_propagation: SimDuration,
    /// Propagation delay of Agg–Core links.
    pub core_propagation: SimDuration,
}

impl ClosConfig {
    /// The exact configuration of the paper's evaluation (§IV *Setup*):
    /// 2 cores, 4 aggs, 4 ToRs, 32 servers/ToR, 25/100 Gbps, 1 µs edges,
    /// 5 µs Agg–Core.
    pub fn paper() -> Self {
        ClosConfig {
            tors: 4,
            aggs: 4,
            cores: 2,
            hosts_per_tor: 32,
            host_rate: BitRate::from_gbps(25),
            fabric_rate: BitRate::from_gbps(100),
            edge_propagation: SimDuration::from_micros(1),
            core_propagation: SimDuration::from_micros(5),
        }
    }

    /// A scaled-down clos with the same structure (2 cores, 2 aggs, 2
    /// ToRs, `hosts_per_tor` servers) for tests and fast benches.
    pub fn small(hosts_per_tor: usize) -> Self {
        ClosConfig {
            tors: 2,
            aggs: 2,
            cores: 2,
            hosts_per_tor,
            ..ClosConfig::paper()
        }
    }

    /// Total number of hosts.
    pub fn host_count(&self) -> usize {
        self.tors * self.hosts_per_tor
    }
}

impl Topology {
    /// Builds the clos fabric: every ToR connects to every aggregation
    /// switch, every aggregation switch connects to every core switch.
    ///
    /// Node ids are assigned hosts first (ToR-major), then ToRs, then
    /// aggs, then cores, so `hosts()` yields ids `0..host_count`.
    ///
    /// # Panics
    ///
    /// Panics if any tier count is zero.
    pub fn clos(cfg: &ClosConfig) -> Topology {
        assert!(cfg.tors > 0 && cfg.aggs > 0 && cfg.cores > 0 && cfg.hosts_per_tor > 0);
        let n_hosts = cfg.host_count();
        let mut b = Builder::new();
        let hosts: Vec<NodeId> = (0..n_hosts).map(|_| b.add(NodeKind::Host)).collect();
        let tors: Vec<NodeId> = (0..cfg.tors).map(|_| b.add(NodeKind::Switch)).collect();
        let aggs: Vec<NodeId> = (0..cfg.aggs).map(|_| b.add(NodeKind::Switch)).collect();
        let cores: Vec<NodeId> = (0..cfg.cores).map(|_| b.add(NodeKind::Switch)).collect();

        for (t, &tor) in tors.iter().enumerate() {
            for h in 0..cfg.hosts_per_tor {
                let host = hosts[t * cfg.hosts_per_tor + h];
                b.connect(host, tor, cfg.host_rate, cfg.edge_propagation);
            }
            for &agg in &aggs {
                b.connect(tor, agg, cfg.fabric_rate, cfg.edge_propagation);
            }
        }
        for &agg in &aggs {
            for &core in &cores {
                b.connect(agg, core, cfg.fabric_rate, cfg.core_propagation);
            }
        }
        b.build()
    }

    /// A single switch with `n` directly-attached hosts — the minimal
    /// incast scenario.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn single_switch(n: usize, host_rate: BitRate, propagation: SimDuration) -> Topology {
        assert!(n > 0);
        let mut b = Builder::new();
        let hosts: Vec<NodeId> = (0..n).map(|_| b.add(NodeKind::Host)).collect();
        let sw = b.add(NodeKind::Switch);
        for &h in &hosts {
            b.connect(h, sw, host_rate, propagation);
        }
        b.build()
    }

    /// Two switches joined by a bottleneck link, with `n_left`/`n_right`
    /// hosts on each side — the classic dumbbell for congestion tests.
    ///
    /// # Panics
    ///
    /// Panics if either host count is zero.
    pub fn dumbbell(
        n_left: usize,
        n_right: usize,
        host_rate: BitRate,
        bottleneck: BitRate,
        propagation: SimDuration,
    ) -> Topology {
        assert!(n_left > 0 && n_right > 0);
        let mut b = Builder::new();
        let left: Vec<NodeId> = (0..n_left).map(|_| b.add(NodeKind::Host)).collect();
        let right: Vec<NodeId> = (0..n_right).map(|_| b.add(NodeKind::Host)).collect();
        let sl = b.add(NodeKind::Switch);
        let sr = b.add(NodeKind::Switch);
        for &h in &left {
            b.connect(h, sl, host_rate, propagation);
        }
        for &h in &right {
            b.connect(h, sr, host_rate, propagation);
        }
        b.connect(sl, sr, bottleneck, propagation);
        b.build()
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links, in id order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The link with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// The link attached to `(node, port)`.
    ///
    /// # Panics
    ///
    /// Panics if the node or port is out of range.
    pub fn link_at(&self, node: NodeId, port: PortId) -> &Link {
        let lid = self.node(node).ports[port.index()];
        self.link(lid)
    }

    /// Ids of all hosts, in id order.
    pub fn hosts(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Host)
            .map(|n| n.id)
    }

    /// Ids of all switches, in id order.
    pub fn switches(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Switch)
            .map(|n| n.id)
    }

    /// The switch a host's single port connects to, or `None` for
    /// switches / unattached nodes.
    pub fn host_uplink_switch(&self, host: NodeId) -> Option<NodeId> {
        let n = self.node(host);
        if n.kind != NodeKind::Host {
            return None;
        }
        let link = self.link(*n.ports.first()?);
        Some(link.peer_of(host).ok()?.node)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

struct Builder {
    nodes: Vec<Node>,
    links: Vec<Link>,
}

impl Builder {
    fn new() -> Self {
        Builder {
            nodes: Vec::new(),
            links: Vec::new(),
        }
    }

    fn add(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            kind,
            ports: Vec::new(),
        });
        id
    }

    fn connect(&mut self, x: NodeId, y: NodeId, rate: BitRate, propagation: SimDuration) {
        let id = LinkId::new(self.links.len() as u32);
        let px = PortId::new(self.nodes[x.index()].ports.len() as u16);
        let py = PortId::new(self.nodes[y.index()].ports.len() as u16);
        self.nodes[x.index()].ports.push(id);
        self.nodes[y.index()].ports.push(id);
        self.links.push(Link {
            id,
            a: LinkEnd::new(x, px),
            b: LinkEnd::new(y, py),
            rate,
            propagation,
        });
    }

    fn build(self) -> Topology {
        Topology {
            nodes: self.nodes,
            links: self.links,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_clos_shape() {
        let cfg = ClosConfig::paper();
        let t = Topology::clos(&cfg);
        assert_eq!(t.hosts().count(), 128);
        assert_eq!(t.switches().count(), 10);
        // Links: 128 host + 4*4 tor-agg + 4*2 agg-core = 152.
        assert_eq!(t.links().len(), 152);
    }

    #[test]
    fn tor_port_layout() {
        let cfg = ClosConfig::paper();
        let t = Topology::clos(&cfg);
        let tor = t.switches().next().unwrap();
        // 32 host-facing + 4 agg-facing ports.
        assert_eq!(t.node(tor).port_count(), 36);
        // First 32 ports face hosts at 25G, rest face aggs at 100G.
        for p in 0..32 {
            assert_eq!(t.link_at(tor, PortId::new(p)).rate, BitRate::from_gbps(25));
        }
        for p in 32..36 {
            assert_eq!(t.link_at(tor, PortId::new(p)).rate, BitRate::from_gbps(100));
        }
    }

    #[test]
    fn host_uplinks() {
        let t = Topology::clos(&ClosConfig::small(4));
        for h in t.hosts() {
            let sw = t.host_uplink_switch(h).unwrap();
            assert_eq!(t.node(sw).kind, NodeKind::Switch);
        }
        let sw = t.switches().next().unwrap();
        assert_eq!(t.host_uplink_switch(sw), None);
    }

    #[test]
    fn single_switch_and_dumbbell() {
        let s = Topology::single_switch(5, BitRate::from_gbps(25), SimDuration::from_micros(1));
        assert_eq!(s.hosts().count(), 5);
        assert_eq!(s.switches().count(), 1);
        assert_eq!(s.links().len(), 5);

        let d = Topology::dumbbell(
            3,
            2,
            BitRate::from_gbps(25),
            BitRate::from_gbps(10),
            SimDuration::from_micros(1),
        );
        assert_eq!(d.hosts().count(), 5);
        assert_eq!(d.switches().count(), 2);
        assert_eq!(d.links().len(), 6);
    }

    #[test]
    fn core_links_have_long_propagation() {
        let cfg = ClosConfig::paper();
        let t = Topology::clos(&cfg);
        let long = t
            .links()
            .iter()
            .filter(|l| l.propagation == SimDuration::from_micros(5))
            .count();
        assert_eq!(long, 8); // 4 aggs × 2 cores
    }
}
