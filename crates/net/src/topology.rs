//! Topology graph and builders.
//!
//! The paper evaluates on a 3-layer clos (Fig. 6): 2 core switches, 4
//! aggregation switches, 4 ToR switches, 32 servers per ToR, 25 Gbps host
//! links and 100 Gbps fabric links, 1 µs propagation everywhere except
//! 5 µs between aggregation and core. [`ClosConfig::paper`] reproduces
//! exactly that; scaled-down variants are used in tests and benches.

use dcn_sim::{BitRate, SimDuration};

use crate::ids::{NodeId, PortId};
use crate::link::{Link, LinkEnd, LinkId};

/// What kind of device a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An end host with a single NIC port.
    Host,
    /// A shared-memory switch.
    Switch,
}

/// A node in the topology: a host or a switch, with its attached links
/// indexed by port.
#[derive(Debug, Clone)]
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// Host or switch.
    pub kind: NodeKind,
    /// Attached link per port, in port order.
    pub ports: Vec<LinkId>,
}

impl Node {
    /// Number of ports in use.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }
}

/// An immutable node/link graph.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
}

/// Configuration for the 3-layer clos fabric of the paper's Fig. 6.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosConfig {
    /// Number of ToR (leaf) switches.
    pub tors: usize,
    /// Number of aggregation switches.
    pub aggs: usize,
    /// Number of core switches.
    pub cores: usize,
    /// Servers attached to each ToR.
    pub hosts_per_tor: usize,
    /// Host access link rate.
    pub host_rate: BitRate,
    /// Switch-to-switch link rate.
    pub fabric_rate: BitRate,
    /// Propagation delay of host and ToR–Agg links.
    pub edge_propagation: SimDuration,
    /// Propagation delay of Agg–Core links.
    pub core_propagation: SimDuration,
}

impl ClosConfig {
    /// The exact configuration of the paper's evaluation (§IV *Setup*):
    /// 2 cores, 4 aggs, 4 ToRs, 32 servers/ToR, 25/100 Gbps, 1 µs edges,
    /// 5 µs Agg–Core.
    pub fn paper() -> Self {
        ClosConfig {
            tors: 4,
            aggs: 4,
            cores: 2,
            hosts_per_tor: 32,
            host_rate: BitRate::from_gbps(25),
            fabric_rate: BitRate::from_gbps(100),
            edge_propagation: SimDuration::from_micros(1),
            core_propagation: SimDuration::from_micros(5),
        }
    }

    /// A scaled-down clos with the same structure (2 cores, 2 aggs, 2
    /// ToRs, `hosts_per_tor` servers) for tests and fast benches.
    pub fn small(hosts_per_tor: usize) -> Self {
        ClosConfig {
            tors: 2,
            aggs: 2,
            cores: 2,
            hosts_per_tor,
            ..ClosConfig::paper()
        }
    }

    /// Total number of hosts.
    pub fn host_count(&self) -> usize {
        self.tors * self.hosts_per_tor
    }
}

/// Configuration for a k-ary fat-tree (Al-Fares et al.): `k` pods, each
/// with `k/2` edge and `k/2` aggregation switches, `(k/2)²` cores, and
/// `k³/4` hosts. `k = 16` is the 1024-host datacenter-scale topology the
/// sharded executor targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FatTreeConfig {
    /// Pod count / switch radix. Must be even and ≥ 2.
    pub k: usize,
    /// Host access link rate.
    pub host_rate: BitRate,
    /// Switch-to-switch link rate.
    pub fabric_rate: BitRate,
    /// Propagation delay of host and edge–agg links.
    pub edge_propagation: SimDuration,
    /// Propagation delay of agg–core links.
    pub core_propagation: SimDuration,
}

impl FatTreeConfig {
    /// A k-ary fat-tree with the paper's link rates and delays (25/100
    /// Gbps, 1 µs edge, 5 µs agg–core).
    pub fn new(k: usize) -> Self {
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "fat-tree k must be even and >= 2"
        );
        FatTreeConfig {
            k,
            host_rate: BitRate::from_gbps(25),
            fabric_rate: BitRate::from_gbps(100),
            edge_propagation: SimDuration::from_micros(1),
            core_propagation: SimDuration::from_micros(5),
        }
    }

    /// Total number of hosts: `k³/4`.
    pub fn host_count(&self) -> usize {
        self.k * self.k * self.k / 4
    }

    /// Number of edge (ToR) switches: `k²/2`.
    pub fn edge_count(&self) -> usize {
        self.k * self.k / 2
    }

    /// Number of core switches: `(k/2)²`.
    pub fn core_count(&self) -> usize {
        (self.k / 2) * (self.k / 2)
    }
}

impl Topology {
    /// Builds the clos fabric: every ToR connects to every aggregation
    /// switch, every aggregation switch connects to every core switch.
    ///
    /// Node ids are assigned hosts first (ToR-major), then ToRs, then
    /// aggs, then cores, so `hosts()` yields ids `0..host_count`.
    ///
    /// # Panics
    ///
    /// Panics if any tier count is zero.
    pub fn clos(cfg: &ClosConfig) -> Topology {
        assert!(cfg.tors > 0 && cfg.aggs > 0 && cfg.cores > 0 && cfg.hosts_per_tor > 0);
        let n_hosts = cfg.host_count();
        let mut b = Builder::new();
        let hosts: Vec<NodeId> = (0..n_hosts).map(|_| b.add(NodeKind::Host)).collect();
        let tors: Vec<NodeId> = (0..cfg.tors).map(|_| b.add(NodeKind::Switch)).collect();
        let aggs: Vec<NodeId> = (0..cfg.aggs).map(|_| b.add(NodeKind::Switch)).collect();
        let cores: Vec<NodeId> = (0..cfg.cores).map(|_| b.add(NodeKind::Switch)).collect();

        for (t, &tor) in tors.iter().enumerate() {
            for h in 0..cfg.hosts_per_tor {
                let host = hosts[t * cfg.hosts_per_tor + h];
                b.connect(host, tor, cfg.host_rate, cfg.edge_propagation);
            }
            for &agg in &aggs {
                b.connect(tor, agg, cfg.fabric_rate, cfg.edge_propagation);
            }
        }
        for &agg in &aggs {
            for &core in &cores {
                b.connect(agg, core, cfg.fabric_rate, cfg.core_propagation);
            }
        }
        b.build()
    }

    /// Builds a k-ary fat-tree ([`FatTreeConfig`]).
    ///
    /// Node ids follow the clos convention — hosts first (edge-major),
    /// then edge switches (pod-major), then aggregation switches
    /// (pod-major), then cores — so `hosts()` yields ids
    /// `0..host_count` and every fabric consumer's host-id assumptions
    /// carry over unchanged.
    ///
    /// Wiring: within pod `p`, edge switch `e` connects its `k/2` hosts
    /// and all `k/2` pod aggs; core `(a, j)` (for `a, j < k/2`) connects
    /// to agg `a` of every pod, giving each agg `k/2` core uplinks.
    pub fn fat_tree(cfg: &FatTreeConfig) -> Topology {
        assert!(
            cfg.k >= 2 && cfg.k.is_multiple_of(2),
            "fat-tree k must be even"
        );
        let k = cfg.k;
        let half = k / 2;
        let mut b = Builder::new();
        let hosts: Vec<NodeId> = (0..cfg.host_count())
            .map(|_| b.add(NodeKind::Host))
            .collect();
        let edges: Vec<NodeId> = (0..cfg.edge_count())
            .map(|_| b.add(NodeKind::Switch))
            .collect();
        let aggs: Vec<NodeId> = (0..cfg.edge_count())
            .map(|_| b.add(NodeKind::Switch))
            .collect();
        let cores: Vec<NodeId> = (0..cfg.core_count())
            .map(|_| b.add(NodeKind::Switch))
            .collect();

        for p in 0..k {
            for e in 0..half {
                let edge = edges[p * half + e];
                for h in 0..half {
                    let host = hosts[(p * half + e) * half + h];
                    b.connect(host, edge, cfg.host_rate, cfg.edge_propagation);
                }
                for a in 0..half {
                    b.connect(
                        edge,
                        aggs[p * half + a],
                        cfg.fabric_rate,
                        cfg.edge_propagation,
                    );
                }
            }
        }
        for a in 0..half {
            for j in 0..half {
                let core = cores[a * half + j];
                for p in 0..k {
                    b.connect(
                        aggs[p * half + a],
                        core,
                        cfg.fabric_rate,
                        cfg.core_propagation,
                    );
                }
            }
        }
        b.build()
    }

    /// A single switch with `n` directly-attached hosts — the minimal
    /// incast scenario.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn single_switch(n: usize, host_rate: BitRate, propagation: SimDuration) -> Topology {
        assert!(n > 0);
        let mut b = Builder::new();
        let hosts: Vec<NodeId> = (0..n).map(|_| b.add(NodeKind::Host)).collect();
        let sw = b.add(NodeKind::Switch);
        for &h in &hosts {
            b.connect(h, sw, host_rate, propagation);
        }
        b.build()
    }

    /// Two switches joined by a bottleneck link, with `n_left`/`n_right`
    /// hosts on each side — the classic dumbbell for congestion tests.
    ///
    /// # Panics
    ///
    /// Panics if either host count is zero.
    pub fn dumbbell(
        n_left: usize,
        n_right: usize,
        host_rate: BitRate,
        bottleneck: BitRate,
        propagation: SimDuration,
    ) -> Topology {
        assert!(n_left > 0 && n_right > 0);
        let mut b = Builder::new();
        let left: Vec<NodeId> = (0..n_left).map(|_| b.add(NodeKind::Host)).collect();
        let right: Vec<NodeId> = (0..n_right).map(|_| b.add(NodeKind::Host)).collect();
        let sl = b.add(NodeKind::Switch);
        let sr = b.add(NodeKind::Switch);
        for &h in &left {
            b.connect(h, sl, host_rate, propagation);
        }
        for &h in &right {
            b.connect(h, sr, host_rate, propagation);
        }
        b.connect(sl, sr, bottleneck, propagation);
        b.build()
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links, in id order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The link with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// The link attached to `(node, port)`.
    ///
    /// # Panics
    ///
    /// Panics if the node or port is out of range.
    pub fn link_at(&self, node: NodeId, port: PortId) -> &Link {
        let lid = self.node(node).ports[port.index()];
        self.link(lid)
    }

    /// Ids of all hosts, in id order.
    pub fn hosts(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Host)
            .map(|n| n.id)
    }

    /// Ids of all switches, in id order.
    pub fn switches(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Switch)
            .map(|n| n.id)
    }

    /// The switch a host's single port connects to, or `None` for
    /// switches / unattached nodes.
    pub fn host_uplink_switch(&self, host: NodeId) -> Option<NodeId> {
        let n = self.node(host);
        if n.kind != NodeKind::Host {
            return None;
        }
        let link = self.link(*n.ports.first()?);
        Some(link.peer_of(host).ok()?.node)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

struct Builder {
    nodes: Vec<Node>,
    links: Vec<Link>,
}

impl Builder {
    fn new() -> Self {
        Builder {
            nodes: Vec::new(),
            links: Vec::new(),
        }
    }

    fn add(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            kind,
            ports: Vec::new(),
        });
        id
    }

    fn connect(&mut self, x: NodeId, y: NodeId, rate: BitRate, propagation: SimDuration) {
        let id = LinkId::new(self.links.len() as u32);
        let px = PortId::new(self.nodes[x.index()].ports.len() as u16);
        let py = PortId::new(self.nodes[y.index()].ports.len() as u16);
        self.nodes[x.index()].ports.push(id);
        self.nodes[y.index()].ports.push(id);
        self.links.push(Link {
            id,
            a: LinkEnd::new(x, px),
            b: LinkEnd::new(y, py),
            rate,
            propagation,
        });
    }

    fn build(self) -> Topology {
        Topology {
            nodes: self.nodes,
            links: self.links,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_clos_shape() {
        let cfg = ClosConfig::paper();
        let t = Topology::clos(&cfg);
        assert_eq!(t.hosts().count(), 128);
        assert_eq!(t.switches().count(), 10);
        // Links: 128 host + 4*4 tor-agg + 4*2 agg-core = 152.
        assert_eq!(t.links().len(), 152);
    }

    #[test]
    fn tor_port_layout() {
        let cfg = ClosConfig::paper();
        let t = Topology::clos(&cfg);
        let tor = t.switches().next().unwrap();
        // 32 host-facing + 4 agg-facing ports.
        assert_eq!(t.node(tor).port_count(), 36);
        // First 32 ports face hosts at 25G, rest face aggs at 100G.
        for p in 0..32 {
            assert_eq!(t.link_at(tor, PortId::new(p)).rate, BitRate::from_gbps(25));
        }
        for p in 32..36 {
            assert_eq!(t.link_at(tor, PortId::new(p)).rate, BitRate::from_gbps(100));
        }
    }

    #[test]
    fn host_uplinks() {
        let t = Topology::clos(&ClosConfig::small(4));
        for h in t.hosts() {
            let sw = t.host_uplink_switch(h).unwrap();
            assert_eq!(t.node(sw).kind, NodeKind::Switch);
        }
        let sw = t.switches().next().unwrap();
        assert_eq!(t.host_uplink_switch(sw), None);
    }

    #[test]
    fn single_switch_and_dumbbell() {
        let s = Topology::single_switch(5, BitRate::from_gbps(25), SimDuration::from_micros(1));
        assert_eq!(s.hosts().count(), 5);
        assert_eq!(s.switches().count(), 1);
        assert_eq!(s.links().len(), 5);

        let d = Topology::dumbbell(
            3,
            2,
            BitRate::from_gbps(25),
            BitRate::from_gbps(10),
            SimDuration::from_micros(1),
        );
        assert_eq!(d.hosts().count(), 5);
        assert_eq!(d.switches().count(), 2);
        assert_eq!(d.links().len(), 6);
    }

    #[test]
    fn fat_tree_shape() {
        let cfg = FatTreeConfig::new(4);
        let t = Topology::fat_tree(&cfg);
        assert_eq!(t.hosts().count(), 16);
        assert_eq!(t.switches().count(), 8 + 8 + 4);
        // 16 host + (4 pods × 2 edges × 2 aggs) + (4 cores × 4 pods).
        assert_eq!(t.links().len(), 16 + 16 + 16);
        // Every edge switch: k/2 hosts + k/2 aggs = 4 ports; every core:
        // one agg per pod = 4 ports.
        for sw in t.switches() {
            assert_eq!(t.node(sw).port_count(), 4);
        }
        // Ids: hosts are 0..16, and each host's uplink is an edge switch
        // whose hosts are exactly its half-k id block.
        for h in t.hosts() {
            let edge = t.host_uplink_switch(h).unwrap();
            assert_eq!(edge.index(), 16 + h.index() / 2);
        }
    }

    #[test]
    fn fat_tree_paper_scale_shape() {
        let cfg = FatTreeConfig::new(16);
        assert_eq!(cfg.host_count(), 1024);
        let t = Topology::fat_tree(&cfg);
        assert_eq!(t.hosts().count(), 1024);
        assert_eq!(t.switches().count(), 128 + 128 + 64);
        assert_eq!(t.links().len(), 1024 + 1024 + 1024);
    }

    #[test]
    fn fat_tree_routes_reach_across_pods() {
        use crate::ids::FlowId;
        use crate::routing::RoutingTable;
        let t = Topology::fat_tree(&FatTreeConfig::new(4));
        let routes = RoutingTable::shortest_paths(&t);
        let hosts: Vec<NodeId> = t.hosts().collect();
        for (i, &src) in hosts.iter().enumerate() {
            for &dst in &hosts[i + 1..] {
                // Walk the route, counting hops; cross-pod paths are
                // host→edge→agg→core→agg→edge→host (5 switch hops).
                let mut at = t.host_uplink_switch(src).unwrap();
                let mut hops = 0;
                while at != dst {
                    let port = routes
                        .next_port(at, dst, FlowId::new(7))
                        .unwrap_or_else(|| panic!("no route {src:?}->{dst:?} at {at:?}"));
                    at = t.link_at(at, port).peer_of(at).unwrap().node;
                    hops += 1;
                    assert!(hops <= 6, "route too long {src:?}->{dst:?}");
                }
                let same_edge = src.index() / 2 == dst.index() / 2;
                let same_pod = src.index() / 4 == dst.index() / 4;
                let expect = if same_edge {
                    1
                } else if same_pod {
                    3
                } else {
                    5
                };
                assert_eq!(hops, expect, "{src:?}->{dst:?}");
            }
        }
    }

    #[test]
    fn core_links_have_long_propagation() {
        let cfg = ClosConfig::paper();
        let t = Topology::clos(&cfg);
        let long = t
            .links()
            .iter()
            .filter(|l| l.propagation == SimDuration::from_micros(5))
            .count();
        assert_eq!(long, 8); // 4 aggs × 2 cores
    }
}
