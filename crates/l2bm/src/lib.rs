//! **L2BM** — congestion-aware ingress buffer management for hybrid
//! TCP/RDMA data-center networks (Liu et al., ICDCS 2023).
//!
//! L2BM replaces the fixed control factor of the classic Dynamic
//! Threshold algorithm with a *congestion perception factor* derived from
//! the average time packets spend occupying each ingress queue:
//!
//! ```text
//! T_i^p(t) = (C / τ_i^p) · α · (B − Q(t))        (paper Eq. 3)
//! ```
//!
//! where `τ_i^p` is the average sojourn time of the packets currently
//! buffered at ingress port *i*, priority *p* (maintained by the
//! [`SojournModule`], paper Algorithm 1) and `C` normalizes the weight
//! (by default the sum of the average sojourn times of all active ingress
//! queues). Queues that drain fast — typically RDMA, whose DCQCN control
//! loop reacts within microseconds — get *large* PFC thresholds and
//! absorb bursts without pausing; queues whose packets linger — typically
//! TCP piling up behind congested egress ports — get *small* thresholds
//! and are stopped from monopolizing the shared pool.
//!
//! The crate provides:
//!
//! * [`L2bmPolicy`] — a drop-in [`dcn_switch::BufferPolicy`].
//! * [`SojournModule`] — the per-queue residence-time recorder, usable
//!   on its own.
//! * [`analysis`] — closed-form steady-state occupancy/threshold
//!   helpers (paper Eqs. 8–9).
//!
//! # Example
//!
//! ```
//! use dcn_net::NodeId;
//! use dcn_sim::BitRate;
//! use dcn_switch::{SharedMemorySwitch, SwitchConfig};
//! use l2bm::{L2bmConfig, L2bmPolicy};
//!
//! let sw = SharedMemorySwitch::new(
//!     NodeId::new(0),
//!     SwitchConfig::default(),
//!     vec![BitRate::from_gbps(25); 8],
//!     Box::new(L2bmPolicy::new(L2bmConfig::default())),
//!     7,
//! );
//! assert_eq!(sw.policy().name(), "L2BM");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod bshare;
mod config;
mod policy;
mod sojourn;

pub use bshare::{BShareConfig, BSharePolicy};
pub use config::{L2bmConfig, Normalization};
pub use policy::L2bmPolicy;
pub use sojourn::SojournModule;
