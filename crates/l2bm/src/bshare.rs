//! BShare: queueing-delay-driven buffer sharing.
//!
//! BShare allocates the shared pool by *delay target* rather than by
//! occupancy: a queue whose packets clear within the configured target
//! delay keeps the full burst-absorption threshold, while a queue whose
//! average sojourn time exceeds the target is squeezed in proportion to
//! its *share* of the switch-wide aggregate delay. The threshold is
//!
//! ```text
//! T(q) = w(q) · (B − Q(t))
//! w(q) = w_max                                  if τ(q) ≤ d_target
//! w(q) = max(w_min, α · (1 − τ(q)/C))           otherwise
//! ```
//!
//! where `τ(q)` is the queue's average sojourn time and `C = Σ τ` the
//! aggregate over all active queues — both read from the *same*
//! [`SojournModule`] the L2BM policy maintains. BShare is deliberately a
//! second consumer of that machinery: the module already provides O(1)
//! virtually-decayed per-queue `τ` and an O(1)-amortized incremental
//! `Σ τ`, so the delay signal costs nothing extra on the admission path.
//!
//! The two policies read the signal differently: L2BM scales a queue's
//! weight by its *relative* drain speed (`C/τ`, unbounded upward and
//! capped), while BShare enforces an *absolute* delay target — a queue
//! meeting the target is never penalized no matter how slow its peers
//! are, and the sole delay violator on a switch is squeezed to the floor
//! weight (`τ/C → 1`), which plain relative scaling cannot express.
//!
//! This is an adaptation of the BShare idea (PAPERS.md) onto this
//! repository's ingress-pool PFC-threshold interface, sharing the
//! estimator rather than reimplementing the original system.

use dcn_sim::{Bytes, SimTime};
use dcn_switch::{BufferPolicy, MmuState, QueueIndex};

use crate::sojourn::SojournModule;

/// Tunables of the BShare policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BShareConfig {
    /// Base control factor applied to delay violators before the
    /// delay-share scaling.
    pub alpha: f64,
    /// The absolute queueing-delay target, in seconds. Queues at or
    /// under it get `max_weight`.
    pub delay_target: f64,
    /// Weight floor for a queue that dominates the aggregate delay, so
    /// even the worst hog keeps a trickle of admission.
    pub min_weight: f64,
    /// Weight for queues meeting the delay target. 1.0 means "at most
    /// the whole remaining buffer".
    pub max_weight: f64,
    /// Whether time spent behind a PFC-paused egress queue is excluded
    /// from the sojourn estimate (same rule as L2BM §III-D).
    pub pause_freeze: bool,
}

impl Default for BShareConfig {
    fn default() -> Self {
        BShareConfig {
            alpha: 0.5,
            delay_target: 50e-6,
            min_weight: 1.0 / 64.0,
            max_weight: 1.0,
            pause_freeze: true,
        }
    }
}

impl BShareConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message if any factor is not positive and finite, or
    /// the weight bounds are inverted.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("alpha", self.alpha),
            ("delay_target", self.delay_target),
            ("min_weight", self.min_weight),
            ("max_weight", self.max_weight),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        if self.min_weight > self.max_weight {
            return Err(format!(
                "min_weight {} exceeds max_weight {}",
                self.min_weight, self.max_weight
            ));
        }
        Ok(())
    }
}

/// The BShare buffer-management policy (see the module docs).
#[derive(Debug)]
pub struct BSharePolicy {
    cfg: BShareConfig,
    sojourn: SojournModule,
}

impl BSharePolicy {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: BShareConfig) -> Self {
        cfg.validate().expect("invalid BShare config");
        BSharePolicy {
            cfg,
            sojourn: SojournModule::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BShareConfig {
        &self.cfg
    }

    /// Read access to the sojourn module (for introspection/tests).
    pub fn sojourn(&self) -> &SojournModule {
        &self.sojourn
    }

    /// The weight formula, shared by the admission path and the naive
    /// reference so a differential test exercises only the τ/C inputs.
    fn weight_from(&self, tau: f64, c: f64) -> f64 {
        if tau <= self.cfg.delay_target {
            return self.cfg.max_weight;
        }
        // The queue's share of the aggregate delay: 1 when it *is* the
        // aggregate (sole violator), small when its peers dominate.
        let share = if c <= tau { 1.0 } else { tau / c };
        (self.cfg.alpha * (1.0 - share)).max(self.cfg.min_weight)
    }

    /// The delay-driven control weight `w(q)` at `now`.
    pub fn weight(&self, q: QueueIndex, now: SimTime) -> f64 {
        let tau = self.sojourn.tau(q, now);
        self.weight_from(tau, self.sojourn.sum_active_tau(now))
    }

    /// Reference recomputation of [`BSharePolicy::weight`] using the
    /// sojourn module's full-scan aggregate instead of the incremental
    /// one. Kept for differential testing — not for the admission path.
    pub fn weight_naive(&self, q: QueueIndex, now: SimTime) -> f64 {
        let tau = self.sojourn.tau(q, now);
        self.weight_from(tau, self.sojourn.sum_active_tau_naive(now))
    }
}

impl Default for BSharePolicy {
    fn default() -> Self {
        BSharePolicy::new(BShareConfig::default())
    }
}

impl BufferPolicy for BSharePolicy {
    fn name(&self) -> &str {
        "BShare"
    }

    fn pfc_threshold(&self, mmu: &MmuState, q: QueueIndex, now: SimTime) -> Bytes {
        mmu.shared_remaining().scale(self.weight(q, now))
    }

    fn on_enqueue(
        &mut self,
        mmu: &MmuState,
        now: SimTime,
        q_in: QueueIndex,
        q_out: QueueIndex,
        _size: Bytes,
    ) {
        self.sojourn.on_enqueue(mmu, now, q_in, q_out);
    }

    fn on_dequeue(
        &mut self,
        _mmu: &MmuState,
        now: SimTime,
        q_in: QueueIndex,
        q_out: QueueIndex,
        _size: Bytes,
    ) {
        self.sojourn.on_dequeue(now, q_in, q_out);
    }

    fn on_egress_pause_changed(
        &mut self,
        _mmu: &MmuState,
        now: SimTime,
        q_out: QueueIndex,
        paused: bool,
    ) {
        if self.cfg.pause_freeze {
            self.sojourn.on_pause_changed(now, q_out, paused);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_net::{PortId, Priority};
    use dcn_sim::BitRate;
    use dcn_switch::{Pool, SwitchConfig};

    fn mmu() -> MmuState {
        MmuState::new(&SwitchConfig::default(), vec![BitRate::from_gbps(25); 4])
    }

    fn q(port: u16, prio: u8) -> QueueIndex {
        QueueIndex::new(PortId::new(port), Priority::new(prio))
    }

    fn enqueue(
        m: &mut MmuState,
        p: &mut BSharePolicy,
        now: SimTime,
        qi: QueueIndex,
        qo: QueueIndex,
        bytes: u64,
    ) {
        let c = m.plan_charge(qi, Bytes::new(bytes), Pool::Shared);
        m.charge(qi, qo, c);
        p.on_enqueue(m, now, qi, qo, Bytes::new(bytes));
    }

    #[test]
    fn default_config_is_valid() {
        assert!(BShareConfig::default().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_values() {
        let bad = BShareConfig {
            delay_target: 0.0,
            ..BShareConfig::default()
        };
        assert!(bad.validate().is_err());
        let inverted = BShareConfig {
            min_weight: 0.9,
            max_weight: 0.5,
            ..BShareConfig::default()
        };
        assert!(inverted.validate().is_err());
    }

    #[test]
    fn queue_under_target_gets_full_weight() {
        let p = BSharePolicy::default();
        let m = mmu();
        // Idle queue: τ = 0 ≤ target -> the whole remaining pool.
        assert_eq!(
            p.pfc_threshold(&m, q(0, 3), SimTime::ZERO),
            m.shared_remaining()
        );
    }

    #[test]
    fn sole_violator_is_squeezed_to_floor() {
        let mut p = BSharePolicy::default();
        let mut m = mmu();
        // 1 MB behind a 25 Gbps port: τ ≈ 320 µs >> 50 µs target, and
        // this queue is the whole aggregate.
        enqueue(&mut m, &mut p, SimTime::ZERO, q(0, 3), q(1, 3), 1_000_000);
        let w = p.weight(q(0, 3), SimTime::ZERO);
        assert!(
            (w - BShareConfig::default().min_weight).abs() < 1e-12,
            "sole violator floors: {w}"
        );
    }

    #[test]
    fn violator_among_busy_peers_keeps_more() {
        let mut p = BSharePolicy::default();
        let mut m = mmu();
        enqueue(&mut m, &mut p, SimTime::ZERO, q(0, 3), q(1, 3), 1_000_000);
        // A peer with an even larger backlog on a different egress port.
        enqueue(&mut m, &mut p, SimTime::ZERO, q(2, 3), q(3, 3), 2_000_000);
        let w = p.weight(q(0, 3), SimTime::ZERO);
        assert!(
            w > BShareConfig::default().min_weight + 1e-9,
            "peer delay dilutes the share: {w}"
        );
        assert!(w < BShareConfig::default().max_weight);
    }

    #[test]
    fn weight_matches_naive_reference() {
        let mut p = BSharePolicy::default();
        let mut m = mmu();
        enqueue(&mut m, &mut p, SimTime::ZERO, q(0, 3), q(1, 3), 500_000);
        enqueue(
            &mut m,
            &mut p,
            SimTime::from_micros(3),
            q(2, 3),
            q(3, 3),
            125_000,
        );
        for us in [3u64, 10, 42, 200, 1_000] {
            let t = SimTime::from_micros(us);
            let a = p.weight(q(0, 3), t);
            let b = p.weight_naive(q(0, 3), t);
            assert!((a - b).abs() <= 1e-9, "at {us}µs: {a} vs {b}");
        }
    }
}
