//! The sojourn-time recorder (paper Algorithm 1).
//!
//! For each ingress queue the module maintains the estimated *total
//! remaining residence time* of its buffered packets (`t_total`), the
//! packet count (`N`), and the last-update instant (`t_prev`). On
//! enqueue, a packet's residence estimate is the destination output
//! queue's depth divided by its drain rate (`Q_out / μ`); on every update
//! the elapsed interval is subtracted once per *actively draining*
//! packet. The average sojourn time is `τ = t_total / N` (paper Eq. 2).
//!
//! **PFC-diffusion mitigation** (paper §III-D): time during which a
//! packet's destination egress queue is paused by a downstream XOFF does
//! *not* count — those packets are excluded from the decay term, and the
//! enqueue estimate uses the pause-free drain rate. Without this rule,
//! back-pressure from elsewhere would masquerade as local congestion and
//! make L2BM spread the pause further upstream.
//!
//! The paper's Algorithm 1 as printed updates `t_total` on dequeue with
//! `t_total − (t_now − t_prev)`; we implement the self-consistent version
//! of the same bookkeeping (settle the decay term first, then remove the
//! departing packet, whose remaining estimate has already decayed to
//! ≈ 0), and clamp `t_total ≥ 0` against estimator error.
//!
//! # Hot-path complexity
//!
//! `pfc_threshold` runs per packet, so the normalization constant
//! `C = Σ τ` must not be recomputed by scanning every queue. Each
//! queue's unclamped contribution is linear in time — value
//! `t_total/N`, slope `active/N` — so the module keeps the aggregate
//! `Σ τ` and `Σ active/N` and advances them lazily by elapsed time.
//! Clamping at zero is handled by an expiry min-heap keyed on each
//! record's zero-crossing instant (`t_prev + t_total/active`); entries
//! are invalidated by a per-record generation counter instead of heap
//! deletion. [`SojournModule::sum_active_tau`] is then O(log k)
//! amortized in the number of records that expired since the last call
//! — O(1) when nothing crossed zero — instead of O(#queues). The
//! aggregate lives in a `RefCell` because threshold reads take `&self`.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dcn_net::Priority;
use dcn_sim::{SimDuration, SimTime};
use dcn_switch::{MmuState, QueueIndex};

/// Per-ingress-queue sojourn record.
#[derive(Debug, Clone, Copy, Default)]
struct Record {
    /// Σ estimated remaining residence time of buffered packets, seconds.
    total: f64,
    /// Buffered packet count `N`.
    n: u64,
    /// Packets currently sitting in paused egress queues (excluded from
    /// the decay term).
    paused_n: u64,
    /// Last settle instant.
    t_prev: SimTime,
}

impl Record {
    fn settle(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.t_prev).as_secs_f64();
        if dt > 0.0 {
            let active = self.n.saturating_sub(self.paused_n) as f64;
            self.total = (self.total - active * dt).max(0.0);
        }
        self.t_prev = now;
    }

    /// The record's *unclamped* contribution to `Σ τ` at `t`:
    /// `(value, decay slope per second)`. Only meaningful while the
    /// record is counted in the aggregate (i.e. before its zero
    /// crossing).
    fn linear_contribution(&self, t: SimTime) -> (f64, f64) {
        let n = self.n as f64;
        let active = self.n.saturating_sub(self.paused_n) as f64;
        let dt = t.saturating_since(self.t_prev).as_secs_f64();
        ((self.total - active * dt) / n, active / n)
    }
}

/// Aggregate-tracking metadata for one record.
#[derive(Debug, Clone, Copy, Default)]
struct RecMeta {
    /// Bumped whenever the record leaves the aggregate; stale expiry-heap
    /// entries carry an old generation and are skipped on pop.
    gen: u64,
    /// Whether the record is currently included in `sum`/`decay`.
    counted: bool,
}

/// The lazily-advanced aggregate `C = Σ τ` and its bookkeeping.
#[derive(Debug, Default)]
struct AggState {
    /// `Σ τ_i` over counted records, valid at `t`.
    sum: f64,
    /// `Σ active_i/n_i` over counted records — d(sum)/dt.
    decay: f64,
    /// Instant at which `sum` is valid.
    t: SimTime,
    /// Number of counted records (for snapping float drift to zero).
    live: usize,
    /// Per-record aggregate metadata, indexed like `records`.
    meta: Vec<RecMeta>,
    /// Zero-crossing events `(t_zero ns, record, generation)`, lazily
    /// invalidated via the generation counter.
    expiry: BinaryHeap<Reverse<(u64, usize, u64)>>,
}

impl AggState {
    fn ensure(&mut self, len: usize) {
        if self.meta.len() < len {
            self.meta.resize(len, RecMeta::default());
        }
    }

    /// Advances `sum` to `now`, retiring every record whose unclamped
    /// contribution crossed zero on the way.
    fn advance(&mut self, records: &[Record], now: SimTime) {
        if now <= self.t {
            return;
        }
        while let Some(&Reverse((tz_ns, i, gen))) = self.expiry.peek() {
            if tz_ns > now.as_nanos() {
                break;
            }
            self.expiry.pop();
            let m = self.meta[i];
            if m.gen != gen || !m.counted {
                continue;
            }
            let tz = SimTime::from_nanos(tz_ns);
            let dt = tz.saturating_since(self.t).as_secs_f64();
            self.sum -= self.decay * dt;
            self.t = self.t.max(tz);
            self.retire(&records[i], i);
        }
        let dt = now.saturating_since(self.t).as_secs_f64();
        self.sum -= self.decay * dt;
        self.t = now;
    }

    /// Removes a counted record's contribution at the current `t`.
    fn retire(&mut self, rec: &Record, i: usize) {
        let m = &mut self.meta[i];
        m.gen += 1;
        if !m.counted {
            return;
        }
        m.counted = false;
        let (value, slope) = rec.linear_contribution(self.t);
        self.sum -= value;
        self.decay -= slope;
        self.live -= 1;
        if self.live == 0 {
            // No records counted: the true sum is exactly zero; snap away
            // any accumulated float drift.
            self.sum = 0.0;
            self.decay = 0.0;
        }
    }

    /// (Re-)enters a just-settled record (`rec.t_prev == self.t`) into
    /// the aggregate.
    fn enroll(&mut self, rec: &Record, i: usize) {
        if rec.n == 0 || rec.total <= 0.0 {
            // Empty or fully-decayed records contribute exactly zero
            // until the next enqueue; keep them out of the aggregate.
            return;
        }
        let m = &mut self.meta[i];
        m.counted = true;
        self.live += 1;
        self.sum += rec.total / rec.n as f64;
        let active = rec.n.saturating_sub(rec.paused_n);
        if active > 0 {
            self.decay += active as f64 / rec.n as f64;
            // Ceil so the heap never fires before the true crossing; the
            // ≤ 1 ns overshoot is absorbed by `retire`'s exact subtraction.
            let tz_s = rec.total / active as f64;
            let tz_ns = rec
                .t_prev
                .as_nanos()
                .saturating_add((tz_s * 1e9).ceil() as u64);
            self.expiry.push(Reverse((tz_ns, i, m.gen)));
        }
    }
}

/// The residence-time recorder for every ingress queue of one switch.
///
/// Drive it with [`SojournModule::on_enqueue`] /
/// [`SojournModule::on_dequeue`] / [`SojournModule::on_pause_changed`]
/// and read [`SojournModule::tau`] (one queue) or
/// [`SojournModule::sum_active_tau`] (the normalization constant `C`).
///
/// `now` must be non-decreasing across calls — including the read-only
/// [`SojournModule::sum_active_tau`], which advances the incremental
/// aggregate — as is naturally the case inside a discrete-event
/// simulation.
#[derive(Debug, Default)]
pub struct SojournModule {
    records: Vec<Record>,
    /// Packets per (egress queue, ingress queue), densely indexed by
    /// `QueueIndex::flat` on both axes — needed to freeze the right
    /// ingress records when an egress queue pauses.
    by_egress: Vec<Vec<u32>>,
    /// Our own view of egress pause state (kept so settling uses the
    /// state that held *during* the elapsed interval).
    egress_paused: Vec<bool>,
    /// The incremental `Σ τ` aggregate; interior mutability because
    /// threshold reads (`sum_active_tau`) take `&self`.
    agg: RefCell<AggState>,
}

impl SojournModule {
    /// An empty module; per-queue state is sized from the MMU on first
    /// enqueue.
    pub fn new() -> Self {
        SojournModule::default()
    }

    fn egress_paused(&self, flat: usize) -> bool {
        self.egress_paused.get(flat).copied().unwrap_or(false)
    }

    /// Sizes `records` (and aggregate metadata) to cover flat index `i`.
    fn ensure_record(&mut self, i: usize) {
        if self.records.len() <= i {
            self.records.resize(i + 1, Record::default());
        }
        self.agg.get_mut().ensure(self.records.len());
    }

    /// Records a packet entering via `q_in`, queued at `q_out`. Call
    /// after the MMU charge, so `mmu.egress_bytes(q_out)` includes the
    /// packet.
    pub fn on_enqueue(
        &mut self,
        mmu: &MmuState,
        now: SimTime,
        q_in: QueueIndex,
        q_out: QueueIndex,
    ) {
        // Estimated residence: output queue depth over its pause-free
        // drain share (pause time must not count — §III-D).
        let mu = mmu.egress_drain_rate_ignoring_pause(q_out);
        let q_bytes = mmu.egress_bytes(q_out);
        let wait = mu.tx_time(q_bytes);
        let wait_s = if wait == SimDuration::MAX {
            0.0
        } else {
            wait.as_secs_f64()
        };

        // Size everything for the full radix up front so the steady-state
        // path never reallocates.
        let nq = mmu.port_count() * Priority::COUNT;
        let i = q_in.flat();
        self.ensure_record((nq - 1).max(i));

        let out_paused = self.egress_paused(q_out.flat());
        let state = self.agg.get_mut();
        state.advance(&self.records, now);
        let rec = &mut self.records[i];
        state.retire(rec, i);
        rec.settle(now);
        rec.total += wait_s;
        rec.n += 1;
        if out_paused {
            rec.paused_n += 1;
        }
        state.enroll(rec, i);

        let of = q_out.flat();
        if self.by_egress.len() <= of {
            self.by_egress.resize_with(of + 1, Vec::new);
        }
        let inner = &mut self.by_egress[of];
        if inner.len() < nq.max(i + 1) {
            inner.resize(nq.max(i + 1), 0);
        }
        inner[i] += 1;
    }

    /// Records a packet leaving `q_in` through `q_out`.
    pub fn on_dequeue(&mut self, now: SimTime, q_in: QueueIndex, q_out: QueueIndex) {
        let out_paused = self.egress_paused(q_out.flat());
        let i = q_in.flat();
        self.ensure_record(i);
        let state = self.agg.get_mut();
        state.advance(&self.records, now);
        let rec = &mut self.records[i];
        state.retire(rec, i);
        rec.settle(now);
        rec.n = rec.n.saturating_sub(1);
        if out_paused {
            rec.paused_n = rec.paused_n.saturating_sub(1);
        }
        if rec.n == 0 {
            rec.total = 0.0;
            rec.paused_n = 0;
        }
        state.enroll(rec, i);
        if let Some(inner) = self.by_egress.get_mut(q_out.flat()) {
            if let Some(c) = inner.get_mut(i) {
                *c = c.saturating_sub(1);
            }
        }
    }

    /// Records a downstream pause/resume of egress queue `q_out`:
    /// settles every ingress queue holding packets behind it (under the
    /// *old* state), then freezes/unfreezes those packets.
    pub fn on_pause_changed(&mut self, now: SimTime, q_out: QueueIndex, paused: bool) {
        let flat = q_out.flat();
        if self.egress_paused.len() <= flat {
            self.egress_paused.resize(flat + 1, false);
        }
        if self.egress_paused[flat] == paused {
            return;
        }
        self.egress_paused[flat] = paused;
        let Some(counts) = self.by_egress.get(flat) else {
            return;
        };
        let state = self.agg.get_mut();
        state.ensure(self.records.len());
        state.advance(&self.records, now);
        for (i, &count) in counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let rec = &mut self.records[i];
            state.retire(rec, i);
            rec.settle(now);
            if paused {
                rec.paused_n += u64::from(count);
            } else {
                rec.paused_n = rec.paused_n.saturating_sub(u64::from(count));
            }
            state.enroll(rec, i);
        }
    }

    /// The average sojourn time `τ` of ingress queue `q` at `now`
    /// (Eq. 2), with the decay since the last event applied virtually.
    /// Zero for an empty queue.
    pub fn tau(&self, q: QueueIndex, now: SimTime) -> f64 {
        match self.records.get(q.flat()) {
            Some(rec) if rec.n > 0 => {
                let dt = now.saturating_since(rec.t_prev).as_secs_f64();
                let active = rec.n.saturating_sub(rec.paused_n) as f64;
                let total = (rec.total - active * dt).max(0.0);
                total / rec.n as f64
            }
            _ => 0.0,
        }
    }

    /// Buffered packet count of ingress queue `q`.
    pub fn packet_count(&self, q: QueueIndex) -> u64 {
        self.records.get(q.flat()).map_or(0, |r| r.n)
    }

    /// `Σ τ` over all queues currently holding packets — the paper's
    /// normalization constant `C`. O(1) amortized: reads the incremental
    /// aggregate instead of scanning every queue.
    pub fn sum_active_tau(&self, now: SimTime) -> f64 {
        let mut state = self.agg.borrow_mut();
        state.advance(&self.records, now);
        state.sum.max(0.0)
    }

    /// Reference implementation of [`SojournModule::sum_active_tau`] by
    /// full scan. Kept for differential testing of the incremental
    /// aggregate — not for the admission path.
    pub fn sum_active_tau_naive(&self, now: SimTime) -> f64 {
        (0..self.records.len())
            .filter(|&i| self.records[i].n > 0)
            .map(|i| {
                let rec = &self.records[i];
                let dt = now.saturating_since(rec.t_prev).as_secs_f64();
                let active = rec.n.saturating_sub(rec.paused_n) as f64;
                ((rec.total - active * dt).max(0.0)) / rec.n as f64
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_net::{PortId, Priority};
    use dcn_sim::{BitRate, Bytes};
    use dcn_switch::{Pool, SwitchConfig};

    fn mmu() -> MmuState {
        MmuState::new(&SwitchConfig::default(), vec![BitRate::from_gbps(25); 4])
    }

    fn q(port: u16, prio: u8) -> QueueIndex {
        QueueIndex::new(PortId::new(port), Priority::new(prio))
    }

    /// Charges the MMU and informs the module, like the switch does.
    fn enqueue(
        m: &mut MmuState,
        s: &mut SojournModule,
        now: SimTime,
        qi: QueueIndex,
        qo: QueueIndex,
        bytes: u64,
    ) {
        let c = m.plan_charge(qi, Bytes::new(bytes), Pool::Shared);
        m.charge(qi, qo, c);
        s.on_enqueue(m, now, qi, qo);
    }

    fn dequeue(
        m: &mut MmuState,
        s: &mut SojournModule,
        now: SimTime,
        qi: QueueIndex,
        qo: QueueIndex,
        bytes: u64,
    ) {
        let c = m.plan_charge(qi, Bytes::ZERO, Pool::Shared);
        let _ = c;
        let charge = dcn_switch::Charge {
            reserved: Bytes::ZERO,
            pooled: Bytes::new(bytes),
            pool: Pool::Shared,
        };
        m.discharge(now, qi, qo, charge);
        s.on_dequeue(now, qi, qo);
    }

    #[test]
    fn empty_queue_has_zero_tau() {
        let s = SojournModule::new();
        assert_eq!(s.tau(q(0, 3), SimTime::from_micros(5)), 0.0);
        assert_eq!(s.sum_active_tau(SimTime::ZERO), 0.0);
    }

    #[test]
    fn single_packet_estimate_matches_queue_over_rate() {
        let mut m = mmu();
        let mut s = SojournModule::new();
        // 12_500 bytes at 25 Gbps (sole active priority) = 4 µs.
        enqueue(&mut m, &mut s, SimTime::ZERO, q(0, 3), q(1, 3), 12_500);
        let tau = s.tau(q(0, 3), SimTime::ZERO);
        assert!((tau - 4e-6).abs() < 1e-8, "tau {tau}");
    }

    #[test]
    fn tau_decays_with_time() {
        let mut m = mmu();
        let mut s = SojournModule::new();
        enqueue(&mut m, &mut s, SimTime::ZERO, q(0, 3), q(1, 3), 12_500);
        let t0 = s.tau(q(0, 3), SimTime::ZERO);
        let t1 = s.tau(q(0, 3), SimTime::from_micros(2));
        assert!(t1 < t0);
        // Fully decayed after the estimated 4 µs.
        assert_eq!(s.tau(q(0, 3), SimTime::from_micros(10)), 0.0);
    }

    #[test]
    fn congested_destination_raises_tau() {
        let mut m = mmu();
        let mut s = SojournModule::new();
        // Pre-load 125 KB on egress (1,3) from another ingress.
        enqueue(&mut m, &mut s, SimTime::ZERO, q(2, 3), q(1, 3), 125_000);
        // Now a packet from ingress (0,3) joins the 40 µs backlog...
        enqueue(&mut m, &mut s, SimTime::ZERO, q(0, 3), q(1, 3), 1_048);
        // ...while one to an empty egress (3,3) would wait almost nothing.
        enqueue(&mut m, &mut s, SimTime::ZERO, q(0, 1), q(3, 1), 1_048);
        let hot = s.tau(q(0, 3), SimTime::ZERO);
        let cold = s.tau(q(0, 1), SimTime::ZERO);
        assert!(hot > 10.0 * cold, "hot {hot} vs cold {cold}");
    }

    #[test]
    fn dequeue_empties_record() {
        let mut m = mmu();
        let mut s = SojournModule::new();
        enqueue(&mut m, &mut s, SimTime::ZERO, q(0, 3), q(1, 3), 1_048);
        assert_eq!(s.packet_count(q(0, 3)), 1);
        dequeue(
            &mut m,
            &mut s,
            SimTime::from_micros(1),
            q(0, 3),
            q(1, 3),
            1_048,
        );
        assert_eq!(s.packet_count(q(0, 3)), 0);
        assert_eq!(s.tau(q(0, 3), SimTime::from_micros(1)), 0.0);
    }

    #[test]
    fn paused_time_does_not_decay_tau() {
        let mut m = mmu();
        let mut s = SojournModule::new();
        enqueue(&mut m, &mut s, SimTime::ZERO, q(0, 3), q(1, 3), 125_000);
        let before = s.tau(q(0, 3), SimTime::ZERO);
        // Downstream pauses egress (1,3): τ freezes.
        m.set_egress_paused(q(1, 3), true);
        s.on_pause_changed(SimTime::ZERO, q(1, 3), true);
        let frozen = s.tau(q(0, 3), SimTime::from_micros(30));
        assert!(
            (frozen - before).abs() < 1e-9,
            "frozen {frozen} vs {before}"
        );
        // Resume: decay continues.
        m.set_egress_paused(q(1, 3), false);
        s.on_pause_changed(SimTime::from_micros(30), q(1, 3), false);
        let later = s.tau(q(0, 3), SimTime::from_micros(50));
        assert!(later < before);
    }

    #[test]
    fn sum_active_tau_counts_each_active_queue() {
        let mut m = mmu();
        let mut s = SojournModule::new();
        enqueue(&mut m, &mut s, SimTime::ZERO, q(0, 3), q(1, 3), 12_500);
        enqueue(&mut m, &mut s, SimTime::ZERO, q(2, 3), q(3, 3), 12_500);
        let c = s.sum_active_tau(SimTime::ZERO);
        let t0 = s.tau(q(0, 3), SimTime::ZERO);
        let t2 = s.tau(q(2, 3), SimTime::ZERO);
        assert!((c - (t0 + t2)).abs() < 1e-12);
    }

    #[test]
    fn enqueue_during_pause_marks_packet_frozen() {
        let mut m = mmu();
        let mut s = SojournModule::new();
        m.set_egress_paused(q(1, 3), true);
        s.on_pause_changed(SimTime::ZERO, q(1, 3), true);
        enqueue(&mut m, &mut s, SimTime::ZERO, q(0, 3), q(1, 3), 12_500);
        let t0 = s.tau(q(0, 3), SimTime::ZERO);
        let t1 = s.tau(q(0, 3), SimTime::from_micros(100));
        assert!((t0 - t1).abs() < 1e-12, "paused packet must not decay");
    }

    #[test]
    fn redundant_pause_events_are_ignored() {
        let mut s = SojournModule::new();
        s.on_pause_changed(SimTime::ZERO, q(1, 3), true);
        s.on_pause_changed(SimTime::from_micros(1), q(1, 3), true);
        s.on_pause_changed(SimTime::from_micros(2), q(1, 3), false);
        s.on_pause_changed(SimTime::from_micros(3), q(1, 3), false);
        // No packets involved — just must not panic or corrupt state.
        assert_eq!(s.sum_active_tau(SimTime::from_micros(4)), 0.0);
    }

    #[test]
    fn incremental_sum_matches_naive_after_decay_expiry() {
        let mut m = mmu();
        let mut s = SojournModule::new();
        // Two queues with different zero-crossing times.
        enqueue(&mut m, &mut s, SimTime::ZERO, q(0, 3), q(1, 3), 12_500); // ≈ 4 µs
        enqueue(&mut m, &mut s, SimTime::ZERO, q(2, 3), q(3, 3), 125_000); // ≈ 40 µs
        for us in [0u64, 2, 4, 6, 20, 39, 41, 100] {
            let t = SimTime::from_micros(us);
            let inc = s.sum_active_tau(t);
            let naive = s.sum_active_tau_naive(t);
            assert!(
                (inc - naive).abs() < 1e-9,
                "at {us}µs: inc {inc} naive {naive}"
            );
        }
    }

    #[test]
    fn incremental_sum_matches_naive_across_pause_cycle() {
        let mut m = mmu();
        let mut s = SojournModule::new();
        enqueue(&mut m, &mut s, SimTime::ZERO, q(0, 3), q(1, 3), 125_000);
        enqueue(
            &mut m,
            &mut s,
            SimTime::from_micros(1),
            q(2, 3),
            q(1, 3),
            12_500,
        );
        s.on_pause_changed(SimTime::from_micros(2), q(1, 3), true);
        let t = SimTime::from_micros(10);
        assert!((s.sum_active_tau(t) - s.sum_active_tau_naive(t)).abs() < 1e-9);
        s.on_pause_changed(SimTime::from_micros(12), q(1, 3), false);
        dequeue(
            &mut m,
            &mut s,
            SimTime::from_micros(14),
            q(0, 3),
            q(1, 3),
            125_000,
        );
        for us in [14u64, 15, 30, 60, 200] {
            let t = SimTime::from_micros(us);
            let inc = s.sum_active_tau(t);
            let naive = s.sum_active_tau_naive(t);
            assert!(
                (inc - naive).abs() < 1e-9,
                "at {us}µs: inc {inc} naive {naive}"
            );
        }
    }
}
