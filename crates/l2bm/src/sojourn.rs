//! The sojourn-time recorder (paper Algorithm 1).
//!
//! For each ingress queue the module maintains the estimated *total
//! remaining residence time* of its buffered packets (`t_total`), the
//! packet count (`N`), and the last-update instant (`t_prev`). On
//! enqueue, a packet's residence estimate is the destination output
//! queue's depth divided by its drain rate (`Q_out / μ`); on every update
//! the elapsed interval is subtracted once per *actively draining*
//! packet. The average sojourn time is `τ = t_total / N` (paper Eq. 2).
//!
//! **PFC-diffusion mitigation** (paper §III-D): time during which a
//! packet's destination egress queue is paused by a downstream XOFF does
//! *not* count — those packets are excluded from the decay term, and the
//! enqueue estimate uses the pause-free drain rate. Without this rule,
//! back-pressure from elsewhere would masquerade as local congestion and
//! make L2BM spread the pause further upstream.
//!
//! The paper's Algorithm 1 as printed updates `t_total` on dequeue with
//! `t_total − (t_now − t_prev)`; we implement the self-consistent version
//! of the same bookkeeping (settle the decay term first, then remove the
//! departing packet, whose remaining estimate has already decayed to
//! ≈ 0), and clamp `t_total ≥ 0` against estimator error.

use std::collections::HashMap;

use dcn_switch::{MmuState, QueueIndex};
use dcn_sim::{SimDuration, SimTime};

/// Per-ingress-queue sojourn record.
#[derive(Debug, Clone, Copy, Default)]
struct Record {
    /// Σ estimated remaining residence time of buffered packets, seconds.
    total: f64,
    /// Buffered packet count `N`.
    n: u64,
    /// Packets currently sitting in paused egress queues (excluded from
    /// the decay term).
    paused_n: u64,
    /// Last settle instant.
    t_prev: SimTime,
}

impl Record {
    fn settle(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.t_prev).as_secs_f64();
        if dt > 0.0 {
            let active = self.n.saturating_sub(self.paused_n) as f64;
            self.total = (self.total - active * dt).max(0.0);
        }
        self.t_prev = now;
    }
}

/// The residence-time recorder for every ingress queue of one switch.
///
/// Drive it with [`SojournModule::on_enqueue`] /
/// [`SojournModule::on_dequeue`] / [`SojournModule::on_pause_changed`]
/// and read [`SojournModule::tau`] (one queue) or
/// [`SojournModule::sum_active_tau`] (the normalization constant `C`).
#[derive(Debug, Default)]
pub struct SojournModule {
    records: Vec<Record>,
    /// Packets per (egress queue flat, ingress queue flat) — needed to
    /// freeze the right ingress records when an egress queue pauses.
    by_egress: HashMap<usize, HashMap<usize, u64>>,
    /// Our own view of egress pause state (kept so settling uses the
    /// state that held *during* the elapsed interval).
    egress_paused: Vec<bool>,
}

impl SojournModule {
    /// An empty module; per-queue state is allocated on first use.
    pub fn new() -> Self {
        SojournModule::default()
    }

    fn record_mut(&mut self, q: QueueIndex) -> &mut Record {
        let i = q.flat();
        if self.records.len() <= i {
            self.records.resize(i + 1, Record::default());
        }
        &mut self.records[i]
    }

    fn egress_paused(&self, flat: usize) -> bool {
        self.egress_paused.get(flat).copied().unwrap_or(false)
    }

    /// Records a packet entering via `q_in`, queued at `q_out`. Call
    /// after the MMU charge, so `mmu.egress_bytes(q_out)` includes the
    /// packet.
    pub fn on_enqueue(&mut self, mmu: &MmuState, now: SimTime, q_in: QueueIndex, q_out: QueueIndex) {
        // Estimated residence: output queue depth over its pause-free
        // drain share (pause time must not count — §III-D).
        let mu = mmu.egress_drain_rate_ignoring_pause(q_out);
        let q_bytes = mmu.egress_bytes(q_out);
        let wait = mu.tx_time(q_bytes);
        let wait_s = if wait == SimDuration::MAX {
            0.0
        } else {
            wait.as_secs_f64()
        };

        let out_paused = self.egress_paused(q_out.flat());
        let rec = self.record_mut(q_in);
        rec.settle(now);
        rec.total += wait_s;
        rec.n += 1;
        if out_paused {
            rec.paused_n += 1;
        }
        *self
            .by_egress
            .entry(q_out.flat())
            .or_default()
            .entry(q_in.flat())
            .or_insert(0) += 1;
    }

    /// Records a packet leaving `q_in` through `q_out`.
    pub fn on_dequeue(&mut self, now: SimTime, q_in: QueueIndex, q_out: QueueIndex) {
        let out_paused = self.egress_paused(q_out.flat());
        let rec = self.record_mut(q_in);
        rec.settle(now);
        rec.n = rec.n.saturating_sub(1);
        if out_paused {
            rec.paused_n = rec.paused_n.saturating_sub(1);
        }
        if rec.n == 0 {
            rec.total = 0.0;
            rec.paused_n = 0;
        }
        if let Some(m) = self.by_egress.get_mut(&q_out.flat()) {
            if let Some(c) = m.get_mut(&q_in.flat()) {
                *c = c.saturating_sub(1);
                if *c == 0 {
                    m.remove(&q_in.flat());
                }
            }
            if m.is_empty() {
                self.by_egress.remove(&q_out.flat());
            }
        }
    }

    /// Records a downstream pause/resume of egress queue `q_out`:
    /// settles every ingress queue holding packets behind it (under the
    /// *old* state), then freezes/unfreezes those packets.
    pub fn on_pause_changed(&mut self, now: SimTime, q_out: QueueIndex, paused: bool) {
        let flat = q_out.flat();
        if self.egress_paused.len() <= flat {
            self.egress_paused.resize(flat + 1, false);
        }
        if self.egress_paused[flat] == paused {
            return;
        }
        if let Some(m) = self.by_egress.get(&flat) {
            let affected: Vec<(usize, u64)> = m.iter().map(|(&q, &c)| (q, c)).collect();
            for (q_in_flat, count) in affected {
                if self.records.len() <= q_in_flat {
                    self.records.resize(q_in_flat + 1, Record::default());
                }
                let rec = &mut self.records[q_in_flat];
                rec.settle(now);
                if paused {
                    rec.paused_n += count;
                } else {
                    rec.paused_n = rec.paused_n.saturating_sub(count);
                }
            }
        }
        self.egress_paused[flat] = paused;
    }

    /// The average sojourn time `τ` of ingress queue `q` at `now`
    /// (Eq. 2), with the decay since the last event applied virtually.
    /// Zero for an empty queue.
    pub fn tau(&self, q: QueueIndex, now: SimTime) -> f64 {
        match self.records.get(q.flat()) {
            Some(rec) if rec.n > 0 => {
                let dt = now.saturating_since(rec.t_prev).as_secs_f64();
                let active = rec.n.saturating_sub(rec.paused_n) as f64;
                let total = (rec.total - active * dt).max(0.0);
                total / rec.n as f64
            }
            _ => 0.0,
        }
    }

    /// Buffered packet count of ingress queue `q`.
    pub fn packet_count(&self, q: QueueIndex) -> u64 {
        self.records.get(q.flat()).map_or(0, |r| r.n)
    }

    /// `Σ τ` over all queues currently holding packets — the paper's
    /// normalization constant `C`.
    pub fn sum_active_tau(&self, now: SimTime) -> f64 {
        (0..self.records.len())
            .filter(|&i| self.records[i].n > 0)
            .map(|i| {
                let rec = &self.records[i];
                let dt = now.saturating_since(rec.t_prev).as_secs_f64();
                let active = rec.n.saturating_sub(rec.paused_n) as f64;
                ((rec.total - active * dt).max(0.0)) / rec.n as f64
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_net::{PortId, Priority};
    use dcn_sim::{BitRate, Bytes};
    use dcn_switch::{Pool, SwitchConfig};

    fn mmu() -> MmuState {
        MmuState::new(&SwitchConfig::default(), vec![BitRate::from_gbps(25); 4])
    }

    fn q(port: u16, prio: u8) -> QueueIndex {
        QueueIndex::new(PortId::new(port), Priority::new(prio))
    }

    /// Charges the MMU and informs the module, like the switch does.
    fn enqueue(m: &mut MmuState, s: &mut SojournModule, now: SimTime, qi: QueueIndex, qo: QueueIndex, bytes: u64) {
        let c = m.plan_charge(qi, Bytes::new(bytes), Pool::Shared);
        m.charge(qi, qo, c);
        s.on_enqueue(m, now, qi, qo);
    }

    fn dequeue(m: &mut MmuState, s: &mut SojournModule, now: SimTime, qi: QueueIndex, qo: QueueIndex, bytes: u64) {
        let c = m.plan_charge(qi, Bytes::ZERO, Pool::Shared);
        let _ = c;
        let charge = dcn_switch::Charge {
            reserved: Bytes::ZERO,
            pooled: Bytes::new(bytes),
            pool: Pool::Shared,
        };
        m.discharge(now, qi, qo, charge);
        s.on_dequeue(now, qi, qo);
    }

    #[test]
    fn empty_queue_has_zero_tau() {
        let s = SojournModule::new();
        assert_eq!(s.tau(q(0, 3), SimTime::from_micros(5)), 0.0);
        assert_eq!(s.sum_active_tau(SimTime::ZERO), 0.0);
    }

    #[test]
    fn single_packet_estimate_matches_queue_over_rate() {
        let mut m = mmu();
        let mut s = SojournModule::new();
        // 12_500 bytes at 25 Gbps (sole active priority) = 4 µs.
        enqueue(&mut m, &mut s, SimTime::ZERO, q(0, 3), q(1, 3), 12_500);
        let tau = s.tau(q(0, 3), SimTime::ZERO);
        assert!((tau - 4e-6).abs() < 1e-8, "tau {tau}");
    }

    #[test]
    fn tau_decays_with_time() {
        let mut m = mmu();
        let mut s = SojournModule::new();
        enqueue(&mut m, &mut s, SimTime::ZERO, q(0, 3), q(1, 3), 12_500);
        let t0 = s.tau(q(0, 3), SimTime::ZERO);
        let t1 = s.tau(q(0, 3), SimTime::from_micros(2));
        assert!(t1 < t0);
        // Fully decayed after the estimated 4 µs.
        assert_eq!(s.tau(q(0, 3), SimTime::from_micros(10)), 0.0);
    }

    #[test]
    fn congested_destination_raises_tau() {
        let mut m = mmu();
        let mut s = SojournModule::new();
        // Pre-load 125 KB on egress (1,3) from another ingress.
        enqueue(&mut m, &mut s, SimTime::ZERO, q(2, 3), q(1, 3), 125_000);
        // Now a packet from ingress (0,3) joins the 40 µs backlog...
        enqueue(&mut m, &mut s, SimTime::ZERO, q(0, 3), q(1, 3), 1_048);
        // ...while one to an empty egress (3,3) would wait almost nothing.
        enqueue(&mut m, &mut s, SimTime::ZERO, q(0, 1), q(3, 1), 1_048);
        let hot = s.tau(q(0, 3), SimTime::ZERO);
        let cold = s.tau(q(0, 1), SimTime::ZERO);
        assert!(hot > 10.0 * cold, "hot {hot} vs cold {cold}");
    }

    #[test]
    fn dequeue_empties_record() {
        let mut m = mmu();
        let mut s = SojournModule::new();
        enqueue(&mut m, &mut s, SimTime::ZERO, q(0, 3), q(1, 3), 1_048);
        assert_eq!(s.packet_count(q(0, 3)), 1);
        dequeue(&mut m, &mut s, SimTime::from_micros(1), q(0, 3), q(1, 3), 1_048);
        assert_eq!(s.packet_count(q(0, 3)), 0);
        assert_eq!(s.tau(q(0, 3), SimTime::from_micros(1)), 0.0);
    }

    #[test]
    fn paused_time_does_not_decay_tau() {
        let mut m = mmu();
        let mut s = SojournModule::new();
        enqueue(&mut m, &mut s, SimTime::ZERO, q(0, 3), q(1, 3), 125_000);
        let before = s.tau(q(0, 3), SimTime::ZERO);
        // Downstream pauses egress (1,3): τ freezes.
        m.set_egress_paused(q(1, 3), true);
        s.on_pause_changed(SimTime::ZERO, q(1, 3), true);
        let frozen = s.tau(q(0, 3), SimTime::from_micros(30));
        assert!((frozen - before).abs() < 1e-9, "frozen {frozen} vs {before}");
        // Resume: decay continues.
        m.set_egress_paused(q(1, 3), false);
        s.on_pause_changed(SimTime::from_micros(30), q(1, 3), false);
        let later = s.tau(q(0, 3), SimTime::from_micros(50));
        assert!(later < before);
    }

    #[test]
    fn sum_active_tau_counts_each_active_queue() {
        let mut m = mmu();
        let mut s = SojournModule::new();
        enqueue(&mut m, &mut s, SimTime::ZERO, q(0, 3), q(1, 3), 12_500);
        enqueue(&mut m, &mut s, SimTime::ZERO, q(2, 3), q(3, 3), 12_500);
        let c = s.sum_active_tau(SimTime::ZERO);
        let t0 = s.tau(q(0, 3), SimTime::ZERO);
        let t2 = s.tau(q(2, 3), SimTime::ZERO);
        assert!((c - (t0 + t2)).abs() < 1e-12);
    }

    #[test]
    fn enqueue_during_pause_marks_packet_frozen() {
        let mut m = mmu();
        let mut s = SojournModule::new();
        m.set_egress_paused(q(1, 3), true);
        s.on_pause_changed(SimTime::ZERO, q(1, 3), true);
        enqueue(&mut m, &mut s, SimTime::ZERO, q(0, 3), q(1, 3), 12_500);
        let t0 = s.tau(q(0, 3), SimTime::ZERO);
        let t1 = s.tau(q(0, 3), SimTime::from_micros(100));
        assert!((t0 - t1).abs() < 1e-12, "paused packet must not decay");
    }

    #[test]
    fn redundant_pause_events_are_ignored() {
        let mut s = SojournModule::new();
        s.on_pause_changed(SimTime::ZERO, q(1, 3), true);
        s.on_pause_changed(SimTime::from_micros(1), q(1, 3), true);
        s.on_pause_changed(SimTime::from_micros(2), q(1, 3), false);
        s.on_pause_changed(SimTime::from_micros(3), q(1, 3), false);
        // No packets involved — just must not panic or corrupt state.
        assert_eq!(s.sum_active_tau(SimTime::from_micros(4)), 0.0);
    }
}
