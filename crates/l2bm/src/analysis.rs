//! Closed-form steady-state analysis (paper §III-D, Eqs. 5–9).
//!
//! When every active ingress queue sits exactly at its L2BM threshold
//! (arrivals balance drains), the total occupancy and per-queue
//! thresholds have the closed forms
//!
//! ```text
//! Q  = B · Σw / (1 + Σw)            (Eq. 8)
//! Tᵢ = B · wᵢ / (1 + Σw)            (Eq. 9)
//! ```
//!
//! These helpers are used by tests to validate the implementation
//! (e.g. the per-queue thresholds must sum to the occupancy, and
//! occupancy must stay strictly below `B`) and are exported for users
//! who want to reason about configurations analytically.

use dcn_sim::Bytes;

/// Steady-state total occupancy `Q = B·Σw/(1+Σw)` (Eq. 8).
///
/// # Example
///
/// ```
/// use dcn_sim::Bytes;
/// use l2bm::analysis::steady_state_occupancy;
/// // One queue with w = 1 settles at half the buffer.
/// let q = steady_state_occupancy(Bytes::from_mb(4), &[1.0]);
/// assert_eq!(q, Bytes::from_mb(2));
/// ```
///
/// # Panics
///
/// Panics if any weight is negative or NaN.
pub fn steady_state_occupancy(total_buffer: Bytes, weights: &[f64]) -> Bytes {
    let sum = weight_sum(weights);
    total_buffer.scale(sum / (1.0 + sum))
}

/// Steady-state threshold of the queue with weight `w_i` when the
/// weights of *all* active queues (including `w_i`) are `weights`
/// (Eq. 9).
///
/// # Panics
///
/// Panics if any weight is negative or NaN.
pub fn steady_state_threshold(total_buffer: Bytes, w_i: f64, weights: &[f64]) -> Bytes {
    assert!(w_i >= 0.0 && !w_i.is_nan(), "weight must be non-negative");
    let sum = weight_sum(weights);
    total_buffer.scale(w_i / (1.0 + sum))
}

/// Steady-state per-queue thresholds for a whole weight vector; the
/// `i`-th entry corresponds to `weights[i]`.
///
/// # Panics
///
/// Panics if any weight is negative or NaN.
pub fn steady_state_thresholds(total_buffer: Bytes, weights: &[f64]) -> Vec<Bytes> {
    weights
        .iter()
        .map(|&w| steady_state_threshold(total_buffer, w, weights))
        .collect()
}

fn weight_sum(weights: &[f64]) -> f64 {
    let mut sum = 0.0;
    for &w in weights {
        assert!(
            w >= 0.0 && !w.is_nan(),
            "weight must be non-negative, got {w}"
        );
        sum += w;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: Bytes = Bytes::new(4_000_000);

    #[test]
    fn thresholds_sum_to_occupancy() {
        let w = [0.125, 0.5, 1.0, 0.02];
        let q = steady_state_occupancy(B, &w);
        let sum: Bytes = steady_state_thresholds(B, &w).into_iter().sum();
        let diff = q.as_f64() - sum.as_f64();
        assert!(diff.abs() <= 4.0, "rounding only: {diff}");
    }

    #[test]
    fn occupancy_below_buffer() {
        for n in [1, 4, 64] {
            let w = vec![1.0; n];
            let q = steady_state_occupancy(B, &w);
            assert!(q < B);
        }
    }

    #[test]
    fn no_active_queues_means_empty() {
        assert_eq!(steady_state_occupancy(B, &[]), Bytes::ZERO);
    }

    #[test]
    fn classic_dt_single_queue_values() {
        // DT with α: Q = B·α/(1+α); for α = 1, half the buffer — the
        // textbook Choudhury–Hahne result.
        let q = steady_state_occupancy(B, &[1.0]);
        assert_eq!(q, Bytes::new(2_000_000));
        let q = steady_state_occupancy(B, &[0.125]);
        let expect = 4_000_000.0 * 0.125 / 1.125;
        assert!((q.as_f64() - expect).abs() < 1.0);
    }

    #[test]
    fn bigger_weight_bigger_share() {
        let w = [0.125, 0.5];
        let t = steady_state_thresholds(B, &w);
        assert!(t[1] > t[0]);
        let ratio = t[1].as_f64() / t[0].as_f64();
        assert!((ratio - 4.0).abs() < 1e-4, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let _ = steady_state_occupancy(B, &[-0.1]);
    }
}
