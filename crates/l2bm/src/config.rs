//! L2BM configuration.

/// How the normalization constant `C` of Eq. 3 is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Normalization {
    /// `C = Σ τ` over all currently active ingress queues — the choice
    /// the paper's evaluation uses ("we normalize C as the sum of the
    /// average sojourn time of packets in all ingress queues").
    SumActiveTau,
    /// A fixed constant, in seconds ("C ... can be adjusted and
    /// configured in different switches").
    Fixed(f64),
}

/// Tunables of the L2BM policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct L2bmConfig {
    /// The base DT control factor α the congestion factor scales
    /// (paper default 0.125, the RoCEv2 deployment value).
    pub alpha: f64,
    /// Upper bound on the effective weight `w = C/τ · α`, so an idle or
    /// instantly-draining queue (τ → 0) gets a large-but-finite
    /// threshold. 1.0 means "at most the whole remaining buffer".
    pub max_weight: f64,
    /// Normalization constant selection.
    pub normalization: Normalization,
    /// Whether time spent behind a PFC-paused egress queue is excluded
    /// from the sojourn estimate (the paper's §III-D "mitigate PFC
    /// diffusion" rule). Disable only for ablation studies.
    pub pause_freeze: bool,
}

impl Default for L2bmConfig {
    fn default() -> Self {
        L2bmConfig {
            alpha: 0.125,
            max_weight: 1.0,
            normalization: Normalization::SumActiveTau,
            pause_freeze: true,
        }
    }
}

impl L2bmConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message if α or the weight cap is not positive, or a
    /// fixed normalization constant is not positive.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.alpha > 0.0 && self.alpha.is_finite()) {
            return Err(format!("alpha must be positive, got {}", self.alpha));
        }
        if !(self.max_weight > 0.0 && self.max_weight.is_finite()) {
            return Err(format!(
                "max_weight must be positive, got {}",
                self.max_weight
            ));
        }
        if let Normalization::Fixed(c) = self.normalization {
            if !(c > 0.0 && c.is_finite()) {
                return Err(format!("fixed normalization must be positive, got {c}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(L2bmConfig::default().validate().is_ok());
        assert_eq!(L2bmConfig::default().alpha, 0.125);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let c = L2bmConfig {
            alpha: 0.0,
            ..L2bmConfig::default()
        };
        assert!(c.validate().is_err());

        let c = L2bmConfig {
            max_weight: -1.0,
            ..L2bmConfig::default()
        };
        assert!(c.validate().is_err());

        let c = L2bmConfig {
            normalization: Normalization::Fixed(0.0),
            ..L2bmConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
