//! The L2BM buffer-management policy (paper §III-C).

use dcn_sim::{Bytes, SimTime};
use dcn_switch::{BufferPolicy, MmuState, QueueIndex};

use crate::config::{L2bmConfig, Normalization};
use crate::sojourn::SojournModule;

/// L2BM: Dynamic Threshold with a congestion-perception factor.
///
/// The PFC threshold of ingress queue `q` is
/// `T(q) = w(q) · (B − Q(t))` with `w(q) = min(α · C / τ(q), w_max)`
/// (paper Eqs. 3–4). `τ(q)` comes from the [`SojournModule`]; an idle or
/// instantly-draining queue (`τ = 0`) gets the capped weight `w_max`,
/// letting it absorb bursts with the whole remaining buffer, while a
/// queue whose packets linger behind congested output ports is squeezed
/// below the plain-DT allotment.
#[derive(Debug)]
pub struct L2bmPolicy {
    cfg: L2bmConfig,
    sojourn: SojournModule,
}

impl L2bmPolicy {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: L2bmConfig) -> Self {
        cfg.validate().expect("invalid L2BM config");
        L2bmPolicy {
            cfg,
            sojourn: SojournModule::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &L2bmConfig {
        &self.cfg
    }

    /// Read access to the sojourn module (for introspection/tests).
    pub fn sojourn(&self) -> &SojournModule {
        &self.sojourn
    }

    /// The adaptive control weight `w(q) = min(α·C/τ, w_max)` (Eq. 4).
    pub fn weight(&self, q: QueueIndex, now: SimTime) -> f64 {
        let tau = self.sojourn.tau(q, now);
        let c = match self.cfg.normalization {
            Normalization::SumActiveTau => self.sojourn.sum_active_tau(now),
            Normalization::Fixed(c) => c,
        };
        if tau <= f64::EPSILON || c <= f64::EPSILON {
            return self.cfg.max_weight;
        }
        (self.cfg.alpha * c / tau).min(self.cfg.max_weight)
    }
}

impl Default for L2bmPolicy {
    fn default() -> Self {
        L2bmPolicy::new(L2bmConfig::default())
    }
}

impl BufferPolicy for L2bmPolicy {
    fn name(&self) -> &str {
        "L2BM"
    }

    fn pfc_threshold(&self, mmu: &MmuState, q: QueueIndex, now: SimTime) -> Bytes {
        mmu.shared_remaining().scale(self.weight(q, now))
    }

    fn on_enqueue(
        &mut self,
        mmu: &MmuState,
        now: SimTime,
        q_in: QueueIndex,
        q_out: QueueIndex,
        _size: Bytes,
    ) {
        self.sojourn.on_enqueue(mmu, now, q_in, q_out);
    }

    fn on_dequeue(
        &mut self,
        _mmu: &MmuState,
        now: SimTime,
        q_in: QueueIndex,
        q_out: QueueIndex,
        _size: Bytes,
    ) {
        self.sojourn.on_dequeue(now, q_in, q_out);
    }

    fn on_egress_pause_changed(
        &mut self,
        _mmu: &MmuState,
        now: SimTime,
        q_out: QueueIndex,
        paused: bool,
    ) {
        if self.cfg.pause_freeze {
            self.sojourn.on_pause_changed(now, q_out, paused);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_net::{PortId, Priority};
    use dcn_sim::BitRate;
    use dcn_switch::{Pool, SwitchConfig};

    fn mmu() -> MmuState {
        MmuState::new(&SwitchConfig::default(), vec![BitRate::from_gbps(25); 4])
    }

    fn q(port: u16, prio: u8) -> QueueIndex {
        QueueIndex::new(PortId::new(port), Priority::new(prio))
    }

    fn enqueue(
        m: &mut MmuState,
        p: &mut L2bmPolicy,
        now: SimTime,
        qi: QueueIndex,
        qo: QueueIndex,
        bytes: u64,
    ) {
        let c = m.plan_charge(qi, Bytes::new(bytes), Pool::Shared);
        m.charge(qi, qo, c);
        p.on_enqueue(m, now, qi, qo, Bytes::new(bytes));
    }

    #[test]
    fn idle_queue_gets_capped_weight() {
        let p = L2bmPolicy::default();
        let m = mmu();
        // No packets anywhere: weight = w_max = 1 -> whole remaining pool.
        assert_eq!(
            p.pfc_threshold(&m, q(0, 3), SimTime::ZERO),
            m.shared_remaining()
        );
    }

    #[test]
    fn single_congested_queue_falls_back_to_alpha() {
        // With one active queue, C = τ, so w = α exactly (paper §III-D:
        // L2BM degenerates to DT when there is nothing to discriminate).
        let mut p = L2bmPolicy::default();
        let mut m = mmu();
        enqueue(&mut m, &mut p, SimTime::ZERO, q(0, 3), q(1, 3), 125_000);
        let t = p.pfc_threshold(&m, q(0, 3), SimTime::ZERO);
        let expect = m.shared_remaining().scale(0.125);
        assert_eq!(t, expect);
    }

    #[test]
    fn slow_queue_squeezed_fast_queue_boosted() {
        let mut p = L2bmPolicy::default();
        let mut m = mmu();
        // Ingress (0,3): packet behind a 1 MB backlog at egress (1,3).
        enqueue(&mut m, &mut p, SimTime::ZERO, q(2, 3), q(1, 3), 1_000_000);
        enqueue(&mut m, &mut p, SimTime::ZERO, q(0, 3), q(1, 3), 1_048);
        // Ingress (3,1): packet heading to an empty egress (3,1)... use
        // a distinct egress port to keep drains independent.
        enqueue(&mut m, &mut p, SimTime::ZERO, q(3, 1), q(0, 1), 1_048);
        let now = SimTime::ZERO;
        let w_slow = p.weight(q(0, 3), now);
        let w_fast = p.weight(q(3, 1), now);
        assert!(
            w_fast > 3.0 * w_slow,
            "fast {w_fast} should dwarf slow {w_slow}"
        );
        let t_slow = p.pfc_threshold(&m, q(0, 3), now);
        let t_fast = p.pfc_threshold(&m, q(3, 1), now);
        assert!(t_fast > t_slow);
    }

    #[test]
    fn weight_is_capped() {
        let cfg = L2bmConfig {
            max_weight: 0.4,
            ..L2bmConfig::default()
        };
        let mut p = L2bmPolicy::new(cfg);
        let mut m = mmu();
        // Huge backlog on one queue makes the other's C/τ explode; the
        // cap must hold.
        enqueue(&mut m, &mut p, SimTime::ZERO, q(2, 3), q(1, 3), 2_000_000);
        enqueue(&mut m, &mut p, SimTime::ZERO, q(0, 1), q(3, 1), 100);
        let w = p.weight(q(0, 1), SimTime::ZERO);
        assert!(w <= 0.4 + 1e-12, "weight {w} exceeds cap");
    }

    #[test]
    fn fixed_normalization() {
        let cfg = L2bmConfig {
            normalization: Normalization::Fixed(1e-3),
            ..L2bmConfig::default()
        };
        let mut p = L2bmPolicy::new(cfg);
        let mut m = mmu();
        enqueue(&mut m, &mut p, SimTime::ZERO, q(0, 3), q(1, 3), 125_000);
        // τ = 40 µs; w = 0.125 × 1e-3 / 4e-5 = 3.125 -> capped at 1.
        let w = p.weight(q(0, 3), SimTime::ZERO);
        assert!((w - 1.0).abs() < 1e-12, "w {w}");
    }

    #[test]
    fn threshold_shrinks_as_buffer_fills() {
        // Pin the weight at its cap so only the (B − Q) factor moves.
        let cfg = L2bmConfig {
            max_weight: 0.125,
            ..L2bmConfig::default()
        };
        let mut p = L2bmPolicy::new(cfg);
        let mut m = mmu();
        enqueue(&mut m, &mut p, SimTime::ZERO, q(0, 3), q(1, 3), 125_000);
        let t1 = p.pfc_threshold(&m, q(0, 3), SimTime::ZERO);
        enqueue(&mut m, &mut p, SimTime::ZERO, q(2, 3), q(3, 3), 2_000_000);
        let t2 = p.pfc_threshold(&m, q(0, 3), SimTime::ZERO);
        assert!(t2 < t1, "remaining buffer shrank, threshold must too");
    }
}
