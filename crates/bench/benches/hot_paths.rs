//! Micro-benchmarks of the simulator's hot paths.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dcn_net::{ClosConfig, FlowId, NodeId, Packet, PortId, Priority, RoutingTable, Topology, TrafficClass};
use dcn_sim::{BitRate, Bytes, EventQueue, SimTime};
use dcn_switch::{
    AbmPolicy, BufferPolicy, DtPolicy, MmuState, Pool, QueueIndex, SharedMemorySwitch,
    SwitchConfig,
};
use l2bm::{L2bmConfig, L2bmPolicy};

fn q(port: u16, prio: u8) -> QueueIndex {
    QueueIndex::new(PortId::new(port), Priority::new(prio))
}

fn loaded_mmu() -> MmuState {
    let mut m = MmuState::new(&SwitchConfig::default(), vec![BitRate::from_gbps(25); 36]);
    // Put a little traffic in several queues so policies have state to
    // look at.
    for port in 0..8u16 {
        let c = m.plan_charge(q(port, 3), Bytes::new(20_000), Pool::Shared);
        m.charge(q(port, 3), q((port + 1) % 8, 3), c);
    }
    m
}

fn bench_mmu(c: &mut Criterion) {
    let mut g = c.benchmark_group("mmu");
    g.bench_function("charge_discharge_cycle", |b| {
        let mut m = loaded_mmu();
        let mut t = SimTime::ZERO;
        b.iter(|| {
            let charge = m.plan_charge(q(9, 3), Bytes::new(1_048), Pool::Shared);
            m.charge(q(9, 3), q(1, 3), charge);
            t += dcn_sim::SimDuration::from_nanos(336);
            m.discharge(t, q(9, 3), q(1, 3), charge);
            black_box(m.shared_used())
        })
    });
    g.finish();
}

fn bench_policies(c: &mut Criterion) {
    let m = loaded_mmu();
    let now = SimTime::from_micros(10);
    let mut g = c.benchmark_group("policy_threshold");
    let dt = DtPolicy::new(0.125);
    g.bench_function("dt", |b| {
        b.iter(|| black_box(dt.pfc_threshold(&m, q(0, 3), now)))
    });
    let abm = AbmPolicy::new(0.5);
    g.bench_function("abm", |b| {
        b.iter(|| black_box(abm.pfc_threshold(&m, q(0, 3), now)))
    });
    // L2BM with populated sojourn state (the realistic case).
    let mut l2bm_policy = L2bmPolicy::new(L2bmConfig::default());
    let mut m2 = loaded_mmu();
    for port in 0..8u16 {
        let charge = m2.plan_charge(q(port, 3), Bytes::new(5_000), Pool::Shared);
        m2.charge(q(port, 3), q((port + 1) % 8, 3), charge);
        l2bm_policy.on_enqueue(&m2, now, q(port, 3), q((port + 1) % 8, 3), Bytes::new(5_000));
    }
    g.bench_function("l2bm", |b| {
        b.iter(|| black_box(l2bm_policy.pfc_threshold(&m2, q(0, 3), now)))
    });
    g.finish();
}

fn bench_sojourn(c: &mut Criterion) {
    let mut g = c.benchmark_group("sojourn");
    g.bench_function("enqueue_dequeue_update", |b| {
        let mut policy = L2bmPolicy::new(L2bmConfig::default());
        let mut m = loaded_mmu();
        let mut t = SimTime::ZERO;
        b.iter(|| {
            let charge = m.plan_charge(q(9, 3), Bytes::new(1_048), Pool::Shared);
            m.charge(q(9, 3), q(1, 3), charge);
            policy.on_enqueue(&m, t, q(9, 3), q(1, 3), Bytes::new(1_048));
            t += dcn_sim::SimDuration::from_nanos(336);
            m.discharge(t, q(9, 3), q(1, 3), charge);
            policy.on_dequeue(&m, t, q(9, 3), q(1, 3), Bytes::new(1_048));
            black_box(policy.weight(q(9, 3), t))
        })
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("schedule_pop_1k", |b| {
        b.iter(|| {
            let mut queue: EventQueue<u64> = EventQueue::new();
            for i in 0..1_000u64 {
                queue.schedule_at(SimTime::from_nanos((i * 7919) % 10_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = queue.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let topo = Topology::clos(&ClosConfig::paper());
    let routes = RoutingTable::shortest_paths(&topo);
    let hosts: Vec<NodeId> = topo.hosts().collect();
    let tor = topo.host_uplink_switch(hosts[0]).expect("host has uplink");
    let mut g = c.benchmark_group("routing");
    g.bench_function("ecmp_next_port", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(routes.next_port(tor, hosts[64], FlowId::new(i)))
        })
    });
    g.bench_function("build_paper_clos_tables", |b| {
        b.iter(|| black_box(RoutingTable::shortest_paths(&topo)))
    });
    g.finish();
}

fn bench_switch_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("switch");
    g.bench_function("receive_tx_complete_cycle", |b| {
        let mut sw = SharedMemorySwitch::new(
            NodeId::new(0),
            SwitchConfig::default(),
            vec![BitRate::from_gbps(25); 36],
            Box::new(L2bmPolicy::new(L2bmConfig::default())),
            7,
        );
        let mut t = SimTime::ZERO;
        let mut seq = 0u64;
        b.iter(|| {
            let pkt = Packet::data(
                FlowId::new(1),
                NodeId::new(100),
                NodeId::new(101),
                Priority::new(3),
                TrafficClass::Lossless,
                seq,
                Bytes::new(1_000),
                Bytes::new(48),
            );
            seq += 1_000;
            let r = sw.receive(t, pkt, PortId::new(0), PortId::new(1));
            t += dcn_sim::SimDuration::from_nanos(400);
            if r.tx.is_some() {
                black_box(sw.tx_complete(t, PortId::new(1)));
            }
        })
    });
    g.finish();
}

criterion_group!(
    hot_paths,
    bench_mmu,
    bench_policies,
    bench_sojourn,
    bench_event_queue,
    bench_routing,
    bench_switch_cycle
);
criterion_main!(hot_paths);
