//! Micro-benchmarks of the simulator's hot paths at realistic switch
//! radix: 36 ports × 8 priorities with hundreds of active queues — the
//! regime where per-packet full scans actually hurt.

use std::hint::black_box;

use dcn_bench::bench;
use dcn_net::{
    ClosConfig, FlowId, NodeId, Packet, PortId, Priority, RoutingTable, Topology, TrafficClass,
};
use dcn_sim::{BitRate, Bytes, EventQueue, SimTime};
use dcn_switch::{
    AbmPolicy, BufferPolicy, DtPolicy, MmuState, Pool, QueueIndex, SharedMemorySwitch, SwitchConfig,
};
use l2bm::{L2bmConfig, L2bmPolicy};

const PORTS: usize = 36;

fn q(port: u16, prio: u8) -> QueueIndex {
    QueueIndex::new(PortId::new(port), Priority::new(prio))
}

/// A 36-port MMU with every (port, priority) ingress queue holding
/// traffic: 36 × 8 = 288 active queues.
fn loaded_mmu() -> MmuState {
    let mut m = MmuState::new(
        &SwitchConfig::default(),
        vec![BitRate::from_gbps(25); PORTS],
    );
    for port in 0..PORTS as u16 {
        for prio in 0..Priority::COUNT as u8 {
            let c = m.plan_charge(q(port, prio), Bytes::new(20_000), Pool::Shared);
            m.charge(q(port, prio), q((port + 1) % PORTS as u16, prio), c);
        }
    }
    m
}

/// L2BM policy with sojourn state for all 288 queues of `m`.
fn loaded_l2bm(m: &mut MmuState, now: SimTime) -> L2bmPolicy {
    let mut policy = L2bmPolicy::new(L2bmConfig::default());
    for port in 0..PORTS as u16 {
        for prio in 0..Priority::COUNT as u8 {
            let qi = q(port, prio);
            let qo = q((port + 1) % PORTS as u16, prio);
            let charge = m.plan_charge(qi, Bytes::new(5_000), Pool::Shared);
            m.charge(qi, qo, charge);
            policy.on_enqueue(m, now, qi, qo, Bytes::new(5_000));
        }
    }
    policy
}

fn bench_mmu() {
    let mut m = loaded_mmu();
    let mut t = SimTime::ZERO;
    bench("mmu/charge_discharge_cycle", || {
        let charge = m.plan_charge(q(9, 3), Bytes::new(1_048), Pool::Shared);
        m.charge(q(9, 3), q(1, 3), charge);
        t += dcn_sim::SimDuration::from_nanos(336);
        m.discharge(t, q(9, 3), q(1, 3), charge);
        black_box(m.shared_used())
    });
}

fn bench_policies() {
    let m = loaded_mmu();
    let now = SimTime::from_micros(10);
    let dt = DtPolicy::new(0.125);
    bench("policy_threshold/dt_288q", || {
        black_box(dt.pfc_threshold(&m, q(0, 3), now))
    });
    let abm = AbmPolicy::new(0.5);
    bench("policy_threshold/abm_288q", || {
        black_box(abm.pfc_threshold(&m, q(0, 3), now))
    });
    // L2BM with all 288 queues holding sojourn state (the realistic
    // loaded case for the incremental Σ τ aggregate).
    let mut m2 = loaded_mmu();
    let l2bm_policy = loaded_l2bm(&mut m2, now);
    bench("policy_threshold/l2bm_288q", || {
        black_box(l2bm_policy.pfc_threshold(&m2, q(0, 3), now))
    });
}

/// The tentpole number: incremental vs naive `Σ τ` at 288 active
/// queues. The incremental aggregate must be ≥ 5× faster.
fn bench_sum_active_tau() {
    let now = SimTime::from_micros(10);
    let mut m = loaded_mmu();
    let policy = loaded_l2bm(&mut m, now);
    let sojourn = policy.sojourn();
    let inc = bench("sojourn/sum_active_tau_288q_incremental", || {
        black_box(sojourn.sum_active_tau(now))
    });
    let naive = bench("sojourn/sum_active_tau_288q_naive_scan", || {
        black_box(sojourn.sum_active_tau_naive(now))
    });
    let speedup = naive.ns_per_iter / inc.ns_per_iter;
    println!("sojourn/sum_active_tau_288q speedup: {speedup:.1}x (incremental over naive scan)");
}

fn bench_sojourn() {
    let mut m = loaded_mmu();
    let mut policy = loaded_l2bm(&mut m, SimTime::ZERO);
    let mut t = SimTime::ZERO;
    bench("sojourn/enqueue_dequeue_update_288q", || {
        let charge = m.plan_charge(q(9, 3), Bytes::new(1_048), Pool::Shared);
        m.charge(q(9, 3), q(1, 3), charge);
        policy.on_enqueue(&m, t, q(9, 3), q(1, 3), Bytes::new(1_048));
        t += dcn_sim::SimDuration::from_nanos(336);
        m.discharge(t, q(9, 3), q(1, 3), charge);
        policy.on_dequeue(&m, t, q(9, 3), q(1, 3), Bytes::new(1_048));
        black_box(policy.weight(q(9, 3), t))
    });
}

fn bench_event_queue() {
    bench("event_queue/schedule_pop_1k", || {
        let mut queue: EventQueue<u64> = EventQueue::new();
        for i in 0..1_000u64 {
            queue.schedule_at(SimTime::from_nanos((i * 7919) % 10_000), i);
        }
        let mut acc = 0u64;
        while let Some((_, e)) = queue.pop() {
            acc = acc.wrapping_add(e);
        }
        black_box(acc)
    });

    // Steady-state churn at paper-scale pending depth (~128k events, the
    // high-water mark of a 128-host hybrid run): pop one, schedule one.
    // The reference is what the engine used before the indexed-heap
    // rewrite — `BinaryHeap` over (time, seq, payload) triples, i.e. the
    // sift path moves the whole event, not a 16-byte index entry.
    const DEPTH: u64 = 128 * 1024;
    let mut queue: EventQueue<u64> = EventQueue::new();
    for i in 0..DEPTH {
        queue.schedule_at(SimTime::from_nanos((i * 7919) % 1_000_000), i);
    }
    let mut t = 1_000_000u64;
    bench("event_queue/churn_128k_indexed_4ary", || {
        let (_, e) = queue.pop().expect("depth stays constant");
        t += 997;
        queue.schedule_at(SimTime::from_nanos(t), e);
        black_box(e)
    });

    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut reference: BinaryHeap<Reverse<(SimTime, u64, [u64; 12])>> = BinaryHeap::new();
    for i in 0..DEPTH {
        reference.push(Reverse((
            SimTime::from_nanos((i * 7919) % 1_000_000),
            i,
            [i; 12],
        )));
    }
    let mut t = 1_000_000u64;
    let mut seq = DEPTH;
    bench("event_queue/churn_128k_reference_binheap", || {
        let Reverse((_, _, payload)) = reference.pop().expect("depth stays constant");
        t += 997;
        seq += 1;
        reference.push(Reverse((SimTime::from_nanos(t), seq, payload)));
        black_box(payload[0])
    });
}

fn bench_flow_table() {
    use dcn_fabric::FlowTable;
    use std::collections::HashMap;

    // Two generator banks, like the hybrid experiment: RDMA ids from 0,
    // TCP background from 1 << 40.
    const PER_BANK: u64 = 4_096;
    let mut table = FlowTable::new();
    let mut map: HashMap<FlowId, usize> = HashMap::new();
    for i in 0..PER_BANK {
        table.insert(FlowId::new(i), i as usize);
        map.insert(FlowId::new(i), i as usize);
        table.insert(FlowId::new((1 << 40) + i), (PER_BANK + i) as usize);
        map.insert(FlowId::new((1 << 40) + i), (PER_BANK + i) as usize);
    }
    let mut i = 0u64;
    bench("flow_table/banked_lookup", || {
        i = (i + 1) % PER_BANK;
        let id = FlowId::new((1 << 40) + i);
        black_box(table.get(black_box(id)).expect("registered"))
    });
    let mut i = 0u64;
    bench("flow_table/hashmap_lookup", || {
        i = (i + 1) % PER_BANK;
        let id = FlowId::new((1 << 40) + i);
        black_box(*map.get(&black_box(id)).expect("registered"))
    });
}

fn bench_routing() {
    let topo = Topology::clos(&ClosConfig::paper());
    let routes = RoutingTable::shortest_paths(&topo);
    let hosts: Vec<NodeId> = topo.hosts().collect();
    let tor = topo.host_uplink_switch(hosts[0]).expect("host has uplink");
    let mut i = 0u64;
    bench("routing/ecmp_next_port", || {
        i += 1;
        black_box(routes.next_port(tor, hosts[64], FlowId::new(i)))
    });
    bench("routing/build_paper_clos_tables", || {
        black_box(RoutingTable::shortest_paths(&topo))
    });
}

fn bench_switch_cycle() {
    let mut sw = SharedMemorySwitch::new(
        NodeId::new(0),
        SwitchConfig::default(),
        vec![BitRate::from_gbps(25); PORTS],
        Box::new(L2bmPolicy::new(L2bmConfig::default())),
        7,
    );
    let mut t = SimTime::ZERO;
    let mut seq = 0u64;
    bench("switch/receive_tx_complete_cycle", || {
        let pkt = Packet::data(
            FlowId::new(1),
            NodeId::new(100),
            NodeId::new(101),
            Priority::new(3),
            TrafficClass::Lossless,
            seq,
            Bytes::new(1_000),
            Bytes::new(48),
        );
        seq += 1_000;
        let r = sw.receive(t, pkt, PortId::new(0), PortId::new(1));
        t += dcn_sim::SimDuration::from_nanos(400);
        if r.tx.is_some() {
            black_box(sw.tx_complete(t, PortId::new(1)));
        }
    });
}

fn main() {
    bench_mmu();
    bench_policies();
    bench_sum_active_tau();
    bench_sojourn();
    bench_event_queue();
    bench_flow_table();
    bench_routing();
    bench_switch_cycle();
}
