//! One bench per paper table/figure (scaled-down variants of the exact
//! experiment code the `repro` CLI runs at full size).

use std::hint::black_box;

use dcn_bench::{bench_n, bench_scale};
use dcn_experiments::{
    fig10_with_fanout, fig11_with_fanouts, fig3a, fig7_with_loads, fig8, fig9, table2_with_loads,
};

fn main() {
    let scale = bench_scale();
    bench_n("fig3/fig3a_occupancy_tcp_vs_rdma", 3, || {
        black_box(fig3a(&scale))
    });
    bench_n("fig7/hybrid_sweep_load_0.4", 3, || {
        black_box(fig7_with_loads(&scale, &[0.4]))
    });
    bench_n("table2/pause_frames_loads_0.4_0.8", 3, || {
        black_box(table2_with_loads(&scale, &[0.4, 0.8]))
    });
    bench_n("fig8/tor_occupancy_cdfs", 3, || black_box(fig8(&scale)));
    bench_n("fig9/fct_cdfs_high_load", 3, || black_box(fig9(&scale)));
    bench_n("fig10/incast_deep_dive_n3", 3, || {
        black_box(fig10_with_fanout(&scale, 3))
    });
    bench_n("fig11/incast_degree_sweep_n2_n3", 3, || {
        black_box(fig11_with_fanouts(&scale, &[2, 3]))
    });
}
