//! One bench group per paper table/figure (scaled-down variants of the
//! exact experiment code the `repro` CLI runs at full size).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dcn_bench::bench_scale;
use dcn_experiments::{
    fig10_with_fanout, fig11_with_fanouts, fig3a, fig7_with_loads, fig8, fig9, table2_with_loads,
};

fn bench_fig3(c: &mut Criterion) {
    let scale = bench_scale();
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("fig3a_occupancy_tcp_vs_rdma", |b| {
        b.iter(|| black_box(fig3a(&scale)))
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let scale = bench_scale();
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("hybrid_sweep_load_0.4", |b| {
        b.iter(|| black_box(fig7_with_loads(&scale, &[0.4])))
    });
    g.finish();
}

fn bench_table2(c: &mut Criterion) {
    let scale = bench_scale();
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("pause_frames_loads_0.4_0.8", |b| {
        b.iter(|| black_box(table2_with_loads(&scale, &[0.4, 0.8])))
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let scale = bench_scale();
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("tor_occupancy_cdfs", |b| b.iter(|| black_box(fig8(&scale))));
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let scale = bench_scale();
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("fct_cdfs_high_load", |b| b.iter(|| black_box(fig9(&scale))));
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let scale = bench_scale();
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("incast_deep_dive_n3", |b| {
        b.iter(|| black_box(fig10_with_fanout(&scale, 3)))
    });
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let scale = bench_scale();
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("incast_degree_sweep_n2_n3", |b| {
        b.iter(|| black_box(fig11_with_fanouts(&scale, &[2, 3])))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig3,
    bench_fig7,
    bench_table2,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_fig11
);
criterion_main!(figures);
