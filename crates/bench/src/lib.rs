//! Criterion benchmarks for the L2BM reproduction.
//!
//! Two suites live under `benches/`:
//!
//! * `paper_figures` — one bench group per paper table/figure, running a
//!   scaled-down (tiny fabric, short window) variant of the exact code
//!   path the `repro` CLI uses. These measure end-to-end experiment
//!   cost and keep every figure's pipeline exercised under `cargo
//!   bench`.
//! * `hot_paths` — micro-benchmarks of the simulator's hot paths: MMU
//!   charge/discharge, policy threshold evaluation (DT / ABM / L2BM),
//!   sojourn-module updates, the event queue, routing lookups, and a
//!   full switch receive→transmit cycle.
//!
//! This crate intentionally exposes a few helpers shared by both bench
//! files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dcn_experiments::ExperimentScale;
use dcn_sim::SimDuration;

/// The scale used by figure benches: tiny fabric, 1 ms of traffic —
/// around a hundred milliseconds of wall time per iteration.
pub fn bench_scale() -> ExperimentScale {
    ExperimentScale::tiny().with_window(SimDuration::from_millis(1))
}
