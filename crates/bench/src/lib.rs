//! Benchmarks for the L2BM reproduction, with a small self-contained
//! timing harness (the build is offline, so no criterion).
//!
//! Two suites live under `benches/` (both `harness = false` binaries):
//!
//! * `paper_figures` — one bench per paper table/figure, running a
//!   scaled-down (tiny fabric, short window) variant of the exact code
//!   path the `repro` CLI uses. These measure end-to-end experiment
//!   cost and keep every figure's pipeline exercised under `cargo
//!   bench`.
//! * `hot_paths` — micro-benchmarks of the simulator's hot paths: MMU
//!   charge/discharge, policy threshold evaluation (DT / ABM / L2BM) at
//!   full 36-port × 8-priority radix with hundreds of active queues,
//!   sojourn-module updates, the event queue, routing lookups, and a
//!   full switch receive→transmit cycle.
//!
//! A third entry point, `cargo run --release -p dcn-bench --bin
//! throughput`, runs fixed seeded hybrid + incast scenarios (plus a
//! paper-scale hybrid run) end-to-end, best-of-N per scenario, and
//! writes `BENCH_3.json` (events/sec, queue-shape counters, digests) —
//! the tracked perf-trajectory number. Its `--check` flag asserts the
//! golden event counts and `RunResults` digests in CI instead of
//! writing JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use dcn_experiments::ExperimentScale;
use dcn_sim::SimDuration;

/// The scale used by figure benches: tiny fabric, 1 ms of traffic —
/// around a hundred milliseconds of wall time per iteration.
pub fn bench_scale() -> ExperimentScale {
    ExperimentScale::tiny().with_window(SimDuration::from_millis(1))
}

/// One timed benchmark's outcome.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name, `group/function` style.
    pub name: String,
    /// Iterations timed (after warmup).
    pub iters: u64,
    /// Mean wall time per iteration, nanoseconds.
    pub ns_per_iter: f64,
}

impl BenchResult {
    /// Iterations per second implied by the mean.
    pub fn per_sec(&self) -> f64 {
        1e9 / self.ns_per_iter
    }
}

/// Times `f` and prints one aligned result line.
///
/// The harness warms up for ~50 ms, then runs batches until ~300 ms of
/// measurement has accumulated, and reports the mean. That is enough to
/// compare order-of-magnitude hot-path costs (the use these suites are
/// put to) without criterion's statistical machinery.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> BenchResult {
    let warmup = Duration::from_millis(50);
    let measure = Duration::from_millis(300);

    // Warmup, and calibrate a batch size of roughly 10 ms.
    let start = Instant::now();
    let mut warm_iters = 0u64;
    while start.elapsed() < warmup {
        std::hint::black_box(f());
        warm_iters += 1;
    }
    let est_ns = (warmup.as_nanos() as f64 / warm_iters as f64).max(1.0);
    let batch = ((10e6 / est_ns) as u64).max(1);

    let mut iters = 0u64;
    let start = Instant::now();
    while start.elapsed() < measure {
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        iters += batch;
    }
    let ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    let result = BenchResult {
        name: name.to_string(),
        iters,
        ns_per_iter,
    };
    println!(
        "{:<44} {:>12.1} ns/iter {:>16.0} /s ({} iters)",
        result.name,
        result.ns_per_iter,
        result.per_sec(),
        result.iters
    );
    result
}

/// Like [`bench`] but for expensive end-to-end runs: times `n` back-to-
/// back iterations with no warmup batching.
pub fn bench_n<T>(name: &str, n: u64, mut f: impl FnMut() -> T) -> BenchResult {
    std::hint::black_box(f()); // one warmup run
    let start = Instant::now();
    for _ in 0..n {
        std::hint::black_box(f());
    }
    let ns_per_iter = start.elapsed().as_nanos() as f64 / n as f64;
    let result = BenchResult {
        name: name.to_string(),
        iters: n,
        ns_per_iter,
    };
    println!(
        "{:<44} {:>12.3} ms/iter ({} iters)",
        result.name,
        result.ns_per_iter / 1e6,
        result.iters
    );
    result
}
