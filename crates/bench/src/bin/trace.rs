//! Flight-recorder dump tool: replays a fixed-seed hybrid scenario with
//! the recorder enabled and writes every lifecycle event as JSON Lines
//! for offline analysis, plus a causal summary of the slowest TCP flow.
//!
//! Usage:
//!   cargo run --release -p dcn-bench --bin trace              # dump TRACE_1.jsonl
//!   cargo run --release -p dcn-bench --bin trace -- --out t.jsonl
//!   cargo run --release -p dcn-bench --bin trace -- --check   # CI smoke mode
//!
//! `--check` runs the scenario twice and fails (exit 1) unless the trace
//! is non-empty, both runs record identical event counts (determinism),
//! the recorder's drop/pause totals reconcile exactly with the
//! switches' `DropCounters`/`PfcCounters`, and a tiny Fig. 7 sweep
//! produces identical per-cell `RunResults` digests at `--jobs 1` and
//! `--jobs 8` (the parallel engine's scheduling-independence contract).

use std::process::ExitCode;

use dcn_fabric::{FabricConfig, FabricSim, PolicyChoice, RunResults};
use dcn_net::{ClosConfig, Priority, Topology, TrafficClass};
use dcn_sim::{BitRate, Bytes, SimDuration, SimRng, SimTime, TraceConfig, TraceTotals};
use dcn_switch::SwitchConfig;
use dcn_workload::{web_search_cdf, PoissonTraffic};

struct TraceRun {
    results: RunResults,
    totals: TraceTotals,
    recorded: usize,
    evicted: u64,
    jsonl: String,
    slowest_tcp_summary: String,
}

/// One fixed-seed hybrid run on a small Clos under L2BM with a buffer
/// small enough to exercise drops, recovery and PFC — the same shape as
/// the repo's golden-digest scenario.
fn run_traced() -> TraceRun {
    let topo = Topology::clos(&ClosConfig::small(4));
    let hosts: Vec<_> = topo.hosts().collect();
    let (rdma_hosts, tcp_hosts): (Vec<_>, Vec<_>) = hosts.iter().partition(|h| h.index() % 2 == 0);
    let mut rng = SimRng::seed_from_u64(42);
    let window = SimDuration::from_millis(2);

    let rdma = PoissonTraffic::builder(rdma_hosts.clone(), web_search_cdf())
        .load(0.4)
        .link_rate(BitRate::from_gbps(25))
        .class(TrafficClass::Lossless, Priority::new(3))
        .dests(rdma_hosts)
        .build();
    let tcp = PoissonTraffic::builder(tcp_hosts.clone(), web_search_cdf())
        .load(0.8)
        .link_rate(BitRate::from_gbps(25))
        .class(TrafficClass::Lossy, Priority::new(1))
        .dests(tcp_hosts)
        .first_flow_id(1 << 40)
        .build();

    let cfg = FabricConfig {
        policy: PolicyChoice::l2bm(),
        seed: 42,
        switch: SwitchConfig {
            total_buffer: Bytes::from_kb(96),
            ..SwitchConfig::default()
        },
        sample_interval: None,
        trace: TraceConfig::enabled(),
        ..FabricConfig::default()
    };
    let mut sim = FabricSim::new(topo, cfg);
    sim.add_flows(rdma.generate(window, &mut rng.fork(1)));
    sim.add_flows(tcp.generate(window, &mut rng.fork(2)));
    sim.run_until_done(SimTime::ZERO + window + SimDuration::from_millis(60));

    let results = sim.results();
    let slowest_tcp = results
        .fct
        .records()
        .iter()
        .filter(|r| r.class == TrafficClass::Lossy)
        .max_by(|a, b| a.slowdown().total_cmp(&b.slowdown()))
        .map(|r| r.flow.as_u64());
    let (totals, recorded, evicted, jsonl, slowest_tcp_summary) = sim
        .trace()
        .with(|rec| {
            (
                rec.totals(),
                rec.len(),
                rec.evicted(),
                rec.to_jsonl(),
                slowest_tcp
                    .map(|f| rec.summarize_flow(f))
                    .unwrap_or_else(|| "no completed TCP flows\n".into()),
            )
        })
        .expect("recorder enabled");
    TraceRun {
        results,
        totals,
        recorded,
        evicted,
        jsonl,
        slowest_tcp_summary,
    }
}

fn reconcile(run: &TraceRun) -> Result<(), String> {
    if run.recorded == 0 {
        return Err("trace is empty".into());
    }
    let counted = run.results.drops.lossy_packets + run.results.drops.lossless_packets;
    if run.totals.drops() != counted {
        return Err(format!(
            "trace drops {} != DropCounters {}",
            run.totals.drops(),
            counted
        ));
    }
    if run.totals.pfc_pauses != run.results.pause_frames() {
        return Err(format!(
            "trace pauses {} != PfcCounters {}",
            run.totals.pfc_pauses,
            run.results.pause_frames()
        ));
    }
    if run.totals.rdma_stranded != 0 {
        return Err(format!(
            "{} stranded DCQCN sender(s) recorded",
            run.totals.rdma_stranded
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("TRACE_1.jsonl");

    let run = run_traced();
    println!(
        "recorded {} events ({} evicted): {} drops ({} ingress, {} egress, {} headroom), \
         {} pauses, {} resumes, {} RTO fires",
        run.recorded,
        run.evicted,
        run.totals.drops(),
        run.totals.drops_ingress,
        run.totals.drops_egress,
        run.totals.drops_headroom,
        run.totals.pfc_pauses,
        run.totals.pfc_resumes,
        run.totals.rto_fires,
    );

    if check {
        if let Err(e) = reconcile(&run) {
            eprintln!("trace check FAILED: {e}");
            return ExitCode::FAILURE;
        }
        // Determinism: a second run must record the same event stream.
        let again = run_traced();
        if again.recorded != run.recorded || again.totals != run.totals {
            eprintln!(
                "trace check FAILED: non-deterministic trace ({} vs {} events)",
                again.recorded, run.recorded
            );
            return ExitCode::FAILURE;
        }
        if again.jsonl != run.jsonl {
            eprintln!("trace check FAILED: JSONL dumps differ between identical runs");
            return ExitCode::FAILURE;
        }
        // Parallel-engine regression: the same sweep must digest
        // identically at any thread count.
        use dcn_experiments::{fig7_with, ExperimentScale, SweepOptions};
        let digests = |jobs: usize| -> Vec<u64> {
            fig7_with(
                &ExperimentScale::tiny(),
                &[0.4],
                &SweepOptions::new(jobs, 1),
            )
            .points
            .iter()
            .map(|p| p.results.digest())
            .collect()
        };
        let serial = digests(1);
        let parallel = digests(8);
        if serial != parallel {
            eprintln!(
                "trace check FAILED: fig7 digests differ between --jobs 1 and --jobs 8 \
                 ({serial:?} vs {parallel:?})"
            );
            return ExitCode::FAILURE;
        }
        println!(
            "trace check OK: non-empty, deterministic, reconciles with counters, \
             and fig7 digests match across --jobs 1/8"
        );
        return ExitCode::SUCCESS;
    }

    std::fs::write(out, &run.jsonl).expect("write trace dump");
    println!("wrote {} ({} lines)", out, run.jsonl.lines().count());
    println!("--- slowest TCP flow ---");
    print!("{}", run.slowest_tcp_summary);
    ExitCode::SUCCESS
}
