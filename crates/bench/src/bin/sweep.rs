//! Parallel-sweep speedup benchmark: runs the Fig. 7 sweep at several
//! `--jobs` values, proves the rendered report is byte-identical across
//! thread counts, and writes the speedup trajectory to `BENCH_2.json`.
//!
//! Usage:
//!   cargo run --release -p dcn-bench --bin sweep                 # small scale
//!   cargo run --release -p dcn-bench --bin sweep -- --scale paper
//!   cargo run --release -p dcn-bench --bin sweep -- --check      # CI mode
//!
//! `--check` uses the tiny scale (seconds, not minutes) and exits
//! non-zero unless every thread count reproduced the serial report and
//! per-cell digests exactly.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use dcn_experiments::{fig7_with, ExperimentScale, SweepOptions};

const JOB_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct JobsRun {
    jobs: usize,
    wall_s: f64,
    render: String,
    digests: Vec<u64>,
}

fn run_at(scale: &ExperimentScale, jobs: usize, seeds: u64) -> JobsRun {
    let start = Instant::now();
    let report = fig7_with(scale, &[], &SweepOptions::new(jobs, seeds));
    let wall_s = start.elapsed().as_secs_f64();
    JobsRun {
        jobs,
        wall_s,
        render: report.render(),
        digests: report.points.iter().map(|p| p.results.digest()).collect(),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let scale_name = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or(if check { "tiny" } else { "small" });
    let scale = match scale_name {
        "tiny" => ExperimentScale::tiny(),
        "small" => ExperimentScale::small(),
        "paper" => ExperimentScale::paper(),
        other => {
            eprintln!("unknown scale '{other}' (tiny|small|paper)");
            return ExitCode::FAILURE;
        }
    };
    let seeds = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(1);

    let cores = dcn_sim::default_jobs();
    eprintln!(
        "# fig7 sweep, scale {scale_name} ({} hosts), seeds {seeds}, {} core(s) available",
        scale.host_count(),
        cores
    );

    let mut runs: Vec<JobsRun> = Vec::new();
    for jobs in JOB_COUNTS {
        let r = run_at(&scale, jobs, seeds);
        eprintln!("# --jobs {:<2} {:>8.3} s", r.jobs, r.wall_s);
        runs.push(r);
    }

    // Determinism contract: every thread count reproduces the serial
    // report and per-cell digests byte-for-byte.
    let base = &runs[0];
    let mut identical = true;
    for r in &runs[1..] {
        if r.render != base.render || r.digests != base.digests {
            identical = false;
            eprintln!(
                "DETERMINISM VIOLATION: --jobs {} differs from --jobs {}",
                r.jobs, base.jobs
            );
        }
    }

    let mut json = String::from("{\n  \"benchmark\": \"parallel_sweep\",\n");
    writeln!(json, "  \"experiment\": \"fig7\",").expect("write to string");
    writeln!(json, "  \"scale\": \"{scale_name}\",").expect("write to string");
    writeln!(json, "  \"hosts\": {},", scale.host_count()).expect("write to string");
    writeln!(json, "  \"seeds_per_cell\": {seeds},").expect("write to string");
    writeln!(json, "  \"cells\": {},", base.digests.len()).expect("write to string");
    writeln!(json, "  \"cores_available\": {cores},").expect("write to string");
    writeln!(json, "  \"reports_identical_across_jobs\": {identical},").expect("write to string");
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"jobs\": {}, \"wall_seconds\": {:.6}, \"speedup_vs_jobs1\": {:.3}}}{comma}",
            r.jobs,
            r.wall_s,
            base.wall_s / r.wall_s
        )
        .expect("write to string");
    }
    json.push_str("  ],\n");
    writeln!(
        json,
        "  \"note\": \"speedup is bounded by cores_available; on a single-core host the \
         trajectory stays ~1.0x while the determinism contract is still exercised\"\n}}"
    )
    .expect("write to string");

    if check {
        if !identical {
            eprintln!("sweep check FAILED: reports differ across --jobs values");
            return ExitCode::FAILURE;
        }
        println!(
            "sweep check OK: fig7 x{} cells byte-identical across --jobs {:?}",
            base.digests.len(),
            JOB_COUNTS
        );
        return ExitCode::SUCCESS;
    }

    std::fs::write("BENCH_2.json", &json).expect("write BENCH_2.json");
    println!("{json}");
    println!("wrote BENCH_2.json");
    if identical {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
