//! Sharded-executor benchmark: serial vs `--shards N` wall clock on the
//! golden paper-scale hybrid cell, plus a 1024-host fat-tree smoke run,
//! written to `BENCH_5.json` to extend the perf trajectory
//! (`BENCH_4.json` measured the timing-wheel engine these shards run on).
//!
//! Every row is digest-checked: the paper grid must reproduce the
//! golden `hybrid_paper_2ms` digest at every shard count, and the
//! fat-tree run must agree between the serial engine and the sharded
//! executor — the whole point of the conservative window protocol is
//! that parallelism is *free* of result drift, so a bench row that
//! drifts is a failed run, not a data point.
//!
//! With `--check`, runs the small-scale golden hybrid cell at shard
//! counts 0/1/2/8 and asserts the golden digest plus zero ambiguous
//! stamp comparisons — a fast CI gate for the stamp machinery. The
//! paper-scale grid and the fat-tree run are skipped.
//!
//! Wall-clock honesty: parallel speedup is only measurable when the
//! host grants a core per shard. The JSON records the host's available
//! parallelism next to every timing so a single-core container (where
//! N shards time-slice one core and the grid measures *overhead*, not
//! speedup) cannot be misread as a scaling result.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use dcn_experiments::{run_hybrid, ExperimentScale, HybridConfig};
use dcn_fabric::{FabricConfig, FabricSim, PolicyChoice, RunResults, ShardedFabricSim};
use dcn_net::{FatTreeConfig, Priority, Topology, TrafficClass};
use dcn_sim::{Bytes, SimDuration, SimRng, SimTime};
use dcn_switch::SwitchConfig;
use dcn_workload::{web_search_cdf, FlowSpec, PoissonTraffic};

/// Golden values shared with `throughput --check` (BENCH_4).
const PAPER_GOLDEN_EVENTS: u64 = 7_464_811;
const PAPER_GOLDEN_DIGEST: u64 = 0x07ab_b15b_a35b_844d;
const SMALL_GOLDEN_EVENTS: u64 = 930_146;
const SMALL_GOLDEN_DIGEST: u64 = 0x972d_5f4e_f9da_3109;

/// Shard counts of the paper-scale grid (0 = serial engine).
const PAPER_SHARD_COUNTS: [usize; 5] = [0, 1, 2, 4, 8];

/// Fat-tree smoke scale: k = 16 → 1024 hosts, 128 edge switches.
const FAT_TREE_K: usize = 16;
/// Traffic window of the fat-tree run (kept short: 1024 hosts generate
/// roughly 16× the events-per-simulated-second of the 128-host paper
/// fabric).
const FAT_TREE_WINDOW: SimDuration = SimDuration::from_micros(200);

fn hybrid_cfg(scale: ExperimentScale, shards: usize) -> HybridConfig {
    HybridConfig {
        scale: scale.with_shards(shards),
        policy: PolicyChoice::l2bm(),
        rdma_load: 0.4,
        tcp_load: 0.8,
    }
}

fn paper_scale() -> ExperimentScale {
    ExperimentScale::paper().with_window(SimDuration::from_millis(2))
}

struct GridRow {
    shards: usize,
    wall_s: f64,
    results: RunResults,
}

impl GridRow {
    /// Events dispatched by the busiest shard — the lower bound on a
    /// one-core-per-shard wall clock, as a fraction of the total.
    fn max_shard_share(&self) -> f64 {
        let max = self
            .results
            .shards
            .iter()
            .map(|s| s.events_processed)
            .max()
            .unwrap_or(self.results.events_processed);
        max as f64 / self.results.events_processed as f64
    }

    fn ambiguities(&self) -> u64 {
        self.results
            .shards
            .iter()
            .map(|s| s.stamp_ambiguities)
            .sum()
    }

    fn handoffs(&self) -> u64 {
        self.results.shards.iter().map(|s| s.handoffs_out).sum()
    }

    fn barriers(&self) -> u64 {
        self.results
            .shards
            .iter()
            .map(|s| s.barriers)
            .max()
            .unwrap_or(0)
    }
}

fn run_grid_row(scale: &ExperimentScale, shards: usize) -> GridRow {
    let start = Instant::now();
    let results = run_hybrid(&hybrid_cfg(scale.clone(), shards)).results;
    GridRow {
        shards,
        wall_s: start.elapsed().as_secs_f64(),
        results,
    }
}

/// The 1024-host fat-tree hybrid workload: RDMA (lossless, load 0.4)
/// and TCP web-search (lossy, load 0.8) Poisson traffic over every
/// host, mirroring the paper hybrid cell's class split.
fn fat_tree_workload() -> (Topology, FabricConfig, Vec<FlowSpec>, SimTime) {
    let cfg = FatTreeConfig::new(FAT_TREE_K);
    let topo = Topology::fat_tree(&cfg);
    let hosts: Vec<_> = topo.hosts().collect();
    let mut rng = SimRng::seed_from_u64(42);
    let mut flows = Vec::new();
    let rdma = PoissonTraffic::builder(hosts.clone(), web_search_cdf())
        .load(0.4)
        .link_rate(cfg.host_rate)
        .class(TrafficClass::Lossless, Priority::new(3))
        .dests(hosts.clone())
        .build();
    flows.extend(rdma.generate(FAT_TREE_WINDOW, &mut rng.fork(1)));
    let tcp = PoissonTraffic::builder(hosts.clone(), web_search_cdf())
        .load(0.8)
        .link_rate(cfg.host_rate)
        .class(TrafficClass::Lossy, Priority::new(1))
        .dests(hosts)
        .first_flow_id(1 << 40)
        .build();
    flows.extend(tcp.generate(FAT_TREE_WINDOW, &mut rng.fork(2)));
    let fabric_cfg = FabricConfig {
        policy: PolicyChoice::l2bm(),
        seed: 42,
        switch: SwitchConfig {
            total_buffer: Bytes::from_mb(4),
            ..SwitchConfig::default()
        },
        ..FabricConfig::default()
    };
    let deadline = SimTime::ZERO + FAT_TREE_WINDOW + SimDuration::from_millis(100);
    (topo, fabric_cfg, flows, deadline)
}

fn run_fat_tree(shards: usize) -> GridRow {
    let (topo, cfg, flows, deadline) = fat_tree_workload();
    let start = Instant::now();
    let results = if shards == 0 {
        let mut sim = FabricSim::new(topo, cfg);
        sim.add_flows(flows);
        sim.run_until_done(deadline);
        sim.results()
    } else {
        let mut sim = ShardedFabricSim::new(topo, cfg, shards);
        sim.add_flows(flows);
        sim.run_until_done(deadline);
        sim.results()
    };
    GridRow {
        shards,
        wall_s: start.elapsed().as_secs_f64(),
        results,
    }
}

/// Fast CI gate: the small-scale golden cell must reproduce its golden
/// digest at every shard count with zero ambiguous stamp comparisons.
fn check() -> ExitCode {
    let scale = ExperimentScale::small();
    let mut ok = true;
    for shards in [0usize, 1, 2, 8] {
        let row = run_grid_row(&scale, shards);
        let events = row.results.events_processed;
        let digest = row.results.digest();
        let ambiguous = row.ambiguities();
        let pass = events == SMALL_GOLDEN_EVENTS && digest == SMALL_GOLDEN_DIGEST && ambiguous == 0;
        println!(
            "hybrid_l2bm_small shards {shards}: events {events} (want {SMALL_GOLDEN_EVENTS}), \
             digest {digest:#018x} (want {SMALL_GOLDEN_DIGEST:#018x}), \
             ambiguous stamp comparisons {ambiguous} (want 0), wall {:.3}s ... {}",
            row.wall_s,
            if pass { "ok" } else { "MISMATCH" }
        );
        ok &= pass;
    }
    if ok {
        println!("sharded determinism check passed");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn grid_row_json(r: &GridRow, indent: &str) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{indent}{{\"shards\": {}, \"wall_s\": {:.3}, \"events\": {}, \
         \"digest\": \"{:#018x}\", \"events_per_sec\": {:.0}",
        r.shards,
        r.wall_s,
        r.results.events_processed,
        r.results.digest(),
        r.results.events_processed as f64 / r.wall_s,
    );
    if !r.results.shards.is_empty() {
        let _ = write!(
            s,
            ", \"barriers\": {}, \"handoffs\": {}, \"max_shard_event_share\": {:.3}, \
             \"ambiguous_stamp_comparisons\": {}",
            r.barriers(),
            r.handoffs(),
            r.max_shard_share(),
            r.ambiguities(),
        );
    }
    s.push('}');
    s
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--check") {
        return check();
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Paper-scale grid, golden-pinned at every shard count.
    let scale = paper_scale();
    let mut grid = Vec::new();
    for shards in PAPER_SHARD_COUNTS {
        let row = run_grid_row(&scale, shards);
        assert_eq!(
            row.results.digest(),
            PAPER_GOLDEN_DIGEST,
            "paper grid shards {shards}: digest drifted from golden"
        );
        assert_eq!(
            row.results.events_processed, PAPER_GOLDEN_EVENTS,
            "paper grid shards {shards}: event count drifted from golden"
        );
        println!(
            "hybrid_paper_2ms shards {shards}: {:.3}s, digest ok, \
             ambiguous stamp comparisons {}",
            row.wall_s,
            row.ambiguities(),
        );
        grid.push(row);
    }
    let serial_wall = grid[0].wall_s;
    let oracle_overhead = grid[1].wall_s / serial_wall;

    // 1024-host fat-tree: serial and 4-shard runs must reconcile.
    let ft_serial = run_fat_tree(0);
    println!(
        "fat_tree_1024 serial: {:.3}s, {} events",
        ft_serial.wall_s, ft_serial.results.events_processed
    );
    let ft_sharded = run_fat_tree(4);
    println!(
        "fat_tree_1024 shards 4: {:.3}s, {} events",
        ft_sharded.wall_s, ft_sharded.results.events_processed
    );
    assert_eq!(
        ft_serial.results.digest(),
        ft_sharded.results.digest(),
        "fat-tree 1024-host run: serial and sharded digests diverged"
    );
    assert_eq!(
        ft_serial.results.events_processed,
        ft_sharded.results.events_processed
    );

    let mut json = String::from("{\n  \"benchmark\": \"sharded\",\n");
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(
        json,
        "  \"scenario\": \"hybrid_paper_2ms (128-host clos, L2BM, rdma 0.4, tcp 0.8)\","
    );
    let _ = writeln!(
        json,
        "  \"golden\": {{\"events\": {PAPER_GOLDEN_EVENTS}, \
         \"digest\": \"{PAPER_GOLDEN_DIGEST:#018x}\"}},"
    );
    json.push_str("  \"paper_grid\": [\n");
    for (i, r) in grid.iter().enumerate() {
        let comma = if i + 1 < grid.len() { "," } else { "" };
        let _ = writeln!(json, "{}{comma}", grid_row_json(r, "    "));
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"single_shard_overhead\": {{\"wall_ratio_vs_serial\": {oracle_overhead:.2}, \
         \"note\": \"shards=1 runs the full stamp machinery (admission stamps, \
         group-sorted dispatch, ghost accounting) with no parallelism — the \
         price of determinism, paid once per shard\"}},"
    );
    let ft_k = FAT_TREE_K;
    let _ = writeln!(
        json,
        "  \"fat_tree_1024\": {{\"k\": {ft_k}, \"hosts\": 1024, \
         \"window_us\": {}, \"serial\": {}, \"shards4\": {}, \
         \"digests_reconcile\": true}},",
        FAT_TREE_WINDOW.as_nanos() / 1_000,
        grid_row_json(&ft_serial, ""),
        grid_row_json(&ft_sharded, ""),
    );
    let _ = writeln!(
        json,
        "  \"notes\": \"measured on a {cores}-core container: with fewer cores than \
         shards the workers time-slice one core, so multi-shard wall clock measures \
         synchronization overhead (40k windows x 2 barriers at paper scale), not \
         speedup; max_shard_event_share bounds the achievable one-core-per-shard \
         wall at share x single-shard cost. Every row is digest-identical to the \
         serial engine. ambiguous_stamp_comparisons counts stamp pairs whose \
         truncated histories could not be ordered exactly (deterministic \
         stamp-derived tiebreak, identical at every shard count; zero at small \
         scale, asserted by --check).\"\n}}"
    );
    std::fs::write("BENCH_5.json", json).expect("write BENCH_5.json");
    println!("wrote BENCH_5.json");
    ExitCode::SUCCESS
}
