//! End-to-end events/sec benchmark: a fixed seeded incast + hybrid
//! scenario, written to `BENCH_1.json` to seed the perf trajectory.
//!
//! Run with `cargo run --release -p dcn-bench --bin throughput`. The
//! simulated work is fully deterministic (fixed seed, fixed scale), so
//! `events` is reproducible run-to-run; only the wall time varies with
//! the machine.

use std::fmt::Write as _;
use std::time::Instant;

use dcn_experiments::{run_hybrid, run_incast, ExperimentScale, HybridConfig, IncastConfig};
use dcn_fabric::PolicyChoice;

struct Scenario {
    name: &'static str,
    events: u64,
    wall_s: f64,
}

impl Scenario {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s
    }
}

fn main() {
    let scale = ExperimentScale::small();

    let start = Instant::now();
    let hybrid = run_hybrid(&HybridConfig {
        scale: scale.clone(),
        policy: PolicyChoice::l2bm(),
        rdma_load: 0.4,
        tcp_load: 0.8,
    });
    let hybrid_scn = Scenario {
        name: "hybrid_l2bm_rdma0.4_tcp0.8",
        events: hybrid.results.events_processed,
        wall_s: start.elapsed().as_secs_f64(),
    };

    let start = Instant::now();
    let incast = run_incast(&IncastConfig::paper_defaults(
        scale,
        PolicyChoice::l2bm(),
        5,
    ));
    let incast_scn = Scenario {
        name: "incast_l2bm_fanout5_tcp0.8",
        events: incast.results.events_processed,
        wall_s: start.elapsed().as_secs_f64(),
    };

    let scenarios = [hybrid_scn, incast_scn];
    let total_events: u64 = scenarios.iter().map(|s| s.events).sum();
    let total_wall: f64 = scenarios.iter().map(|s| s.wall_s).sum();

    let mut json = String::from("{\n  \"benchmark\": \"throughput\",\n  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let comma = if i + 1 < scenarios.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"name\": \"{}\", \"events_processed\": {}, \"wall_seconds\": {:.6}, \"events_per_sec\": {:.0}}}{comma}",
            s.name,
            s.events,
            s.wall_s,
            s.events_per_sec()
        )
        .expect("write to string");
    }
    writeln!(
        json,
        "  ],\n  \"total_events_processed\": {total_events},\n  \"total_wall_seconds\": {total_wall:.6},\n  \"events_per_sec\": {:.0}\n}}",
        total_events as f64 / total_wall
    )
    .expect("write to string");

    std::fs::write("BENCH_1.json", &json).expect("write BENCH_1.json");
    println!("{json}");
    for s in &scenarios {
        println!(
            "{:<30} {:>12} events {:>9.3} s {:>12.0} events/s",
            s.name,
            s.events,
            s.wall_s,
            s.events_per_sec()
        );
    }
    println!("wrote BENCH_1.json");
}
