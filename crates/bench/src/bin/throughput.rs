//! End-to-end events/sec benchmark: fixed seeded hybrid + incast
//! scenarios (small scale) and one paper-scale hybrid run, written to
//! `BENCH_4.json` to extend the perf trajectory started by
//! `BENCH_1.json` (seed engine), `BENCH_2.json` (parallel sweep) and
//! `BENCH_3.json` (indexed 4-ary heap + slab).
//!
//! Run with `cargo run --release -p dcn-bench --bin throughput`. The
//! simulated work is fully deterministic (fixed seed, fixed scale), so
//! `events` and `digest` are reproducible run-to-run; only the wall
//! time varies with the machine. Each scenario is run several times and
//! the best (minimum-wall) repetition is reported, which filters the
//! scheduler noise of shared hosts out of the trajectory number.
//!
//! With `--check`, skips the JSON and instead asserts the golden event
//! counts and `RunResults` digests for every golden scenario, plus zero
//! past-time clamps and zero stale timer pops — exits nonzero on any
//! mismatch. CI runs this to pin the timing-wheel refactor to
//! byte-identical simulated behavior. The `hybrid_paper_2ms_trains`
//! row (packet-train coalescing on) is *not* digest-pinned: trains
//! change event counts and can flip exact-nanosecond ties by design,
//! so `--check` instead asserts its per-run reproducibility and that
//! no lossless packet was dropped.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use dcn_experiments::{run_hybrid, run_incast, ExperimentScale, HybridConfig, IncastConfig};
use dcn_fabric::{PolicyChoice, RunResults};
use dcn_sim::SimDuration;

/// Repetitions per small scenario; the fastest is reported.
const REPS: usize = 5;
/// Repetitions for the paper-scale scenario (seconds per run).
const REPS_PAPER: usize = 2;

/// Golden values for `--check`: captured from the pre-refactor
/// `BinaryHeap` engine and required to survive both the
/// indexed-heap/slab rewrite and the hierarchical-timing-wheel
/// migration bit-for-bit.
const GOLDEN: [(&str, u64, u64); 3] = [
    ("hybrid_l2bm_rdma0.4_tcp0.8", 930_146, 0x972d_5f4e_f9da_3109),
    ("incast_l2bm_fanout5_tcp0.8", 857_321, 0xfc40_bd96_0ecc_5a10),
    ("hybrid_paper_2ms", 7_464_811, 0x07ab_b15b_a35b_844d),
];

struct Scenario {
    name: &'static str,
    results: RunResults,
    best_wall_s: f64,
}

impl Scenario {
    fn events_per_sec(&self) -> f64 {
        self.results.events_processed as f64 / self.best_wall_s
    }
}

fn run_scenario(name: &'static str, reps: usize, mut run: impl FnMut() -> RunResults) -> Scenario {
    let mut best: Option<Scenario> = None;
    for _ in 0..reps {
        let start = Instant::now();
        let results = run();
        let wall = start.elapsed().as_secs_f64();
        if let Some(prev) = &best {
            assert_eq!(
                prev.results.digest(),
                results.digest(),
                "{name}: digest drifted between repetitions"
            );
        }
        if best.as_ref().is_none_or(|b| wall < b.best_wall_s) {
            best = Some(Scenario {
                name,
                results,
                best_wall_s: wall,
            });
        }
    }
    best.expect("reps >= 1")
}

fn paper_hybrid(trains: bool) -> HybridConfig {
    let scale = ExperimentScale::paper().with_window(SimDuration::from_millis(2));
    let scale = if trains { scale.with_trains() } else { scale };
    HybridConfig {
        scale,
        policy: PolicyChoice::l2bm(),
        rdma_load: 0.4,
        tcp_load: 0.8,
    }
}

fn run_all(reps: usize, reps_paper: usize) -> [Scenario; 4] {
    let scale = ExperimentScale::small();
    let hybrid_scale = scale.clone();
    let hybrid = run_scenario(GOLDEN[0].0, reps, move || {
        run_hybrid(&HybridConfig {
            scale: hybrid_scale.clone(),
            policy: PolicyChoice::l2bm(),
            rdma_load: 0.4,
            tcp_load: 0.8,
        })
        .results
    });
    let incast = run_scenario(GOLDEN[1].0, reps, move || {
        run_incast(&IncastConfig::paper_defaults(
            scale.clone(),
            PolicyChoice::l2bm(),
            5,
        ))
        .results
    });
    // Paper fabric (128 hosts), short window: ~126k events pending at
    // the high-water mark under the old heap-only engine; wheel timers
    // keep the heap in the low thousands, so this row is where
    // timer-population effects show up (the small scenarios idle
    // under ~2k).
    let paper = run_scenario(GOLDEN[2].0, reps_paper, move || {
        run_hybrid(&paper_hybrid(false)).results
    });
    // The same run with host-NIC packet-train coalescing: behaviorally
    // equivalent traffic, fewer scheduler events. Reported separately
    // because batching permutes event sequence numbers and so cannot
    // be pinned to the golden digest.
    let paper_trains = run_scenario("hybrid_paper_2ms_trains", reps_paper, move || {
        run_hybrid(&paper_hybrid(true)).results
    });
    [hybrid, incast, paper, paper_trains]
}

/// Asserts golden events + digest + zero past clamps + zero stale
/// timer pops for every golden scenario, and reproducibility + lossless
/// safety for the trains row. Returns failure instead of panicking so
/// CI logs every mismatch, not just the first.
fn check() -> ExitCode {
    let scenarios = run_all(1, 1);
    let mut ok = true;
    for (s, &(name, events, digest)) in scenarios.iter().zip(GOLDEN.iter()) {
        let got_events = s.results.events_processed;
        let got_digest = s.results.digest();
        let clamps = s.results.queue.past_clamps;
        let stale = s.results.queue.stale_timer_pops;
        let pass = got_events == events && got_digest == digest && clamps == 0 && stale == 0;
        println!(
            "{name}: events {got_events} (want {events}), digest {got_digest:#018x} \
             (want {digest:#018x}), past_clamps {clamps} (want 0), \
             stale_timer_pops {stale} (want 0) ... {}",
            if pass { "ok" } else { "MISMATCH" }
        );
        ok &= pass;
    }
    let t = &scenarios[3];
    {
        let clamps = t.results.queue.past_clamps;
        let lossless = t.results.drops.lossless_packets;
        let trains = t.results.trains;
        let pass = clamps == 0 && lossless == 0 && trains.trains > 0;
        println!(
            "{}: events {}, behavior digest {:#018x}, trains {} (legs {}, splits {}), \
             past_clamps {clamps} (want 0), lossless_drops {lossless} (want 0) ... {}",
            t.name,
            t.results.events_processed,
            t.results.behavior_digest(),
            trains.trains,
            trains.legs,
            trains.splits,
            if pass { "ok" } else { "MISMATCH" }
        );
        ok &= pass;
    }
    if ok {
        println!("determinism check passed");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--check") {
        return check();
    }

    let scenarios = run_all(REPS, REPS_PAPER);
    let total_events: u64 = scenarios.iter().map(|s| s.results.events_processed).sum();
    let total_wall: f64 = scenarios.iter().map(|s| s.best_wall_s).sum();

    let mut json = String::from("{\n  \"benchmark\": \"throughput\",\n");
    json.push_str(
        "  \"engine\": \"hierarchical timing wheel (cancellable timers) + indexed 4-ary heap\",\n",
    );
    json.push_str(&format!("  \"reps\": {REPS},\n"));
    // Trajectory context: what the same scenarios measured at each
    // stage. BENCH_1.json was recorded on a different (faster) host;
    // the like-for-like comparison is against the same-host rows below
    // (measured interleaved with this engine on a shared, noisy host,
    // so per-pair ratios rather than absolute numbers carry it).
    json.push_str(concat!(
        "  \"baselines\": [\n",
        "    {\"stage\": \"BENCH_1 (BinaryHeap engine, original host)\", ",
        "\"hybrid_events_per_sec\": 4026337, \"incast_events_per_sec\": 3783803},\n",
        "    {\"stage\": \"BinaryHeap engine, this host\", ",
        "\"hybrid_events_per_sec\": 3581486, \"incast_events_per_sec\": 3233089, ",
        "\"hybrid_paper_2ms_events_per_sec\": 2076218},\n",
        "    {\"stage\": \"BENCH_3 (indexed 4-ary heap + slab), this host\", ",
        "\"hybrid_events_per_sec\": 4678806, \"incast_events_per_sec\": 4487028, ",
        "\"hybrid_paper_2ms_events_per_sec\": 2937962}\n",
        "  ],\n",
    ));
    json.push_str(concat!(
        "  \"notes\": \"hybrid_paper_2ms_trains simulates the same traffic as ",
        "hybrid_paper_2ms with host-NIC packet-train coalescing on (default off), so its ",
        "honest comparison is wall seconds for the same simulated work, not events/sec ",
        "(fewer events by design); measured wall-neutral on this shared host despite ",
        "~6% fewer events\",\n",
    ));
    json.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let comma = if i + 1 < scenarios.len() { "," } else { "" };
        let q = &s.results.queue;
        let t = &s.results.trains;
        writeln!(
            json,
            "    {{\"name\": \"{}\", \"events_processed\": {}, \"digest\": \"{:#018x}\", \
             \"best_wall_seconds\": {:.6}, \"events_per_sec\": {:.0}, \
             \"max_pending\": {}, \"max_heap_depth\": {}, \"heap_entry_bytes\": {}, \
             \"slab_slots\": {}, \"past_clamps\": {}, \"stale_timer_pops\": {}, \
             \"trains\": {}, \"train_legs\": {}, \"train_splits\": {}}}{comma}",
            s.name,
            s.results.events_processed,
            s.results.digest(),
            s.best_wall_s,
            s.events_per_sec(),
            q.max_pending,
            q.max_depth,
            q.entry_bytes,
            q.slab_capacity,
            q.past_clamps,
            q.stale_timer_pops,
            t.trains,
            t.legs,
            t.splits,
        )
        .expect("write to string");
    }
    writeln!(
        json,
        "  ],\n  \"total_events_processed\": {total_events},\n  \
         \"total_best_wall_seconds\": {total_wall:.6},\n  \"events_per_sec\": {:.0}\n}}",
        total_events as f64 / total_wall
    )
    .expect("write to string");

    std::fs::write("BENCH_4.json", &json).expect("write BENCH_4.json");
    println!("{json}");
    for s in &scenarios {
        println!(
            "{:<30} {:>12} events {:>9.3} s {:>12.0} events/s (best rep)",
            s.name,
            s.results.events_processed,
            s.best_wall_s,
            s.events_per_sec()
        );
    }
    println!("wrote BENCH_4.json");
    ExitCode::SUCCESS
}
