//! End-to-end events/sec benchmark: fixed seeded hybrid + incast
//! scenarios (small scale) and one paper-scale hybrid run, written to
//! `BENCH_3.json` to extend the perf trajectory started by
//! `BENCH_1.json` (seed engine) and `BENCH_2.json` (parallel sweep).
//!
//! Run with `cargo run --release -p dcn-bench --bin throughput`. The
//! simulated work is fully deterministic (fixed seed, fixed scale), so
//! `events` and `digest` are reproducible run-to-run; only the wall
//! time varies with the machine. Each scenario is run several times and
//! the best (minimum-wall) repetition is reported, which filters the
//! scheduler noise of shared hosts out of the trajectory number.
//!
//! With `--check`, skips the JSON and instead asserts the golden event
//! counts and `RunResults` digests for every scenario, plus zero
//! past-time clamps — exits nonzero on any mismatch. CI runs this to
//! pin the event-engine refactor to byte-identical simulated behavior.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use dcn_experiments::{run_hybrid, run_incast, ExperimentScale, HybridConfig, IncastConfig};
use dcn_fabric::{PolicyChoice, RunResults};
use dcn_sim::SimDuration;

/// Repetitions per small scenario; the fastest is reported.
const REPS: usize = 5;
/// Repetitions for the paper-scale scenario (seconds per run).
const REPS_PAPER: usize = 2;

/// Golden values for `--check`: captured from the pre-refactor
/// `BinaryHeap` engine and required to survive the indexed-heap/slab
/// rewrite bit-for-bit.
const GOLDEN: [(&str, u64, u64); 3] = [
    ("hybrid_l2bm_rdma0.4_tcp0.8", 930_146, 0x972d_5f4e_f9da_3109),
    ("incast_l2bm_fanout5_tcp0.8", 857_321, 0xfc40_bd96_0ecc_5a10),
    ("hybrid_paper_2ms", 7_464_811, 0x07ab_b15b_a35b_844d),
];

struct Scenario {
    name: &'static str,
    results: RunResults,
    best_wall_s: f64,
}

impl Scenario {
    fn events_per_sec(&self) -> f64 {
        self.results.events_processed as f64 / self.best_wall_s
    }
}

fn run_scenario(name: &'static str, reps: usize, mut run: impl FnMut() -> RunResults) -> Scenario {
    let mut best: Option<Scenario> = None;
    for _ in 0..reps {
        let start = Instant::now();
        let results = run();
        let wall = start.elapsed().as_secs_f64();
        if let Some(prev) = &best {
            assert_eq!(
                prev.results.digest(),
                results.digest(),
                "{name}: digest drifted between repetitions"
            );
        }
        if best.as_ref().is_none_or(|b| wall < b.best_wall_s) {
            best = Some(Scenario {
                name,
                results,
                best_wall_s: wall,
            });
        }
    }
    best.expect("reps >= 1")
}

fn run_all(reps: usize, reps_paper: usize) -> [Scenario; 3] {
    let scale = ExperimentScale::small();
    let hybrid_scale = scale.clone();
    let hybrid = run_scenario(GOLDEN[0].0, reps, move || {
        run_hybrid(&HybridConfig {
            scale: hybrid_scale.clone(),
            policy: PolicyChoice::l2bm(),
            rdma_load: 0.4,
            tcp_load: 0.8,
        })
        .results
    });
    let incast = run_scenario(GOLDEN[1].0, reps, move || {
        run_incast(&IncastConfig::paper_defaults(
            scale.clone(),
            PolicyChoice::l2bm(),
            5,
        ))
        .results
    });
    // Paper fabric (128 hosts), short window: ~126k events pending at
    // the high-water mark, so this row is where heap depth and slab
    // locality actually bite (the small scenarios idle under ~2k).
    let paper = run_scenario(GOLDEN[2].0, reps_paper, move || {
        run_hybrid(&HybridConfig {
            scale: ExperimentScale::paper().with_window(SimDuration::from_millis(2)),
            policy: PolicyChoice::l2bm(),
            rdma_load: 0.4,
            tcp_load: 0.8,
        })
        .results
    });
    [hybrid, incast, paper]
}

/// Asserts golden events + digest + zero past clamps for every
/// scenario. Returns failure instead of panicking so CI logs every
/// mismatch, not just the first.
fn check() -> ExitCode {
    let scenarios = run_all(1, 1);
    let mut ok = true;
    for (s, &(name, events, digest)) in scenarios.iter().zip(GOLDEN.iter()) {
        let got_events = s.results.events_processed;
        let got_digest = s.results.digest();
        let clamps = s.results.queue.past_clamps;
        let pass = got_events == events && got_digest == digest && clamps == 0;
        println!(
            "{name}: events {got_events} (want {events}), digest {got_digest:#018x} \
             (want {digest:#018x}), past_clamps {clamps} (want 0) ... {}",
            if pass { "ok" } else { "MISMATCH" }
        );
        ok &= pass;
    }
    if ok {
        println!("determinism check passed");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--check") {
        return check();
    }

    let scenarios = run_all(REPS, REPS_PAPER);
    let total_events: u64 = scenarios.iter().map(|s| s.results.events_processed).sum();
    let total_wall: f64 = scenarios.iter().map(|s| s.best_wall_s).sum();

    let mut json = String::from("{\n  \"benchmark\": \"throughput\",\n");
    json.push_str("  \"engine\": \"indexed 4-ary heap + generational slab\",\n");
    json.push_str(&format!("  \"reps\": {REPS},\n"));
    // Trajectory context: what the same scenarios measured at each
    // stage. BENCH_1.json was recorded on a different (faster) host, so
    // the like-for-like speedup is against the same-host BinaryHeap
    // rows below (measured interleaved with the new engine; the shared
    // host's wall clock is noisy, so per-pair ratios, not absolute
    // numbers, carry the comparison — medians ran 1.24x small-hybrid,
    // 1.30x small-incast, 1.40x paper-scale).
    json.push_str(concat!(
        "  \"baselines\": [\n",
        "    {\"stage\": \"BENCH_1 (BinaryHeap engine, original host)\", ",
        "\"hybrid_events_per_sec\": 4026337, \"incast_events_per_sec\": 3783803},\n",
        "    {\"stage\": \"BinaryHeap engine, this host\", ",
        "\"hybrid_events_per_sec\": 3581486, \"incast_events_per_sec\": 3233089, ",
        "\"hybrid_paper_2ms_events_per_sec\": 2076218},\n",
        "    {\"stage\": \"BinaryHeap engine + lto/codegen-units profile, this host\", ",
        "\"hybrid_events_per_sec\": 3967403, \"incast_events_per_sec\": 3766510}\n",
        "  ],\n",
    ));
    json.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let comma = if i + 1 < scenarios.len() { "," } else { "" };
        let q = &s.results.queue;
        writeln!(
            json,
            "    {{\"name\": \"{}\", \"events_processed\": {}, \"digest\": \"{:#018x}\", \
             \"best_wall_seconds\": {:.6}, \"events_per_sec\": {:.0}, \
             \"max_pending\": {}, \"max_heap_depth\": {}, \"heap_entry_bytes\": {}, \
             \"slab_slots\": {}, \"past_clamps\": {}}}{comma}",
            s.name,
            s.results.events_processed,
            s.results.digest(),
            s.best_wall_s,
            s.events_per_sec(),
            q.max_pending,
            q.max_depth,
            q.entry_bytes,
            q.slab_capacity,
            q.past_clamps,
        )
        .expect("write to string");
    }
    writeln!(
        json,
        "  ],\n  \"total_events_processed\": {total_events},\n  \
         \"total_best_wall_seconds\": {total_wall:.6},\n  \"events_per_sec\": {:.0}\n}}",
        total_events as f64 / total_wall
    )
    .expect("write to string");

    std::fs::write("BENCH_3.json", &json).expect("write BENCH_3.json");
    println!("{json}");
    for s in &scenarios {
        println!(
            "{:<30} {:>12} events {:>9.3} s {:>12.0} events/s (best rep)",
            s.name,
            s.results.events_processed,
            s.best_wall_s,
            s.events_per_sec()
        );
    }
    println!("wrote BENCH_3.json");
    ExitCode::SUCCESS
}
