//! The policy tournament: all six buffer-management policies compete
//! across four arenas — the fig. 7 hybrid mix, a websearch-heavy
//! variant, the incast deep-dive and the chaos fault battery — each
//! replicated over multiple seeds, reported as a Pareto table of
//! p99 slowdown vs goodput vs pause frames vs fault degradation.
//!
//! The tournament rides the existing sweep engine: every `(policy,
//! replicate)` pair is one independent cell fanned through
//! [`run_hybrid_cells`] / [`run_incast_cells`] / [`run_chaos_cells`],
//! so the jobs-invariance contract carries over verbatim — the same
//! tournament specification renders a byte-identical report (and the
//! same per-cell digests) at any `--jobs` value. `repro tournament
//! --check` pins exactly that.

use dcn_fabric::RunResults;
use dcn_metrics::SeedStats;
use dcn_sim::SimDuration;

use crate::chaos::{run_chaos_cells, ChaosConfig};
use crate::hybrid::HybridConfig;
use crate::incast::IncastConfig;
use crate::report::{fmt_f64, Table};
use crate::scale::ExperimentScale;
use crate::sweep::{fmt_stat, run_hybrid_cells, run_incast_cells, SweepOptions};

/// Fault seeds the tournament's chaos arena injects (a prefix of
/// [`crate::CHAOS_CHECK_SEEDS`], kept short: the full battery is
/// `repro chaos`'s job).
pub const TOURNAMENT_FAULT_SEEDS: [u64; 2] = [11, 23];

/// Responders per incast query in the incast arena (the paper's
/// headline fanout).
pub const TOURNAMENT_FANOUT: usize = 5;

/// One `(arena, policy)` row: per-replicate samples of every reported
/// metric, the digests of all underlying runs, and any invariant
/// violations the battery collected.
#[derive(Debug, Clone)]
pub struct TournamentRow {
    /// Arena name (`hybrid` / `websearch` / `incast` / `chaos`).
    pub arena: &'static str,
    /// Policy label (DT / DT2 / ABM / L2BM / Occamy / BShare).
    pub label: String,
    /// Lossless-class p99 FCT slowdown per replicate (incast arena:
    /// p99 over the incast flows; chaos arena: mean over fault cells).
    pub p99_slowdown: Vec<f64>,
    /// Delivered goodput in Gbit/s per replicate.
    pub goodput_gbps: Vec<f64>,
    /// PFC pause frames per replicate (chaos arena: mean over fault
    /// cells).
    pub pause_frames: Vec<f64>,
    /// Chaos arena only: goodput delta under faults relative to the
    /// same replicate's zero-fault baseline, in percent (≤ 0 is a
    /// degradation). Empty for the other arenas.
    pub fault_delta_pct: Vec<f64>,
    /// Digests of every underlying run, in cell order — the byte-level
    /// jobs-invariance witness.
    pub digests: Vec<u64>,
    /// Invariant violations (empty = the battery passed).
    pub violations: Vec<String>,
}

impl TournamentRow {
    fn new(arena: &'static str, label: String) -> Self {
        TournamentRow {
            arena,
            label,
            p99_slowdown: Vec::new(),
            goodput_gbps: Vec::new(),
            pause_frames: Vec::new(),
            fault_delta_pct: Vec::new(),
            digests: Vec::new(),
            violations: Vec::new(),
        }
    }

    /// Mean of a metric's finite replicate samples (`NaN` if none).
    fn mean(samples: &[f64]) -> f64 {
        let finite: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            f64::NAN
        } else {
            finite.iter().sum::<f64>() / finite.len() as f64
        }
    }
}

/// Renders one metric column cell: `mean±CI` over the replicates, the
/// bare mean with a single replicate, `-` with no finite sample.
fn cell(samples: &[f64]) -> String {
    match SeedStats::from_samples(samples) {
        Some(s) => fmt_stat(Some(&s), fmt_f64(s.mean)),
        None => "-".into(),
    }
}

/// Computes delivered goodput (completed flows' payload over the
/// traffic window) in Gbit/s.
fn goodput_gbps(results: &RunResults, window: SimDuration) -> f64 {
    let delivered: u64 = results.fct.records().iter().map(|x| x.size.as_u64()).sum();
    delivered as f64 * 8.0 / window.as_secs_f64() / 1e9
}

/// The tournament result: rows grouped arena-major in policy order.
#[derive(Debug, Clone)]
pub struct TournamentReport {
    /// All `(arena, policy)` rows.
    pub rows: Vec<TournamentRow>,
    /// Seed replicates each cell ran.
    pub seeds: u64,
}

impl TournamentReport {
    /// Every invariant violation across all rows (empty = pass).
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for row in &self.rows {
            for v in &row.violations {
                out.push(format!("{}/{}: {v}", row.arena, row.label));
            }
        }
        out
    }

    /// All run digests in row order — compared across `--jobs` values
    /// by `repro tournament --check`.
    pub fn digests(&self) -> Vec<u64> {
        self.rows.iter().flat_map(|r| r.digests.clone()).collect()
    }

    /// Policies on the Pareto front of one arena, judged on replicate
    /// means: lower p99 slowdown, higher goodput, fewer pause frames
    /// (and, in the chaos arena, smaller goodput degradation) — a
    /// policy is dropped only if another is at least as good on every
    /// axis and strictly better on one.
    pub fn pareto_front(&self, arena: &str) -> Vec<String> {
        let rows: Vec<&TournamentRow> = self.rows.iter().filter(|r| r.arena == arena).collect();
        let axes = |r: &TournamentRow| -> Vec<f64> {
            // All axes oriented "smaller is better".
            let mut v = vec![
                TournamentRow::mean(&r.p99_slowdown),
                -TournamentRow::mean(&r.goodput_gbps),
                TournamentRow::mean(&r.pause_frames),
            ];
            if !r.fault_delta_pct.is_empty() {
                v.push(-TournamentRow::mean(&r.fault_delta_pct));
            }
            v
        };
        let dominates = |a: &[f64], b: &[f64]| -> bool {
            a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
        };
        rows.iter()
            .filter(|r| {
                let mine = axes(r);
                mine.iter().all(|v| v.is_finite())
                    && !rows
                        .iter()
                        .any(|other| other.label != r.label && dominates(&axes(other), &mine))
            })
            .map(|r| r.label.clone())
            .collect()
    }

    /// Renders the Pareto table plus per-arena front summaries.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "arena",
            "policy",
            "p99 slowdown",
            "goodput Gbps",
            "pause frames",
            "fault Δ%",
            "violations",
        ]);
        for row in &self.rows {
            t.row(vec![
                row.arena.to_string(),
                row.label.clone(),
                cell(&row.p99_slowdown),
                cell(&row.goodput_gbps),
                cell(&row.pause_frames),
                if row.fault_delta_pct.is_empty() {
                    "-".into()
                } else {
                    cell(&row.fault_delta_pct)
                },
                row.violations.len().to_string(),
            ]);
        }
        let mut out = format!(
            "tournament: 6 policies x 4 arenas x {} seed(s)\n{}",
            self.seeds,
            t.render()
        );
        let mut arenas: Vec<&'static str> = Vec::new();
        for row in &self.rows {
            if !arenas.contains(&row.arena) {
                arenas.push(row.arena);
            }
        }
        for arena in arenas {
            out.push_str(&format!(
                "pareto front [{arena}]: {}\n",
                self.pareto_front(arena).join(", ")
            ));
        }
        out
    }
}

/// Reseeds a scale for replicate `rep` (the sweep engine's convention:
/// `seed + rep`, so replicate 0 is the historical single-seed run).
fn reseed(scale: &ExperimentScale, rep: u64) -> ExperimentScale {
    let mut s = scale.clone();
    s.seed = s.seed.wrapping_add(rep);
    s
}

/// Runs the full tournament: all six policies over the four arenas,
/// each `(policy, arena)` cell replicated `seeds` times, fanned over
/// `jobs` workers. Row order (and therefore the rendered report and
/// the digest vector) depends only on the specification.
pub fn tournament(scale: &ExperimentScale, seeds: u64, jobs: usize) -> TournamentReport {
    let seeds = seeds.max(1);
    let n = seeds as usize;
    let policies = crate::all_policies();
    let opts = SweepOptions::new(jobs, 1);
    let mut rows: Vec<TournamentRow> = Vec::new();

    // Hybrid arenas: the fig. 7 mix (RDMA 0.4) at moderate and
    // websearch-heavy TCP load.
    for (arena, tcp_load) in [("hybrid", 0.4), ("websearch", 0.8)] {
        let mut cells = Vec::new();
        for &policy in &policies {
            for rep in 0..seeds {
                cells.push(HybridConfig {
                    scale: reseed(scale, rep),
                    policy,
                    rdma_load: 0.4,
                    tcp_load,
                });
            }
        }
        let points = run_hybrid_cells(&cells, &opts);
        for (pi, &policy) in policies.iter().enumerate() {
            let mut row = TournamentRow::new(arena, policy.label());
            for p in &points[pi * n..(pi + 1) * n] {
                row.p99_slowdown.push(p.rdma_p99_slowdown);
                row.goodput_gbps
                    .push(goodput_gbps(&p.results, scale.window));
                row.pause_frames.push(p.pause_frames as f64);
                row.digests.push(p.results.digest());
                if p.lossless_drops != 0 {
                    row.violations.push(format!(
                        "{} lossless drops in a fault-free run",
                        p.lossless_drops
                    ));
                }
            }
            rows.push(row);
        }
    }

    // Incast arena: paper §IV-B defaults at the headline fanout,
    // clamped so the fanout fits the scale's RDMA host pool (the
    // workload requires strictly more responder candidates than N).
    {
        let fanout = TOURNAMENT_FANOUT.min(scale.host_count() / 2 - 1).max(1);
        let mut cells = Vec::new();
        for &policy in &policies {
            for rep in 0..seeds {
                cells.push(IncastConfig::paper_defaults(
                    reseed(scale, rep),
                    policy,
                    fanout,
                ));
            }
        }
        let points = run_incast_cells(&cells, &opts);
        for (pi, &policy) in policies.iter().enumerate() {
            let mut row = TournamentRow::new("incast", policy.label());
            for p in &points[pi * n..(pi + 1) * n] {
                row.p99_slowdown.push(p.incast_p99_slowdown);
                row.goodput_gbps
                    .push(goodput_gbps(&p.results, scale.window));
                row.pause_frames.push(p.pause_frames as f64);
                row.digests.push(p.results.digest());
                if p.lossless_drops != 0 {
                    row.violations.push(format!(
                        "{} lossless drops in a fault-free run",
                        p.lossless_drops
                    ));
                }
            }
            rows.push(row);
        }
    }

    // Chaos arena: per replicate, a zero-fault baseline plus one cell
    // per fault seed; the reported metrics come from the fault cells,
    // the degradation is relative to the same replicate's baseline.
    {
        let block = 1 + TOURNAMENT_FAULT_SEEDS.len();
        let mut cells = Vec::new();
        for &policy in &policies {
            for rep in 0..seeds {
                let s = reseed(scale, rep);
                cells.push(ChaosConfig::new(s.clone(), policy, None));
                for &fault in &TOURNAMENT_FAULT_SEEDS {
                    cells.push(ChaosConfig::new(s.clone(), policy, Some(fault)));
                }
            }
        }
        let points = run_chaos_cells(&cells, jobs);
        for (pi, &policy) in policies.iter().enumerate() {
            let mut row = TournamentRow::new("chaos", policy.label());
            for rep in 0..n {
                let at = (pi * n + rep) * block;
                let base = &points[at];
                let faulted = &points[at + 1..at + block];
                row.p99_slowdown.push(TournamentRow::mean(
                    &faulted
                        .iter()
                        .map(|p| p.rdma_p99_slowdown)
                        .collect::<Vec<f64>>(),
                ));
                let chaos_goodput = TournamentRow::mean(
                    &faulted.iter().map(|p| p.goodput_gbps).collect::<Vec<f64>>(),
                );
                row.goodput_gbps.push(chaos_goodput);
                row.pause_frames.push(TournamentRow::mean(
                    &faulted
                        .iter()
                        .map(|p| p.pause_frames as f64)
                        .collect::<Vec<f64>>(),
                ));
                row.fault_delta_pct
                    .push((chaos_goodput - base.goodput_gbps) / base.goodput_gbps * 100.0);
                for p in std::iter::once(base).chain(faulted.iter()) {
                    row.digests.push(p.digest);
                    for v in &p.violations {
                        row.violations.push(format!("seed {:?}: {v}", p.fault_seed));
                    }
                }
            }
            rows.push(row);
        }
    }

    TournamentReport { rows, seeds }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_tournament_covers_all_cells_and_passes_battery() {
        let r = tournament(&ExperimentScale::tiny(), 1, 4);
        assert_eq!(r.rows.len(), 4 * 6, "4 arenas x 6 policies");
        assert_eq!(r.violations(), Vec::<String>::new());
        let labels: Vec<&str> = r.rows[..6].iter().map(|x| x.label.as_str()).collect();
        assert_eq!(labels, ["L2BM", "DT", "ABM", "DT2", "Occamy", "BShare"]);
        // Chaos rows carry a degradation sample per replicate; the
        // others do not.
        assert!(r
            .rows
            .iter()
            .filter(|x| x.arena == "chaos")
            .all(|x| x.fault_delta_pct.len() == 1));
        assert!(r
            .rows
            .iter()
            .filter(|x| x.arena != "chaos")
            .all(|x| x.fault_delta_pct.is_empty()));
        let rendered = r.render();
        assert!(rendered.contains("pareto front [hybrid]"));
        assert!(rendered.contains("Occamy"));
    }

    #[test]
    fn pareto_front_drops_dominated_rows() {
        let mk = |label: &str, p99: f64, goodput: f64, pause: f64| {
            let mut row = TournamentRow::new("hybrid", label.into());
            row.p99_slowdown.push(p99);
            row.goodput_gbps.push(goodput);
            row.pause_frames.push(pause);
            row
        };
        let r = TournamentReport {
            rows: vec![
                mk("A", 2.0, 10.0, 5.0),
                mk("B", 3.0, 9.0, 6.0), // dominated by A
                mk("C", 1.5, 8.0, 7.0), // better p99, worse elsewhere
            ],
            seeds: 1,
        };
        assert_eq!(r.pareto_front("hybrid"), ["A", "C"]);
    }
}
