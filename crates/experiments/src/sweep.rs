//! The parallel sweep engine: fans independent experiment cells across
//! worker threads and replicates each cell over multiple seeds.
//!
//! Every figure/table of the paper is a sweep over independent cells
//! (one `(policy, load)` or `(policy, fanout)` simulation each). The
//! engine runs the flattened `(cell, replicate)` grid through
//! [`dcn_sim::par_map`], whose output is ordered by **input index**
//! regardless of which worker finished first, then folds the replicates
//! of each cell — always in seed order — into [`SeedStats`]. The result
//! is the determinism contract the reports rely on:
//!
//! > The same sweep specification produces bit-identical reports at any
//! > `--jobs` value.
//!
//! Replicate `r` of a cell reruns it with `scale.seed + r`, so
//! `--seeds 1` (the default) reproduces the historical single-seed
//! output exactly.

use dcn_metrics::SeedStats;
use dcn_sim::par_map;

use crate::hybrid::{run_hybrid, HybridConfig, HybridPoint};
use crate::incast::{run_incast, IncastConfig, IncastPoint};
use crate::report::fmt_f64;

/// How a sweep's cells are executed: worker threads and seed
/// replicates. The default (`jobs = 1`, `seeds = 1`) is the historical
/// serial, single-seed behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOptions {
    /// Worker threads the cells are fanned across (0 is treated as 1).
    pub jobs: usize,
    /// Seed replicates per cell (0 is treated as 1). With more than one
    /// replicate each cell's report value becomes `mean ± 95% CI` over
    /// the replicates.
    pub seeds: u64,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions { jobs: 1, seeds: 1 }
    }
}

impl SweepOptions {
    /// Options with the given worker count and replicate count.
    pub fn new(jobs: usize, seeds: u64) -> Self {
        SweepOptions { jobs, seeds }
    }

    /// The effective replicate count (at least 1).
    pub fn effective_seeds(&self) -> u64 {
        self.seeds.max(1)
    }
}

/// Per-metric replication statistics of one hybrid cell, aggregated
/// over its seed replicates. `None` for a metric means no replicate
/// produced a finite value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridSeedStats {
    /// RDMA p99 FCT slowdown across seeds (Fig. 7(a)).
    pub rdma_p99_slowdown: Option<SeedStats>,
    /// TCP p99 FCT slowdown across seeds (Fig. 7(b)).
    pub tcp_p99_slowdown: Option<SeedStats>,
    /// ToR p99 occupancy (bytes) across seeds (Fig. 7(c)).
    pub tor_occupancy_p99: Option<SeedStats>,
    /// PFC pause frames across seeds (Fig. 7(d) / Table II).
    pub pause_frames: Option<SeedStats>,
}

/// Per-metric replication statistics of one incast cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncastSeedStats {
    /// Incast p99 FCT slowdown across seeds (Fig. 11(a)).
    pub incast_p99_slowdown: Option<SeedStats>,
    /// Mean query response delay in seconds across seeds (Fig. 11(b)).
    pub query_delay_mean_s: Option<SeedStats>,
    /// PFC pause frames across seeds (Fig. 11(c)).
    pub pause_frames: Option<SeedStats>,
}

/// Renders a replicated metric as `mean±halfwidth` (95% CI); falls back
/// to the single-seed point value when no replication stats exist.
pub fn fmt_stat(stats: Option<&SeedStats>, point_value: String) -> String {
    match stats {
        Some(s) if s.n > 1 => format!("{}±{}", fmt_f64(s.mean), fmt_f64(s.ci95_half)),
        _ => point_value,
    }
}

/// Runs the flattened `(cell, replicate)` grid in parallel and folds
/// each cell's replicates (in seed order) with `aggregate`. The output
/// index `i` corresponds to `cells[i]` — never to completion order.
fn run_replicated<C, P>(
    cells: &[C],
    opts: &SweepOptions,
    reseed: impl Fn(&C, u64) -> C + Sync,
    run: impl Fn(&C) -> P + Sync,
    aggregate: impl Fn(Vec<P>) -> P,
) -> Vec<P>
where
    C: Sync + Send,
    P: Send,
{
    let seeds = opts.effective_seeds();
    let mut work: Vec<C> = Vec::with_capacity(cells.len() * seeds as usize);
    for cell in cells {
        for rep in 0..seeds {
            work.push(reseed(cell, rep));
        }
    }
    let mut results = par_map(opts.jobs, &work, run);
    let mut out = Vec::with_capacity(cells.len());
    // Drain front-to-back so replicates stay in seed order.
    while results.len() >= seeds as usize {
        let rest = results.split_off(seeds as usize);
        let reps = std::mem::replace(&mut results, rest);
        out.push(aggregate(reps));
    }
    debug_assert!(results.is_empty(), "grid size must be cells × seeds");
    out
}

fn reseed_hybrid(cfg: &HybridConfig, rep: u64) -> HybridConfig {
    let mut c = cfg.clone();
    c.scale.seed = c.scale.seed.wrapping_add(rep);
    c
}

fn reseed_incast(cfg: &IncastConfig, rep: u64) -> IncastConfig {
    let mut c = cfg.clone();
    c.scale.seed = c.scale.seed.wrapping_add(rep);
    c
}

/// Folds the seed replicates of one hybrid cell: the base-seed
/// replicate keeps its full results (CDF post-processing reads them)
/// and gains the cross-seed [`HybridSeedStats`].
pub(crate) fn aggregate_hybrid(mut reps: Vec<HybridPoint>) -> HybridPoint {
    assert!(!reps.is_empty(), "a cell has at least one replicate");
    if reps.len() == 1 {
        return reps.pop().expect("one replicate");
    }
    let collect = |f: fn(&HybridPoint) -> f64| -> Option<SeedStats> {
        SeedStats::from_samples(&reps.iter().map(f).collect::<Vec<f64>>())
    };
    let stats = HybridSeedStats {
        rdma_p99_slowdown: collect(|p| p.rdma_p99_slowdown),
        tcp_p99_slowdown: collect(|p| p.tcp_p99_slowdown),
        tor_occupancy_p99: collect(|p| p.tor_occupancy_p99),
        pause_frames: collect(|p| p.pause_frames as f64),
    };
    let mut base = reps.swap_remove(0);
    base.stats = Some(stats);
    base
}

/// Folds the seed replicates of one incast cell (see
/// [`aggregate_hybrid`]).
pub(crate) fn aggregate_incast(mut reps: Vec<IncastPoint>) -> IncastPoint {
    assert!(!reps.is_empty(), "a cell has at least one replicate");
    if reps.len() == 1 {
        return reps.pop().expect("one replicate");
    }
    let collect = |f: fn(&IncastPoint) -> f64| -> Option<SeedStats> {
        SeedStats::from_samples(&reps.iter().map(f).collect::<Vec<f64>>())
    };
    let stats = IncastSeedStats {
        incast_p99_slowdown: collect(|p| p.incast_p99_slowdown),
        query_delay_mean_s: collect(|p| p.query_delay.as_ref().map(|e| e.mean).unwrap_or(f64::NAN)),
        pause_frames: collect(|p| p.pause_frames as f64),
    };
    let mut base = reps.swap_remove(0);
    base.stats = Some(stats);
    base
}

/// Runs a set of hybrid cells through the parallel engine. Output index
/// `i` is `cells[i]`'s (replicated) point.
pub fn run_hybrid_cells(cells: &[HybridConfig], opts: &SweepOptions) -> Vec<HybridPoint> {
    run_replicated(cells, opts, reseed_hybrid, run_hybrid, aggregate_hybrid)
}

/// Runs a set of incast cells through the parallel engine.
pub fn run_incast_cells(cells: &[IncastConfig], opts: &SweepOptions) -> Vec<IncastPoint> {
    run_replicated(cells, opts, reseed_incast, run_incast, aggregate_incast)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;
    use dcn_fabric::PolicyChoice;

    fn tiny_cell(policy: PolicyChoice, tcp_load: f64) -> HybridConfig {
        HybridConfig {
            scale: ExperimentScale::tiny(),
            policy,
            rdma_load: 0.4,
            tcp_load,
        }
    }

    #[test]
    fn single_seed_matches_serial_run() {
        let cell = tiny_cell(PolicyChoice::l2bm(), 0.4);
        let serial = run_hybrid(&cell);
        let par = run_hybrid_cells(std::slice::from_ref(&cell), &SweepOptions::new(4, 1));
        assert_eq!(par.len(), 1);
        assert!(par[0].stats.is_none(), "single seed attaches no stats");
        assert_eq!(par[0].pause_frames, serial.pause_frames);
        assert_eq!(
            par[0].results.events_processed,
            serial.results.events_processed
        );
        assert_eq!(par[0].results.digest(), serial.results.digest());
    }

    #[test]
    fn cells_come_back_in_input_order() {
        let cells = vec![
            tiny_cell(PolicyChoice::l2bm(), 0.2),
            tiny_cell(PolicyChoice::dt(), 0.4),
            tiny_cell(PolicyChoice::abm(), 0.2),
        ];
        let points = run_hybrid_cells(&cells, &SweepOptions::new(8, 1));
        let labels: Vec<&str> = points.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, ["L2BM", "DT", "ABM"]);
        assert_eq!(points[0].tcp_load, 0.2);
        assert_eq!(points[1].tcp_load, 0.4);
    }

    #[test]
    fn multi_seed_attaches_stats_and_is_job_count_invariant() {
        let cells = vec![tiny_cell(PolicyChoice::l2bm(), 0.4)];
        let opts1 = SweepOptions::new(1, 3);
        let opts8 = SweepOptions::new(8, 3);
        let a = run_hybrid_cells(&cells, &opts1);
        let b = run_hybrid_cells(&cells, &opts8);
        let sa = a[0].stats.expect("3 seeds aggregate");
        let sb = b[0].stats.expect("3 seeds aggregate");
        // Bit-identical aggregation at any thread count.
        assert_eq!(sa, sb);
        assert_eq!(a[0].results.digest(), b[0].results.digest());
        let pf = sa.pause_frames.expect("pause frames always finite");
        assert_eq!(pf.n, 3);
        assert!(pf.min <= pf.mean && pf.mean <= pf.max);
    }

    #[test]
    fn replicates_use_distinct_seeds() {
        // The base replicate must equal the plain single run; a later
        // replicate must be the run at seed + rep.
        let cell = tiny_cell(PolicyChoice::dt(), 0.6);
        let agg = run_hybrid_cells(std::slice::from_ref(&cell), &SweepOptions::new(2, 2));
        let base = run_hybrid(&cell);
        assert_eq!(agg[0].results.digest(), base.results.digest());
        let reseeded = run_hybrid(&reseed_hybrid(&cell, 1));
        assert_ne!(
            reseeded.results.digest(),
            base.results.digest(),
            "different seeds must change the run"
        );
    }

    #[test]
    fn fmt_stat_falls_back_without_replication() {
        assert_eq!(fmt_stat(None, "7.00".into()), "7.00");
        let s = SeedStats::from_samples(&[2.0, 4.0]).unwrap();
        let txt = fmt_stat(Some(&s), "x".into());
        assert!(txt.starts_with("3.00±"), "got {txt}");
        let one = SeedStats::from_samples(&[2.0]).unwrap();
        assert_eq!(fmt_stat(Some(&one), "2.00".into()), "2.00");
    }

    #[test]
    fn aggregation_is_completion_order_independent() {
        // Feed the same replicate set to the aggregator in two seed
        // orders that both claim rep 0 as base: stats must be
        // bit-identical (SeedStats sorts internally).
        let cell = tiny_cell(PolicyChoice::abm(), 0.4);
        let reps: Vec<HybridPoint> = (0..3u64)
            .map(|r| run_hybrid(&reseed_hybrid(&cell, r)))
            .collect();
        let mut swapped = reps.clone();
        swapped.swap(1, 2);
        let a = aggregate_hybrid(reps);
        let b = aggregate_hybrid(swapped);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.pause_frames, b.pause_frames, "base replicate unchanged");
    }
}
