//! The lossless-vs-lossy universe comparison: the same hybrid workload
//! carried by DCQCN (lossless RDMA over PFC — the paper's universe) and
//! by IRN (lossy RDMA with NACK/go-back-N retransmission, no PFC).
//!
//! Two sweeps live here:
//!
//! * [`irn_grid`] — the resilience *grid*: every arena policy × both
//!   transports on the healthy fig. 7 hybrid mix, answering whether
//!   L2BM's buffer-management lead survives once RDMA stops needing
//!   PFC at all.
//! * [`irn_resilience`] — the fault *comparison*: identical sampled
//!   fault schedules (the chaos generator's link flaps, corruption
//!   windows and stuck pauses) run in both universes side by side,
//!   counting the flows each universe fails to deliver. DCQCN has no
//!   retransmission, so a single lossless wire loss strands the flow
//!   forever; IRN repairs it and finishes. "Rescued" flows are those
//!   unfinished under DCQCN but completed by IRN on the same schedule.
//!
//! Every cell runs with the flight recorder on and asserts a battery:
//! counter/trace reconciliation, zero stranded DCQCN senders, zero
//! orphan retransmissions (each one causally preceded by a same-flow
//! NACK at or below its sequence, or by an RTO), and per-universe
//! completion guarantees. Violations collect as strings, never panics.

use std::collections::HashSet;

use dcn_fabric::{FabricConfig, FabricSim, PolicyChoice, RdmaTransport};
use dcn_net::{Topology, TrafficClass};
use dcn_sim::{par_map, FaultSchedule, SimRng, SimTime, TraceConfig, TraceEvent};
use dcn_workload::{web_search_cdf, FlowSpec, PoissonTraffic};

use crate::chaos::{sample_fault_schedule, CHAOS_WATCHDOG};
use crate::hybrid::{split_hosts, RDMA_PRIO, TCP_PRIO};
use crate::report::{fmt_f64, Table};
use crate::scale::ExperimentScale;

/// One cell of the universe comparison.
#[derive(Debug, Clone)]
pub struct IrnCellConfig {
    /// The scale (topology, window, workload seed).
    pub scale: ExperimentScale,
    /// Buffer-management policy under test.
    pub policy: PolicyChoice,
    /// Which universe carries the RDMA half.
    pub transport: RdmaTransport,
    /// Seed the fault schedule is sampled from; `None` injects nothing.
    pub fault_seed: Option<u64>,
    /// Load of the RDMA half (fig. 7 hybrid mix).
    pub rdma_load: f64,
    /// Load of the TCP half.
    pub tcp_load: f64,
}

impl IrnCellConfig {
    /// The standard cell: fig. 7 hybrid mix at RDMA 0.4 / TCP 0.4.
    pub fn new(
        scale: ExperimentScale,
        policy: PolicyChoice,
        transport: RdmaTransport,
        fault_seed: Option<u64>,
    ) -> Self {
        IrnCellConfig {
            scale,
            policy,
            transport,
            fault_seed,
            rdma_load: 0.4,
            tcp_load: 0.4,
        }
    }
}

/// Everything one universe cell reports. Plain data (`Send`): the trace
/// is interrogated inside the worker, never shipped across threads.
#[derive(Debug, Clone)]
pub struct IrnPoint {
    /// Policy label (DT / DT2 / ABM / L2BM / Occamy / BShare).
    pub label: String,
    /// Universe label (DCQCN / IRN).
    pub transport: &'static str,
    /// The fault seed (`None` = zero-fault baseline).
    pub fault_seed: Option<u64>,
    /// Full-run digest (compared across `--jobs` values).
    pub digest: u64,
    /// Registered flows.
    pub total_flows: usize,
    /// Flows completed before the deadline.
    pub completed: usize,
    /// Flow ids (raw `u64`) unfinished at the deadline.
    pub unfinished_ids: Vec<u64>,
    /// Flows that lost a lossless-class packet (DCQCN universe only —
    /// no retransmission exists for them).
    pub victims: usize,
    /// Liveness-watchdog stall episodes.
    pub stalls: u64,
    /// PFC pause frames emitted (must stay 0 in the IRN universe).
    pub pause_frames: u64,
    /// Lossless packets dropped (DCQCN universe victims).
    pub lossless_drops: u64,
    /// Lossy-RDMA packets dropped (IRN universe losses).
    pub lossy_rdma_drops: u64,
    /// IRN NACKs (switch- plus receiver-generated).
    pub nacks: u64,
    /// IRN packets retransmitted.
    pub retransmits: u64,
    /// IRN retransmission timeouts fired.
    pub rto_fires: u64,
    /// p99 FCT slowdown of the RDMA half.
    pub rdma_p99_slowdown: f64,
    /// p99 FCT slowdown of the TCP half.
    pub tcp_p99_slowdown: f64,
    /// Delivered goodput over the traffic window, Gbit/s.
    pub goodput_gbps: f64,
    /// Invariant violations (empty = the battery passed).
    pub violations: Vec<String>,
}

/// Runs one universe cell and asserts its battery.
pub fn run_irn_cell(cfg: &IrnCellConfig) -> IrnPoint {
    let topo = Topology::clos(&cfg.scale.clos);
    let (rdma_hosts, tcp_hosts, _) = split_hosts(&topo, cfg.scale.clos.hosts_per_tor);
    let mut rng = SimRng::seed_from_u64(cfg.scale.seed);

    let mut flows: Vec<FlowSpec> = Vec::new();
    if cfg.rdma_load > 0.0 {
        let rdma = PoissonTraffic::builder(rdma_hosts.clone(), web_search_cdf())
            .load(cfg.rdma_load)
            .link_rate(cfg.scale.clos.host_rate)
            .class(TrafficClass::Lossless, RDMA_PRIO)
            .dests(rdma_hosts)
            .build();
        flows.extend(rdma.generate(cfg.scale.window, &mut rng.fork(1)));
    }
    if cfg.tcp_load > 0.0 {
        let tcp = PoissonTraffic::builder(tcp_hosts.clone(), web_search_cdf())
            .load(cfg.tcp_load)
            .link_rate(cfg.scale.clos.host_rate)
            .class(TrafficClass::Lossy, TCP_PRIO)
            .dests(tcp_hosts)
            .first_flow_id(1 << 40)
            .build();
        flows.extend(tcp.generate(cfg.scale.window, &mut rng.fork(2)));
    }

    let faults = match cfg.fault_seed {
        Some(seed) => sample_fault_schedule(&topo, cfg.scale.window, seed),
        None => FaultSchedule::none(),
    };

    let mut switch = cfg.scale.switch_config();
    switch.pfc_watchdog = Some(CHAOS_WATCHDOG);
    let fabric_cfg = FabricConfig {
        policy: cfg.policy,
        rdma_transport: cfg.transport,
        seed: cfg.scale.seed,
        switch,
        flow_watchdog: Some(CHAOS_WATCHDOG),
        sample_interval: None,
        trace: TraceConfig::enabled(),
        faults,
        train: cfg.scale.train,
        ..FabricConfig::default()
    };
    let mut sim = FabricSim::new(topo, fabric_cfg);
    sim.add_flows(flows.iter().copied());
    let deadline = SimTime::ZERO + cfg.scale.window + cfg.scale.drain;
    sim.run_until_done(deadline);
    let r = sim.results();

    // Trace interrogation: totals, the lossless-victim set, and the
    // NACK/RTO → retransmission causality scan, all inside the worker.
    let (totals, victim_flows, orphans) = sim
        .trace()
        .with(|rec| {
            let mut nacked: HashSet<(u64, u64)> = HashSet::new();
            let mut rto_fired: HashSet<u64> = HashSet::new();
            let mut orphans = 0u64;
            for record in rec.records() {
                match record.event {
                    TraceEvent::IrnNack { flow, nack_seq, .. } => {
                        nacked.insert((flow, nack_seq));
                    }
                    TraceEvent::RtoFire { flow, .. } => {
                        rto_fired.insert(flow);
                    }
                    TraceEvent::IrnRetransmit { flow, seq } => {
                        let by_nack = nacked.iter().any(|&(f, ns)| f == flow && ns <= seq);
                        if !by_nack && !rto_fired.contains(&flow) {
                            orphans += 1;
                        }
                    }
                    _ => {}
                }
            }
            (rec.totals(), rec.lossless_victims().clone(), orphans)
        })
        .expect("universe cells always trace");

    let mut violations: Vec<String> = Vec::new();
    if totals.irn_nacks != r.irn.nacks() {
        violations.push(format!(
            "trace NACKs {} != counter NACKs {}",
            totals.irn_nacks,
            r.irn.nacks()
        ));
    }
    if totals.irn_retransmits != r.irn.retransmitted_packets {
        violations.push(format!(
            "trace retransmits {} != counter retransmits {}",
            totals.irn_retransmits, r.irn.retransmitted_packets
        ));
    }
    if totals.flow_stalls != r.flow_stalls {
        violations.push(format!(
            "trace stalls {} != counter stalls {}",
            totals.flow_stalls, r.flow_stalls
        ));
    }
    if r.rdma_stranded != 0 {
        violations.push(format!("{} stranded DCQCN senders", r.rdma_stranded));
    }
    if orphans != 0 {
        violations.push(format!(
            "{orphans} retransmissions without a preceding NACK or RTO"
        ));
    }

    let completed: HashSet<u64> = r.fct.records().iter().map(|x| x.flow.as_u64()).collect();
    let unfinished_ids: Vec<u64> = flows
        .iter()
        .map(|s| s.id.as_u64())
        .filter(|id| !completed.contains(id))
        .collect();
    match cfg.transport {
        RdmaTransport::Irn => {
            // The lossy universe has no excuse: every loss is
            // retransmittable, so every flow must finish — and nothing
            // may ever ask for PFC.
            if !unfinished_ids.is_empty() {
                violations.push(format!(
                    "IRN universe left {} flows unfinished",
                    unfinished_ids.len()
                ));
            }
            if r.pause_frames() > 0 {
                violations.push(format!(
                    "IRN universe emitted {} PFC pause frames",
                    r.pause_frames()
                ));
            }
            if r.drops.lossless_packets != 0 {
                // Every RDMA packet is LossyRdma here, so a drop counted
                // under the lossless class means a stray genuinely-
                // lossless packet existed somewhere in the run.
                violations.push(format!(
                    "stray lossless drops: {} (expected 0, lossy-rdma has {})",
                    r.drops.lossless_packets, r.drops.lossy_rdma_packets
                ));
            }
        }
        RdmaTransport::Dcqcn => {
            // The lossless universe may strand victims (no
            // retransmission), but only victims: TCP and undamaged RDMA
            // must finish.
            for &id in &unfinished_ids {
                if !victim_flows.contains(&id) {
                    violations.push(format!("flow {id} unfinished without being a loss victim"));
                }
            }
        }
    }
    if cfg.fault_seed.is_none() && !unfinished_ids.is_empty() {
        violations.push(format!(
            "zero-fault baseline left {} flows unfinished",
            unfinished_ids.len()
        ));
    }

    let delivered: u64 = r.fct.records().iter().map(|x| x.size.as_u64()).sum();
    let goodput_gbps = delivered as f64 * 8.0 / cfg.scale.window.as_secs_f64() / 1e9;

    IrnPoint {
        label: cfg.policy.label(),
        transport: cfg.transport.label(),
        fault_seed: cfg.fault_seed,
        digest: r.digest(),
        total_flows: flows.len(),
        completed: completed.len(),
        unfinished_ids,
        victims: victim_flows.len(),
        stalls: r.flow_stalls,
        pause_frames: r.pause_frames(),
        lossless_drops: r.drops.lossless_packets,
        lossy_rdma_drops: r.drops.lossy_rdma_packets,
        nacks: r.irn.nacks(),
        retransmits: r.irn.retransmitted_packets,
        rto_fires: r.irn.rto_fires,
        rdma_p99_slowdown: r
            .fct
            .slowdown_percentile(TrafficClass::Lossless, 0.99)
            .unwrap_or(f64::NAN),
        tcp_p99_slowdown: r
            .fct
            .slowdown_percentile(TrafficClass::Lossy, 0.99)
            .unwrap_or(f64::NAN),
        goodput_gbps,
        violations,
    }
}

/// The healthy grid: every arena policy × both universes.
#[derive(Debug, Clone)]
pub struct IrnGrid {
    /// Points in (policy, transport) order: DCQCN then IRN per policy.
    pub points: Vec<IrnPoint>,
}

impl IrnGrid {
    /// Every invariant violation across the grid (empty = pass).
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for p in &self.points {
            for v in &p.violations {
                out.push(format!("{}/{}: {v}", p.label, p.transport));
            }
        }
        out
    }

    /// Renders the grid table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "policy",
            "transport",
            "rdma p99",
            "tcp p99",
            "goodput",
            "pause frames",
            "rdma drops",
            "nacks",
            "rtx",
            "rto",
            "unfinished",
        ]);
        for p in &self.points {
            let rdma_drops = match p.transport {
                "IRN" => p.lossy_rdma_drops,
                _ => p.lossless_drops,
            };
            t.row(vec![
                p.label.clone(),
                p.transport.to_string(),
                fmt_f64(p.rdma_p99_slowdown),
                fmt_f64(p.tcp_p99_slowdown),
                fmt_f64(p.goodput_gbps),
                p.pause_frames.to_string(),
                rdma_drops.to_string(),
                p.nacks.to_string(),
                p.retransmits.to_string(),
                p.rto_fires.to_string(),
                (p.total_flows - p.completed).to_string(),
            ]);
        }
        format!(
            "lossless-vs-lossy grid: hybrid mix, {} policies x DCQCN/IRN\n{}",
            self.points.len() / 2,
            t.render()
        )
    }
}

/// Runs the healthy grid (no faults) for every arena policy.
pub fn irn_grid(scale: &ExperimentScale, jobs: usize) -> IrnGrid {
    let mut cells = Vec::new();
    for policy in crate::all_policies() {
        for transport in [RdmaTransport::Dcqcn, RdmaTransport::Irn] {
            cells.push(IrnCellConfig::new(scale.clone(), policy, transport, None));
        }
    }
    IrnGrid {
        points: par_map(jobs, &cells, run_irn_cell),
    }
}

/// The fault comparison: per fault seed, both universes on the *same*
/// sampled schedule, plus one zero-fault baseline per universe.
#[derive(Debug, Clone)]
pub struct IrnResilience {
    /// DCQCN points: baseline first, then one per fault seed.
    pub dcqcn: Vec<IrnPoint>,
    /// IRN points in the same order.
    pub irn: Vec<IrnPoint>,
}

impl IrnResilience {
    /// Every invariant violation across both universes.
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for p in self.dcqcn.iter().chain(self.irn.iter()) {
            for v in &p.violations {
                out.push(format!(
                    "{}/{} seed {:?}: {v}",
                    p.label, p.transport, p.fault_seed
                ));
            }
        }
        out
    }

    /// Flows rescued per fault seed: unfinished under DCQCN, completed
    /// by IRN on the identical schedule (both universes register the
    /// exact same flow specs).
    pub fn rescued(&self) -> Vec<(u64, usize)> {
        self.dcqcn
            .iter()
            .zip(self.irn.iter())
            .filter_map(|(d, i)| {
                let seed = d.fault_seed?;
                let irn_unfinished: HashSet<u64> = i.unfinished_ids.iter().copied().collect();
                let rescued = d
                    .unfinished_ids
                    .iter()
                    .filter(|id| !irn_unfinished.contains(id))
                    .count();
                Some((seed, rescued))
            })
            .collect()
    }

    /// Renders the side-by-side degradation table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "fault seed",
            "dcqcn goodput Δ%",
            "dcqcn unfinished",
            "victims",
            "stalls",
            "irn goodput Δ%",
            "irn nacks",
            "irn rtx",
            "irn rto",
            "rescued",
        ]);
        let base_d = self.dcqcn.first().map_or(f64::NAN, |p| p.goodput_gbps);
        let base_i = self.irn.first().map_or(f64::NAN, |p| p.goodput_gbps);
        let delta = |g: f64, base: f64| (g - base) / base * 100.0;
        let rescued = self.rescued();
        for ((d, i), &(seed, resc)) in self
            .dcqcn
            .iter()
            .zip(self.irn.iter())
            .skip(1)
            .zip(rescued.iter())
        {
            debug_assert_eq!(d.fault_seed, Some(seed));
            t.row(vec![
                seed.to_string(),
                fmt_f64(delta(d.goodput_gbps, base_d)),
                d.unfinished_ids.len().to_string(),
                d.victims.to_string(),
                d.stalls.to_string(),
                fmt_f64(delta(i.goodput_gbps, base_i)),
                i.nacks.to_string(),
                i.retransmits.to_string(),
                i.rto_fires.to_string(),
                resc.to_string(),
            ]);
        }
        let total_rescued: usize = rescued.iter().map(|&(_, n)| n).sum();
        format!(
            "fault resilience: DCQCN vs IRN on identical sampled schedules (L2BM policy)\n\
             {}\ntotal flows rescued by the lossy universe: {total_rescued}",
            t.render()
        )
    }
}

/// Runs the fault comparison with the L2BM policy over `fault_seeds`.
pub fn irn_resilience(scale: &ExperimentScale, fault_seeds: &[u64], jobs: usize) -> IrnResilience {
    let policy = PolicyChoice::l2bm();
    let mut cells = Vec::new();
    for transport in [RdmaTransport::Dcqcn, RdmaTransport::Irn] {
        cells.push(IrnCellConfig::new(scale.clone(), policy, transport, None));
        for &seed in fault_seeds {
            cells.push(IrnCellConfig::new(
                scale.clone(),
                policy,
                transport,
                Some(seed),
            ));
        }
    }
    let mut points = par_map(jobs, &cells, run_irn_cell);
    let irn = points.split_off(1 + fault_seeds.len());
    IrnResilience { dcqcn: points, irn }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_irn_cell_passes_battery_and_matches_dcqcn_flow_count() {
        let d = run_irn_cell(&IrnCellConfig::new(
            ExperimentScale::tiny(),
            PolicyChoice::l2bm(),
            RdmaTransport::Dcqcn,
            None,
        ));
        let i = run_irn_cell(&IrnCellConfig::new(
            ExperimentScale::tiny(),
            PolicyChoice::l2bm(),
            RdmaTransport::Irn,
            None,
        ));
        assert_eq!(d.violations, Vec::<String>::new());
        assert_eq!(i.violations, Vec::<String>::new());
        // The workload is generated before the transport applies: both
        // universes carry the exact same flow population.
        assert_eq!(d.total_flows, i.total_flows);
        assert_eq!(i.completed, i.total_flows);
        assert_eq!(i.pause_frames, 0, "lossy RDMA never pauses");
        assert_eq!(i.stalls, 0, "healthy runs never stall");
        assert_eq!(d.nacks, 0, "DCQCN universe has no IRN machinery");
    }

    #[test]
    fn resilience_comparison_rescues_dcqcn_victims() {
        // One seed is enough for the unit tier; the full 8-seed battery
        // runs in `repro irn --check`. Seed 11 samples a schedule whose
        // losses victimise lossless flows at tiny scale.
        let r = irn_resilience(&ExperimentScale::tiny(), &[11, 23], 2);
        assert_eq!(r.violations(), Vec::<String>::new());
        assert_eq!(r.dcqcn.len(), 3);
        assert_eq!(r.irn.len(), 3);
        for p in &r.irn {
            assert_eq!(p.unfinished_ids.len(), 0, "IRN must deliver everything");
            assert_eq!(p.pause_frames, 0);
        }
        // The render must produce the side-by-side table either way.
        let table = r.render();
        assert!(table.contains("rescued"));
    }
}
