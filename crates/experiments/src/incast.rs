//! The burst deep-dive experiment (paper §IV-B): RDMA incast queries
//! (x = 1 MB striped over N servers) against TCP web-search background
//! traffic at load 0.8.

use std::collections::{HashMap, HashSet};

use dcn_fabric::{FabricConfig, PolicyChoice, RunResults};
use dcn_metrics::ErrorBarStats;
use dcn_net::{Topology, TrafficClass};
use dcn_sim::{Bytes, SimDuration, SimRng, SimTime};
use dcn_workload::{web_search_cdf, IncastWorkload, PoissonTraffic};

use crate::engine::run_engine;
use crate::hybrid::{split_hosts, RDMA_PRIO, TCP_PRIO};
use crate::scale::ExperimentScale;

/// One incast run's parameters.
#[derive(Debug, Clone)]
pub struct IncastConfig {
    /// The scale (topology, window, seed).
    pub scale: ExperimentScale,
    /// Buffer-management policy under test.
    pub policy: PolicyChoice,
    /// Responders per query (paper: 5, 10, 15).
    pub fanout: usize,
    /// Total bytes per query (paper: 1 MB = 25% of the 4 MB buffer).
    pub request_size: Bytes,
    /// Mean inter-query gap (paper: ≈ 1.33 ms → 376 queries in 0.5 s).
    pub query_gap: SimDuration,
    /// Background TCP web-search load (paper: 0.8).
    pub tcp_load: f64,
}

impl IncastConfig {
    /// Paper §IV-B defaults at the given scale, policy and fanout. The
    /// request size is 25% of the switch buffer (1 MB of 4 MB in the
    /// paper), which keeps the burst-to-buffer pressure constant across
    /// scales.
    pub fn paper_defaults(scale: ExperimentScale, policy: PolicyChoice, fanout: usize) -> Self {
        let request_size = (scale.total_buffer / 4).max(Bytes::from_kb(100));
        IncastConfig {
            scale,
            policy,
            fanout,
            request_size,
            query_gap: SimDuration::from_micros(1_330),
            tcp_load: 0.8,
        }
    }
}

/// Summary of one incast run.
#[derive(Debug, Clone)]
pub struct IncastPoint {
    /// Policy label.
    pub label: String,
    /// Responders per query.
    pub fanout: usize,
    /// Number of queries issued.
    pub queries: usize,
    /// 99th-percentile FCT slowdown over all incast flows (Fig. 11(a)).
    pub incast_p99_slowdown: f64,
    /// Fraction of incast flows with slowdown ≤ 10 (Fig. 10(a) headline).
    pub frac_slowdown_le_10: f64,
    /// Per-query response time = max FCT of its flows; error-bar summary
    /// in seconds (Fig. 10(b) / Fig. 11(b)).
    pub query_delay: Option<ErrorBarStats>,
    /// 99th-percentile sampled ToR occupancy in bytes (Fig. 10(c)).
    pub tor_occupancy_p99: f64,
    /// Total PFC pause frames (Fig. 11(c)).
    pub pause_frames: u64,
    /// Lossless drops (must stay 0).
    pub lossless_drops: u64,
    /// Queries whose flows all finished.
    pub completed_queries: usize,
    /// Full results for figure-specific post-processing.
    pub results: RunResults,
    /// Raw per-query response times in seconds (completed queries only).
    pub query_delays_s: Vec<f64>,
    /// Raw slowdowns of all completed incast flows.
    pub incast_slowdowns: Vec<f64>,
    /// Cross-seed replication statistics, attached by the sweep engine
    /// when the cell ran with `--seeds N > 1`.
    pub stats: Option<crate::sweep::IncastSeedStats>,
}

/// Runs one incast experiment point.
pub fn run_incast(cfg: &IncastConfig) -> IncastPoint {
    let topo = Topology::clos(&cfg.scale.clos);
    let (rdma_hosts, tcp_hosts, rack_of) = split_hosts(&topo, cfg.scale.clos.hosts_per_tor);
    let mut rng = SimRng::seed_from_u64(cfg.scale.seed);

    // Background TCP web-search at the configured load.
    let mut flows = Vec::new();
    if cfg.tcp_load > 0.0 {
        let tcp = PoissonTraffic::builder(tcp_hosts.clone(), web_search_cdf())
            .load(cfg.tcp_load)
            .link_rate(cfg.scale.clos.host_rate)
            .class(TrafficClass::Lossy, TCP_PRIO)
            .inter_rack(rack_of)
            .dests(tcp_hosts)
            .first_flow_id(1 << 40)
            .build();
        flows.extend(tcp.generate(cfg.scale.window, &mut rng.fork(2)));
    }

    // RDMA incast queries over the other half of the servers.
    let incast = IncastWorkload::new(rdma_hosts, cfg.fanout, cfg.request_size, cfg.query_gap)
        .class(TrafficClass::Lossless, RDMA_PRIO);
    let queries = incast.generate(cfg.scale.window, &mut rng.fork(3));
    let incast_flows: HashSet<dcn_net::FlowId> =
        queries.iter().flat_map(|q| q.flow_ids()).collect();
    for q in &queries {
        flows.extend(q.flows.iter().copied());
    }

    let fabric_cfg = FabricConfig {
        policy: cfg.policy,
        seed: cfg.scale.seed,
        switch: cfg.scale.switch_config(),
        train: cfg.scale.train,
        ..FabricConfig::default()
    };
    let first_tor = topo.switches().next().expect("clos has switches");
    let deadline = SimTime::ZERO + cfg.scale.window + cfg.scale.drain;
    let results = run_engine(topo, fabric_cfg, flows, deadline, cfg.scale.shards);

    // Per-flow records of incast flows.
    let mut fct_by_flow: HashMap<dcn_net::FlowId, &dcn_metrics::FctRecord> =
        HashMap::with_capacity(incast_flows.len());
    for r in results.fct.records() {
        if incast_flows.contains(&r.flow) {
            fct_by_flow.insert(r.flow, r);
        }
    }
    let incast_slowdowns: Vec<f64> = fct_by_flow.values().map(|r| r.slowdown()).collect();

    // Query response time = max FCT among its flows (completed only).
    let mut query_delays_s = Vec::new();
    let mut completed_queries = 0;
    for q in &queries {
        let mut worst: Option<f64> = None;
        let mut all = true;
        for f in q.flow_ids() {
            match fct_by_flow.get(&f) {
                Some(r) => {
                    let fct = r.fct().as_secs_f64();
                    worst = Some(worst.map_or(fct, |w: f64| w.max(fct)));
                }
                None => {
                    all = false;
                    break;
                }
            }
        }
        if all {
            completed_queries += 1;
            query_delays_s.push(worst.expect("fanout >= 1"));
        }
    }

    let tor_occupancy_p99 = results
        .occupancy
        .get(&first_tor)
        .and_then(|s| s.quantile(0.99))
        .unwrap_or(0.0);

    let frac_le_10 = if incast_slowdowns.is_empty() {
        0.0
    } else {
        incast_slowdowns.iter().filter(|&&s| s <= 10.0).count() as f64
            / incast_slowdowns.len() as f64
    };

    IncastPoint {
        label: cfg.policy.label(),
        fanout: cfg.fanout,
        queries: queries.len(),
        incast_p99_slowdown: dcn_metrics::percentile(&incast_slowdowns, 0.99).unwrap_or(f64::NAN),
        frac_slowdown_le_10: frac_le_10,
        query_delay: ErrorBarStats::from_samples(&query_delays_s),
        tor_occupancy_p99,
        pause_frames: results.pause_frames(),
        lossless_drops: results.drops.lossless_packets,
        completed_queries,
        results,
        query_delays_s,
        incast_slowdowns,
        stats: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_incast_run_completes_queries() {
        let mut cfg =
            IncastConfig::paper_defaults(ExperimentScale::tiny(), PolicyChoice::l2bm(), 3);
        // 1 MB queries over 25G hosts in a tiny fabric: shrink to keep
        // the test fast, and tighten the query gap so several queries
        // land inside the 2 ms window regardless of the seed's first
        // inter-arrival draw.
        cfg.request_size = Bytes::from_kb(300);
        cfg.query_gap = SimDuration::from_micros(400);
        cfg.tcp_load = 0.4;
        let p = run_incast(&cfg);
        assert!(p.queries > 0);
        assert!(p.completed_queries > 0);
        assert_eq!(p.lossless_drops, 0);
        let eb = p.query_delay.expect("completed queries have stats");
        assert!(eb.mean > 0.0);
        assert!(eb.max >= eb.mean);
        assert_eq!(p.query_delays_s.len(), p.completed_queries);
    }
}
