//! One entry point per paper figure/table.

use dcn_fabric::PolicyChoice;
use dcn_metrics::OccupancySeries;
use dcn_net::{NodeId, Topology, TrafficClass};

use crate::hybrid::{HybridConfig, HybridPoint};
use crate::incast::{IncastConfig, IncastPoint};
use crate::paper_policies;
use crate::report::{fmt_bytes, fmt_f64, Table};
use crate::scale::ExperimentScale;
use crate::sweep::{fmt_stat, run_hybrid_cells, run_incast_cells, SweepOptions};

/// The TCP loads the paper sweeps in Fig. 7 (x-axis 0.1 → 0.8).
pub const FIG7_LOADS: [f64; 4] = [0.2, 0.4, 0.6, 0.8];
/// The loads of Table II's columns.
pub const TABLE2_LOADS: [f64; 5] = [0.4, 0.5, 0.6, 0.7, 0.8];
/// The incast degrees of Fig. 11.
pub const FIG11_FANOUTS: [usize; 3] = [5, 10, 15];

// --------------------------------------------------------------------
// Fig. 3(a)
// --------------------------------------------------------------------

/// Fig. 3(a): switch buffer occupancy of TCP-only vs RDMA-only traffic
/// under the same web-search workload (motivation: TCP hogs buffers).
#[derive(Debug)]
pub struct Fig3aReport {
    /// Occupancy trace of the first ToR under TCP-only traffic.
    pub tcp: OccupancySeries,
    /// Occupancy trace of the first ToR under RDMA-only traffic.
    pub rdma: OccupancySeries,
    /// Load used for both runs.
    pub load: f64,
}

impl Fig3aReport {
    /// Renders mean/quantile/peak occupancy for both classes.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["traffic", "mean", "p50", "p90", "p99", "peak"]);
        for (name, s) in [("TCP", &self.tcp), ("RDMA", &self.rdma)] {
            t.row(vec![
                name.into(),
                fmt_bytes(s.mean()),
                fmt_bytes(s.quantile(0.5).unwrap_or(0.0)),
                fmt_bytes(s.quantile(0.9).unwrap_or(0.0)),
                fmt_bytes(s.quantile(0.99).unwrap_or(0.0)),
                fmt_bytes(s.peak().as_f64()),
            ]);
        }
        format!(
            "Fig 3(a): ToR buffer occupancy, single-class web search @ load {}\n{}",
            self.load,
            t.render()
        )
    }
}

fn first_tor_series(point: &HybridPoint, topo_first_switch: NodeId) -> OccupancySeries {
    point
        .results
        .occupancy
        .get(&topo_first_switch)
        .cloned()
        .unwrap_or_default()
}

/// Runs Fig. 3(a): one TCP-only and one RDMA-only run at the same load.
pub fn fig3a(scale: &ExperimentScale) -> Fig3aReport {
    fig3a_with(scale, &SweepOptions::default())
}

/// Runs Fig. 3(a) through the parallel sweep engine.
pub fn fig3a_with(scale: &ExperimentScale, opts: &SweepOptions) -> Fig3aReport {
    let load = 0.6;
    let topo = Topology::clos(&scale.clos);
    let first = topo.switches().next().expect("clos has switches");
    let cells = vec![
        HybridConfig {
            scale: scale.clone(),
            policy: PolicyChoice::dt(),
            rdma_load: 0.0,
            tcp_load: load,
        },
        HybridConfig {
            scale: scale.clone(),
            policy: PolicyChoice::dt(),
            rdma_load: load,
            tcp_load: 0.0,
        },
    ];
    let mut points = run_hybrid_cells(&cells, opts);
    let rdma_point = points.pop().expect("two cells");
    let tcp_point = points.pop().expect("two cells");
    Fig3aReport {
        tcp: first_tor_series(&tcp_point, first),
        rdma: first_tor_series(&rdma_point, first),
        load,
    }
}

// --------------------------------------------------------------------
// Fig. 3(b)
// --------------------------------------------------------------------

/// Fig. 3(b): RDMA tail latency under hybrid traffic with the classic
/// policies only (DT, DT2, ABM) — the motivation figure.
#[derive(Debug)]
pub struct Fig3bReport {
    /// One point per (policy, load).
    pub points: Vec<HybridPoint>,
}

impl Fig3bReport {
    /// Renders the 99% RDMA FCT slowdown series.
    pub fn render(&self) -> String {
        render_series(
            "Fig 3(b): 99% FCT slowdown of RDMA flows (motivation: DT/DT2/ABM)",
            &self.points,
            |p| {
                fmt_stat(
                    p.stats.as_ref().and_then(|s| s.rdma_p99_slowdown.as_ref()),
                    fmt_f64(p.rdma_p99_slowdown),
                )
            },
        )
    }
}

/// Runs Fig. 3(b).
pub fn fig3b(scale: &ExperimentScale) -> Fig3bReport {
    fig3b_with(scale, &SweepOptions::default())
}

/// Runs Fig. 3(b) through the parallel sweep engine.
pub fn fig3b_with(scale: &ExperimentScale, opts: &SweepOptions) -> Fig3bReport {
    let mut cells = Vec::new();
    for policy in [PolicyChoice::dt(), PolicyChoice::dt2(), PolicyChoice::abm()] {
        for &load in &FIG7_LOADS {
            cells.push(HybridConfig {
                scale: scale.clone(),
                policy,
                rdma_load: 0.4,
                tcp_load: load,
            });
        }
    }
    Fig3bReport {
        points: run_hybrid_cells(&cells, opts),
    }
}

// --------------------------------------------------------------------
// Fig. 7 and Table II
// --------------------------------------------------------------------

/// Fig. 7: the headline hybrid sweep — all four policies × TCP loads,
/// reporting (a) RDMA p99 slowdown, (b) TCP p99 slowdown, (c) ToR
/// occupancy, (d) PFC pause frames.
#[derive(Debug)]
pub struct Fig7Report {
    /// One point per (policy, load).
    pub points: Vec<HybridPoint>,
}

fn render_series(
    title: &str,
    points: &[HybridPoint],
    value: impl Fn(&HybridPoint) -> String,
) -> String {
    // Collect the distinct loads in order.
    let mut loads: Vec<f64> = points.iter().map(|p| p.tcp_load).collect();
    loads.sort_by(|a, b| a.partial_cmp(b).expect("loads are finite"));
    loads.dedup();
    let mut header: Vec<String> = vec!["policy".into()];
    header.extend(loads.iter().map(|l| format!("load={l}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);

    let mut labels: Vec<String> = points.iter().map(|p| p.label.clone()).collect();
    labels.dedup();
    for label in labels {
        let mut row = vec![label.clone()];
        for &l in &loads {
            let cell = points
                .iter()
                .find(|p| p.label == label && (p.tcp_load - l).abs() < 1e-9)
                .map(&value)
                .unwrap_or_else(|| "-".into());
            row.push(cell);
        }
        t.row(row);
    }
    format!("{title}\n{}", t.render())
}

impl Fig7Report {
    /// Renders all four panels.
    pub fn render(&self) -> String {
        let a = render_series(
            "Fig 7(a): 99% FCT slowdown, RDMA flows",
            &self.points,
            |p| {
                fmt_stat(
                    p.stats.as_ref().and_then(|s| s.rdma_p99_slowdown.as_ref()),
                    fmt_f64(p.rdma_p99_slowdown),
                )
            },
        );
        let b = render_series("Fig 7(b): 99% FCT slowdown, TCP flows", &self.points, |p| {
            fmt_stat(
                p.stats.as_ref().and_then(|s| s.tcp_p99_slowdown.as_ref()),
                fmt_f64(p.tcp_p99_slowdown),
            )
        });
        let c = render_series(
            "Fig 7(c): ToR buffer occupancy (p99 of 1 ms samples)",
            &self.points,
            |p| match p.stats.as_ref().and_then(|s| s.tor_occupancy_p99.as_ref()) {
                Some(s) if s.n > 1 => {
                    format!("{}±{}", fmt_bytes(s.mean), fmt_bytes(s.ci95_half))
                }
                _ => fmt_bytes(p.tor_occupancy_p99),
            },
        );
        let d = render_series("Fig 7(d): PFC pause frames", &self.points, |p| {
            fmt_stat(
                p.stats.as_ref().and_then(|s| s.pause_frames.as_ref()),
                p.pause_frames.to_string(),
            )
        });
        format!("{a}\n{b}\n{c}\n{d}")
    }
}

/// The Fig. 7 cell grid: all four policies × the given TCP loads.
fn fig7_cells(scale: &ExperimentScale, loads: &[f64]) -> Vec<HybridConfig> {
    let mut cells = Vec::new();
    for policy in paper_policies() {
        for &load in loads {
            cells.push(HybridConfig {
                scale: scale.clone(),
                policy,
                rdma_load: 0.4,
                tcp_load: load,
            });
        }
    }
    cells
}

/// Runs the Fig. 7 sweep with the given loads (defaults to
/// [`FIG7_LOADS`] when `loads` is empty).
pub fn fig7_with_loads(scale: &ExperimentScale, loads: &[f64]) -> Fig7Report {
    fig7_with(scale, loads, &SweepOptions::default())
}

/// Runs the Fig. 7 sweep through the parallel engine.
pub fn fig7_with(scale: &ExperimentScale, loads: &[f64], opts: &SweepOptions) -> Fig7Report {
    let loads: Vec<f64> = if loads.is_empty() {
        FIG7_LOADS.to_vec()
    } else {
        loads.to_vec()
    };
    Fig7Report {
        points: run_hybrid_cells(&fig7_cells(scale, &loads), opts),
    }
}

/// Runs Fig. 7 with the paper's load sweep.
pub fn fig7(scale: &ExperimentScale) -> Fig7Report {
    fig7_with_loads(scale, &[])
}

/// Table II: PFC pause-frame counts at loads 0.4–0.8 for all policies.
#[derive(Debug)]
pub struct Table2Report {
    /// One point per (policy, load).
    pub points: Vec<HybridPoint>,
}

impl Table2Report {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        render_series("Table II: number of PFC pause frames", &self.points, |p| {
            fmt_stat(
                p.stats.as_ref().and_then(|s| s.pause_frames.as_ref()),
                p.pause_frames.to_string(),
            )
        })
    }

    /// Pause frames for (policy label, load), if that cell was run.
    pub fn pause_frames(&self, label: &str, load: f64) -> Option<u64> {
        self.points
            .iter()
            .find(|p| p.label == label && (p.tcp_load - load).abs() < 1e-9)
            .map(|p| p.pause_frames)
    }
}

/// Runs Table II (the paper's exact load columns 0.4–0.8).
pub fn table2(scale: &ExperimentScale) -> Table2Report {
    table2_with_loads(scale, &TABLE2_LOADS)
}

/// Runs Table II restricted to the given load columns (reduced variants
/// for benches/tests).
pub fn table2_with_loads(scale: &ExperimentScale, loads: &[f64]) -> Table2Report {
    table2_with(scale, loads, &SweepOptions::default())
}

/// Runs Table II through the parallel engine.
pub fn table2_with(scale: &ExperimentScale, loads: &[f64], opts: &SweepOptions) -> Table2Report {
    Table2Report {
        points: run_hybrid_cells(&fig7_cells(scale, loads), opts),
    }
}

// --------------------------------------------------------------------
// Fig. 8
// --------------------------------------------------------------------

/// Fig. 8: occupancy CDFs of every ToR switch at TCP load 0.8, per
/// policy.
#[derive(Debug)]
pub struct Fig8Report {
    /// (policy label, ToR id, occupancy trace).
    pub series: Vec<(String, NodeId, OccupancySeries)>,
}

impl Fig8Report {
    /// Renders occupancy quantiles per (policy, ToR).
    pub fn render(&self) -> String {
        let mut t = Table::new(&["policy", "tor", "p50", "p90", "p99", "peak"]);
        for (label, tor, s) in &self.series {
            t.row(vec![
                label.clone(),
                format!("{tor}"),
                fmt_bytes(s.quantile(0.5).unwrap_or(0.0)),
                fmt_bytes(s.quantile(0.9).unwrap_or(0.0)),
                fmt_bytes(s.quantile(0.99).unwrap_or(0.0)),
                fmt_bytes(s.peak().as_f64()),
            ]);
        }
        format!(
            "Fig 8: ToR occupancy CDFs @ TCP load 0.8 (1 ms samples)\n{}",
            t.render()
        )
    }
}

/// Runs Fig. 8.
pub fn fig8(scale: &ExperimentScale) -> Fig8Report {
    fig8_with(scale, &SweepOptions::default())
}

/// Runs Fig. 8 through the parallel engine.
pub fn fig8_with(scale: &ExperimentScale, opts: &SweepOptions) -> Fig8Report {
    let topo = Topology::clos(&scale.clos);
    let tors: Vec<NodeId> = topo.switches().take(scale.clos.tors).collect();
    let cells = fig7_cells(scale, &[0.8]);
    let mut series = Vec::new();
    for p in run_hybrid_cells(&cells, opts) {
        for &tor in &tors {
            let s = p.results.occupancy.get(&tor).cloned().unwrap_or_default();
            series.push((p.label.clone(), tor, s));
        }
    }
    Fig8Report { series }
}

// --------------------------------------------------------------------
// Fig. 9
// --------------------------------------------------------------------

/// Fig. 9: FCT CDFs of RDMA and TCP flows under high load, per policy.
#[derive(Debug)]
pub struct Fig9Report {
    /// One point per policy, all at TCP load 0.8.
    pub points: Vec<HybridPoint>,
}

impl Fig9Report {
    /// Renders FCT quantiles (ms) for both classes.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "policy", "class", "p50(ms)", "p90(ms)", "p99(ms)", "mean(ms)",
        ]);
        for p in &self.points {
            for (class, name) in [
                (TrafficClass::Lossless, "RDMA"),
                (TrafficClass::Lossy, "TCP"),
            ] {
                let mut cdf = p.results.fct.fct_cdf(class);
                let q = |cdf: &mut dcn_metrics::Cdf, p: f64| {
                    cdf.quantile(p).map(|v| v * 1e3).unwrap_or(f64::NAN)
                };
                let mean = cdf.mean().map(|v| v * 1e3).unwrap_or(f64::NAN);
                t.row(vec![
                    p.label.clone(),
                    name.into(),
                    fmt_f64(q(&mut cdf, 0.5)),
                    fmt_f64(q(&mut cdf, 0.9)),
                    fmt_f64(q(&mut cdf, 0.99)),
                    fmt_f64(mean),
                ]);
            }
        }
        format!(
            "Fig 9: FCT CDFs under high load (TCP load 0.8)\n{}",
            t.render()
        )
    }
}

/// Runs Fig. 9.
pub fn fig9(scale: &ExperimentScale) -> Fig9Report {
    fig9_with(scale, &SweepOptions::default())
}

/// Runs Fig. 9 through the parallel engine.
pub fn fig9_with(scale: &ExperimentScale, opts: &SweepOptions) -> Fig9Report {
    Fig9Report {
        points: run_hybrid_cells(&fig7_cells(scale, &[0.8]), opts),
    }
}

// --------------------------------------------------------------------
// Fig. 10
// --------------------------------------------------------------------

/// Fig. 10: the incast deep dive at N = 5 with TCP background load 0.8:
/// (a) CDF of incast-flow slowdown, (b) query-delay error bars, (c) ToR
/// occupancy CDF.
#[derive(Debug)]
pub struct Fig10Report {
    /// One point per policy.
    pub points: Vec<IncastPoint>,
}

impl Fig10Report {
    /// Renders all three panels.
    pub fn render(&self) -> String {
        let mut a = Table::new(&["policy", "frac(slowdown<=10)", "p50", "p90", "p99"]);
        for p in &self.points {
            let q = |v: f64| dcn_metrics::percentile(&p.incast_slowdowns, v).unwrap_or(f64::NAN);
            a.row(vec![
                p.label.clone(),
                fmt_f64(p.frac_slowdown_le_10),
                fmt_f64(q(0.5)),
                fmt_f64(q(0.9)),
                fmt_f64(q(0.99)),
            ]);
        }
        let mut b = Table::new(&[
            "policy",
            "mean(ms)",
            "min(ms)",
            "q25(ms)",
            "median(ms)",
            "q75(ms)",
            "max(ms)",
        ]);
        for p in &self.points {
            if let Some(e) = &p.query_delay {
                b.row(vec![
                    p.label.clone(),
                    fmt_f64(e.mean * 1e3),
                    fmt_f64(e.min * 1e3),
                    fmt_f64(e.q25 * 1e3),
                    fmt_f64(e.median * 1e3),
                    fmt_f64(e.q75 * 1e3),
                    fmt_f64(e.max * 1e3),
                ]);
            }
        }
        let mut c = Table::new(&["policy", "occ p50", "occ p90", "occ p99"]);
        for p in &self.points {
            let tor_p50 = p
                .results
                .occupancy
                .values()
                .next()
                .and_then(|s| s.quantile(0.5))
                .unwrap_or(0.0);
            let tor_p90 = p
                .results
                .occupancy
                .values()
                .next()
                .and_then(|s| s.quantile(0.9))
                .unwrap_or(0.0);
            c.row(vec![
                p.label.clone(),
                fmt_bytes(tor_p50),
                fmt_bytes(tor_p90),
                fmt_bytes(p.tor_occupancy_p99),
            ]);
        }
        format!(
            "Fig 10(a): CDF of incast FCT slowdown (N=5, TCP bg 0.8)\n{}\n\
             Fig 10(b): query response delay error bars\n{}\n\
             Fig 10(c): ToR occupancy under incast\n{}",
            a.render(),
            b.render(),
            c.render()
        )
    }
}

/// Runs Fig. 10 (the paper's fanout of 5).
pub fn fig10(scale: &ExperimentScale) -> Fig10Report {
    fig10_with_fanout(scale, 5)
}

/// Runs Fig. 10 at a custom fanout (small fabrics have fewer possible
/// responders).
pub fn fig10_with_fanout(scale: &ExperimentScale, fanout: usize) -> Fig10Report {
    fig10_with(scale, fanout, &SweepOptions::default())
}

/// Runs Fig. 10 through the parallel engine.
pub fn fig10_with(scale: &ExperimentScale, fanout: usize, opts: &SweepOptions) -> Fig10Report {
    let fanout = fanout.min(scale.host_count() / 2 - 1);
    let cells: Vec<IncastConfig> = paper_policies()
        .into_iter()
        .map(|policy| IncastConfig::paper_defaults(scale.clone(), policy, fanout))
        .collect();
    Fig10Report {
        points: run_incast_cells(&cells, opts),
    }
}

// --------------------------------------------------------------------
// Fig. 11
// --------------------------------------------------------------------

/// Fig. 11: incast-degree sweep (N ∈ {5, 10, 15}): (a) 99% slowdown,
/// (b) average query response time, (c) PFC pause frames.
#[derive(Debug)]
pub struct Fig11Report {
    /// One point per (policy, fanout).
    pub points: Vec<IncastPoint>,
}

impl Fig11Report {
    fn render_one(&self, title: &str, value: impl Fn(&IncastPoint) -> String) -> String {
        let mut fanouts: Vec<usize> = self.points.iter().map(|p| p.fanout).collect();
        fanouts.sort_unstable();
        fanouts.dedup();
        let mut header: Vec<String> = vec!["policy".into()];
        header.extend(fanouts.iter().map(|n| format!("N={n}")));
        let refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(&refs);
        let mut labels: Vec<String> = self.points.iter().map(|p| p.label.clone()).collect();
        labels.dedup();
        for label in labels {
            let mut row = vec![label.clone()];
            for &n in &fanouts {
                let cell = self
                    .points
                    .iter()
                    .find(|p| p.label == label && p.fanout == n)
                    .map(&value)
                    .unwrap_or_else(|| "-".into());
                row.push(cell);
            }
            t.row(row);
        }
        format!("{title}\n{}", t.render())
    }

    /// Renders all three panels.
    pub fn render(&self) -> String {
        let a = self.render_one("Fig 11(a): 99% FCT slowdown of incast flows", |p| {
            fmt_stat(
                p.stats
                    .as_ref()
                    .and_then(|s| s.incast_p99_slowdown.as_ref()),
                fmt_f64(p.incast_p99_slowdown),
            )
        });
        let b = self.render_one("Fig 11(b): average query response time (ms)", |p| {
            match p.stats.as_ref().and_then(|s| s.query_delay_mean_s.as_ref()) {
                Some(s) if s.n > 1 => {
                    format!("{}±{}", fmt_f64(s.mean * 1e3), fmt_f64(s.ci95_half * 1e3))
                }
                _ => p
                    .query_delay
                    .as_ref()
                    .map(|e| fmt_f64(e.mean * 1e3))
                    .unwrap_or_else(|| "-".into()),
            }
        });
        let c = self.render_one("Fig 11(c): PFC pause frames", |p| {
            fmt_stat(
                p.stats.as_ref().and_then(|s| s.pause_frames.as_ref()),
                p.pause_frames.to_string(),
            )
        });
        format!("{a}\n{b}\n{c}")
    }
}

/// Runs Fig. 11 with the paper's incast degrees.
pub fn fig11(scale: &ExperimentScale) -> Fig11Report {
    fig11_with_fanouts(scale, &FIG11_FANOUTS)
}

/// Runs Fig. 11 with custom incast degrees.
pub fn fig11_with_fanouts(scale: &ExperimentScale, fanouts: &[usize]) -> Fig11Report {
    fig11_with(scale, fanouts, &SweepOptions::default())
}

/// Runs Fig. 11 through the parallel engine.
pub fn fig11_with(scale: &ExperimentScale, fanouts: &[usize], opts: &SweepOptions) -> Fig11Report {
    // Degrees larger than the scaled-down responder pool are clamped to
    // pool − 1 so small fabrics can still run the sweep.
    let pool = scale.host_count() / 2; // the RDMA half of the servers
    let mut fanouts: Vec<usize> = fanouts.iter().map(|&n| n.min(pool - 1)).collect();
    fanouts.dedup();
    let mut cells = Vec::new();
    for policy in paper_policies() {
        for &n in &fanouts {
            cells.push(IncastConfig::paper_defaults(scale.clone(), policy, n));
        }
    }
    Fig11Report {
        points: run_incast_cells(&cells, opts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_tiny_renders_all_cells() {
        let report = fig7_with_loads(&ExperimentScale::tiny(), &[0.4]);
        assert_eq!(report.points.len(), 4);
        let text = report.render();
        for label in ["L2BM", "DT", "DT2", "ABM"] {
            assert!(text.contains(label), "missing {label} in:\n{text}");
        }
        assert!(text.contains("Fig 7(a)"));
        assert!(text.contains("Fig 7(d)"));
    }

    #[test]
    fn render_series_orders_loads() {
        let report = fig7_with_loads(&ExperimentScale::tiny(), &[0.4, 0.2]);
        let text = report.render();
        let a = text.find("load=0.2").expect("0.2 column");
        let b = text.find("load=0.4").expect("0.4 column");
        assert!(a < b, "columns must be sorted by load");
    }
}
