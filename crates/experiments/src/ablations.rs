//! Ablation studies of L2BM's design choices (DESIGN.md §3).
//!
//! The paper motivates three mechanisms; each has a knob here so its
//! contribution can be measured in isolation on the hybrid workload:
//!
//! * **weight cap `w_max`** — how much of the remaining buffer a
//!   fast-draining queue may claim (Eq. 3's implicit bound);
//! * **normalization `C`** — the paper's Σ τ versus a fixed constant;
//! * **PFC-diffusion mitigation** — excluding paused time from the
//!   sojourn estimate (§III-D), on or off.
//!
//! The DT α sweep is included as the reference family the paper builds
//! on.

use dcn_fabric::PolicyChoice;
use l2bm::{L2bmConfig, Normalization};

use crate::hybrid::{HybridConfig, HybridPoint};
use crate::report::{fmt_bytes, fmt_f64, Table};
use crate::scale::ExperimentScale;
use crate::sweep::{run_hybrid_cells, SweepOptions};

/// One ablation variant: a labelled policy configuration.
#[derive(Debug, Clone)]
pub struct AblationVariant {
    /// Row label in the report.
    pub name: String,
    /// The policy to run.
    pub policy: PolicyChoice,
}

/// The standard variant set: L2BM default, weight-cap sweep, fixed
/// normalization, no pause-freeze, and the DT α family.
pub fn standard_variants() -> Vec<AblationVariant> {
    let mut v = Vec::new();
    v.push(AblationVariant {
        name: "L2BM (paper defaults)".into(),
        policy: PolicyChoice::L2bm(L2bmConfig::default()),
    });
    for cap in [0.25, 0.5] {
        v.push(AblationVariant {
            name: format!("L2BM w_max={cap}"),
            policy: PolicyChoice::L2bm(L2bmConfig {
                max_weight: cap,
                ..L2bmConfig::default()
            }),
        });
    }
    v.push(AblationVariant {
        name: "L2BM C=100us fixed".into(),
        policy: PolicyChoice::L2bm(L2bmConfig {
            normalization: Normalization::Fixed(1e-4),
            ..L2bmConfig::default()
        }),
    });
    v.push(AblationVariant {
        name: "L2BM no pause-freeze".into(),
        policy: PolicyChoice::L2bm(L2bmConfig {
            pause_freeze: false,
            ..L2bmConfig::default()
        }),
    });
    for alpha in [0.125, 0.5, 1.0] {
        v.push(AblationVariant {
            name: format!("DT a={alpha}"),
            policy: PolicyChoice::Dt(alpha),
        });
    }
    v
}

/// Results of the ablation sweep.
#[derive(Debug)]
pub struct AblationReport {
    /// One hybrid point per variant, all at the same loads.
    pub points: Vec<(String, HybridPoint)>,
    /// The TCP load used.
    pub tcp_load: f64,
}

impl AblationReport {
    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "variant",
            "rdma p99",
            "tcp p99",
            "occ p99",
            "pauses",
            "lossy drops",
        ]);
        for (name, p) in &self.points {
            t.row(vec![
                name.clone(),
                fmt_f64(p.rdma_p99_slowdown),
                fmt_f64(p.tcp_p99_slowdown),
                fmt_bytes(p.tor_occupancy_p99),
                p.pause_frames.to_string(),
                p.lossy_drops.to_string(),
            ]);
        }
        format!(
            "Ablations: hybrid web search, RDMA load 0.4, TCP load {}\n{}",
            self.tcp_load,
            t.render()
        )
    }
}

/// Runs the standard ablation sweep at TCP load 0.8.
pub fn ablations(scale: &ExperimentScale) -> AblationReport {
    ablations_with(scale, &standard_variants(), 0.8)
}

/// Runs a custom ablation sweep.
pub fn ablations_with(
    scale: &ExperimentScale,
    variants: &[AblationVariant],
    tcp_load: f64,
) -> AblationReport {
    ablations_opts(scale, variants, tcp_load, &SweepOptions::default())
}

/// Runs a custom ablation sweep through the parallel engine.
pub fn ablations_opts(
    scale: &ExperimentScale,
    variants: &[AblationVariant],
    tcp_load: f64,
    opts: &SweepOptions,
) -> AblationReport {
    let cells: Vec<HybridConfig> = variants
        .iter()
        .map(|v| HybridConfig {
            scale: scale.clone(),
            policy: v.policy,
            rdma_load: 0.4,
            tcp_load,
        })
        .collect();
    let points = variants
        .iter()
        .map(|v| v.name.clone())
        .zip(run_hybrid_cells(&cells, opts))
        .collect();
    AblationReport { points, tcp_load }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_set_is_labelled_uniquely() {
        let v = standard_variants();
        let mut names: Vec<&String> = v.iter().map(|x| &x.name).collect();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        assert!(before >= 7);
    }

    #[test]
    fn tiny_ablation_runs_and_renders() {
        let variants = vec![
            AblationVariant {
                name: "L2BM".into(),
                policy: PolicyChoice::l2bm(),
            },
            AblationVariant {
                name: "L2BM no-freeze".into(),
                policy: PolicyChoice::L2bm(L2bmConfig {
                    pause_freeze: false,
                    ..L2bmConfig::default()
                }),
            },
        ];
        let r = ablations_with(&ExperimentScale::tiny(), &variants, 0.4);
        assert_eq!(r.points.len(), 2);
        let text = r.render();
        assert!(text.contains("no-freeze"));
    }
}
