//! The hybrid-traffic experiment (paper §IV-A): 16 servers per ToR send
//! RDMA web-search traffic at load 0.4, the other 16 send TCP web-search
//! traffic at a swept load, all inter-rack, and the four policies
//! compete on RDMA/TCP tail FCT, buffer occupancy and PFC pause frames.

use dcn_fabric::{FabricConfig, PolicyChoice, RunResults};
use dcn_net::{NodeId, Priority, Topology, TrafficClass};
use dcn_sim::{SimRng, SimTime};
use dcn_workload::{web_search_cdf, PoissonTraffic};

use crate::engine::run_engine;
use crate::scale::ExperimentScale;

/// One hybrid run's parameters.
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// The scale (topology, window, seed).
    pub scale: ExperimentScale,
    /// Buffer-management policy under test.
    pub policy: PolicyChoice,
    /// Load of the RDMA half (paper: fixed 0.4).
    pub rdma_load: f64,
    /// Load of the TCP half (paper: swept 0.1 → 0.8).
    pub tcp_load: f64,
}

/// Summary of one hybrid run — one x-axis point of Figs. 3(b)/7 and one
/// cell column of Table II.
#[derive(Debug, Clone)]
pub struct HybridPoint {
    /// Policy label (DT / DT2 / ABM / L2BM).
    pub label: String,
    /// TCP load of this run.
    pub tcp_load: f64,
    /// 99th-percentile FCT slowdown of RDMA flows (Fig. 7(a)).
    pub rdma_p99_slowdown: f64,
    /// 99th-percentile FCT slowdown of TCP flows (Fig. 7(b)).
    pub tcp_p99_slowdown: f64,
    /// Mean slowdowns (for Fig. 9-style summaries).
    pub rdma_mean_slowdown: f64,
    /// Mean TCP slowdown.
    pub tcp_mean_slowdown: f64,
    /// 99th-percentile sampled occupancy of the first ToR switch, bytes
    /// (Fig. 7(c)).
    pub tor_occupancy_p99: f64,
    /// Total PFC pause frames over the run (Fig. 7(d) / Table II).
    pub pause_frames: u64,
    /// Lossy packets dropped.
    pub lossy_drops: u64,
    /// Lossless packets dropped (must stay 0).
    pub lossless_drops: u64,
    /// Flows that had not finished at the deadline.
    pub unfinished: usize,
    /// Full results for figure-specific post-processing (CDFs etc.).
    pub results: RunResults,
    /// Cross-seed replication statistics, attached by the sweep engine
    /// when the cell ran with `--seeds N > 1`. The scalar fields above
    /// always hold the base-seed replicate's values.
    pub stats: Option<crate::sweep::HybridSeedStats>,
}

/// Splits the hosts of each rack into an (RDMA, TCP) half, and returns
/// the host→rack map used to keep traffic inter-rack.
pub(crate) fn split_hosts(
    topo: &Topology,
    hosts_per_tor: usize,
) -> (Vec<NodeId>, Vec<NodeId>, Vec<(NodeId, usize)>) {
    let hosts: Vec<NodeId> = topo.hosts().collect();
    let mut rdma = Vec::new();
    let mut tcp = Vec::new();
    let mut rack_of = Vec::new();
    for (i, &h) in hosts.iter().enumerate() {
        let rack = i / hosts_per_tor;
        rack_of.push((h, rack));
        if i % hosts_per_tor < hosts_per_tor / 2 {
            rdma.push(h);
        } else {
            tcp.push(h);
        }
    }
    (rdma, tcp, rack_of)
}

/// Priority queues the paper assigns: one lossless class for RDMA, one
/// lossy class for TCP (two of the eight queues in use).
pub(crate) const RDMA_PRIO: Priority = Priority::new(3);
/// The lossy priority.
pub(crate) const TCP_PRIO: Priority = Priority::new(1);

/// Runs one hybrid experiment point.
pub fn run_hybrid(cfg: &HybridConfig) -> HybridPoint {
    let topo = Topology::clos(&cfg.scale.clos);
    let (rdma_hosts, tcp_hosts, rack_of) = split_hosts(&topo, cfg.scale.clos.hosts_per_tor);
    let mut rng = SimRng::seed_from_u64(cfg.scale.seed);

    // §IV-A: "data is randomly sent to all other servers" — no rack
    // restriction (the inter-rack restriction belongs to Fig. 3(a)'s
    // motivation setup).
    let _ = rack_of;
    let mut flows = Vec::new();
    if cfg.rdma_load > 0.0 {
        let rdma = PoissonTraffic::builder(rdma_hosts.clone(), web_search_cdf())
            .load(cfg.rdma_load)
            .link_rate(cfg.scale.clos.host_rate)
            .class(TrafficClass::Lossless, RDMA_PRIO)
            .dests(rdma_hosts)
            .build();
        flows.extend(rdma.generate(cfg.scale.window, &mut rng.fork(1)));
    }
    if cfg.tcp_load > 0.0 {
        let tcp = PoissonTraffic::builder(tcp_hosts.clone(), web_search_cdf())
            .load(cfg.tcp_load)
            .link_rate(cfg.scale.clos.host_rate)
            .class(TrafficClass::Lossy, TCP_PRIO)
            .dests(tcp_hosts)
            .first_flow_id(1 << 40)
            .build();
        flows.extend(tcp.generate(cfg.scale.window, &mut rng.fork(2)));
    }

    let fabric_cfg = FabricConfig {
        policy: cfg.policy,
        seed: cfg.scale.seed,
        switch: cfg.scale.switch_config(),
        train: cfg.scale.train,
        ..FabricConfig::default()
    };
    let first_tor = topo.switches().next().expect("clos has switches");
    let deadline = SimTime::ZERO + cfg.scale.window + cfg.scale.drain;
    let results = run_engine(topo, fabric_cfg, flows, deadline, cfg.scale.shards);
    let tor_occupancy_p99 = results
        .occupancy
        .get(&first_tor)
        .and_then(|s| s.quantile(0.99))
        .unwrap_or(0.0);

    HybridPoint {
        label: cfg.policy.label(),
        tcp_load: cfg.tcp_load,
        rdma_p99_slowdown: results
            .fct
            .slowdown_percentile(TrafficClass::Lossless, 0.99)
            .unwrap_or(f64::NAN),
        tcp_p99_slowdown: results
            .fct
            .slowdown_percentile(TrafficClass::Lossy, 0.99)
            .unwrap_or(f64::NAN),
        rdma_mean_slowdown: results
            .fct
            .mean_slowdown(TrafficClass::Lossless)
            .unwrap_or(f64::NAN),
        tcp_mean_slowdown: results
            .fct
            .mean_slowdown(TrafficClass::Lossy)
            .unwrap_or(f64::NAN),
        tor_occupancy_p99,
        pause_frames: results.pause_frames(),
        lossy_drops: results.drops.lossy_packets,
        lossless_drops: results.drops.lossless_packets,
        unfinished: results.unfinished_flows,
        results,
        stats: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_hybrid_run_produces_both_classes() {
        let cfg = HybridConfig {
            scale: ExperimentScale::tiny(),
            policy: PolicyChoice::l2bm(),
            rdma_load: 0.4,
            tcp_load: 0.4,
        };
        let p = run_hybrid(&cfg);
        assert_eq!(p.label, "L2BM");
        assert!(p.results.fct.by_class(TrafficClass::Lossless).count() > 0);
        assert!(p.results.fct.by_class(TrafficClass::Lossy).count() > 0);
        assert_eq!(p.lossless_drops, 0, "lossless class must not drop");
        assert!(p.rdma_p99_slowdown >= 1.0);
    }

    #[test]
    fn split_is_half_and_inter_rack_map_is_complete() {
        let scale = ExperimentScale::tiny();
        let topo = Topology::clos(&scale.clos);
        let (rdma, tcp, rack_of) = split_hosts(&topo, scale.clos.hosts_per_tor);
        assert_eq!(rdma.len(), 4);
        assert_eq!(tcp.len(), 4);
        assert_eq!(rack_of.len(), 8);
        // Two racks, four hosts each.
        assert_eq!(rack_of.iter().filter(|&&(_, r)| r == 0).count(), 4);
    }

    #[test]
    fn rdma_only_run() {
        let cfg = HybridConfig {
            scale: ExperimentScale::tiny(),
            policy: PolicyChoice::dt(),
            rdma_load: 0.4,
            tcp_load: 0.0,
        };
        let p = run_hybrid(&cfg);
        assert_eq!(p.results.fct.by_class(TrafficClass::Lossy).count(), 0);
        assert!(!p.results.fct.is_empty());
    }
}
