//! Experiment scaling knobs.

use dcn_fabric::TrainConfig;
use dcn_net::ClosConfig;
use dcn_sim::{Bytes, SimDuration};
use dcn_switch::SwitchConfig;

/// How big an experiment to run. The paper's full setup (128 servers,
/// hundreds of milliseconds) takes minutes of wall time per data point;
/// the `small` scale preserves the topology shape and oversubscription
/// while finishing in seconds, and is what the benches and tests use.
#[derive(Debug, Clone)]
pub struct ExperimentScale {
    /// The clos fabric to build.
    pub clos: ClosConfig,
    /// Traffic-generation window (flows arrive in `[0, window)`).
    pub window: SimDuration,
    /// Extra simulated time allowed for stragglers after the window.
    pub drain: SimDuration,
    /// Base RNG seed (workloads fork per-experiment streams from it).
    pub seed: u64,
    /// Shared buffer per switch. The paper uses 4 MB for 128 hosts;
    /// scaled-down fabrics shrink it proportionally so buffer *pressure*
    /// (and therefore PFC/drop behaviour) is preserved.
    pub total_buffer: Bytes,
    /// Host-NIC packet-train coalescing. Off by default — trained runs
    /// are behaviorally equivalent but not byte-identical to the golden
    /// digests (see [`TrainConfig`]).
    pub train: TrainConfig,
    /// Worker shards for a single run. `0` (the default) uses the serial
    /// engine; `n ≥ 1` uses the spatially sharded executor with at most
    /// `n` threads (clamped to the ToR count), whose results — including
    /// the golden digests — are byte-identical to the serial engine at
    /// every shard count. `1` is the sharded oracle: the full stamp
    /// machinery with no real parallelism.
    pub shards: usize,
}

impl ExperimentScale {
    /// The paper's full setup: 128 servers, 20 ms of traffic (the paper
    /// simulates longer; 20 ms already carries thousands of flows).
    pub fn paper() -> Self {
        ExperimentScale {
            clos: ClosConfig::paper(),
            window: SimDuration::from_millis(20),
            drain: SimDuration::from_millis(400),
            seed: 42,
            total_buffer: Bytes::from_mb(4),
            train: TrainConfig::default(),
            shards: 0,
        }
    }

    /// A scaled-down fabric (2 ToRs × 8 servers) and 5 ms window —
    /// seconds per data point, same qualitative behaviour.
    pub fn small() -> Self {
        ExperimentScale {
            clos: ClosConfig::small(8),
            window: SimDuration::from_millis(5),
            drain: SimDuration::from_millis(200),
            seed: 42,
            total_buffer: Bytes::from_kb(500), // 4 MB × 16/128 hosts
            train: TrainConfig::default(),
            shards: 0,
        }
    }

    /// A minimal scale for unit/integration tests (2 ToRs × 4 servers,
    /// 2 ms window).
    pub fn tiny() -> Self {
        ExperimentScale {
            clos: ClosConfig::small(4),
            window: SimDuration::from_millis(2),
            drain: SimDuration::from_millis(100),
            seed: 42,
            total_buffer: Bytes::from_kb(250), // 4 MB × 8/128 hosts
            train: TrainConfig::default(),
            shards: 0,
        }
    }

    /// Switch configuration for this experiment's size. Only the buffer
    /// scales with the host count: the ECN knee points are
    /// bandwidth-delay products, which do not shrink with the fabric, so
    /// the per-flow buffer *footprint* stays paper-realistic and the
    /// footprint-to-buffer pressure ratio is preserved.
    pub fn switch_config(&self) -> SwitchConfig {
        SwitchConfig {
            total_buffer: self.total_buffer,
            ..SwitchConfig::default()
        }
    }

    /// Hosts in the fabric.
    pub fn host_count(&self) -> usize {
        self.clos.host_count()
    }

    /// Replaces the window length.
    pub fn with_window(mut self, window: SimDuration) -> Self {
        self.window = window;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables host-NIC packet-train coalescing with default limits.
    pub fn with_trains(mut self) -> Self {
        self.train = TrainConfig::enabled();
        self
    }

    /// Selects the sharded executor with up to `shards` worker threads
    /// (`0` restores the serial engine).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_have_expected_sizes() {
        assert_eq!(ExperimentScale::paper().host_count(), 128);
        assert_eq!(ExperimentScale::small().host_count(), 16);
        assert_eq!(ExperimentScale::tiny().host_count(), 8);
    }

    #[test]
    fn builder_helpers() {
        let s = ExperimentScale::small()
            .with_window(SimDuration::from_millis(1))
            .with_seed(7);
        assert_eq!(s.window, SimDuration::from_millis(1));
        assert_eq!(s.seed, 7);
    }
}
