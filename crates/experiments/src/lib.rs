//! Experiment harness reproducing every table and figure of the L2BM
//! paper's evaluation (§IV).
//!
//! Each `figN`/`tableN` function runs the corresponding experiment and
//! returns a structured report whose `render()` prints the same
//! rows/series the paper plots. The `repro` binary exposes them as
//! subcommands; `dcn-bench` wraps scaled-down variants in Criterion.
//!
//! | id | paper artifact | function |
//! |----|----------------|----------|
//! | fig3a | buffer occupancy, TCP-only vs RDMA-only | [`fig3a`] |
//! | fig3b | RDMA tail latency vs TCP load (DT/DT2/ABM) | [`fig3b`] |
//! | fig7  | hybrid sweep: RDMA/TCP p99 slowdown, occupancy, pauses | [`fig7`] |
//! | table2 | PFC pause frames per load × policy | [`table2`] |
//! | fig8  | occupancy CDF of the four ToR switches @ 0.8 | [`fig8`] |
//! | fig9  | FCT CDFs of RDMA and TCP flows @ 0.8 | [`fig9`] |
//! | fig10 | incast: slowdown CDF, query-delay error bars, occupancy CDF | [`fig10`] |
//! | fig11 | incast degree sweep N ∈ {5,10,15} | [`fig11`] |
//!
//! # Example
//!
//! ```no_run
//! use dcn_experiments::{fig7, ExperimentScale};
//! let report = fig7(&ExperimentScale::small());
//! println!("{}", report.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ablations;
mod chaos;
mod engine;
mod figures;
mod hybrid;
mod incast;
mod irn;
mod report;
mod scale;
mod sweep;
mod tournament;

pub use ablations::{
    ablations, ablations_opts, ablations_with, standard_variants, AblationReport, AblationVariant,
};
pub use chaos::{
    chaos, run_chaos, run_chaos_cells, sample_fault_schedule, ChaosConfig, ChaosPoint, ChaosReport,
    CHAOS_CHECK_SEEDS, CHAOS_WATCHDOG,
};
pub use figures::{
    fig10, fig10_with, fig10_with_fanout, fig11, fig11_with, fig11_with_fanouts, fig3a, fig3a_with,
    fig3b, fig3b_with, fig7, fig7_with, fig7_with_loads, fig8, fig8_with, fig9, fig9_with, table2,
    table2_with, table2_with_loads, Fig10Report, Fig11Report, Fig3aReport, Fig3bReport, Fig7Report,
    Fig8Report, Fig9Report, Table2Report, FIG11_FANOUTS, FIG7_LOADS, TABLE2_LOADS,
};
pub use hybrid::{run_hybrid, HybridConfig, HybridPoint};
pub use incast::{run_incast, IncastConfig, IncastPoint};
pub use irn::{
    irn_grid, irn_resilience, run_irn_cell, IrnCellConfig, IrnGrid, IrnPoint, IrnResilience,
};
pub use report::{fmt_bytes, fmt_f64, Table};
pub use scale::ExperimentScale;
pub use sweep::{
    fmt_stat, run_hybrid_cells, run_incast_cells, HybridSeedStats, IncastSeedStats, SweepOptions,
};
pub use tournament::{
    tournament, TournamentReport, TournamentRow, TOURNAMENT_FANOUT, TOURNAMENT_FAULT_SEEDS,
};

/// The four policies every comparison sweeps, in the paper's order.
pub fn paper_policies() -> Vec<dcn_fabric::PolicyChoice> {
    use dcn_fabric::PolicyChoice;
    vec![
        PolicyChoice::l2bm(),
        PolicyChoice::dt(),
        PolicyChoice::abm(),
        PolicyChoice::dt2(),
    ]
}

/// The full six-policy arena: the paper's four plus the extended
/// policies (Occamy's preemptive eviction, BShare's delay-target
/// sharing). This is the lineup the tournament, the chaos battery and
/// the invariant test suites sweep.
pub fn all_policies() -> Vec<dcn_fabric::PolicyChoice> {
    use dcn_fabric::PolicyChoice;
    let mut v = paper_policies();
    v.push(PolicyChoice::occamy());
    v.push(PolicyChoice::bshare());
    v
}
