//! `repro` — regenerate the L2BM paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--scale tiny|small|paper] [--seed N] [--window-ms N]
//!                    [--jobs N] [--seeds N] [--shards N|auto]
//!
//! experiments: fig3a fig3b fig7 table2 fig8 fig9 fig10 fig11 all
//! ```
//!
//! Scaled-down runs (`--scale small`, the default) finish in about a
//! minute per figure and preserve the qualitative ordering; `--scale
//! paper` uses the full 128-server fabric of the paper's §IV setup.
//!
//! `--jobs N` fans the independent sweep cells across N worker threads
//! (`--jobs 0` = all available cores); the output is bit-identical at
//! any thread count. `--seeds N` replicates every cell over N seeds and
//! reports `mean ± 95% CI` per table cell.
//!
//! `--shards N` parallelizes each *single run* on the spatially sharded
//! executor with up to N threads (clamped to the fabric's ToR count;
//! `auto` = all available cores). Results stay byte-identical to the
//! serial engine at every shard count. Composes with `--jobs`: jobs
//! parallelize across sweep cells, shards within each cell.
//!
//! `repro chaos` runs the failure-resilience sweep: the hybrid workload
//! under sampled fault schedules (link flaps, corruption windows, stuck
//! PFC pauses) for every policy, with the invariant battery asserted
//! after each run. `repro chaos --check` is the CI mode: tiny scale, the
//! 8 fixed fault seeds × 6 policies at `--jobs 1` and `--jobs 8`,
//! failing on any digest divergence or invariant violation.
//!
//! `repro irn` runs the lossless-vs-lossy universe comparison: the
//! six-policy × {DCQCN, IRN} grid on the healthy hybrid mix, then the
//! fault-resilience table (identical sampled fault schedules in both
//! universes, counting the flows IRN rescues that DCQCN strands).
//! `repro irn --check` is the CI gate: tiny scale at `--jobs 1` and
//! `--jobs 8`, failing on digest divergence, a drifted IRN golden
//! digest, any battery violation, or zero rescued flows.
//!
//! `repro tournament` runs the six-policy arena — hybrid, websearch-
//! heavy, incast and chaos cells, multi-seed — and renders the Pareto
//! table (p99 slowdown / goodput / pause frames / fault degradation,
//! `mean±CI` per cell). `repro tournament --check` is the CI gate: tiny
//! scale, two seeds, run at `--jobs 1` and `--jobs 8`, failing on any
//! per-run digest divergence or invariant violation.

use std::env;
use std::process::ExitCode;

use dcn_experiments::{
    ablations_opts, chaos, fig10_with, fig11_with, fig3a_with, fig3b_with, fig7_with, fig8_with,
    fig9_with, irn_grid, irn_resilience, standard_variants, table2_with, tournament,
    ExperimentScale, SweepOptions, CHAOS_CHECK_SEEDS, FIG11_FANOUTS, TABLE2_LOADS,
};
use dcn_sim::SimDuration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <fig3a|fig3b|fig7|table2|fig8|fig9|fig10|fig11|ablations|chaos|irn|tournament|all> \
         [--scale tiny|small|paper] [--seed N] [--window-ms N] [--jobs N] [--seeds N] \
         [--shards N|auto] [--check]"
    );
    ExitCode::FAILURE
}

/// Golden digest of the tiny-scale IRN universe cell (L2BM policy,
/// zero faults) asserted by `repro irn --check`: pins the IRN
/// transport's behavior the same way the DCQCN goldens pin the
/// lossless path.
const IRN_TINY_GOLDEN_DIGEST: u64 = 0xa67c_8a7f_b276_895c;

/// CI lossy-RDMA gate: the healthy six-policy × two-transport grid and
/// the 8-fault-seed DCQCN↔IRN comparison at tiny scale, run at
/// `--jobs 1` and `--jobs 8`. Fails on digest divergence, any battery
/// violation, a drifted IRN golden digest, or a fault set where the
/// lossy universe rescues nothing (the whole point of IRN).
fn irn_check() -> ExitCode {
    let scale = ExperimentScale::tiny();
    eprintln!(
        "# irn --check: 6 policies x 2 transports + {} fault seeds, jobs 1 vs 8",
        CHAOS_CHECK_SEEDS.len()
    );
    let mut failed = false;

    let grid_serial = irn_grid(&scale, 1);
    let grid_parallel = irn_grid(&scale, 8);
    for (a, b) in grid_serial.points.iter().zip(grid_parallel.points.iter()) {
        if a.digest != b.digest {
            eprintln!(
                "FAIL: grid {}/{}: digest {:#x} (jobs 1) != {:#x} (jobs 8)",
                a.label, a.transport, a.digest, b.digest
            );
            failed = true;
        }
    }
    if let Some(p) = grid_serial
        .points
        .iter()
        .find(|p| p.label == "L2BM" && p.transport == "IRN")
    {
        if p.digest != IRN_TINY_GOLDEN_DIGEST {
            eprintln!(
                "FAIL: tiny IRN golden digest drifted: {:#x} != {IRN_TINY_GOLDEN_DIGEST:#x}",
                p.digest
            );
            failed = true;
        }
    }

    let res_serial = irn_resilience(&scale, &CHAOS_CHECK_SEEDS, 1);
    let res_parallel = irn_resilience(&scale, &CHAOS_CHECK_SEEDS, 8);
    for (a, b) in res_serial
        .dcqcn
        .iter()
        .chain(res_serial.irn.iter())
        .zip(res_parallel.dcqcn.iter().chain(res_parallel.irn.iter()))
    {
        if a.digest != b.digest {
            eprintln!(
                "FAIL: resilience {}/{} seed {:?}: digest {:#x} (jobs 1) != {:#x} (jobs 8)",
                a.label, a.transport, a.fault_seed, a.digest, b.digest
            );
            failed = true;
        }
    }
    for v in grid_serial
        .violations()
        .iter()
        .chain(grid_parallel.violations().iter())
        .chain(res_serial.violations().iter())
        .chain(res_parallel.violations().iter())
    {
        eprintln!("FAIL: invariant violation: {v}");
        failed = true;
    }
    let rescued: usize = res_serial.rescued().iter().map(|&(_, n)| n).sum();
    if rescued == 0 {
        eprintln!("FAIL: no DCQCN-stranded flow was rescued by IRN across any fault seed");
        failed = true;
    }

    println!("{}", grid_serial.render());
    println!("{}", res_serial.render());
    if failed {
        ExitCode::FAILURE
    } else {
        eprintln!(
            "# irn --check passed: digests jobs-invariant, golden pinned, \
             {rescued} flows rescued, no violations"
        );
        ExitCode::SUCCESS
    }
}

/// CI chaos gate: the fixed fault seeds × every policy at tiny scale,
/// run serially and in parallel; any digest divergence or invariant
/// violation fails the process.
fn chaos_check() -> ExitCode {
    let scale = ExperimentScale::tiny();
    eprintln!(
        "# chaos --check: {} fault seeds x 6 policies, jobs 1 vs 8",
        CHAOS_CHECK_SEEDS.len()
    );
    let serial = chaos(&scale, &CHAOS_CHECK_SEEDS, 1);
    let parallel = chaos(&scale, &CHAOS_CHECK_SEEDS, 8);
    let mut failed = false;
    let points = |r: &dcn_experiments::ChaosReport| -> Vec<(String, Option<u64>, u64)> {
        r.baselines
            .iter()
            .chain(r.points.iter().flatten())
            .map(|p| (p.label.clone(), p.fault_seed, p.digest))
            .collect()
    };
    for ((label, seed, a), (_, _, b)) in points(&serial).iter().zip(points(&parallel).iter()) {
        if a != b {
            eprintln!("FAIL: {label} seed {seed:?}: digest {a:#x} (jobs 1) != {b:#x} (jobs 8)");
            failed = true;
        }
    }
    for v in serial
        .violations()
        .iter()
        .chain(parallel.violations().iter())
    {
        eprintln!("FAIL: invariant violation: {v}");
        failed = true;
    }
    println!("{}", serial.render());
    if failed {
        ExitCode::FAILURE
    } else {
        eprintln!("# chaos --check passed: all digests jobs-invariant, no violations");
        ExitCode::SUCCESS
    }
}

/// CI tournament gate: tiny scale, two seed replicates, the full
/// six-policy × four-arena grid at `--jobs 1` and `--jobs 8`; any
/// digest divergence, report divergence or invariant violation fails
/// the process.
fn tournament_check(seeds: u64) -> ExitCode {
    let scale = ExperimentScale::tiny();
    let seeds = seeds.max(2);
    eprintln!("# tournament --check: 6 policies x 4 arenas x {seeds} seeds, jobs 1 vs 8");
    let serial = tournament(&scale, seeds, 1);
    let parallel = tournament(&scale, seeds, 8);
    let mut failed = false;
    let (a, b) = (serial.digests(), parallel.digests());
    if a != b {
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            if x != y {
                eprintln!("FAIL: run {i}: digest {x:#x} (jobs 1) != {y:#x} (jobs 8)");
            }
        }
        failed = true;
    }
    if serial.render() != parallel.render() {
        eprintln!("FAIL: rendered reports differ between jobs 1 and jobs 8");
        failed = true;
    }
    for v in serial
        .violations()
        .iter()
        .chain(parallel.violations().iter())
    {
        eprintln!("FAIL: invariant violation: {v}");
        failed = true;
    }
    println!("{}", serial.render());
    if failed {
        ExitCode::FAILURE
    } else {
        eprintln!("# tournament --check passed: all digests jobs-invariant, no violations");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(which) = args.first().cloned() else {
        return usage();
    };

    let mut scale = ExperimentScale::small();
    let mut opts = SweepOptions::default();
    let mut check = false;
    let mut shards: Option<usize> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => {
                check = true;
                i += 1;
            }
            "--shards" => {
                let Some(v) = args.get(i + 1) else {
                    return usage();
                };
                shards = match v.as_str() {
                    "auto" => Some(dcn_sim::effective_jobs(0)),
                    n => match n.parse::<usize>() {
                        Ok(n) if n >= 1 => Some(n),
                        _ => return usage(),
                    },
                };
                i += 2;
            }
            "--jobs" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) else {
                    return usage();
                };
                opts.jobs = if v == 0 { dcn_sim::default_jobs() } else { v };
                i += 2;
            }
            "--seeds" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) else {
                    return usage();
                };
                opts.seeds = v.max(1);
                i += 2;
            }
            "--scale" => {
                let Some(v) = args.get(i + 1) else {
                    return usage();
                };
                scale = match v.as_str() {
                    "tiny" => ExperimentScale::tiny(),
                    "small" => ExperimentScale::small(),
                    "paper" => ExperimentScale::paper(),
                    other => {
                        eprintln!("unknown scale '{other}'");
                        return usage();
                    }
                };
                i += 2;
            }
            "--seed" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) else {
                    return usage();
                };
                scale = scale.with_seed(v);
                i += 2;
            }
            "--window-ms" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) else {
                    return usage();
                };
                scale = scale.with_window(SimDuration::from_millis(v));
                i += 2;
            }
            other => {
                eprintln!("unknown flag '{other}'");
                return usage();
            }
        }
    }
    if let Some(n) = shards {
        // Applied last so `--shards` composes with `--scale` in any
        // flag order.
        scale = scale.with_shards(n);
    }

    if which == "tournament" {
        return if check {
            tournament_check(opts.seeds)
        } else {
            // Three seeds by default so every table cell is mean±CI.
            let seeds = if opts.seeds > 1 { opts.seeds } else { 3 };
            eprintln!(
                "# tournament: {} hosts, window {}, seed {}, jobs {}, seeds {seeds}",
                scale.host_count(),
                scale.window,
                scale.seed,
                opts.jobs,
            );
            let report = tournament(&scale, seeds, opts.jobs);
            println!("{}", report.render());
            let violations = report.violations();
            for v in &violations {
                eprintln!("invariant violation: {v}");
            }
            if violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        };
    }

    if which == "irn" {
        return if check {
            irn_check()
        } else {
            let grid = irn_grid(&scale, opts.jobs);
            println!("{}", grid.render());
            let res = irn_resilience(&scale, &CHAOS_CHECK_SEEDS, opts.jobs);
            println!("{}", res.render());
            let violations: Vec<String> = grid
                .violations()
                .into_iter()
                .chain(res.violations())
                .collect();
            for v in &violations {
                eprintln!("invariant violation: {v}");
            }
            if violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        };
    }

    if which == "chaos" {
        return if check {
            chaos_check()
        } else {
            let report = chaos(&scale, &CHAOS_CHECK_SEEDS, opts.jobs);
            println!("{}", report.render());
            let violations = report.violations();
            for v in &violations {
                eprintln!("invariant violation: {v}");
            }
            if violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        };
    }

    eprintln!(
        "# scale: {} hosts, window {}, seed {}, jobs {}, seeds {}",
        scale.host_count(),
        scale.window,
        scale.seed,
        opts.jobs,
        opts.effective_seeds()
    );

    let run_one = |name: &str, scale: &ExperimentScale| -> Option<String> {
        let out = match name {
            "fig3a" => fig3a_with(scale, &opts).render(),
            "fig3b" => fig3b_with(scale, &opts).render(),
            "fig7" => fig7_with(scale, &[], &opts).render(),
            "table2" => table2_with(scale, &TABLE2_LOADS, &opts).render(),
            "fig8" => fig8_with(scale, &opts).render(),
            "fig9" => fig9_with(scale, &opts).render(),
            "fig10" => fig10_with(scale, 5, &opts).render(),
            "fig11" => fig11_with(scale, &FIG11_FANOUTS, &opts).render(),
            "ablations" => ablations_opts(scale, &standard_variants(), 0.8, &opts).render(),
            _ => return None,
        };
        Some(out)
    };

    if which == "all" {
        for name in [
            "fig3a",
            "fig3b",
            "fig7",
            "table2",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "ablations",
        ] {
            eprintln!("# running {name} ...");
            println!("{}", run_one(name, &scale).expect("known name"));
        }
        return ExitCode::SUCCESS;
    }

    match run_one(&which, &scale) {
        Some(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown experiment '{which}'");
            usage()
        }
    }
}
