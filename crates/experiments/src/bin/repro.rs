//! `repro` — regenerate the L2BM paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--scale tiny|small|paper] [--seed N] [--window-ms N]
//!
//! experiments: fig3a fig3b fig7 table2 fig8 fig9 fig10 fig11 all
//! ```
//!
//! Scaled-down runs (`--scale small`, the default) finish in about a
//! minute per figure and preserve the qualitative ordering; `--scale
//! paper` uses the full 128-server fabric of the paper's §IV setup.

use std::env;
use std::process::ExitCode;

use dcn_experiments::{
    ablations, fig10, fig11, fig3a, fig3b, fig7, fig8, fig9, table2, ExperimentScale,
};
use dcn_sim::SimDuration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <fig3a|fig3b|fig7|table2|fig8|fig9|fig10|fig11|ablations|all> \
         [--scale tiny|small|paper] [--seed N] [--window-ms N]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(which) = args.first().cloned() else {
        return usage();
    };

    let mut scale = ExperimentScale::small();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let Some(v) = args.get(i + 1) else {
                    return usage();
                };
                scale = match v.as_str() {
                    "tiny" => ExperimentScale::tiny(),
                    "small" => ExperimentScale::small(),
                    "paper" => ExperimentScale::paper(),
                    other => {
                        eprintln!("unknown scale '{other}'");
                        return usage();
                    }
                };
                i += 2;
            }
            "--seed" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) else {
                    return usage();
                };
                scale = scale.with_seed(v);
                i += 2;
            }
            "--window-ms" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) else {
                    return usage();
                };
                scale = scale.with_window(SimDuration::from_millis(v));
                i += 2;
            }
            other => {
                eprintln!("unknown flag '{other}'");
                return usage();
            }
        }
    }

    eprintln!(
        "# scale: {} hosts, window {}, seed {}",
        scale.host_count(),
        scale.window,
        scale.seed
    );

    let run_one = |name: &str, scale: &ExperimentScale| -> Option<String> {
        let out = match name {
            "fig3a" => fig3a(scale).render(),
            "fig3b" => fig3b(scale).render(),
            "fig7" => fig7(scale).render(),
            "table2" => table2(scale).render(),
            "fig8" => fig8(scale).render(),
            "fig9" => fig9(scale).render(),
            "fig10" => fig10(scale).render(),
            "fig11" => fig11(scale).render(),
            "ablations" => ablations(scale).render(),
            _ => return None,
        };
        Some(out)
    };

    if which == "all" {
        for name in [
            "fig3a",
            "fig3b",
            "fig7",
            "table2",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "ablations",
        ] {
            eprintln!("# running {name} ...");
            println!("{}", run_one(name, &scale).expect("known name"));
        }
        return ExitCode::SUCCESS;
    }

    match run_one(&which, &scale) {
        Some(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown experiment '{which}'");
            usage()
        }
    }
}
