//! `repro` — regenerate the L2BM paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--scale tiny|small|paper] [--seed N] [--window-ms N]
//!                    [--jobs N] [--seeds N]
//!
//! experiments: fig3a fig3b fig7 table2 fig8 fig9 fig10 fig11 all
//! ```
//!
//! Scaled-down runs (`--scale small`, the default) finish in about a
//! minute per figure and preserve the qualitative ordering; `--scale
//! paper` uses the full 128-server fabric of the paper's §IV setup.
//!
//! `--jobs N` fans the independent sweep cells across N worker threads
//! (`--jobs 0` = all available cores); the output is bit-identical at
//! any thread count. `--seeds N` replicates every cell over N seeds and
//! reports `mean ± 95% CI` per table cell.

use std::env;
use std::process::ExitCode;

use dcn_experiments::{
    ablations_opts, fig10_with, fig11_with, fig3a_with, fig3b_with, fig7_with, fig8_with,
    fig9_with, standard_variants, table2_with, ExperimentScale, SweepOptions, FIG11_FANOUTS,
    TABLE2_LOADS,
};
use dcn_sim::SimDuration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <fig3a|fig3b|fig7|table2|fig8|fig9|fig10|fig11|ablations|all> \
         [--scale tiny|small|paper] [--seed N] [--window-ms N] [--jobs N] [--seeds N]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(which) = args.first().cloned() else {
        return usage();
    };

    let mut scale = ExperimentScale::small();
    let mut opts = SweepOptions::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) else {
                    return usage();
                };
                opts.jobs = if v == 0 { dcn_sim::default_jobs() } else { v };
                i += 2;
            }
            "--seeds" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) else {
                    return usage();
                };
                opts.seeds = v.max(1);
                i += 2;
            }
            "--scale" => {
                let Some(v) = args.get(i + 1) else {
                    return usage();
                };
                scale = match v.as_str() {
                    "tiny" => ExperimentScale::tiny(),
                    "small" => ExperimentScale::small(),
                    "paper" => ExperimentScale::paper(),
                    other => {
                        eprintln!("unknown scale '{other}'");
                        return usage();
                    }
                };
                i += 2;
            }
            "--seed" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) else {
                    return usage();
                };
                scale = scale.with_seed(v);
                i += 2;
            }
            "--window-ms" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) else {
                    return usage();
                };
                scale = scale.with_window(SimDuration::from_millis(v));
                i += 2;
            }
            other => {
                eprintln!("unknown flag '{other}'");
                return usage();
            }
        }
    }

    eprintln!(
        "# scale: {} hosts, window {}, seed {}, jobs {}, seeds {}",
        scale.host_count(),
        scale.window,
        scale.seed,
        opts.jobs,
        opts.effective_seeds()
    );

    let run_one = |name: &str, scale: &ExperimentScale| -> Option<String> {
        let out = match name {
            "fig3a" => fig3a_with(scale, &opts).render(),
            "fig3b" => fig3b_with(scale, &opts).render(),
            "fig7" => fig7_with(scale, &[], &opts).render(),
            "table2" => table2_with(scale, &TABLE2_LOADS, &opts).render(),
            "fig8" => fig8_with(scale, &opts).render(),
            "fig9" => fig9_with(scale, &opts).render(),
            "fig10" => fig10_with(scale, 5, &opts).render(),
            "fig11" => fig11_with(scale, &FIG11_FANOUTS, &opts).render(),
            "ablations" => ablations_opts(scale, &standard_variants(), 0.8, &opts).render(),
            _ => return None,
        };
        Some(out)
    };

    if which == "all" {
        for name in [
            "fig3a",
            "fig3b",
            "fig7",
            "table2",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "ablations",
        ] {
            eprintln!("# running {name} ...");
            println!("{}", run_one(name, &scale).expect("known name"));
        }
        return ExitCode::SUCCESS;
    }

    match run_one(&which, &scale) {
        Some(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown experiment '{which}'");
            usage()
        }
    }
}
