//! Chaos mode: seeded random fault schedules over the hybrid workload,
//! with an invariant battery asserted after every run.
//!
//! Each chaos cell runs the fig. 7 hybrid traffic mix under a fault
//! schedule sampled from a seed — link flaps, corruption windows and
//! stuck PFC pauses — then checks that the fabric's core invariants
//! survived: per-switch buffer conservation, PFC/trace reconciliation,
//! termination, and that every flow not victimised by a lossless-class
//! loss still completes. Violations are collected as strings (never
//! panics), so one broken run cannot poison a parallel sweep worker.
//!
//! Fault schedules are sampled *before* the simulation starts from a
//! dedicated RNG, and the runs themselves are deterministic, so every
//! cell's digest is bit-identical at any `--jobs` value — the same
//! contract the figure sweeps rely on.

use dcn_fabric::{FabricConfig, FabricSim, PolicyChoice};
use dcn_net::{NodeId, Topology, TrafficClass};
use dcn_sim::{par_map, FaultSchedule, SimDuration, SimRng, SimTime, TraceConfig};
use dcn_workload::{web_search_cdf, FlowSpec, PoissonTraffic};

use crate::hybrid::{split_hosts, RDMA_PRIO, TCP_PRIO};
use crate::report::{fmt_f64, Table};
use crate::scale::ExperimentScale;

/// PFC storm-watchdog threshold every chaos run arms. Long enough that
/// legitimate congestion pauses at these scales resolve first; short
/// enough to demonstrably bound an injected stuck XOFF within a run.
pub const CHAOS_WATCHDOG: SimDuration = SimDuration::from_millis(1);

/// The fixed fault-schedule seeds `repro chaos --check` (and CI) runs.
pub const CHAOS_CHECK_SEEDS: [u64; 8] = [11, 23, 37, 41, 53, 67, 79, 97];

/// One chaos cell: a policy under a sampled fault schedule (or the
/// zero-fault baseline when `fault_seed` is `None`).
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// The scale (topology, window, workload seed).
    pub scale: ExperimentScale,
    /// Buffer-management policy under test.
    pub policy: PolicyChoice,
    /// Seed the fault schedule is sampled from; `None` injects nothing.
    pub fault_seed: Option<u64>,
    /// Load of the RDMA half (fig. 7 hybrid mix).
    pub rdma_load: f64,
    /// Load of the TCP half.
    pub tcp_load: f64,
}

impl ChaosConfig {
    /// The standard chaos cell: fig. 7 hybrid mix at RDMA 0.4 / TCP 0.4.
    pub fn new(scale: ExperimentScale, policy: PolicyChoice, fault_seed: Option<u64>) -> Self {
        ChaosConfig {
            scale,
            policy,
            fault_seed,
            rdma_load: 0.4,
            tcp_load: 0.4,
        }
    }
}

/// Everything one chaos run reports. Plain data (`Send`): the trace is
/// interrogated inside the worker, never shipped across threads.
#[derive(Debug, Clone)]
pub struct ChaosPoint {
    /// Policy label (DT / DT2 / ABM / L2BM).
    pub label: String,
    /// The fault seed (`None` = zero-fault baseline).
    pub fault_seed: Option<u64>,
    /// Scheduled fault events in this cell.
    pub fault_events: usize,
    /// Full-run digest (compared across `--jobs` values).
    pub digest: u64,
    /// Registered flows.
    pub total_flows: usize,
    /// Flows that completed before the deadline.
    pub completed: usize,
    /// Flows that lost at least one lossless-class packet (DCQCN has no
    /// retransmission, so these may legitimately never finish).
    pub victims: usize,
    /// Delivered goodput over the traffic window, Gbit/s (completed
    /// flows' payload bytes over the window).
    pub goodput_gbps: f64,
    /// p99 FCT slowdown of completed TCP flows.
    pub tcp_p99_slowdown: f64,
    /// p99 FCT slowdown of completed RDMA flows.
    pub rdma_p99_slowdown: f64,
    /// PFC pause frames over the run.
    pub pause_frames: u64,
    /// Watchdog forced resumes over the run.
    pub watchdog_fires: u64,
    /// Lossless packets dropped (0 unless faults victimise flows).
    pub lossless_drops: u64,
    /// Lossy packets dropped.
    pub lossy_drops: u64,
    /// Invariant violations (empty = the battery passed).
    pub violations: Vec<String>,
}

/// Samples a bounded, transient fault schedule from `seed`: one to
/// three faults among link flaps, corruption windows and stuck PFC
/// pauses, all landing inside the traffic window so recovery is
/// observable before the drain deadline.
pub fn sample_fault_schedule(topo: &Topology, window: SimDuration, seed: u64) -> FaultSchedule {
    let mut rng = SimRng::seed_from_u64(seed ^ 0x0C4A_05FA_17ED_5EED);
    let mut s = FaultSchedule::none();
    let wn = window.as_nanos();
    let n_links = topo.links().len() as u64;
    let switches: Vec<NodeId> = topo.switches().collect();
    let n_faults = 1 + rng.below(3);
    for _ in 0..n_faults {
        // Faults start between 10% and 60% of the window.
        let at = SimTime::from_nanos(wn / 10 + rng.below(wn / 2));
        match rng.below(3) {
            0 => {
                // A short link flap: down for 5–15% of the window.
                let link = rng.below(n_links) as u32;
                let outage = SimDuration::from_nanos(wn / 20 + rng.below(wn / 10));
                s.link_flap(link, at, outage);
            }
            1 => {
                // A corruption window: BER high enough to lose a few
                // percent of the packets crossing the link.
                let link = rng.below(n_links) as u32;
                let ber = 2e-6 * (1 + rng.below(10)) as f64;
                let dur = SimDuration::from_nanos(wn / 5 + rng.below(wn / 4));
                s.corruption_window(link, at, dur, ber);
            }
            _ => {
                // A stuck XOFF against a random switch egress queue at
                // the lossless priority, held for two windows: only the
                // watchdog can unblock it inside the run.
                let sw = switches[rng.below(switches.len() as u64) as usize];
                let ports = topo.node(sw).ports.len() as u64;
                let port = rng.below(ports) as u16;
                let hold = SimDuration::from_nanos(wn * 2);
                s.pause_stuck(sw.index() as u32, port, RDMA_PRIO.index() as u8, at, hold);
            }
        }
    }
    s
}

/// Runs one chaos cell and asserts the invariant battery.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosPoint {
    let topo = Topology::clos(&cfg.scale.clos);
    let (rdma_hosts, tcp_hosts, _) = split_hosts(&topo, cfg.scale.clos.hosts_per_tor);
    let mut rng = SimRng::seed_from_u64(cfg.scale.seed);

    let mut flows: Vec<FlowSpec> = Vec::new();
    if cfg.rdma_load > 0.0 {
        let rdma = PoissonTraffic::builder(rdma_hosts.clone(), web_search_cdf())
            .load(cfg.rdma_load)
            .link_rate(cfg.scale.clos.host_rate)
            .class(TrafficClass::Lossless, RDMA_PRIO)
            .dests(rdma_hosts)
            .build();
        flows.extend(rdma.generate(cfg.scale.window, &mut rng.fork(1)));
    }
    if cfg.tcp_load > 0.0 {
        let tcp = PoissonTraffic::builder(tcp_hosts.clone(), web_search_cdf())
            .load(cfg.tcp_load)
            .link_rate(cfg.scale.clos.host_rate)
            .class(TrafficClass::Lossy, TCP_PRIO)
            .dests(tcp_hosts)
            .first_flow_id(1 << 40)
            .build();
        flows.extend(tcp.generate(cfg.scale.window, &mut rng.fork(2)));
    }

    let faults = match cfg.fault_seed {
        Some(seed) => sample_fault_schedule(&topo, cfg.scale.window, seed),
        None => FaultSchedule::none(),
    };
    let fault_events = faults.len();

    let mut switch = cfg.scale.switch_config();
    switch.pfc_watchdog = Some(CHAOS_WATCHDOG);
    let fabric_cfg = FabricConfig {
        policy: cfg.policy,
        seed: cfg.scale.seed,
        switch,
        sample_interval: None,
        trace: TraceConfig::enabled(),
        faults,
        train: cfg.scale.train,
        ..FabricConfig::default()
    };
    let mut sim = FabricSim::new(topo, fabric_cfg);
    sim.add_flows(flows.iter().copied());
    let deadline = SimTime::ZERO + cfg.scale.window + cfg.scale.drain;
    let all_done = sim.run_until_done(deadline);
    let r = sim.results();

    let mut violations: Vec<String> = Vec::new();

    // (1) Buffer conservation on every switch, after faults and drains.
    let switch_ids: Vec<NodeId> = sim.world().topology().switches().collect();
    for id in switch_ids {
        if let Some(sw) = sim.world().switch(id) {
            if let Err(e) = sw.mmu().check_conservation() {
                violations.push(format!("switch {id}: conservation broken: {e}"));
            }
        }
    }

    // (2) Trace totals reconcile exactly with the merged run counters.
    // Victims come from the recorder's never-evicted aggregate set, not
    // a ring scan: a long run can wrap the ring past the drop records,
    // which would silently shrink the victim set and false-positive the
    // unfinished ⊆ victims check below.
    let (totals, victim_flows) = sim
        .trace()
        .with(|rec| (rec.totals(), rec.lossless_victims().clone()))
        .expect("chaos runs always trace");
    if totals.drops() != r.drops.lossy_packets + r.drops.lossless_packets {
        violations.push(format!(
            "trace drops {} != counter drops {}",
            totals.drops(),
            r.drops.lossy_packets + r.drops.lossless_packets
        ));
    }
    if totals.pfc_pauses != r.pfc.pause_frames() {
        violations.push(format!(
            "trace pauses {} != counter pauses {}",
            totals.pfc_pauses,
            r.pfc.pause_frames()
        ));
    }
    if totals.pfc_resumes != r.pfc.resume_frames() {
        violations.push(format!(
            "trace resumes {} != counter resumes {}",
            totals.pfc_resumes,
            r.pfc.resume_frames()
        ));
    }
    if totals.watchdog_fires != r.pfc.watchdog_fires() {
        violations.push(format!(
            "trace watchdog fires {} != counter fires {}",
            totals.watchdog_fires,
            r.pfc.watchdog_fires()
        ));
    }

    // (3) No silent defects: injected faults must never hit the
    // defensive wiring-defect paths, and no DCQCN sender may ever be
    // stranded with zero credit — wire loss makes flows *victims*,
    // not stranded senders, so a nonzero count is a pacing bug.
    if totals.defects != 0 {
        violations.push(format!("{} defect events recorded", totals.defects));
    }
    if r.rdma_stranded != 0 {
        violations.push(format!("{} stranded DCQCN senders", r.rdma_stranded));
    }

    // (4) Scheduler-timer parity: wheel timers fire at their exact
    // deadline even under fault storms, so no event is ever clamped
    // forward to "now" and no cancelled timer ever pops. A nonzero
    // count here means a handler armed a deadline in the past (or a
    // cancellation leaked), which silently reorders the schedule.
    if r.queue.past_clamps != 0 {
        violations.push(format!(
            "{} past-time clamps (timers must never fire late)",
            r.queue.past_clamps
        ));
    }
    if r.queue.stale_timer_pops != 0 {
        violations.push(format!(
            "{} stale timer pops (cancelled timers must never fire)",
            r.queue.stale_timer_pops
        ));
    }

    // (5) Every non-victim flow completes. Victims are flows that lost
    // a lossless-class packet (no retransmission exists for them);
    // everything else — all TCP, undamaged RDMA — must finish inside
    // the drain.
    let completed: std::collections::HashSet<u64> =
        r.fct.records().iter().map(|x| x.flow.as_u64()).collect();
    for spec in &flows {
        let id = spec.id.as_u64();
        if !completed.contains(&id) && !victim_flows.contains(&id) {
            violations.push(format!(
                "flow {id} ({:?}) unfinished without being a loss victim",
                spec.class
            ));
        }
    }
    if cfg.fault_seed.is_none() {
        // The baseline must be entirely healthy.
        if !all_done {
            violations.push("zero-fault baseline left flows unfinished".into());
        }
        if r.drops.lossless_packets != 0 {
            violations.push(format!(
                "zero-fault baseline dropped {} lossless packets",
                r.drops.lossless_packets
            ));
        }
        if r.pfc.watchdog_fires() != 0 {
            violations.push("zero-fault baseline fired the watchdog".into());
        }
    }

    let delivered: u64 = r.fct.records().iter().map(|x| x.size.as_u64()).sum();
    let goodput_gbps = delivered as f64 * 8.0 / cfg.scale.window.as_secs_f64() / 1e9;

    ChaosPoint {
        label: cfg.policy.label(),
        fault_seed: cfg.fault_seed,
        fault_events,
        digest: r.digest(),
        total_flows: flows.len(),
        completed: completed.len(),
        victims: victim_flows.len(),
        goodput_gbps,
        tcp_p99_slowdown: r
            .fct
            .slowdown_percentile(TrafficClass::Lossy, 0.99)
            .unwrap_or(f64::NAN),
        rdma_p99_slowdown: r
            .fct
            .slowdown_percentile(TrafficClass::Lossless, 0.99)
            .unwrap_or(f64::NAN),
        pause_frames: r.pfc.pause_frames(),
        watchdog_fires: r.pfc.watchdog_fires(),
        lossless_drops: r.drops.lossless_packets,
        lossy_drops: r.drops.lossy_packets,
        violations,
    }
}

/// Runs chaos cells across worker threads. Output order is input order,
/// and every cell is bit-identical at any `jobs` value.
pub fn run_chaos_cells(cells: &[ChaosConfig], jobs: usize) -> Vec<ChaosPoint> {
    par_map(jobs, cells, run_chaos)
}

/// The chaos sweep: per policy, a zero-fault baseline plus one cell per
/// fault seed.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// One baseline point per policy (input order of `policies`).
    pub baselines: Vec<ChaosPoint>,
    /// Chaos points, grouped per policy in seed order.
    pub points: Vec<Vec<ChaosPoint>>,
}

impl ChaosReport {
    /// Every invariant violation across all cells (empty = pass).
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for p in self.baselines.iter().chain(self.points.iter().flatten()) {
            for v in &p.violations {
                out.push(format!("{} seed {:?}: {v}", p.label, p.fault_seed));
            }
        }
        out
    }

    /// Renders the degradation table: goodput and tail-FCT under chaos
    /// relative to each policy's own zero-fault baseline.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "policy",
            "goodput base",
            "goodput chaos",
            "Δ%",
            "tcp p99 base",
            "tcp p99 chaos",
            "rdma p99 base",
            "rdma p99 chaos",
            "victims",
            "watchdog",
            "violations",
        ]);
        for (base, runs) in self.baselines.iter().zip(self.points.iter()) {
            let mean = |f: &dyn Fn(&ChaosPoint) -> f64| -> f64 {
                let vals: Vec<f64> = runs.iter().map(f).filter(|v| v.is_finite()).collect();
                if vals.is_empty() {
                    f64::NAN
                } else {
                    vals.iter().sum::<f64>() / vals.len() as f64
                }
            };
            let goodput = mean(&|p: &ChaosPoint| p.goodput_gbps);
            let delta = (goodput - base.goodput_gbps) / base.goodput_gbps * 100.0;
            let victims: usize = runs.iter().map(|p| p.victims).sum();
            let watchdog: u64 = runs.iter().map(|p| p.watchdog_fires).sum();
            let violations: usize =
                runs.iter().map(|p| p.violations.len()).sum::<usize>() + base.violations.len();
            t.row(vec![
                base.label.clone(),
                fmt_f64(base.goodput_gbps),
                fmt_f64(goodput),
                fmt_f64(delta),
                fmt_f64(base.tcp_p99_slowdown),
                fmt_f64(mean(&|p: &ChaosPoint| p.tcp_p99_slowdown)),
                fmt_f64(base.rdma_p99_slowdown),
                fmt_f64(mean(&|p: &ChaosPoint| p.rdma_p99_slowdown)),
                victims.to_string(),
                watchdog.to_string(),
                violations.to_string(),
            ]);
        }
        format!(
            "chaos: hybrid workload under {} sampled fault schedules per policy\n{}",
            self.points.first().map_or(0, Vec::len),
            t.render()
        )
    }
}

/// Runs the chaos sweep for every arena policy (all six) over
/// `fault_seeds`.
pub fn chaos(scale: &ExperimentScale, fault_seeds: &[u64], jobs: usize) -> ChaosReport {
    let policies = crate::all_policies();
    let mut cells: Vec<ChaosConfig> = Vec::new();
    for &policy in &policies {
        cells.push(ChaosConfig::new(scale.clone(), policy, None));
        for &seed in fault_seeds {
            cells.push(ChaosConfig::new(scale.clone(), policy, Some(seed)));
        }
    }
    let mut results = run_chaos_cells(&cells, jobs);
    let mut baselines = Vec::with_capacity(policies.len());
    let mut points = Vec::with_capacity(policies.len());
    let per_policy = 1 + fault_seeds.len();
    for _ in &policies {
        let rest = results.split_off(per_policy);
        let mut group = std::mem::replace(&mut results, rest);
        let chaos_runs = group.split_off(1);
        baselines.push(group.pop().expect("baseline cell"));
        points.push(chaos_runs);
    }
    ChaosReport { baselines, points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_schedules_are_deterministic_and_bounded() {
        let scale = ExperimentScale::tiny();
        let topo = Topology::clos(&scale.clos);
        let a = sample_fault_schedule(&topo, scale.window, 7);
        let b = sample_fault_schedule(&topo, scale.window, 7);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(!a.is_empty());
        assert!(a.len() <= 6, "at most 3 faults of 2 events each");
        let c = sample_fault_schedule(&topo, scale.window, 8);
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn zero_fault_cell_passes_the_battery() {
        let cfg = ChaosConfig::new(ExperimentScale::tiny(), PolicyChoice::l2bm(), None);
        let p = run_chaos(&cfg);
        assert_eq!(p.violations, Vec::<String>::new());
        assert_eq!(p.fault_events, 0);
        assert_eq!(p.completed, p.total_flows);
        assert_eq!(p.victims, 0);
        assert_eq!(p.watchdog_fires, 0);
    }

    #[test]
    fn chaos_cells_pass_battery_and_are_jobs_invariant() {
        let cells: Vec<ChaosConfig> = CHAOS_CHECK_SEEDS[..2]
            .iter()
            .map(|&s| ChaosConfig::new(ExperimentScale::tiny(), PolicyChoice::l2bm(), Some(s)))
            .collect();
        let serial = run_chaos_cells(&cells, 1);
        let parallel = run_chaos_cells(&cells, 8);
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert_eq!(a.digest, b.digest, "chaos digest must be jobs-invariant");
            assert_eq!(a.violations, Vec::<String>::new(), "battery must pass");
            assert_eq!(b.violations, Vec::<String>::new());
            assert!(a.fault_events > 0);
        }
    }
}
