//! Plain-text table rendering for experiment reports.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<w$}", c, w = width[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with sensible precision for reports (3 significant
/// decimals below 100, integer-ish above).
pub fn fmt_f64(x: f64) -> String {
    if x.is_nan() {
        "-".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Formats a byte count for reports.
pub fn fmt_bytes(x: f64) -> String {
    if x >= 1e6 {
        format!("{:.2}MB", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.1}KB", x / 1e3)
    } else {
        format!("{x:.0}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["policy", "p99"]);
        t.row(vec!["L2BM".into(), "1.20".into()]);
        t.row(vec!["DT".into(), "12.00".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("policy"));
        assert!(lines[2].starts_with("L2BM"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(f64::NAN), "-");
        assert_eq!(fmt_f64(123.4), "123");
        assert_eq!(fmt_f64(12.345), "12.35");
        assert_eq!(fmt_f64(0.01234), "0.0123");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(4_000_000.0), "4.00MB");
        assert_eq!(fmt_bytes(512_000.0), "512.0KB");
        assert_eq!(fmt_bytes(48.0), "48B");
    }
}
