//! Serial-vs-sharded engine dispatch shared by the experiment runners.

use dcn_fabric::{FabricConfig, FabricSim, RunResults, ShardedFabricSim};
use dcn_net::Topology;
use dcn_sim::SimTime;
use dcn_workload::FlowSpec;

/// Runs `flows` on `topo` until `deadline`, on the engine
/// [`crate::ExperimentScale::shards`] selects: the serial engine at
/// `0`, the spatially sharded executor (clamped to the ToR count) at
/// `n ≥ 1`. Results — including golden digests — are byte-identical
/// across every choice.
pub(crate) fn run_engine(
    topo: Topology,
    cfg: FabricConfig,
    flows: Vec<FlowSpec>,
    deadline: SimTime,
    shards: usize,
) -> RunResults {
    if shards == 0 {
        let mut sim = FabricSim::new(topo, cfg);
        sim.add_flows(flows);
        sim.run_until_done(deadline);
        sim.results()
    } else {
        let mut sim = ShardedFabricSim::new(topo, cfg, shards);
        sim.add_flows(flows);
        sim.run_until_done(deadline);
        sim.results()
    }
}
