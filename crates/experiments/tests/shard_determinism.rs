//! Determinism gates for the spatially sharded executor: the paper's
//! experiment cells must produce **byte-identical digests** on the
//! serial engine and on the sharded executor at every shard count —
//! including a sharded-oracle run (`shards = 1`, full stamp machinery,
//! no real parallelism) and a request beyond the ToR count (clamped).
//!
//! Serial (`shards = 0`) is always the reference: these tests failing
//! means the conservative window protocol reordered, double-counted or
//! dropped an event somewhere, not that behavior legitimately changed.

use dcn_experiments::{
    paper_policies, run_hybrid, run_incast, sample_fault_schedule, ExperimentScale, HybridConfig,
    IncastConfig,
};
use dcn_fabric::{FabricConfig, FabricSim, PolicyChoice, RunResults, ShardedFabricSim};
use dcn_net::{Topology, TrafficClass};
use dcn_sim::{Bytes, SimDuration, SimRng, SimTime};
use dcn_workload::{web_search_cdf, PoissonTraffic};

/// Shard counts every cell is checked at: the oracle, a real split, and
/// more than the tiny fabric's two ToRs (exercises the clamp).
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn fig7_cell_digest_is_shard_invariant() {
    for seed in [42, 7] {
        let cell = |shards: usize| {
            let cfg = HybridConfig {
                scale: ExperimentScale::tiny().with_seed(seed).with_shards(shards),
                policy: PolicyChoice::l2bm(),
                rdma_load: 0.4,
                tcp_load: 0.8,
            };
            run_hybrid(&cfg).results
        };
        let serial = cell(0);
        assert!(!serial.fct.is_empty(), "cell carried traffic");
        for shards in SHARD_COUNTS {
            let sharded = cell(shards);
            assert_eq!(
                serial.digest(),
                sharded.digest(),
                "fig7 cell seed {seed}: serial vs {shards} shards \
                 (fct {} vs {}, events {} vs {})",
                serial.fct.len(),
                sharded.fct.len(),
                serial.events_processed,
                sharded.events_processed,
            );
            assert!(!sharded.shards.is_empty(), "ShardStats surfaced");
        }
    }
}

#[test]
fn table2_cells_digest_is_shard_invariant() {
    // One load column of Table II across all four paper policies.
    for policy in paper_policies() {
        let cell = |shards: usize| {
            let cfg = HybridConfig {
                scale: ExperimentScale::tiny().with_shards(shards),
                policy,
                rdma_load: 0.4,
                tcp_load: 0.6,
            };
            run_hybrid(&cfg).results.digest()
        };
        let serial = cell(0);
        for shards in [1, 2] {
            assert_eq!(
                serial,
                cell(shards),
                "table2 cell {}: serial vs {shards} shards",
                policy.label()
            );
        }
    }
}

#[test]
fn incast_cell_digest_is_shard_invariant() {
    let cell = |shards: usize| {
        let mut cfg = IncastConfig::paper_defaults(
            ExperimentScale::tiny().with_shards(shards),
            PolicyChoice::l2bm(),
            3,
        );
        cfg.request_size = Bytes::from_kb(300);
        cfg.query_gap = SimDuration::from_micros(400);
        cfg.tcp_load = 0.4;
        run_incast(&cfg)
    };
    let serial = cell(0);
    assert!(serial.completed_queries > 0, "cell carried queries");
    for shards in SHARD_COUNTS {
        let sharded = cell(shards);
        assert_eq!(
            serial.results.digest(),
            sharded.results.digest(),
            "incast cell: serial vs {shards} shards"
        );
        assert_eq!(serial.completed_queries, sharded.completed_queries);
        assert_eq!(serial.query_delays_s, sharded.query_delays_s);
    }
}

/// A chaos-style cell — the hybrid mix under a sampled fault schedule
/// (link flaps, corruption windows, stuck PFC pauses) — without the
/// flight recorder, which the sharded executor rejects. Fault events
/// replicate across shards; their endpoint work stays owner-local.
#[test]
fn faulted_cell_digest_is_shard_invariant() {
    let scale = ExperimentScale::tiny();
    let topo = Topology::clos(&scale.clos);
    let hosts: Vec<_> = topo.hosts().collect();
    let mut rng = SimRng::seed_from_u64(scale.seed);
    let mut flows = Vec::new();
    let rdma = PoissonTraffic::builder(hosts.clone(), web_search_cdf())
        .load(0.4)
        .link_rate(scale.clos.host_rate)
        .class(TrafficClass::Lossless, dcn_net::Priority::new(3))
        .dests(hosts.clone())
        .build();
    flows.extend(rdma.generate(scale.window, &mut rng.fork(1)));
    let tcp = PoissonTraffic::builder(hosts.clone(), web_search_cdf())
        .load(0.6)
        .link_rate(scale.clos.host_rate)
        .class(TrafficClass::Lossy, dcn_net::Priority::new(1))
        .dests(hosts)
        .first_flow_id(1 << 40)
        .build();
    flows.extend(tcp.generate(scale.window, &mut rng.fork(2)));
    let deadline = SimTime::ZERO + scale.window + scale.drain;

    for fault_seed in [11, 13] {
        let fabric_cfg = FabricConfig {
            policy: PolicyChoice::l2bm(),
            seed: scale.seed,
            switch: scale.switch_config(),
            faults: sample_fault_schedule(&topo, scale.window, fault_seed),
            ..FabricConfig::default()
        };
        let serial: RunResults = {
            let mut sim = FabricSim::new(topo.clone(), fabric_cfg.clone());
            sim.add_flows(flows.iter().copied());
            sim.run_until_done(deadline);
            sim.results()
        };
        for shards in [1, 2] {
            let sharded = {
                let mut sim = ShardedFabricSim::new(topo.clone(), fabric_cfg.clone(), shards);
                sim.add_flows(flows.iter().copied());
                sim.run_until_done(deadline);
                sim.results()
            };
            assert_eq!(
                serial.digest(),
                sharded.digest(),
                "faulted cell seed {fault_seed}: serial vs {shards} shards \
                 (events {} vs {})",
                serial.events_processed,
                sharded.events_processed,
            );
        }
    }
}
