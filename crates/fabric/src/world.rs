//! The event loop: dispatches deliveries, transmissions, PFC frames and
//! transport timers across every host and switch.
//!
//! The per-packet hot path performs no hashing: flow lookup goes through
//! the dense banked [`FlowTable`] and occupancy sampling through a
//! node-indexed `Vec` — see DESIGN.md §3.5.

use std::sync::Arc;

use dcn_metrics::{DropCounters, FctRecord, IrnCounters, OccupancySeries, PfcCounters};
use dcn_net::{
    FlowId, LinkEnd, LinkId, NodeId, Packet, PacketKind, Partition, PfcFrame, PortId, Priority,
    RoutingTable, Topology, TrafficClass,
};
use dcn_sim::{
    run_while, BitRate, Bytes, EventQueue, FaultEvent, SimDuration, SimRng, SimTime, Simulation,
    Stamp, TimerHandle, TraceDropCause, TraceEvent, TraceHandle,
};
use dcn_switch::{PfcEmit, QueueIndex, SharedMemorySwitch, TxStart};
use dcn_transport::{
    DcqcnReceiver, DcqcnSender, DctcpReceiver, DctcpSender, IrnReceiver, IrnSender, RpTimerKind,
    TcpEvent,
};
use dcn_workload::FlowSpec;

use crate::config::{FabricConfig, RdmaTransport};
use crate::flows::{FlowRuntime, FlowState, FlowTable, FlowTimers};
use crate::host::{Host, Train, TrainLeg};
use crate::results::{RunResults, TrainStats};

/// Events dispatched through the fabric's queue.
#[derive(Debug)]
pub enum Event {
    /// A pre-registered flow starts sending.
    FlowStart {
        /// Index into the world's flow table.
        index: usize,
    },
    /// A packet finishes propagating to `node` on `in_port`.
    Deliver {
        /// Receiving node (host or switch).
        node: NodeId,
        /// Port the packet arrives on.
        in_port: PortId,
        /// The packet.
        packet: Packet,
    },
    /// A PFC frame reaches the upstream device.
    PfcDeliver {
        /// Receiving node.
        node: NodeId,
        /// Port the frame arrives on (the egress port it pauses).
        in_port: PortId,
        /// Pause or resume, per priority.
        frame: PfcFrame,
    },
    /// A switch finishes serializing a packet out of `port`.
    SwitchTxComplete {
        /// The switch.
        node: NodeId,
        /// The transmitting port.
        port: PortId,
    },
    /// A host NIC finishes serializing a packet.
    HostTxComplete {
        /// The host.
        host: NodeId,
    },
    /// A host NIC finishes serializing the last leg of a packet train —
    /// one wheel-armed completion standing in for N per-packet
    /// [`Event::HostTxComplete`]s. A mid-train split cancels this timer
    /// and falls back to a plain `HostTxComplete` for the leg on the
    /// wire. Only scheduled when [`crate::TrainConfig::enable`] is set.
    HostTrainDone {
        /// The host.
        host: NodeId,
    },
    /// A DCQCN sender's pacing tick: emit the next packet.
    RdmaPace {
        /// The flow.
        flow: FlowId,
    },
    /// A DCTCP or IRN retransmission timer. Armed on the timing wheel
    /// through a [`TimerHandle`]; a firing timer is live by
    /// construction because every re-arm cancels the previous deadline.
    Rto {
        /// The flow.
        flow: FlowId,
    },
    /// An RDMA-flow liveness-watchdog deadline (opt-in via
    /// [`crate::FabricConfig::flow_watchdog`]): compare the receiver's
    /// progress with the previous fire; no progress on an unfinished
    /// flow flags a stall episode.
    FlowWatchdog {
        /// The flow.
        flow: FlowId,
    },
    /// A DCQCN reaction-point timer (α decay or rate increase), armed
    /// on the timing wheel like [`Event::Rto`].
    RpTimer {
        /// The flow.
        flow: FlowId,
        /// Which timer.
        kind: RpTimerKind,
    },
    /// Periodic buffer-occupancy sampling tick.
    Sample,
    /// An injected fault fires (link state change, corruption window
    /// edge, or stuck PFC pause). Compiled from the configured
    /// [`dcn_sim::FaultSchedule`] at build time, so fault ordering obeys
    /// the same deterministic `(time, seq)` tie-break as every other
    /// event.
    Fault {
        /// The fault to apply.
        fault: FaultEvent,
    },
    /// A PFC storm-watchdog deadline: if the egress queue is still
    /// paused and still in the same pause episode, force-resume it.
    /// Also wheel-armed; deadlines are cancelled at every point where a
    /// fire is provably a no-op (resume, re-pause, port reset). The
    /// generation stamp stays as defence in depth: a deadline that
    /// survives to fire against a later episode degrades to exactly the
    /// legacy stale no-op.
    PfcWatchdog {
        /// The switch.
        node: NodeId,
        /// The paused egress port.
        port: PortId,
        /// The paused priority.
        prio: Priority,
        /// Pause-episode stamp; stale deadlines are no-ops.
        generation: u64,
    },
}

/// What a shard hands to a peer at a window barrier.
#[derive(Debug)]
pub(crate) enum HandoffPayload {
    /// A fully formed event (a cross-shard `Deliver` or `PfcDeliver`).
    Event(Event),
    /// Arm the flow-liveness watchdog in the destination's shard (the
    /// receiver state the watchdog measures lives there).
    WatchdogArm {
        /// The flow to watch.
        flow: FlowId,
    },
}

/// A stamped cross-shard message, generated during one window and
/// admitted by `dest` at the next barrier. The stamp was drawn in
/// emission order at the source, so the destination dispatches it at
/// exactly the `(time, stamp)` key the serial engine would have used.
#[derive(Debug)]
pub(crate) struct Handoff {
    /// Fire time (provably ≥ the next window's start).
    pub(crate) at: SimTime,
    /// Admission stamp carried verbatim across the shard boundary.
    pub(crate) stamp: Stamp,
    /// Receiving shard.
    pub(crate) dest: u32,
    /// The message.
    pub(crate) payload: HandoffPayload,
}

/// Spatial-sharding context: which shard this world is, the global
/// node→shard map, and the outbox of cross-shard messages generated in
/// the current window. `None` for the serial engine.
#[derive(Debug)]
struct ShardCtx {
    part: Arc<Partition>,
    shard: u32,
    outbox: Vec<Handoff>,
}

/// The complete simulated fabric.
#[derive(Debug)]
pub struct World {
    topo: Topology,
    routes: RoutingTable,
    cfg: FabricConfig,
    switches: Vec<Option<SharedMemorySwitch>>,
    hosts: Vec<Option<Host>>,
    flows: Vec<FlowState>,
    flow_ix: FlowTable,
    fct: Vec<FctRecord>,
    /// Per-switch occupancy series, indexed by `NodeId::index()` (empty
    /// for hosts and for switches never sampled).
    occupancy: Vec<OccupancySeries>,
    done_flows: usize,
    counted_done: Vec<bool>,
    trace: TraceHandle,
    /// Per-link liveness, indexed by `LinkId::index()`.
    link_up: Vec<bool>,
    /// Per-link bit-error rate (0.0 = clean), indexed like `link_up`.
    link_ber: Vec<f64>,
    /// Corruption-loss RNG streams, one per `(link, direction)` so each
    /// delivery direction draws from its own stream regardless of how
    /// the fabric is sharded (indexed `link.index() * 2 + dir`, where
    /// dir 0 receives at `link.a`). Only populated when the fault
    /// schedule contains a corruption window — zero-fault runs make no
    /// draws and allocate nothing.
    fault_rng: Vec<SimRng>,
    /// Packets lost on the wire (dead link or corruption) — charged to
    /// the fabric, not any switch's admission counters.
    wire_drops: DropCounters,
    /// Outstanding storm-watchdog deadlines, indexed
    /// `[NodeId::index()][QueueIndex::flat()]` (empty for hosts). Each
    /// slot holds the newest armed deadline's handle plus the
    /// pause-episode generation it was armed for.
    watchdog_timers: Vec<Vec<Option<(TimerHandle, u64)>>>,
    /// Reusable buffer for the packets a transport endpoint emits while
    /// handling one event. Taken (`std::mem::take`), drained, and put
    /// back by each handler, so the per-packet hot path never allocates.
    outs_scratch: Vec<Packet>,
    /// Packet-train coalescing counters (all zero when trains are off).
    train_stats: TrainStats,
    /// IRN transport counters (all zero in a DCQCN-only run).
    irn: IrnCounters,
    /// DCQCN senders found stranded (see [`World::handle_rdma_pace`]) —
    /// a liveness defect that must stay zero.
    rdma_stranded: u64,
    /// Liveness-watchdog stall episodes across all RDMA flows.
    flow_stalls: u64,
    /// Spatial-sharding context (`None` for the serial engine).
    shard: Option<ShardCtx>,
    /// Deliveries orphaned by a train split, keyed `(flow, seq,
    /// fire-time)`. The revoked leg's packet went back to the NIC
    /// queue, so when its already-scheduled `Deliver` fires it is
    /// swallowed here instead of duplicating the packet on the wire.
    /// Exact fire-time matching distinguishes the orphan from any
    /// later retransmission of the same `(flow, seq)`. Empty except in
    /// the short window between a split and the orphan's fire time, so
    /// a linear scan is free on the hot path.
    suppressed_delivers: Vec<(FlowId, u64, SimTime)>,
}

impl World {
    fn new(topo: Topology, cfg: FabricConfig) -> World {
        World::build(topo, cfg, None)
    }

    /// Builds one shard's slice of the fabric: routing, topology and
    /// link-fault state are replicated (they must mutate identically in
    /// every shard), while switches and hosts are constructed only for
    /// the nodes this shard owns.
    pub(crate) fn new_sharded(
        topo: Topology,
        cfg: FabricConfig,
        part: Arc<Partition>,
        shard: u32,
    ) -> World {
        World::build(
            topo,
            cfg,
            Some(ShardCtx {
                part,
                shard,
                outbox: Vec::new(),
            }),
        )
    }

    fn build(topo: Topology, cfg: FabricConfig, shard: Option<ShardCtx>) -> World {
        let routes = RoutingTable::shortest_paths(&topo);
        let n = topo.node_count();
        let trace = TraceHandle::from_config(&cfg.trace);
        let owned = |id: NodeId| {
            shard
                .as_ref()
                .is_none_or(|ctx| ctx.part.shard_of(id) == ctx.shard as usize)
        };
        let mut switches: Vec<Option<SharedMemorySwitch>> = (0..n).map(|_| None).collect();
        let mut hosts: Vec<Option<Host>> = (0..n).map(|_| None).collect();
        for node in topo.nodes() {
            if !owned(node.id) {
                continue;
            }
            match node.kind {
                dcn_net::NodeKind::Switch => {
                    let rates: Vec<BitRate> =
                        node.ports.iter().map(|&lid| topo.link(lid).rate).collect();
                    let mut sw = SharedMemorySwitch::new(
                        node.id,
                        cfg.switch.clone(),
                        rates,
                        cfg.policy.build(),
                        cfg.seed,
                    );
                    sw.set_trace(trace.clone());
                    // Size each port's headroom from its link: in-flight
                    // bytes over a pause round trip (2 × BDP) plus slack
                    // for the packets serializing at both ends when the
                    // XOFF lands. The configured value acts as a floor.
                    for (pix, &lid) in node.ports.iter().enumerate() {
                        let link = topo.link(lid);
                        let bdp = link.rate.bytes_over(link.propagation);
                        let auto = bdp * 2 + cfg.switch.mtu * 4;
                        let cap = auto.max(cfg.switch.headroom_per_queue);
                        sw.set_port_headroom(PortId::new(pix as u16), cap);
                    }
                    switches[node.id.index()] = Some(sw);
                }
                dcn_net::NodeKind::Host => {
                    let rate = topo.link(node.ports[0]).rate;
                    hosts[node.id.index()] = Some(Host::new(node.id, rate));
                }
            }
        }
        let watchdog_timers = topo
            .nodes()
            .iter()
            .map(|node| match node.kind {
                dcn_net::NodeKind::Switch => vec![None; node.ports.len() * Priority::COUNT],
                dcn_net::NodeKind::Host => Vec::new(),
            })
            .collect();
        let link_up = vec![true; topo.links().len()];
        let link_ber = vec![0.0; topo.links().len()];
        // One independent stream per (link, direction): corruption draws
        // then depend only on the receiving link end, never on how many
        // other links are corrupting or how the fabric is sharded.
        let has_corruption = cfg
            .faults
            .events()
            .iter()
            .any(|sf| matches!(sf.fault, FaultEvent::CorruptionStart { .. }));
        let fault_rng = if has_corruption {
            (0..topo.links().len() * 2)
                .map(|i| {
                    SimRng::seed_from_u64(
                        cfg.seed
                            ^ 0xFA01_7EC7_ED00_C0DE
                            ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        World {
            topo,
            routes,
            cfg,
            switches,
            hosts,
            flows: Vec::new(),
            flow_ix: FlowTable::new(),
            fct: Vec::new(),
            occupancy: vec![OccupancySeries::new(); n],
            done_flows: 0,
            counted_done: Vec::new(),
            trace,
            link_up,
            link_ber,
            fault_rng,
            wire_drops: DropCounters::new(),
            watchdog_timers,
            outs_scratch: Vec::new(),
            train_stats: TrainStats::default(),
            irn: IrnCounters::new(),
            rdma_stranded: 0,
            flow_stalls: 0,
            shard,
            suppressed_delivers: Vec::new(),
        }
    }

    /// Whether this world simulates `node` (always true for the serial
    /// engine; sharded worlds own a spatial slice of the topology).
    fn owns(&self, node: NodeId) -> bool {
        self.shard
            .as_ref()
            .is_none_or(|ctx| ctx.part.shard_of(node) == ctx.shard as usize)
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Completed flows so far.
    pub fn done_flows(&self) -> usize {
        self.done_flows
    }

    /// Registered flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// A switch by node id, if that node is a switch.
    pub fn switch(&self, id: NodeId) -> Option<&SharedMemorySwitch> {
        self.switches.get(id.index()).and_then(Option::as_ref)
    }

    /// The shared flight-recorder handle (disabled unless
    /// [`FabricConfig::trace`] enabled it).
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    pub(crate) fn register_flow(&mut self, spec: FlowSpec) -> usize {
        assert!(
            self.flow_ix.get(spec.id).is_none(),
            "duplicate flow id {}",
            spec.id
        );
        // The spec declares *what* the flow is; `cfg.rdma_transport`
        // decides *how* RDMA is carried. A `LossyRdma` spec class
        // requests IRN explicitly, regardless of the fabric default.
        let runtime = match spec.class {
            TrafficClass::Lossy => FlowRuntime::Tcp {
                sender: DctcpSender::new(
                    self.cfg.dctcp,
                    spec.id,
                    spec.src,
                    spec.dst,
                    spec.priority,
                    spec.size,
                ),
                receiver: DctcpReceiver::new(spec.id, spec.dst, spec.src, spec.priority, spec.size),
            },
            TrafficClass::Lossless if self.cfg.rdma_transport == RdmaTransport::Dcqcn => {
                let rate = self.topo.link(self.topo.node(spec.src).ports[0]).rate;
                FlowRuntime::Rdma {
                    sender: DcqcnSender::new(
                        self.cfg.dcqcn,
                        spec.id,
                        spec.src,
                        spec.dst,
                        spec.priority,
                        spec.size,
                        rate,
                    ),
                    receiver: DcqcnReceiver::new(
                        spec.id,
                        spec.dst,
                        spec.src,
                        spec.priority,
                        spec.size,
                    ),
                }
            }
            TrafficClass::Lossless | TrafficClass::LossyRdma => FlowRuntime::Irn {
                sender: IrnSender::new(
                    self.cfg.irn,
                    spec.id,
                    spec.src,
                    spec.dst,
                    spec.priority,
                    spec.size,
                ),
                receiver: IrnReceiver::new(spec.id, spec.dst, spec.src, spec.priority, spec.size),
            },
        };
        let is_irn = matches!(runtime, FlowRuntime::Irn { .. });
        if is_irn {
            self.irn.flows += 1;
        }
        let ix = self.flows.len();
        let ideal = self.ideal_fct(&spec, is_irn);
        self.flow_ix.insert(spec.id, ix);
        self.flows.push(FlowState {
            spec,
            runtime,
            timers: FlowTimers::default(),
            recorded: false,
            ideal,
            watchdog_progress: 0,
            stall_flagged: false,
        });
        self.counted_done.push(false);
        ix
    }

    /// Ideal FCT on an empty network: pipeline fill (per-hop propagation
    /// plus first-packet serialization) plus draining the remaining bytes
    /// at the bottleneck link. Evaluated at registration time, while
    /// every route is healthy; panicking here on a disconnected endpoint
    /// is a configuration error, not a runtime fault.
    fn ideal_fct(&self, spec: &FlowSpec, is_irn: bool) -> SimDuration {
        let (mtu, header) = if is_irn {
            (self.cfg.irn.mtu, self.cfg.irn.header)
        } else {
            match spec.class {
                TrafficClass::Lossy => (self.cfg.dctcp.mss, self.cfg.dctcp.header),
                TrafficClass::Lossless | TrafficClass::LossyRdma => {
                    (self.cfg.dcqcn.mtu, self.cfg.dcqcn.header)
                }
            }
        };
        let n_pkts = spec.size.div_ceil_by(Bytes::new(mtu));
        let total_wire = spec.size + header * n_pkts;
        let first_wire = Bytes::new(spec.size.as_u64().min(mtu)) + header;

        let mut node = spec.src;
        let mut fill = SimDuration::ZERO;
        let mut bottleneck = BitRate::from_gbps(100_000);
        let mut hops = 0;
        while node != spec.dst {
            let port = self
                .routes
                .next_port(node, spec.dst, spec.id)
                .expect("flow endpoints must be connected");
            let link = self.topo.link_at(node, port);
            fill += link.propagation + link.rate.tx_time(first_wire);
            bottleneck = bottleneck.min(link.rate);
            node = link.peer_of(node).expect("port's own link").node;
            hops += 1;
            assert!(hops <= 64, "routing loop computing ideal FCT");
        }
        fill + bottleneck.tx_time(total_wire.saturating_sub(first_wire))
    }

    /// Whether this world is responsible for counting flow `ix` toward
    /// the done total. Exactly one shard counts each flow: the one
    /// owning the endpoint whose local state flips at the same event
    /// where the serial `is_done()` flips (see [`World::flow_done_proxy`]).
    fn counts_done_here(&self, ix: usize) -> bool {
        let Some(ctx) = &self.shard else {
            return true;
        };
        let spec = &self.flows[ix].spec;
        let counting = match self.flows[ix].runtime {
            FlowRuntime::Rdma { .. } => spec.dst,
            FlowRuntime::Tcp { .. } | FlowRuntime::Irn { .. } => spec.src,
        };
        ctx.part.shard_of(counting) == ctx.shard as usize
    }

    /// Completion as observable from the counting endpoint's half of the
    /// flow. A DCQCN receiver only finishes after the sender drained
    /// (there is no retransmission on the lossless path), and a DCTCP or
    /// IRN sender only completes on the final cumulative ACK, which the
    /// receiver emits after taking the last byte — so each proxy flips
    /// at the *same event* as the serial two-sided `is_done()`, even
    /// when the far endpoint is a never-touched replica in another
    /// shard. The serial engine keeps the exact predicate.
    fn flow_done_proxy(&self, ix: usize) -> bool {
        if self.shard.is_none() {
            return self.flows[ix].is_done();
        }
        match &self.flows[ix].runtime {
            FlowRuntime::Rdma { receiver, .. } => receiver.finished_at().is_some(),
            FlowRuntime::Tcp { sender, .. } => sender.is_completed(),
            FlowRuntime::Irn { sender, .. } => sender.is_completed(),
        }
    }

    fn update_done(&mut self, ix: usize) {
        if !self.counted_done[ix] && self.counts_done_here(ix) && self.flow_done_proxy(ix) {
            self.counted_done[ix] = true;
            self.done_flows += 1;
        }
    }

    fn record_if_finished(&mut self, ix: usize) {
        if self.flows[ix].recorded {
            return;
        }
        if let Some(finish) = self.flows[ix].finished_at() {
            let spec = self.flows[ix].spec;
            let ideal = self.flows[ix].ideal;
            self.fct.push(FctRecord {
                flow: spec.id,
                class: spec.class,
                size: spec.size,
                start: spec.start,
                finish,
                ideal,
            });
            self.flows[ix].recorded = true;
        }
    }

    // ---- scheduling helpers -------------------------------------------

    /// The far end of the link at `(node, port)`, or `None` (after
    /// recording a `Defect` trace event) on a wiring inconsistency. A
    /// defect here must not abort the run: under fault injection a
    /// single bad lookup would otherwise poison a whole sweep worker.
    fn peer_or_defect(&self, now: SimTime, node: NodeId, port: PortId) -> Option<LinkEnd> {
        match self.topo.link_at(node, port).peer_of(node) {
            Ok(end) => Some(end),
            Err(_) => {
                let t_node = node.index() as u32;
                self.trace.record_with(now, || TraceEvent::Defect {
                    what: "link_peer_not_attached",
                    node: t_node,
                    flow: 0,
                });
                None
            }
        }
    }

    /// Schedules `ev` (destined for `dest`) locally when this world owns
    /// the node, otherwise stamps it with the pop's next emission stamp
    /// and queues a handoff for the owner shard. Drawing the stamp in
    /// emission order means the receiving shard admits the event at
    /// exactly the `(time, stamp)` key the serial engine's `(time, seq)`
    /// insertion would have produced.
    fn schedule_or_handoff(
        &mut self,
        at: SimTime,
        dest: NodeId,
        ev: Event,
        q: &mut EventQueue<Event>,
    ) {
        if self.owns(dest) {
            q.schedule_at(at, ev);
            return;
        }
        let stamp = q.next_child_stamp();
        let ctx = self.shard.as_mut().expect("unowned node implies sharding");
        ctx.outbox.push(Handoff {
            at,
            stamp,
            dest: ctx.part.shard_of(dest) as u32,
            payload: HandoffPayload::Event(ev),
        });
    }

    fn schedule_switch_tx(
        &mut self,
        now: SimTime,
        node: NodeId,
        tx: TxStart,
        q: &mut EventQueue<Event>,
    ) {
        let link = *self.topo.link_at(node, tx.port);
        // The TxComplete must be scheduled even on a wiring defect, or
        // the port would stay busy forever.
        q.schedule_after(
            now,
            tx.serialize,
            Event::SwitchTxComplete {
                node,
                port: tx.port,
            },
        );
        let Some(peer) = self.peer_or_defect(now, node, tx.port) else {
            return;
        };
        self.schedule_or_handoff(
            now + tx.serialize + link.propagation,
            peer.node,
            Event::Deliver {
                node: peer.node,
                in_port: peer.port,
                packet: tx.packet,
            },
            q,
        );
    }

    fn schedule_host_tx(
        &mut self,
        now: SimTime,
        host: NodeId,
        tx: TxStart,
        q: &mut EventQueue<Event>,
    ) {
        let link = self.topo.link_at(host, PortId::new(0));
        q.schedule_after(now, tx.serialize, Event::HostTxComplete { host });
        let Some(peer) = self.peer_or_defect(now, host, PortId::new(0)) else {
            return;
        };
        // A host's only link reaches its ToR, which the partition keeps
        // in the same shard — host transmissions never cross.
        debug_assert!(self.owns(peer.node), "host split from its ToR");
        q.schedule_after(
            now,
            tx.serialize + link.propagation,
            Event::Deliver {
                node: peer.node,
                in_port: peer.port,
                packet: tx.packet,
            },
        );
    }

    fn emit_pfc(&mut self, now: SimTime, node: NodeId, emit: PfcEmit, q: &mut EventQueue<Event>) {
        let link = *self.topo.link_at(node, emit.port);
        let Some(peer) = self.peer_or_defect(now, node, emit.port) else {
            return;
        };
        // PFC frames are tiny control frames that bypass data queues:
        // modelled with propagation delay only.
        self.schedule_or_handoff(
            now + link.propagation,
            peer.node,
            Event::PfcDeliver {
                node: peer.node,
                in_port: peer.port,
                frame: emit.frame,
            },
            q,
        );
    }

    /// Starts the next host transmission if the NIC is idle and an
    /// unpaused priority has a packet — as a packet train when enabled
    /// and eligible, otherwise as the legacy per-packet
    /// `HostTxComplete`/`Deliver` pair. With trains disabled this makes
    /// exactly the calls the legacy path made, in the same order, so
    /// event sequence numbers (and digests) are unchanged.
    fn host_start(&mut self, now: SimTime, host: NodeId, q: &mut EventQueue<Event>) {
        let h = self.hosts[host.index()].as_mut().expect("not a host");
        let Some(tx) = h.try_start() else {
            return;
        };
        if self.cfg.train.enable {
            self.host_start_train(now, host, tx, q);
        } else {
            self.schedule_host_tx(now, host, tx, q);
        }
    }

    /// Commits a packet train if the NIC is uncontended (the started
    /// packet's priority is the *only* non-empty one) and deep enough,
    /// else falls back to the per-packet pair. Legs serialize
    /// back-to-back; each leg's `Deliver` is booked up front as a plain
    /// heap event at the exact time the per-packet path would have
    /// fired it — the same per-packet scheduling cost as unbatched —
    /// and one wheel-armed `HostTrainDone` replaces the N
    /// `HostTxComplete`s. Only the completion rides the wheel: it is
    /// the one entry a split must cancel; revoked leg deliveries are
    /// instead suppressed at dispatch (see [`World::split_train`]).
    fn host_start_train(
        &mut self,
        now: SimTime,
        host: NodeId,
        tx: TxStart,
        q: &mut EventQueue<Event>,
    ) {
        let max_burst = self.cfg.train.max_burst;
        let min_queue = self.cfg.train.min_queue;
        let prio = tx.packet.priority;
        let link = *self.topo.link_at(host, PortId::new(0));
        let peer = self.peer_or_defect(now, host, PortId::new(0));
        let h = self.hosts[host.index()].as_mut().expect("not a host");
        let eligible = max_burst >= 2
            && peer.is_some()
            && h.sole_nonempty() == Some(prio)
            && h.queued_at(prio) + 1 >= min_queue;
        if !eligible {
            self.schedule_host_tx(now, host, tx, q);
            return;
        }
        let peer = peer.expect("checked");
        let prop = link.propagation;
        let mut legs = Vec::with_capacity(max_burst.min(h.queued_at(prio) + 1));
        let mut at = now;
        let mut commit = |leg_packet: Packet, serialize, start, legs: &mut Vec<TrainLeg>| {
            let deliver_at = start + serialize + prop;
            legs.push(TrainLeg {
                start,
                serialize,
                deliver_at,
                packet: leg_packet.clone(),
            });
            q.schedule_at(
                deliver_at,
                Event::Deliver {
                    node: peer.node,
                    in_port: peer.port,
                    packet: leg_packet,
                },
            );
        };
        commit(tx.packet, tx.serialize, at, &mut legs);
        at += tx.serialize;
        while legs.len() < max_burst {
            let Some(qp) = h.pop_front(prio) else {
                break;
            };
            let serialize = h.tx_time(qp.packet.size);
            commit(qp.packet, serialize, at, &mut legs);
            at += serialize;
        }
        let n_legs = legs.len() as u64;
        let done = q.schedule_timer_at(at, Event::HostTrainDone { host });
        h.set_train(Train { prio, legs, done });
        self.train_stats.trains += 1;
        self.train_stats.legs += n_legs;
    }

    /// Splits the active train at `now`: legs already serializing or
    /// departed keep their booked `Deliver`s; unstarted legs are
    /// revoked — their stored packet copies go back to the queue front
    /// in order and their already-scheduled `Deliver`s are marked for
    /// suppression at dispatch (matched by flow, sequence *and* exact
    /// fire time, so a retransmission of the same packet can never be
    /// eaten in the orphan's place). The leg currently on the wire
    /// completes through a plain `HostTxComplete`, after which normal
    /// scheduling sees the pause or the competing priority. A leg whose
    /// start time equals `now` counts as started — ties go to the wire,
    /// matching the per-packet path when the completion dispatches
    /// first.
    fn split_train(&mut self, now: SimTime, host: NodeId, q: &mut EventQueue<Event>) {
        let h = self.hosts[host.index()].as_mut().expect("not a host");
        let Some(mut train) = h.take_train() else {
            return;
        };
        q.cancel_timer(train.done);
        let cur = train
            .legs
            .iter()
            .rposition(|l| l.start <= now)
            .expect("leg 0 starts at commit time");
        let revoked = train.legs.split_off(cur + 1);
        for leg in revoked.into_iter().rev() {
            self.suppressed_delivers
                .push((leg.packet.flow, leg.packet.seq, leg.deliver_at));
            h.requeue_front(leg.packet);
        }
        let cur = &train.legs[cur];
        h.set_in_flight_leg(cur, train.prio);
        q.schedule_after(cur.start, cur.serialize, Event::HostTxComplete { host });
        self.train_stats.splits += 1;
    }

    fn host_inject(
        &mut self,
        now: SimTime,
        host: NodeId,
        packet: Packet,
        q: &mut EventQueue<Event>,
    ) {
        let h = self.hosts[host.index()].as_mut().expect("not a host");
        // A competing-priority arrival breaks the train's "sole
        // non-empty priority" invariant (round-robin would interleave
        // it): split before enqueueing so revoked legs land back in
        // front in FIFO order. Same-priority arrivals just queue behind
        // the committed legs.
        if h.train_priority().is_some_and(|p| p != packet.priority) {
            self.split_train(now, host, q);
        }
        let h = self.hosts[host.index()].as_mut().expect("not a host");
        h.enqueue(packet);
        self.host_start(now, host, q);
    }

    // ---- event handlers ------------------------------------------------

    fn start_flow(&mut self, now: SimTime, ix: usize, q: &mut EventQueue<Event>) {
        let spec = self.flows[ix].spec;
        match &mut self.flows[ix].runtime {
            FlowRuntime::Tcp { sender, .. } => {
                let mut burst = std::mem::take(&mut self.outs_scratch);
                sender.take_ready(now, &mut burst);
                let rto = sender.rto();
                self.flows[ix].timers.rto =
                    Some(q.schedule_timer_after(now, rto, Event::Rto { flow: spec.id }));
                for p in burst.drain(..) {
                    self.host_inject(now, spec.src, p, q);
                }
                self.outs_scratch = burst;
            }
            FlowRuntime::Rdma { sender, .. } => {
                if let Some(p) = sender.emit_next(now) {
                    let gap = sender.gap_for(p.size);
                    q.schedule_after(now, gap, Event::RdmaPace { flow: spec.id });
                    self.host_inject(now, spec.src, p, q);
                }
            }
            FlowRuntime::Irn { sender, .. } => {
                let mut burst = std::mem::take(&mut self.outs_scratch);
                sender.take_ready(now, &mut burst);
                let rto = sender.rto();
                self.flows[ix].timers.rto =
                    Some(q.schedule_timer_after(now, rto, Event::Rto { flow: spec.id }));
                for p in burst.drain(..) {
                    self.host_inject(now, spec.src, p, q);
                }
                self.outs_scratch = burst;
            }
        }
        // Opt-in liveness watchdog covers RDMA flows of both universes
        // (DCQCN and IRN); DCTCP's own RTO machinery already guarantees
        // liveness for the lossy class. The watchdog measures receiver
        // progress, so when the fabric is sharded the timer must live in
        // the destination's shard — a flow whose endpoints straddle a
        // boundary hands the arm across (legal because the sharded
        // executor requires `interval ≥ lookahead`).
        if let Some(interval) = self.cfg.flow_watchdog {
            if !matches!(self.flows[ix].runtime, FlowRuntime::Tcp { .. }) {
                if self.owns(spec.dst) {
                    self.flows[ix].timers.flow_watchdog = Some(q.schedule_timer_after(
                        now,
                        interval,
                        Event::FlowWatchdog { flow: spec.id },
                    ));
                } else {
                    let stamp = q.next_child_stamp();
                    let ctx = self.shard.as_mut().expect("unowned node implies sharding");
                    ctx.outbox.push(Handoff {
                        at: now + interval,
                        stamp,
                        dest: ctx.part.shard_of(spec.dst) as u32,
                        payload: HandoffPayload::WatchdogArm { flow: spec.id },
                    });
                }
            }
        }
    }

    fn switch_receive(
        &mut self,
        now: SimTime,
        node: NodeId,
        in_port: PortId,
        packet: Packet,
        q: &mut EventQueue<Event>,
    ) {
        let sw = self.switches[node.index()].as_mut().expect("not a switch");
        let Some(out_port) = self.routes.next_port(node, packet.dst, packet.flow) else {
            // Every candidate next hop is down (or the destination is
            // unreachable): a counted drop, not a panic, so the fabric
            // survives injected failures. TCP retransmits after
            // recovery; a lossless flow hit here becomes a victim flow.
            sw.record_forwarding_drop(now, &packet, in_port, TraceDropCause::NoRoute);
            return;
        };
        let res = sw.receive(now, packet, in_port, out_port);
        if let Some(e) = res.pfc {
            self.emit_pfc(now, node, e, q);
        }
        if let Some(tx) = res.tx {
            self.schedule_switch_tx(now, node, tx, q);
        }
        if let Some(nack) = res.nack {
            // An out-of-order lossy-RDMA arrival: the switch generated an
            // IRN NACK toward the sender. Inject it here as if it entered
            // on the same port the offending data packet used. Recursion
            // is depth-1: only Data packets trigger NACK generation.
            self.irn.nacks_switch += 1;
            self.switch_receive(now, node, in_port, nack, q);
        }
        // Other drops need no action here: lossy transports recover via
        // dup-ACKs/RTO, and lossless drops are counted as config failures.
    }

    fn host_receive(
        &mut self,
        now: SimTime,
        host: NodeId,
        packet: Packet,
        q: &mut EventQueue<Event>,
    ) {
        debug_assert_eq!(packet.dst, host, "misrouted packet");
        let Some(ix) = self.flow_ix.get(packet.flow) else {
            return; // stray packet from an unregistered flow
        };
        let mut outs = std::mem::take(&mut self.outs_scratch);
        let mut rearm_rto: Option<SimDuration> = None;
        let mut cancel_rto = false;
        let mut arm_rp: Option<(SimDuration, SimDuration)> = None;
        let mut irn_watermark: Option<u64> = None;

        match (&mut self.flows[ix].runtime, packet.kind) {
            (FlowRuntime::Tcp { receiver, .. }, PacketKind::Data) => {
                let ack = receiver.on_data(now, packet.seq, packet.payload, packet.ecn.is_ce());
                outs.push(ack);
            }
            (
                FlowRuntime::Tcp { sender, .. },
                PacketKind::Ack {
                    cumulative_ack,
                    ecn_echo,
                },
            ) => {
                let action = sender.on_ack(now, cumulative_ack, ecn_echo, &mut outs);
                let t_flow = packet.flow.as_u64();
                if let Some(tr) = action.transition {
                    let ev = match tr {
                        TcpEvent::EnterRecovery { recover_seq } => TraceEvent::TcpEnterRecovery {
                            flow: t_flow,
                            recover_seq,
                        },
                        TcpEvent::PartialAckRetransmit { snd_una } => {
                            TraceEvent::TcpPartialAckRetransmit {
                                flow: t_flow,
                                snd_una,
                            }
                        }
                        TcpEvent::ExitRecovery => TraceEvent::TcpExitRecovery { flow: t_flow },
                    };
                    self.trace.record_with(now, || ev);
                }
                if self.trace.is_enabled() {
                    let cwnd = sender.cwnd() as u64;
                    let ssthresh = if sender.ssthresh() == f64::MAX {
                        u64::MAX
                    } else {
                        sender.ssthresh() as u64
                    };
                    let in_recovery = sender.in_recovery();
                    self.trace.record_with(now, || TraceEvent::TcpCwnd {
                        flow: t_flow,
                        cwnd,
                        ssthresh,
                        in_recovery,
                    });
                }
                if action.rearm_timer {
                    rearm_rto = Some(sender.rto());
                } else if action.completed {
                    // Last byte ACKed: retire the outstanding deadline
                    // instead of letting it fire as a stale no-op.
                    cancel_rto = true;
                }
            }
            (FlowRuntime::Rdma { receiver, .. }, PacketKind::Data) => {
                if let Some(cnp) = receiver.on_data(now, packet.payload, packet.ecn.is_ce()) {
                    outs.push(cnp);
                }
            }
            (FlowRuntime::Irn { receiver, .. }, PacketKind::Data) => {
                let fb = receiver.on_data(now, packet.seq, packet.payload, packet.ecn.is_ce());
                if let PacketKind::Nack { nack_seq, .. } = fb.kind {
                    // A new gap at the receiver that no switch on the
                    // path spotted first (e.g. the loss was on the
                    // last hop).
                    self.irn.nacks_receiver += 1;
                    let t_flow = packet.flow.as_u64();
                    let t_node = host.index() as u32;
                    self.trace.record_with(now, || TraceEvent::IrnNack {
                        flow: t_flow,
                        nack_seq,
                        node: t_node,
                        from_switch: false,
                    });
                }
                outs.push(fb);
            }
            (FlowRuntime::Irn { sender, .. }, PacketKind::Ack { cumulative_ack, .. }) => {
                irn_watermark = Some(sender.snd_max());
                let action = sender.on_ack(now, cumulative_ack, &mut outs);
                if action.rearm_timer {
                    rearm_rto = Some(sender.rto());
                } else if action.completed {
                    cancel_rto = true;
                }
            }
            (
                FlowRuntime::Irn { sender, .. },
                PacketKind::Nack {
                    nack_seq,
                    cumulative_ack,
                },
            ) => {
                irn_watermark = Some(sender.snd_max());
                let action = sender.on_nack(now, nack_seq, cumulative_ack, &mut outs);
                if action.rearm_timer {
                    rearm_rto = Some(sender.rto());
                } else if action.completed {
                    cancel_rto = true;
                }
            }
            (FlowRuntime::Rdma { sender, .. }, PacketKind::Cnp) => {
                if sender.on_cnp(now) {
                    let cfg = sender.config();
                    arm_rp = Some((cfg.alpha_timer, cfg.rate_timer));
                }
                let t_flow = packet.flow.as_u64();
                let rate_bps = sender.rate().as_bps();
                self.trace.record_with(now, || TraceEvent::RdmaRate {
                    flow: t_flow,
                    rate_bps,
                });
            }
            // Cross-protocol packets (e.g. an ACK for an RDMA flow)
            // indicate a wiring bug or a corrupted delivery. Recorded
            // as a Defect and dropped rather than panicking, so one bad
            // packet cannot abort a whole sweep worker.
            _ => {
                let t_flow = packet.flow.as_u64();
                let t_node = host.index() as u32;
                self.trace.record_with(now, || TraceEvent::Defect {
                    what: "unexpected_packet_kind",
                    node: t_node,
                    flow: t_flow,
                });
                outs.clear();
                self.outs_scratch = outs;
                return;
            }
        }

        if let Some(watermark) = irn_watermark {
            self.count_irn_retransmits(now, &outs, watermark);
        }
        self.record_if_finished(ix);
        self.update_done(ix);

        let flow = packet.flow;
        if let Some(rto) = rearm_rto {
            // True re-arm: the old deadline is removed from the wheel
            // (no tombstone left behind) and a fresh one armed at the
            // exact queue position where a replacement used to be
            // scheduled, so sequence-number allocation is unchanged.
            let timers = &mut self.flows[ix].timers;
            if let Some(h) = timers.rto.take() {
                q.cancel_timer(h);
            }
            timers.rto = Some(q.schedule_timer_after(now, rto, Event::Rto { flow }));
        } else if cancel_rto {
            if let Some(h) = self.flows[ix].timers.rto.take() {
                q.cancel_timer(h);
            }
        }
        if let Some((alpha_after, rate_after)) = arm_rp {
            let timers = &mut self.flows[ix].timers;
            if let Some(h) = timers.alpha.take() {
                q.cancel_timer(h);
            }
            if let Some(h) = timers.rate.take() {
                q.cancel_timer(h);
            }
            timers.alpha = Some(q.schedule_timer_after(
                now,
                alpha_after,
                Event::RpTimer {
                    flow,
                    kind: RpTimerKind::Alpha,
                },
            ));
            timers.rate = Some(q.schedule_timer_after(
                now,
                rate_after,
                Event::RpTimer {
                    flow,
                    kind: RpTimerKind::Rate,
                },
            ));
        }
        for p in outs.drain(..) {
            self.host_inject(now, host, p, q);
        }
        self.outs_scratch = outs;
    }

    /// Counts and traces the retransmissions in an IRN sender's output
    /// burst: any data packet at a sequence below the sender's pre-call
    /// `snd_max` re-covers previously sent bytes. Called with the burst
    /// produced by `on_ack`/`on_nack`/`on_timeout`, so every counted
    /// retransmission is causally downstream of a NACK or RTO event —
    /// the invariant the flight-recorder causality check verifies.
    fn count_irn_retransmits(&mut self, now: SimTime, outs: &[Packet], watermark: u64) {
        for p in outs {
            if p.is_data() && p.seq < watermark {
                self.irn.retransmitted_packets += 1;
                self.irn.retransmitted_bytes += p.payload.as_u64();
                let t_flow = p.flow.as_u64();
                let t_seq = p.seq;
                self.trace.record_with(now, || TraceEvent::IrnRetransmit {
                    flow: t_flow,
                    seq: t_seq,
                });
            }
        }
    }

    fn handle_rdma_pace(&mut self, now: SimTime, flow: FlowId, q: &mut EventQueue<Event>) {
        let Some(ix) = self.flow_ix.get(flow) else {
            return;
        };
        let spec = self.flows[ix].spec;
        let FlowRuntime::Rdma { sender, .. } = &mut self.flows[ix].runtime else {
            return;
        };
        if let Some(p) = sender.emit_next(now) {
            let gap = sender.gap_for(p.size);
            q.schedule_after(now, gap, Event::RdmaPace { flow });
            self.host_inject(now, spec.src, p, q);
        } else {
            // Dropping the pacing chain is only legal once every payload
            // byte has been emitted (retransmission is not modelled for
            // the lossless class; CNPs only modulate the rate). A sender
            // with bytes still unsent and no future RdmaPace scheduled
            // would be silently stranded — flag it loudly so a future
            // sender change can't stall lossless flows undetected.
            let stranded = sender.has_more();
            debug_assert!(
                !stranded,
                "DCQCN sender of flow {flow} stranded at snd_nxt={} with no pacing event",
                sender.snd_nxt(),
            );
            if stranded {
                self.rdma_stranded += 1;
                let t_flow = flow.as_u64();
                let snd_nxt = sender.snd_nxt();
                self.trace.record_with(now, || TraceEvent::RdmaStranded {
                    flow: t_flow,
                    snd_nxt,
                });
            }
        }
        self.update_done(ix);
    }

    fn handle_rto(&mut self, now: SimTime, flow: FlowId, q: &mut EventQueue<Event>) {
        let Some(ix) = self.flow_ix.get(flow) else {
            return;
        };
        let spec = self.flows[ix].spec;
        // Firing consumed the wheel entry; the stored handle is dead.
        self.flows[ix].timers.rto = None;
        let mut outs = std::mem::take(&mut self.outs_scratch);
        // A wheel timer only fires while live, so every arrival here is
        // a real timeout; `fired` records exactly the RTOs that fired.
        let mut fired: Option<(SimDuration, u32)> = None;
        let mut irn_watermark: Option<u64> = None;
        match &mut self.flows[ix].runtime {
            FlowRuntime::Tcp { sender, .. } => {
                let action = sender.on_timeout(now, &mut outs);
                if action.rearm_timer {
                    fired = Some((sender.rto(), sender.backoff()));
                }
            }
            FlowRuntime::Irn { sender, .. } => {
                irn_watermark = Some(sender.snd_max());
                let action = sender.on_timeout(now, &mut outs);
                if action.rearm_timer {
                    fired = Some((sender.rto(), sender.backoff()));
                    self.irn.rto_fires += 1;
                }
            }
            FlowRuntime::Rdma { .. } => {
                self.outs_scratch = outs;
                return;
            }
        }
        if let Some((rto, backoff)) = fired {
            let t_flow = flow.as_u64();
            self.trace.record_with(now, || TraceEvent::RtoFire {
                flow: t_flow,
                backoff,
                next_rto_ns: rto.as_nanos(),
            });
            self.flows[ix].timers.rto = Some(q.schedule_timer_after(now, rto, Event::Rto { flow }));
        }
        if let Some(watermark) = irn_watermark {
            self.count_irn_retransmits(now, &outs, watermark);
        }
        for p in outs.drain(..) {
            self.host_inject(now, spec.src, p, q);
        }
        self.outs_scratch = outs;
    }

    /// Opt-in RDMA liveness watchdog: fires every `flow_watchdog`
    /// interval per unfinished RDMA flow, comparing receiver progress
    /// against the previous fire. A whole interval with zero new
    /// in-order bytes is one stall *episode* — counted once, and again
    /// only after progress resumes and stalls anew.
    fn handle_flow_watchdog(&mut self, now: SimTime, flow: FlowId, q: &mut EventQueue<Event>) {
        let Some(ix) = self.flow_ix.get(flow) else {
            return;
        };
        // Firing consumed the wheel entry; the stored handle is dead.
        self.flows[ix].timers.flow_watchdog = None;
        // The proxy, not `is_done()`: in a sharded world the far half of
        // a straddling flow is an untouched replica (e.g. a never-sending
        // sender) that would keep the exact predicate false forever and
        // turn every finished flow into a phantom stall.
        if self.flow_done_proxy(ix) {
            return;
        }
        let received = self.flows[ix].received();
        if received > self.flows[ix].watchdog_progress {
            self.flows[ix].watchdog_progress = received;
            self.flows[ix].stall_flagged = false;
        } else if !self.flows[ix].stall_flagged {
            self.flows[ix].stall_flagged = true;
            self.flow_stalls += 1;
            let t_flow = flow.as_u64();
            self.trace.record_with(now, || TraceEvent::FlowStalled {
                flow: t_flow,
                received,
            });
        }
        let interval = self
            .cfg
            .flow_watchdog
            .expect("watchdog fired while disabled");
        self.flows[ix].timers.flow_watchdog =
            Some(q.schedule_timer_after(now, interval, Event::FlowWatchdog { flow }));
    }

    fn handle_rp_timer(
        &mut self,
        now: SimTime,
        flow: FlowId,
        kind: RpTimerKind,
        q: &mut EventQueue<Event>,
    ) {
        let Some(ix) = self.flow_ix.get(flow) else {
            return;
        };
        // Firing consumed the wheel entry; the stored handle is dead.
        match kind {
            RpTimerKind::Alpha => self.flows[ix].timers.alpha = None,
            RpTimerKind::Rate => self.flows[ix].timers.rate = None,
        }
        let FlowRuntime::Rdma { sender, .. } = &mut self.flows[ix].runtime else {
            return;
        };
        if sender.on_timer(kind) {
            let period = match kind {
                RpTimerKind::Alpha => sender.config().alpha_timer,
                RpTimerKind::Rate => sender.config().rate_timer,
            };
            let h = q.schedule_timer_after(now, period, Event::RpTimer { flow, kind });
            match kind {
                RpTimerKind::Alpha => self.flows[ix].timers.alpha = Some(h),
                RpTimerKind::Rate => self.flows[ix].timers.rate = Some(h),
            }
        }
    }

    fn handle_sample(&mut self, now: SimTime, q: &mut EventQueue<Event>) {
        for sw in self.switches.iter().flatten() {
            let occ = sw.occupancy();
            self.occupancy[sw.id().index()].push(now, occ);
        }
        if let Some(interval) = self.cfg.sample_interval {
            q.schedule_after(now, interval, Event::Sample);
        }
    }

    // ---- fault injection ----------------------------------------------

    /// Counts a packet lost on the wire (dead link or corruption) and
    /// records the drop in the trace against the receiving node.
    fn wire_drop(
        &mut self,
        now: SimTime,
        node: NodeId,
        in_port: PortId,
        packet: &Packet,
        cause: TraceDropCause,
    ) {
        match packet.class {
            TrafficClass::Lossless => self.wire_drops.record_lossless(packet.size),
            TrafficClass::Lossy => self.wire_drops.record_lossy(packet.size),
            TrafficClass::LossyRdma => self.wire_drops.record_lossy_rdma(packet.size),
        }
        let t_node = node.index() as u32;
        let t_port = in_port.index() as u16;
        let t_prio = packet.priority.index() as u8;
        let t_flow = packet.flow.as_u64();
        let t_seq = packet.seq;
        let t_size = packet.size.as_u64();
        let lossless = packet.class == TrafficClass::Lossless;
        self.trace.record_with(now, || TraceEvent::Drop {
            node: t_node,
            in_port: t_port,
            prio: t_prio,
            flow: t_flow,
            seq: t_seq,
            size: t_size,
            lossless,
            cause,
        });
    }

    /// Applies link faults to an arriving packet: delivery over a dead
    /// link is lost (events already on the wire cannot be retracted, so
    /// the check happens at arrival), and a corrupting link discards the
    /// packet with probability `1 - (1-ber)^bits`. Returns the packet
    /// if it survives. The fast path — every link up, no corruption —
    /// touches no RNG and is byte-identical to a faultless build.
    fn wire_filter(
        &mut self,
        now: SimTime,
        node: NodeId,
        in_port: PortId,
        packet: Packet,
    ) -> Option<Packet> {
        let l = *self.topo.link_at(node, in_port);
        let lid = l.id.index();
        if !self.link_up[lid] {
            self.wire_drop(now, node, in_port, &packet, TraceDropCause::LinkDown);
            return None;
        }
        let ber = self.link_ber[lid];
        if ber > 0.0 {
            let bits = (packet.size.as_u64() * 8).min(i32::MAX as u64) as i32;
            let survive = (1.0 - ber).powi(bits);
            // Draw from this delivery direction's own stream: the draw
            // sequence each packet sees is then independent of every
            // other link's traffic, so serial and sharded runs corrupt
            // the same packets.
            let dir = usize::from(l.a.node != node);
            if self.fault_rng[lid * 2 + dir].uniform_f64() >= survive {
                self.wire_drop(now, node, in_port, &packet, TraceDropCause::Corrupted);
                return None;
            }
        }
        Some(packet)
    }

    /// Routes a PFC frame into a switch, arming the storm watchdog on
    /// each new pause episode. Shared by real `PfcDeliver` events and
    /// injected stuck-pause faults so both follow identical semantics.
    fn switch_pfc(
        &mut self,
        now: SimTime,
        node: NodeId,
        port: PortId,
        frame: PfcFrame,
        q: &mut EventQueue<Event>,
    ) {
        let watchdog = self.cfg.switch.pfc_watchdog;
        let q_out = QueueIndex::new(port, frame.priority);
        let sw = self.switches[node.index()].as_mut().expect("switch");
        let was_paused = sw.mmu().egress_paused(q_out);
        let tx = sw.handle_pfc(now, port, frame);
        if frame.pause && !was_paused {
            if let Some(threshold) = watchdog {
                let generation = sw.pause_generation(q_out);
                let handle = q.schedule_timer_after(
                    now,
                    threshold,
                    Event::PfcWatchdog {
                        node,
                        port,
                        prio: frame.priority,
                        generation,
                    },
                );
                // This new episode bumped the generation, so any older
                // deadline still armed on this queue could only fire as
                // a stale no-op — cancelling it is behaviour-preserving.
                let slot = &mut self.watchdog_timers[node.index()][q_out.flat()];
                if let Some((old, _)) = slot.replace((handle, generation)) {
                    q.cancel_timer(old);
                }
            }
        } else if !frame.pause && was_paused {
            // Resumed: a later pause starts a fresh generation, so the
            // pending deadline can never fire meaningfully again.
            if let Some((old, _)) = self.watchdog_timers[node.index()][q_out.flat()].take() {
                q.cancel_timer(old);
            }
        }
        if let Some(tx) = tx {
            self.schedule_switch_tx(now, node, tx, q);
        }
    }

    /// Applies a PFC frame to a host NIC (all host pauses come from its
    /// single uplink port). Hosts have no storm watchdog — their ToR
    /// protects them.
    fn host_pfc(&mut self, now: SimTime, node: NodeId, frame: PfcFrame, q: &mut EventQueue<Event>) {
        let h = self.hosts[node.index()].as_mut().expect("host");
        h.set_paused(frame.priority, frame.pause);
        if frame.pause {
            // An XOFF of the train's own priority revokes every leg not
            // yet on the wire; pauses of other priorities cannot affect
            // a committed train (its legs are all one priority).
            if h.train_priority() == Some(frame.priority) {
                self.split_train(now, node, q);
            }
        } else {
            self.host_start(now, node, q);
        }
    }

    fn apply_fault(&mut self, now: SimTime, fault: FaultEvent, q: &mut EventQueue<Event>) {
        match fault {
            FaultEvent::LinkDown { link } => {
                let l = *self.topo.link(LinkId::new(link));
                self.link_up[l.id.index()] = false;
                self.routes.fail_link(&l);
                // Each switch endpoint discharges everything queued to
                // the dead port; freed shared buffer may release
                // pause thresholds, so forward any XONs it emits.
                // Host endpoints need nothing: their transmissions are
                // lost at delivery and transports recover via RTO.
                // Faults are replicated into every shard but each shard
                // discharges only the endpoints it owns; giving each
                // endpoint its own emission lane keeps the stamps of
                // endpoint-b's emissions ordered after endpoint-a's no
                // matter which subset a shard emits.
                for (lane, end) in [l.a, l.b].into_iter().enumerate() {
                    if q.stamps_enabled() {
                        q.set_stamp_lane(lane as u16);
                    }
                    if !self.owns(end.node) {
                        continue;
                    }
                    let emits = match self.switches[end.node.index()].as_mut() {
                        Some(sw) => sw.port_down(now, end.port),
                        None => Vec::new(),
                    };
                    for e in emits {
                        self.emit_pfc(now, end.node, e, q);
                    }
                }
            }
            FaultEvent::LinkUp { link } => {
                let l = *self.topo.link(LinkId::new(link));
                self.link_up[l.id.index()] = true;
                self.routes.restore_link(&l);
                // Port renegotiation resets PFC state on both ends
                // symmetrically: the switch forgets sent and received
                // pauses on that port; a host clears all its pauses
                // (they can only have come from this uplink). Lanes per
                // endpoint for the same reason as the link-down arm.
                for (lane, end) in [l.a, l.b].into_iter().enumerate() {
                    if q.stamps_enabled() {
                        q.set_stamp_lane(lane as u16);
                    }
                    if !self.owns(end.node) {
                        continue;
                    }
                    if self.switches[end.node.index()].is_some() {
                        // The reset forgets the port's pause state and any
                        // later pause starts a fresh generation, so every
                        // pending storm deadline on it is now a guaranteed
                        // no-op — cancel them all.
                        for prio in Priority::all() {
                            let flat = QueueIndex::new(end.port, prio).flat();
                            if let Some((h, _)) =
                                self.watchdog_timers[end.node.index()][flat].take()
                            {
                                q.cancel_timer(h);
                            }
                        }
                        let tx = self.switches[end.node.index()]
                            .as_mut()
                            .expect("checked")
                            .reset_port_pfc(now, end.port);
                        if let Some(tx) = tx {
                            self.schedule_switch_tx(now, end.node, tx, q);
                        }
                    } else if self.hosts[end.node.index()].is_some() {
                        for prio in Priority::all() {
                            self.hosts[end.node.index()]
                                .as_mut()
                                .expect("checked")
                                .set_paused(prio, false);
                        }
                        self.host_start(now, end.node, q);
                    }
                }
            }
            FaultEvent::CorruptionStart { link, ber } => {
                self.link_ber[LinkId::new(link).index()] = ber.clamp(0.0, 1.0);
            }
            FaultEvent::CorruptionEnd { link } => {
                self.link_ber[LinkId::new(link).index()] = 0.0;
            }
            FaultEvent::PauseStuck { node, port, prio } => {
                let target = NodeId::new(node);
                if !self.owns(target) {
                    return; // another shard injects this pause
                }
                let frame = PfcFrame::pause(Priority::new(prio));
                match self.topo.node(target).kind {
                    dcn_net::NodeKind::Switch => {
                        self.switch_pfc(now, target, PortId::new(port), frame, q);
                    }
                    dcn_net::NodeKind::Host => self.host_pfc(now, target, frame, q),
                }
            }
            FaultEvent::PauseRelease { node, port, prio } => {
                let target = NodeId::new(node);
                if !self.owns(target) {
                    return;
                }
                let frame = PfcFrame::resume(Priority::new(prio));
                match self.topo.node(target).kind {
                    dcn_net::NodeKind::Switch => {
                        // No-op pause-wise if the watchdog already
                        // force-resumed; may still start a blocked tx.
                        self.switch_pfc(now, target, PortId::new(port), frame, q);
                    }
                    dcn_net::NodeKind::Host => self.host_pfc(now, target, frame, q),
                }
            }
        }
    }

    // ---- sharded-executor hooks (crate-internal) ----------------------

    /// Drains the cross-shard messages generated since the last drain
    /// (empty for the serial engine).
    pub(crate) fn take_outbox(&mut self) -> Vec<Handoff> {
        match &mut self.shard {
            Some(ctx) => std::mem::take(&mut ctx.outbox),
            None => Vec::new(),
        }
    }

    /// Admits a handoff received at a window barrier, carrying its
    /// source-drawn stamp into this shard's queue verbatim.
    pub(crate) fn admit_handoff(&mut self, h: Handoff, q: &mut EventQueue<Event>) {
        match h.payload {
            HandoffPayload::Event(ev) => q.schedule_at_stamped(h.at, ev, h.stamp),
            HandoffPayload::WatchdogArm { flow } => {
                let Some(ix) = self.flow_ix.get(flow) else {
                    return;
                };
                let handle =
                    q.schedule_timer_at_stamped(h.at, Event::FlowWatchdog { flow }, h.stamp);
                self.flows[ix].timers.flow_watchdog = Some(handle);
            }
        }
    }

    /// The switches (at most two — only a link fault touches a pair)
    /// whose counters `ev`'s dispatch may mutate, restricted to the ones
    /// this shard owns.
    fn touched_switches(&self, ev: &Event) -> [Option<NodeId>; 2] {
        let own_switch = |n: NodeId| self.switches[n.index()].is_some().then_some(n);
        match ev {
            Event::Deliver { node, .. }
            | Event::PfcDeliver { node, .. }
            | Event::SwitchTxComplete { node, .. }
            | Event::PfcWatchdog { node, .. } => [own_switch(*node), None],
            Event::Fault { fault } => match *fault {
                FaultEvent::LinkDown { link } | FaultEvent::LinkUp { link } => {
                    let l = self.topo.link(LinkId::new(link));
                    [own_switch(l.a.node), own_switch(l.b.node)]
                }
                FaultEvent::PauseStuck { node, .. } | FaultEvent::PauseRelease { node, .. } => {
                    [own_switch(NodeId::new(node)), None]
                }
                _ => [None; 2],
            },
            _ => [None; 2],
        }
    }

    /// Captures every digest-relevant counter `ev` may mutate, taken by
    /// the sharded executor immediately before dispatching it.
    pub(crate) fn snap(&self, ev: &Event) -> PopSnapshot {
        let nodes = self.touched_switches(ev).map(|n| {
            n.map(|node| {
                let sw = self.switches[node.index()].as_ref().expect("owned switch");
                (node, sw.pfc_counters().clone(), *sw.drop_counters())
            })
        });
        PopSnapshot {
            nodes,
            wire: self.wire_drops,
            irn: self.irn,
            done: self.done_flows,
            fct_len: self.fct.len(),
        }
    }

    /// The digest-relevant mutations since `snap` (one dispatched
    /// event), or `None` if the event changed nothing the executor
    /// would have to revert past a stop key.
    pub(crate) fn delta_since(&self, snap: PopSnapshot) -> Option<PopDelta> {
        let mut any = false;
        let nodes = snap.nodes.map(|entry| {
            entry.and_then(|(node, pfc0, drops0)| {
                let sw = self.switches[node.index()].as_ref().expect("owned switch");
                let dpfc = sw.pfc_counters().since(&pfc0);
                let ddrops = sw.drop_counters().since(&drops0);
                if dpfc == PfcCounters::new() && ddrops == DropCounters::new() {
                    None
                } else {
                    any = true;
                    Some((node, dpfc, ddrops))
                }
            })
        });
        let wire = self.wire_drops.since(&snap.wire);
        let irn = self.irn.since(&snap.irn);
        let done_grew = self.done_flows > snap.done;
        let fct_grew = self.fct.len() > snap.fct_len;
        debug_assert!(self.done_flows - snap.done <= 1, "one completion per event");
        debug_assert!(self.fct.len() - snap.fct_len <= 1, "one record per event");
        if !any
            && wire == DropCounters::new()
            && irn == IrnCounters::new()
            && !done_grew
            && !fct_grew
        {
            return None;
        }
        Some(PopDelta {
            nodes,
            wire,
            irn,
            done_grew,
            fct_grew,
        })
    }

    /// Folds this world's order-independent counters (PFC, drops,
    /// occupancy, liveness diagnostics) into `r`. Shared by the serial
    /// result collection and the sharded merge.
    pub(crate) fn fold_counters_into(&self, r: &mut RunResults) {
        for sw in self.switches.iter().flatten() {
            r.pfc.merge(sw.pfc_counters());
            r.pfc_by_switch.insert(sw.id(), sw.pfc_counters().clone());
            r.drops.merge(sw.drop_counters());
        }
        r.drops.merge(&self.wire_drops);
        for (i, series) in self.occupancy.iter().enumerate() {
            if !series.is_empty() {
                r.occupancy.insert(NodeId::new(i as u32), series.clone());
            }
        }
        r.rdma_stranded += self.rdma_stranded;
        r.flow_stalls += self.flow_stalls;
    }

    /// FCT records in completion order (the order `record_if_finished`
    /// pushed them).
    pub(crate) fn fct_records(&self) -> &[FctRecord] {
        &self.fct
    }

    /// This world's IRN counters (in a sharded run, `flows` counts every
    /// registered IRN flow — registration is replicated — while the
    /// run-time fields count only locally observed activity).
    pub(crate) fn irn_counters(&self) -> IrnCounters {
        self.irn
    }

    /// Reverts the newest `n` occupancy samples of every owned switch
    /// (stop-key filtering of replicated `Sample` pops past the
    /// completing event).
    pub(crate) fn drop_last_occupancy(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        for series in &mut self.occupancy {
            series.drop_last(n);
        }
    }

    /// How many registered flows this world counts toward the global
    /// done total (all of them for the serial engine).
    pub(crate) fn counting_flows(&self) -> usize {
        (0..self.flows.len())
            .filter(|&ix| self.counts_done_here(ix))
            .count()
    }
}

/// Counter state captured by [`World::snap`] before one dispatch.
pub(crate) struct PopSnapshot {
    nodes: [Option<(NodeId, PfcCounters, DropCounters)>; 2],
    wire: DropCounters,
    irn: IrnCounters,
    done: usize,
    fct_len: usize,
}

/// The digest-relevant deltas of one dispatched event, journaled under
/// its `(time, stamp)` key so a stop-key filter can subtract them.
pub(crate) struct PopDelta {
    /// Per-switch PFC and drop-counter growth.
    pub(crate) nodes: [Option<(NodeId, PfcCounters, DropCounters)>; 2],
    /// Wire (link-fault) drop growth.
    pub(crate) wire: DropCounters,
    /// IRN counter growth (`flows` always zero).
    pub(crate) irn: IrnCounters,
    /// Whether the event completed a counted flow.
    pub(crate) done_grew: bool,
    /// Whether the event appended an FCT record.
    pub(crate) fct_grew: bool,
}

impl Simulation for World {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, q: &mut EventQueue<Event>) {
        match event {
            Event::FlowStart { index } => self.start_flow(now, index, q),
            Event::Deliver {
                node,
                in_port,
                packet,
            } => {
                // A delivery orphaned by a train split: its packet was
                // requeued at the NIC, so this event must vanish — and
                // before `wire_filter`, which would otherwise burn a
                // corruption-RNG draw the unbatched run never makes.
                if !self.suppressed_delivers.is_empty() {
                    if let Some(pos) = self
                        .suppressed_delivers
                        .iter()
                        .position(|&(f, s, at)| f == packet.flow && s == packet.seq && at == now)
                    {
                        self.suppressed_delivers.swap_remove(pos);
                        return;
                    }
                }
                let Some(packet) = self.wire_filter(now, node, in_port, packet) else {
                    return;
                };
                match self.topo.node(node).kind {
                    dcn_net::NodeKind::Switch => self.switch_receive(now, node, in_port, packet, q),
                    dcn_net::NodeKind::Host => self.host_receive(now, node, packet, q),
                }
            }
            Event::PfcDeliver {
                node,
                in_port,
                frame,
            } => {
                // Control frames on a dead link are lost like data; they
                // are counted at the sender, so no drop is recorded.
                if !self.link_up[self.topo.link_at(node, in_port).id.index()] {
                    return;
                }
                match self.topo.node(node).kind {
                    dcn_net::NodeKind::Switch => self.switch_pfc(now, node, in_port, frame, q),
                    dcn_net::NodeKind::Host => self.host_pfc(now, node, frame, q),
                }
            }
            Event::SwitchTxComplete { node, port } => {
                let sw = self.switches[node.index()].as_mut().expect("switch");
                let res = sw.tx_complete(now, port);
                if let Some(e) = res.pfc {
                    self.emit_pfc(now, node, e, q);
                }
                if let Some(tx) = res.next {
                    self.schedule_switch_tx(now, node, tx, q);
                }
            }
            Event::HostTxComplete { host } => {
                let h = self.hosts[host.index()].as_mut().expect("host");
                h.finish_tx();
                self.host_start(now, host, q);
            }
            Event::HostTrainDone { host } => {
                let h = self.hosts[host.index()].as_mut().expect("host");
                h.finish_train();
                self.host_start(now, host, q);
            }
            Event::RdmaPace { flow } => self.handle_rdma_pace(now, flow, q),
            Event::Rto { flow } => self.handle_rto(now, flow, q),
            Event::FlowWatchdog { flow } => self.handle_flow_watchdog(now, flow, q),
            Event::RpTimer { flow, kind } => self.handle_rp_timer(now, flow, kind, q),
            Event::Sample => self.handle_sample(now, q),
            Event::Fault { fault } => self.apply_fault(now, fault, q),
            Event::PfcWatchdog {
                node,
                port,
                prio,
                generation,
            } => {
                // If this very deadline is the one on record, firing
                // consumed its wheel entry — forget the dead handle.
                let slot =
                    &mut self.watchdog_timers[node.index()][QueueIndex::new(port, prio).flat()];
                if slot.is_some_and(|(_, g)| g == generation) {
                    *slot = None;
                }
                let tx = self.switches[node.index()]
                    .as_mut()
                    .expect("switch")
                    .pfc_watchdog_fire(now, port, prio, generation);
                if let Some(tx) = tx {
                    self.schedule_switch_tx(now, node, tx, q);
                }
            }
        }
    }
}

/// A [`World`] coupled with its event queue: the user-facing simulator.
#[derive(Debug)]
pub struct FabricSim {
    world: World,
    queue: EventQueue<Event>,
}

impl FabricSim {
    /// Builds the simulator for a topology (the `FabricConfig` selects
    /// the buffer-management policy, transports and sampling).
    pub fn new(topo: Topology, cfg: FabricConfig) -> FabricSim {
        let sample = cfg.sample_interval;
        let world = World::new(topo, cfg);
        let mut queue = EventQueue::new();
        if let Some(interval) = sample {
            queue.schedule_at(SimTime::ZERO + interval, Event::Sample);
        }
        // Compile the fault schedule into ordinary queue entries up
        // front: arrival order then follows the deterministic
        // `(time, seq)` tie-break, and an empty schedule adds nothing.
        for sf in world.cfg.faults.events() {
            queue.schedule_at(sf.at, Event::Fault { fault: sf.fault });
        }
        FabricSim { world, queue }
    }

    /// Registers a flow and schedules its start.
    pub fn add_flow(&mut self, spec: FlowSpec) {
        let ix = self.world.register_flow(spec);
        self.queue
            .schedule_at(spec.start, Event::FlowStart { index: ix });
    }

    /// Registers many flows.
    pub fn add_flows(&mut self, specs: impl IntoIterator<Item = FlowSpec>) {
        for s in specs {
            self.add_flow(s);
        }
    }

    /// Runs until `horizon` (events at or past it stay queued). Returns
    /// events processed.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        dcn_sim::run_until(&mut self.world, &mut self.queue, horizon)
    }

    /// Runs until every registered flow has completed or `deadline`
    /// passes. Returns whether all flows completed.
    pub fn run_until_done(&mut self, deadline: SimTime) -> bool {
        let total = self.world.flow_count();
        run_while(&mut self.world, &mut self.queue, |w, t| {
            t < deadline && w.done_flows() < total
        });
        let done = self.world.done_flows() == total;
        if !done {
            // Deadline exit: account for the cancelled timers a
            // tombstoning queue would have popped as stale no-ops
            // inside the window. On the done exit the loop stopped at
            // the completing event's key, which `finish_pop` already
            // absorbed up to — exactly where a tombstoning pop loop
            // would have stopped.
            self.queue.absorb_ghosts_before(deadline);
        }
        done
    }

    /// The world (for inspection).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The shared flight-recorder handle (disabled unless
    /// [`FabricConfig::trace`] enabled it).
    pub fn trace(&self) -> &TraceHandle {
        self.world.trace()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Times the queue clamped a past-time scheduling up to `now`.
    /// Always zero in a correct model — asserted by the golden-digest
    /// test so a latent scheduling bug cannot hide behind the clamp.
    pub fn past_clamps(&self) -> u64 {
        self.queue.past_clamps()
    }

    /// Event-queue counters (high-water mark, heap depth, entry size,
    /// clamps) for the current state of this simulator.
    pub fn queue_stats(&self) -> dcn_sim::QueueStats {
        self.queue.stats()
    }

    /// Collects the run's results (clones the accumulated metrics; the
    /// simulator stays usable).
    pub fn results(&self) -> RunResults {
        let mut r = RunResults {
            // Dispatched events plus absorbed ghosts: byte-identical to
            // what a tombstoning queue would have popped, so the golden
            // digests survive the wheel migration unchanged.
            events_processed: self.queue.processed() + self.queue.ghost_pops(),
            unfinished_flows: self.world.flow_count() - self.world.done_flows(),
            queue: self.queue.stats(),
            trains: self.world.train_stats,
            irn: self.world.irn,
            rdma_stranded: self.world.rdma_stranded,
            flow_stalls: self.world.flow_stalls,
            ..RunResults::default()
        };
        for rec in &self.world.fct {
            r.fct.push(*rec);
        }
        // `fold_counters_into` also folds `rdma_stranded`/`flow_stalls`,
        // which the struct literal above already copied — zero them
        // first so the serial path doesn't double-count.
        r.rdma_stranded = 0;
        r.flow_stalls = 0;
        self.world.fold_counters_into(&mut r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyChoice;
    use dcn_net::Priority;

    fn spec(
        id: u64,
        src: u32,
        dst: u32,
        size: u64,
        class: TrafficClass,
        start_us: u64,
    ) -> FlowSpec {
        FlowSpec {
            id: FlowId::new(id),
            src: NodeId::new(src),
            dst: NodeId::new(dst),
            size: Bytes::new(size),
            start: SimTime::from_micros(start_us),
            class,
            priority: match class {
                TrafficClass::Lossless | TrafficClass::LossyRdma => Priority::new(3),
                TrafficClass::Lossy => Priority::new(1),
            },
        }
    }

    fn single_switch_sim(policy: PolicyChoice, hosts: usize) -> FabricSim {
        let topo =
            Topology::single_switch(hosts, BitRate::from_gbps(25), SimDuration::from_micros(1));
        let cfg = FabricConfig {
            policy,
            sample_interval: None,
            ..FabricConfig::default()
        };
        FabricSim::new(topo, cfg)
    }

    #[test]
    fn one_rdma_flow_completes_near_ideal() {
        let mut sim = single_switch_sim(PolicyChoice::dt(), 2);
        sim.add_flow(spec(1, 0, 1, 100_000, TrafficClass::Lossless, 0));
        assert!(sim.run_until_done(SimTime::from_millis(50)));
        let r = sim.results();
        assert_eq!(r.fct.len(), 1);
        let rec = r.fct.records()[0];
        let slow = rec.slowdown();
        assert!(slow < 1.6, "uncongested flow slowdown {slow}");
        assert_eq!(r.drops.lossless_packets, 0);
        assert_eq!(r.pause_frames(), 0);
    }

    #[test]
    fn one_tcp_flow_completes() {
        let mut sim = single_switch_sim(PolicyChoice::dt(), 2);
        sim.add_flow(spec(1, 0, 1, 50_000, TrafficClass::Lossy, 0));
        assert!(sim.run_until_done(SimTime::from_millis(100)));
        let r = sim.results();
        assert_eq!(r.fct.len(), 1);
        // Window-limited short flow: a handful of RTTs.
        assert!(r.fct.records()[0].fct() < SimDuration::from_millis(1));
    }

    #[test]
    fn rdma_incast_is_lossless_under_every_policy() {
        for policy in [
            PolicyChoice::dt(),
            PolicyChoice::dt2(),
            PolicyChoice::abm(),
            PolicyChoice::l2bm(),
        ] {
            let mut sim = single_switch_sim(policy, 9);
            for i in 0..8 {
                sim.add_flow(spec(i, i as u32, 8, 250_000, TrafficClass::Lossless, 0));
            }
            let done = sim.run_until_done(SimTime::from_millis(200));
            let r = sim.results();
            assert!(done, "{}: incast must finish", policy.label());
            assert_eq!(
                r.drops.lossless_packets,
                0,
                "{}: lossless dropped",
                policy.label()
            );
            assert_eq!(r.fct.len(), 8);
        }
    }

    #[test]
    fn tcp_incast_completes_despite_drops() {
        let mut sim = single_switch_sim(PolicyChoice::dt(), 9);
        for i in 0..8 {
            sim.add_flow(spec(i, i as u32, 8, 250_000, TrafficClass::Lossy, 0));
        }
        assert!(sim.run_until_done(SimTime::from_millis(500)));
        let r = sim.results();
        assert_eq!(r.fct.len(), 8);
    }

    #[test]
    fn mixed_traffic_one_switch() {
        let mut sim = single_switch_sim(PolicyChoice::l2bm(), 6);
        for i in 0..4 {
            let class = if i % 2 == 0 {
                TrafficClass::Lossless
            } else {
                TrafficClass::Lossy
            };
            sim.add_flow(spec(i, i as u32, 5, 500_000, class, i * 3));
        }
        assert!(sim.run_until_done(SimTime::from_millis(500)));
        let r = sim.results();
        assert_eq!(r.fct.len(), 4);
        assert_eq!(r.drops.lossless_packets, 0);
    }

    #[test]
    fn clos_cross_rack_flow() {
        let topo = Topology::clos(&dcn_net::ClosConfig::small(4));
        let cfg = FabricConfig {
            sample_interval: None,
            ..FabricConfig::default()
        };
        let mut sim = FabricSim::new(topo, cfg);
        // Host 0 (rack 0) -> host 7 (rack 1): crosses the fabric.
        sim.add_flow(spec(1, 0, 7, 200_000, TrafficClass::Lossless, 0));
        sim.add_flow(spec(2, 1, 6, 200_000, TrafficClass::Lossy, 0));
        assert!(sim.run_until_done(SimTime::from_millis(100)));
        let r = sim.results();
        assert_eq!(r.fct.len(), 2);
        assert_eq!(r.drops.lossless_packets, 0);
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let run = || {
            let mut sim = single_switch_sim(PolicyChoice::l2bm(), 9);
            for i in 0..8 {
                let class = if i % 2 == 0 {
                    TrafficClass::Lossless
                } else {
                    TrafficClass::Lossy
                };
                sim.add_flow(spec(i, i as u32, 8, 300_000, class, 0));
            }
            sim.run_until_done(SimTime::from_millis(500));
            let r = sim.results();
            (
                r.fct
                    .records()
                    .iter()
                    .map(|x| (x.flow, x.finish))
                    .collect::<Vec<_>>(),
                r.pause_frames(),
                r.events_processed,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn occupancy_sampling_produces_series() {
        let topo = Topology::single_switch(3, BitRate::from_gbps(25), SimDuration::from_micros(1));
        let cfg = FabricConfig {
            sample_interval: Some(SimDuration::from_micros(100)),
            ..FabricConfig::default()
        };
        let mut sim = FabricSim::new(topo, cfg);
        sim.add_flow(spec(1, 0, 2, 500_000, TrafficClass::Lossless, 0));
        sim.add_flow(spec(2, 1, 2, 500_000, TrafficClass::Lossless, 0));
        sim.run_until(SimTime::from_millis(2));
        let r = sim.results();
        let series = r.occupancy.values().next().expect("one switch sampled");
        assert!(series.len() >= 10);
        assert!(series.peak() > Bytes::ZERO, "incast must queue something");
    }

    #[test]
    fn trace_reconciles_with_counters_and_does_not_change_behavior() {
        use dcn_sim::TraceConfig;
        let run = |traced: bool| {
            let topo =
                Topology::single_switch(9, BitRate::from_gbps(25), SimDuration::from_micros(1));
            let cfg = FabricConfig {
                policy: PolicyChoice::l2bm(),
                switch: dcn_switch::SwitchConfig {
                    total_buffer: Bytes::from_kb(96),
                    ..Default::default()
                },
                sample_interval: None,
                trace: if traced {
                    TraceConfig::enabled()
                } else {
                    TraceConfig::default()
                },
                ..FabricConfig::default()
            };
            let mut sim = FabricSim::new(topo, cfg);
            for i in 0..8 {
                let class = if i % 2 == 0 {
                    TrafficClass::Lossless
                } else {
                    TrafficClass::Lossy
                };
                sim.add_flow(spec(i, i as u32, 8, 300_000, class, 0));
            }
            assert!(sim.run_until_done(SimTime::from_millis(500)));
            sim
        };

        let traced = run(true);
        let r = traced.results();
        let totals = traced.trace().with(|rec| rec.totals()).expect("enabled");
        assert_eq!(
            totals.drops(),
            r.drops.lossy_packets + r.drops.lossless_packets,
            "trace drop causes must sum to RunResults drop counters"
        );
        assert_eq!(totals.pfc_pauses, r.pause_frames());
        assert_eq!(totals.rdma_stranded, 0);

        // Tracing must be observation-only: identical digest untraced.
        let plain = run(false);
        assert!(plain.trace().with(|_| ()).is_none(), "recorder absent");
        let rp = plain.results();
        let digest = |r: &RunResults| {
            (
                r.fct
                    .records()
                    .iter()
                    .map(|x| (x.flow, x.finish))
                    .collect::<Vec<_>>(),
                r.pause_frames(),
                r.drops.lossy_packets,
                r.events_processed,
            )
        };
        assert_eq!(digest(&r), digest(&rp));
    }

    #[test]
    fn multi_loss_tcp_incast_recovers_without_timeouts_dominating() {
        // Regression companion to the NewReno fix, at fabric level: a
        // lossy incast over a small buffer must repair most windows via
        // fast recovery (partial-ACK retransmits), not serial RTOs.
        use dcn_sim::{TraceConfig, TraceEvent};
        let topo = Topology::single_switch(9, BitRate::from_gbps(25), SimDuration::from_micros(1));
        let cfg = FabricConfig {
            policy: PolicyChoice::l2bm(),
            switch: dcn_switch::SwitchConfig {
                total_buffer: Bytes::from_kb(64),
                ..Default::default()
            },
            sample_interval: None,
            trace: TraceConfig::enabled(),
            ..FabricConfig::default()
        };
        let mut sim = FabricSim::new(topo, cfg);
        for i in 0..8 {
            sim.add_flow(spec(i, i as u32, 8, 250_000, TrafficClass::Lossy, 0));
        }
        assert!(sim.run_until_done(SimTime::from_millis(500)));
        let r = sim.results();
        assert!(r.drops.lossy_packets > 0, "scenario must actually drop");
        let (partial_rtx, rto_fires) = sim
            .trace()
            .with(|rec| {
                let mut p = 0u64;
                let mut t = 0u64;
                for record in rec.records() {
                    match record.event {
                        TraceEvent::TcpPartialAckRetransmit { .. } => p += 1,
                        TraceEvent::RtoFire { .. } => t += 1,
                        _ => {}
                    }
                }
                (p, t)
            })
            .expect("enabled");
        assert!(
            partial_rtx > 0,
            "multi-loss windows must exercise NewReno partial-ACK retransmits"
        );
        assert!(
            partial_rtx >= rto_fires,
            "fast recovery should repair at least as many holes as RTOs do \
             (partial rtx {partial_rtx}, rto fires {rto_fires})"
        );
    }

    #[test]
    fn pfc_pauses_under_pressure_with_small_alpha() {
        // 8-into-1 at line rate with DT(0.125) and a small buffer: the
        // ingress queues cross their thresholds and pause frames flow.
        let topo = Topology::single_switch(9, BitRate::from_gbps(25), SimDuration::from_micros(1));
        let cfg = FabricConfig {
            policy: PolicyChoice::dt(),
            switch: dcn_switch::SwitchConfig {
                total_buffer: Bytes::from_kb(200),
                ..Default::default()
            },
            sample_interval: None,
            ..FabricConfig::default()
        };
        let mut sim = FabricSim::new(topo, cfg);
        for i in 0..8 {
            sim.add_flow(spec(i, i as u32, 8, 500_000, TrafficClass::Lossless, 0));
        }
        assert!(sim.run_until_done(SimTime::from_secs(2)));
        let r = sim.results();
        assert!(r.pause_frames() > 0, "small buffer must trigger PFC");
        assert_eq!(r.drops.lossless_packets, 0, "headroom must cover in-flight");
    }

    fn irn_sim(policy: PolicyChoice, hosts: usize, buffer_kb: u64) -> FabricSim {
        let topo =
            Topology::single_switch(hosts, BitRate::from_gbps(25), SimDuration::from_micros(1));
        let cfg = FabricConfig {
            policy,
            rdma_transport: RdmaTransport::Irn,
            switch: dcn_switch::SwitchConfig {
                total_buffer: Bytes::from_kb(buffer_kb),
                ..Default::default()
            },
            sample_interval: None,
            trace: dcn_sim::TraceConfig::enabled(),
            ..FabricConfig::default()
        };
        FabricSim::new(topo, cfg)
    }

    #[test]
    fn one_irn_flow_completes_near_ideal() {
        let mut sim = irn_sim(PolicyChoice::dt(), 2, 1_000);
        sim.add_flow(spec(1, 0, 1, 100_000, TrafficClass::Lossless, 0));
        assert!(sim.run_until_done(SimTime::from_millis(50)));
        let r = sim.results();
        assert_eq!(r.fct.len(), 1);
        assert_eq!(r.irn.flows, 1, "lossless spec must run IRN endpoints");
        let slow = r.fct.records()[0].slowdown();
        assert!(slow < 1.6, "uncongested IRN flow slowdown {slow}");
        // Clean path: nothing lost, nothing NACKed, nothing retransmitted,
        // and crucially no PFC — lossy RDMA never pauses.
        assert_eq!(r.irn.nacks(), 0);
        assert_eq!(r.irn.retransmitted_packets, 0);
        assert_eq!(r.irn.rto_fires, 0);
        assert_eq!(r.pause_frames(), 0);
        assert_eq!(r.drops.lossy_rdma_packets, 0);
    }

    #[test]
    fn irn_incast_recovers_from_drops_without_pfc() {
        // 8-into-1 over a buffer small enough to overflow: the lossless
        // universe would PFC-pause its way through; the IRN universe
        // must instead drop, NACK, retransmit, and still finish.
        let mut sim = irn_sim(PolicyChoice::l2bm(), 9, 64);
        for i in 0..8 {
            sim.add_flow(spec(i, i as u32, 8, 250_000, TrafficClass::Lossless, 0));
        }
        assert!(sim.run_until_done(SimTime::from_millis(500)));
        let r = sim.results();
        assert_eq!(r.fct.len(), 8, "every IRN flow must complete");
        assert_eq!(r.irn.flows, 8);
        assert_eq!(r.pause_frames(), 0, "lossy RDMA must never PFC-pause");
        assert!(
            r.drops.lossy_rdma_packets > 0,
            "incast over 64 KB must overflow"
        );
        assert!(r.irn.nacks() > 0, "drops must trigger NACKs");
        assert!(r.irn.retransmitted_packets > 0, "NACKs must repair holes");
        assert_eq!(r.rdma_stranded, 0);

        // Flight-recorder reconciliation: trace totals match counters.
        let totals = sim.trace().with(|rec| rec.totals()).expect("enabled");
        assert_eq!(totals.irn_nacks, r.irn.nacks());
        assert_eq!(totals.irn_retransmits, r.irn.retransmitted_packets);
        assert_eq!(
            totals.drops(),
            r.drops.lossy_packets + r.drops.lossless_packets,
            "lossy-RDMA drops are a refinement of the lossy total"
        );
    }

    #[test]
    fn irn_retransmissions_are_causally_preceded_by_nack_or_rto() {
        // Satellite invariant at fabric level: every IrnRetransmit in
        // the trace is preceded by an IrnNack for the same flow (with a
        // nack_seq at or below the retransmitted seq — GBN resends from
        // the hole) or by an RtoFire for that flow.
        use std::collections::HashSet;
        let mut sim = irn_sim(PolicyChoice::dt(), 9, 64);
        for i in 0..8 {
            sim.add_flow(spec(i, i as u32, 8, 250_000, TrafficClass::Lossless, 0));
        }
        assert!(sim.run_until_done(SimTime::from_millis(500)));
        let r = sim.results();
        assert!(r.irn.retransmitted_packets > 0, "scenario must retransmit");
        let unexplained = sim
            .trace()
            .with(|rec| {
                let mut nacked: HashSet<(u64, u64)> = HashSet::new();
                let mut rto_fired: HashSet<u64> = HashSet::new();
                let mut unexplained = 0u64;
                for record in rec.records() {
                    match record.event {
                        TraceEvent::IrnNack { flow, nack_seq, .. } => {
                            nacked.insert((flow, nack_seq));
                        }
                        TraceEvent::RtoFire { flow, .. } => {
                            rto_fired.insert(flow);
                        }
                        TraceEvent::IrnRetransmit { flow, seq } => {
                            let by_nack = nacked.iter().any(|&(f, ns)| f == flow && ns <= seq);
                            if !by_nack && !rto_fired.contains(&flow) {
                                unexplained += 1;
                            }
                        }
                        _ => {}
                    }
                }
                unexplained
            })
            .expect("enabled");
        assert_eq!(unexplained, 0, "orphan retransmissions in trace");
    }

    #[test]
    fn flow_watchdog_is_quiet_on_healthy_runs_and_counts_stalls() {
        // Healthy run, watchdog armed: no stall episodes, no defects.
        let topo = Topology::single_switch(3, BitRate::from_gbps(25), SimDuration::from_micros(1));
        let cfg = FabricConfig {
            flow_watchdog: Some(SimDuration::from_micros(500)),
            sample_interval: None,
            ..FabricConfig::default()
        };
        let mut sim = FabricSim::new(topo, cfg);
        sim.add_flow(spec(1, 0, 2, 400_000, TrafficClass::Lossless, 0));
        assert!(sim.run_until_done(SimTime::from_millis(50)));
        assert_eq!(sim.results().flow_stalls, 0);

        // A flow whose path dies mid-transfer and never heals: the
        // DCQCN sender keeps pacing into a black hole; the watchdog is
        // the only thing that notices — exactly one episode.
        let topo = Topology::single_switch(3, BitRate::from_gbps(25), SimDuration::from_micros(1));
        let link = topo.node(dcn_net::NodeId::new(0)).ports[0].index() as u32;
        let mut faults = dcn_sim::FaultSchedule::none();
        faults.push(
            SimTime::from_micros(100),
            dcn_sim::FaultEvent::LinkDown { link },
        );
        let cfg = FabricConfig {
            flow_watchdog: Some(SimDuration::from_micros(500)),
            sample_interval: None,
            faults,
            ..FabricConfig::default()
        };
        let mut sim = FabricSim::new(topo, cfg);
        sim.add_flow(spec(1, 0, 2, 400_000, TrafficClass::Lossless, 0));
        assert!(!sim.run_until_done(SimTime::from_millis(20)));
        let r = sim.results();
        assert_eq!(r.unfinished_flows, 1);
        assert_eq!(r.flow_stalls, 1, "one stall episode, counted once");
    }

    #[test]
    fn default_config_carries_no_irn_state_into_results() {
        // With the default DCQCN transport and no watchdog, a run's
        // results must be indistinguishable from a build without IRN
        // support: zero IRN counters, no stranding, no stalls — so the
        // digest gate (`irn.flows > 0`) never opens.
        let mut sim = single_switch_sim(PolicyChoice::dt(), 3);
        sim.add_flow(spec(1, 0, 2, 100_000, TrafficClass::Lossless, 0));
        sim.add_flow(spec(2, 1, 2, 100_000, TrafficClass::Lossy, 0));
        assert!(sim.run_until_done(SimTime::from_millis(50)));
        let r = sim.results();
        assert_eq!(r.irn, dcn_metrics::IrnCounters::new());
        assert_eq!(r.rdma_stranded, 0);
        assert_eq!(r.flow_stalls, 0);
        assert_eq!(r.drops.lossy_rdma_packets, 0);
    }
}
