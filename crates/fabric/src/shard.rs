//! The parallel (spatially sharded) run executor.
//!
//! [`ShardedFabricSim`] splits one run across `N` worker threads, each
//! owning a spatial slice of the fabric (a [`Partition`]): its switches,
//! hosts, flow endpoints and an independent [`EventQueue`] in admission-
//! stamp mode. Shards advance through lockstep windows `[w, w + L)`
//! whose width `L` is the partition's lookahead — the minimum
//! propagation delay over cross-shard links — so an event dispatched
//! inside a window can only influence a peer shard at or after the
//! window's end. Cross-shard messages are generated as stamped
//! [`Handoff`]s and admitted by their destination at the next barrier.
//!
//! # Determinism
//!
//! The executor reproduces the serial engine's results *byte for byte*
//! at every shard count (see DESIGN.md §4.10):
//!
//! * **Dispatch order.** Every admission carries a [`Stamp`] replaying
//!   the serial `(time, seq)` insertion order; simultaneous events are
//!   dispatched in stamp order, so each shard pops its slice of the
//!   serial sequence in the serial sequence's order.
//! * **Stop key.** The serial run stops right after the pop that
//!   completes the last flow. At the barrier where the done totals
//!   reach the flow count, every shard computes the completing pop's
//!   `(time, stamp)` key — the maximum done key of the window — and
//!   filters everything it speculatively dispatched past it: journaled
//!   counter deltas are subtracted, tail FCT records and occupancy
//!   samples dropped, and the event count corrected.
//! * **Replicas.** `Sample` and `Fault` events run in every shard
//!   (occupancy and link state are shard-local and replicated
//!   respectively); the merge counts them once and asserts the shards
//!   agree.

use std::cmp::Ordering;
use std::sync::{Arc, Mutex};

use dcn_metrics::FctRecord;
use dcn_net::{Partition, Topology, TrafficClass};
use dcn_sim::{
    ambiguous_comparisons, EventQueue, QueueStats, ShardStats, SimTime, Simulation, SpinBarrier,
    Stamp, StampKey,
};
use dcn_workload::FlowSpec;

use crate::config::{FabricConfig, RdmaTransport};
use crate::results::RunResults;
use crate::world::{Event, Handoff, PopDelta, World};

/// How a dispatched event counts toward the merged event total.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PopKind {
    /// Dispatched by exactly one shard.
    Normal,
    /// A replicated occupancy-sampling tick (also reverts one occupancy
    /// sample per owned switch when filtered).
    Sample,
    /// A replicated fault application.
    Fault,
}

/// One shard's slot of barrier-shared state. Field use is phased so a
/// slow reader can never observe a peer's next-window write: `done_*`
/// are written before barrier A and read after it; `next_time` is
/// written between barriers A and B and read after B — and a shard only
/// reaches its next `done_*` write after every peer passed B.
#[derive(Default)]
struct Slot {
    done_keys: Vec<StampKey>,
    done_total: usize,
    next_time: Option<SimTime>,
}

struct Shared {
    barrier: SpinBarrier,
    mailboxes: Vec<Mutex<Vec<Handoff>>>,
    slots: Vec<Mutex<Slot>>,
}

/// What one shard thread returns (its `World` holds an `Rc` trace
/// handle and cannot cross the join, so the thread reduces it to this
/// `Send` summary first).
struct ShardPiece {
    /// Stop-key-filtered order-independent counters: PFC, drops,
    /// occupancy, liveness diagnostics.
    base: RunResults,
    /// Stop-key-filtered completion records with their dispatch keys,
    /// in this shard's (already key-sorted) completion order.
    fct: Vec<(StampKey, FctRecord)>,
    irn: dcn_metrics::IrnCounters,
    unfinished: usize,
    normal_events: u64,
    replicated_events: u64,
    ghost_credits: u64,
    queue: QueueStats,
    stats: ShardStats,
}

/// A [`crate::FabricSim`]-shaped simulator that runs one scenario on
/// `shards` cooperating worker threads with deterministic results: the
/// digest of [`ShardedFabricSim::results`] is byte-identical at every
/// shard count *and* to the serial engine's.
///
/// Unsupported (asserted) configurations: the flight recorder and
/// packet-train coalescing (both entangle state across the whole
/// fabric), and — beyond one shard — the flow-liveness watchdog on IRN
/// transports or with an interval below the partition lookahead.
#[derive(Debug)]
pub struct ShardedFabricSim {
    topo: Topology,
    cfg: FabricConfig,
    part: Arc<Partition>,
    specs: Vec<FlowSpec>,
    results: Option<RunResults>,
}

impl ShardedFabricSim {
    /// Builds the sharded simulator, partitioning `topo` into at most
    /// `shards` spatial shards (clamped to the ToR count).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero, or if `cfg` enables the flight
    /// recorder or packet trains.
    pub fn new(topo: Topology, cfg: FabricConfig, shards: usize) -> ShardedFabricSim {
        assert!(shards >= 1, "at least one shard");
        assert!(
            !cfg.trace.enabled,
            "sharded runs do not support the flight recorder"
        );
        assert!(
            !cfg.train.enable,
            "sharded runs do not support packet-train coalescing"
        );
        let part = Arc::new(Partition::new(&topo, shards));
        ShardedFabricSim {
            topo,
            cfg,
            part,
            specs: Vec::new(),
            results: None,
        }
    }

    /// Effective shard count (≤ requested; at most one shard per ToR).
    pub fn shards(&self) -> usize {
        self.part.shards()
    }

    /// Registers a flow (started at `spec.start` by the shard owning
    /// its source).
    pub fn add_flow(&mut self, spec: FlowSpec) {
        self.specs.push(spec);
    }

    /// Registers many flows.
    pub fn add_flows(&mut self, specs: impl IntoIterator<Item = FlowSpec>) {
        self.specs.extend(specs);
    }

    /// Runs until every registered flow has completed or `deadline`
    /// passes, whichever the serial engine would have hit first.
    /// Returns whether all flows completed.
    ///
    /// # Panics
    ///
    /// Panics if a multi-shard run enables the flow watchdog on an IRN
    /// configuration (the watchdog measures receiver progress but IRN
    /// completion is source-observed, so the timer cannot be placed in
    /// one shard) or with an interval below the partition lookahead
    /// (the cross-shard arm could fire inside its source window).
    pub fn run_until_done(&mut self, deadline: SimTime) -> bool {
        let shards = self.part.shards();
        if shards > 1 {
            if let Some(interval) = self.cfg.flow_watchdog {
                assert!(
                    self.cfg.rdma_transport == RdmaTransport::Dcqcn,
                    "flow watchdog cannot shard with the IRN transport"
                );
                assert!(
                    self.specs
                        .iter()
                        .all(|s| s.class != TrafficClass::LossyRdma),
                    "flow watchdog cannot shard with LossyRdma flows"
                );
                let lookahead = self
                    .part
                    .lookahead()
                    .expect("multi-shard implies cross links");
                assert!(
                    interval >= lookahead,
                    "flow-watchdog interval shorter than the partition lookahead"
                );
            }
        }
        let ambiguous_before = ambiguous_comparisons();
        let shared = Shared {
            barrier: SpinBarrier::new(shards),
            mailboxes: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            slots: (0..shards).map(|_| Mutex::new(Slot::default())).collect(),
        };
        let pieces: Vec<ShardPiece> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|s| {
                    let topo = &self.topo;
                    let cfg = &self.cfg;
                    let specs = &self.specs;
                    let part = &self.part;
                    let shared = &shared;
                    scope.spawn(move || {
                        run_shard(s as u32, topo, cfg, specs, part, shared, deadline)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread panicked"))
                .collect()
        });
        let mut r = merge_pieces(pieces);
        // Stamp-comparison ambiguity is a process-global counter; the
        // whole run's delta is attributed to shard 0's entry. (Other
        // concurrently running simulations in the same process can
        // inflate it — it is a diagnostic, not part of any digest.)
        if let Some(first) = r.shards.first_mut() {
            first.stamp_ambiguities = ambiguous_comparisons() - ambiguous_before;
        }
        let done = r.unfinished_flows == 0;
        self.results = Some(r);
        done
    }

    /// The merged results (clones; the simulator stays inspectable).
    ///
    /// # Panics
    ///
    /// Panics if the run has not happened yet.
    pub fn results(&self) -> RunResults {
        self.results.clone().expect("run_until_done before results")
    }
}

/// One worker: builds its shard's world, then alternates window
/// dispatch with the two-phase barrier protocol until the run ends.
fn run_shard(
    shard: u32,
    topo: &Topology,
    cfg: &FabricConfig,
    specs: &[FlowSpec],
    part: &Arc<Partition>,
    shared: &Shared,
    deadline: SimTime,
) -> ShardPiece {
    let shards = part.shards();
    let total_flows = specs.len();
    let mut world = World::new_sharded(topo.clone(), cfg.clone(), part.clone(), shard);
    let mut q: EventQueue<Event> = EventQueue::new();
    q.enable_stamps();

    // Setup roots mirror the serial engine's admission order exactly:
    // the sample chain first, then the fault schedule, then each flow's
    // start in registration order. Ordinal 0 stays reserved for the
    // sampler even when sampling is off, and every flow keeps its
    // global ordinal even though only its source's shard schedules it —
    // replicated and local setup events then agree on stamps in every
    // shard.
    if let Some(interval) = cfg.sample_interval {
        q.stamp_next_root(0);
        q.schedule_at(SimTime::ZERO + interval, Event::Sample);
    }
    for (i, sf) in cfg.faults.events().iter().enumerate() {
        q.stamp_next_root(1 + i as u32);
        q.schedule_at(sf.at, Event::Fault { fault: sf.fault });
    }
    let flow_root_base = 1 + cfg.faults.events().len() as u32;
    for (gi, spec) in specs.iter().enumerate() {
        // Registration is replicated (every shard needs the flow's
        // runtime state for whichever endpoints it owns); the start
        // event belongs to the source's shard alone.
        let ix = world.register_flow(*spec);
        if part.shard_of(spec.src) == shard as usize {
            q.stamp_next_root(flow_root_base + gi as u32);
            q.schedule_at(spec.start, Event::FlowStart { index: ix });
        }
    }

    let lookahead = part.lookahead();
    let mut stats = ShardStats::default();
    let mut group: Vec<(u32, Stamp)> = Vec::new();

    // Window-local journals, cleared at every continuing barrier (the
    // stop key can only land in the run's final window).
    let mut deltas: Vec<(StampKey, PopDelta)> = Vec::new();
    let mut pops: Vec<(StampKey, PopKind)> = Vec::new();
    let mut done_keys: Vec<StampKey> = Vec::new();
    // Run-long journal parallel to the world's FCT records.
    let mut fct_keys: Vec<StampKey> = Vec::new();

    let mut normal_events: u64 = 0;
    let mut replicated_events: u64 = 0;
    let mut ghost_credits: u64 = 0;

    let mut w_start = SimTime::ZERO;
    let mut done = false;
    let mut stop_key: Option<StampKey> = None;

    // A solo run (one shard owns the whole fabric) skips the speculation
    // journals: with no peers there is nothing to reconcile at a
    // barrier, so it can stop at the exact completing pop like the
    // serial engine — journaling every pop of the run-wide single window
    // would cost gigabytes for nothing.
    let solo = shards == 1;

    'windows: loop {
        if solo && world.done_flows() == total_flows {
            // Covers the zero-flow run (the serial engine exits before
            // processing anything); with flows, the in-loop break below
            // fires first and records the completing pop's key.
            done = true;
            break;
        }
        let w_end = match lookahead {
            Some(l) => deadline.min(w_start + l),
            None => deadline,
        };

        // Dispatch everything strictly inside the window, simultaneous
        // events in stamp order.
        let mut window_events: u64 = 0;
        while q.peek_time().is_some_and(|t| t < w_end) {
            if q.begin_group(&mut group).is_none() {
                break;
            }
            if group.len() > 1 {
                group.sort_by(|a, b| a.1.order(&b.1));
            }
            for &(member, stamp) in &group {
                let Some((at, ev)) = q.dispatch_member(member) else {
                    continue; // cancelled by an earlier member of its group
                };
                let key = StampKey { at, stamp };
                let kind = match ev {
                    Event::Sample => PopKind::Sample,
                    Event::Fault { .. } => PopKind::Fault,
                    _ => PopKind::Normal,
                };
                if solo {
                    let fct_before = world.fct_records().len();
                    world.handle(at, ev, &mut q);
                    if world.fct_records().len() > fct_before {
                        fct_keys.push(key);
                    }
                    match kind {
                        PopKind::Normal => normal_events += 1,
                        PopKind::Sample | PopKind::Fault => replicated_events += 1,
                    }
                    window_events += 1;
                    if world.done_flows() == total_flows {
                        // The serial engine stops right after this pop.
                        done = true;
                        stop_key = Some(key);
                        stats.max_window_events = stats.max_window_events.max(window_events);
                        break 'windows;
                    }
                    continue;
                }
                let snap = world.snap(&ev);
                world.handle(at, ev, &mut q);
                if let Some(d) = world.delta_since(snap) {
                    if d.fct_grew {
                        fct_keys.push(key);
                    }
                    if d.done_grew {
                        done_keys.push(key);
                    }
                    deltas.push((key, d));
                }
                pops.push((key, kind));
                window_events += 1;
            }
        }
        stats.max_window_events = stats.max_window_events.max(window_events);

        // Publish handoffs and this window's completions, then barrier A.
        let outbox = world.take_outbox();
        stats.handoffs_out += outbox.len() as u64;
        for h in outbox {
            debug_assert!(h.at >= w_end, "handoff fires inside its source window");
            shared.mailboxes[h.dest as usize]
                .lock()
                .expect("shard thread panicked")
                .push(h);
        }
        {
            let mut slot = shared.slots[shard as usize]
                .lock()
                .expect("shard thread panicked");
            slot.done_keys.clear();
            slot.done_keys.extend_from_slice(&done_keys);
            slot.done_total = world.done_flows();
        }
        shared.barrier.wait();
        stats.barriers += 1;

        // Every shard reads the same totals and branches identically.
        let mut global_done = 0usize;
        for s in 0..shards {
            global_done += shared.slots[s]
                .lock()
                .expect("shard thread panicked")
                .done_total;
        }
        if global_done == total_flows {
            // The run completes in this window. The serial engine
            // stopped right after the completing pop — the maximum done
            // key across all shards' windows (`None` only for a
            // zero-flow run, which the serial engine exits before
            // processing anything).
            for s in 0..shards {
                for k in shared.slots[s]
                    .lock()
                    .expect("shard thread panicked")
                    .done_keys
                    .iter()
                {
                    stop_key = Some(match stop_key {
                        Some(cur) if cur.order(k).is_ge() => cur,
                        _ => *k,
                    });
                }
            }
            done = true;
            break 'windows;
        }

        // Continuing: everything this window dispatched is in the
        // serial run's past for certain — bank it and clear journals.
        for &(_, kind) in &pops {
            match kind {
                PopKind::Normal => normal_events += 1,
                PopKind::Sample | PopKind::Fault => replicated_events += 1,
            }
        }
        pops.clear();
        deltas.clear();
        done_keys.clear();
        // Timers cancelled with fire times inside the window are pops
        // the serial engine's lazy ghost absorption has counted by now.
        ghost_credits += q.fold_stamped_ghosts_before(w_end);

        if w_end >= deadline {
            // Deadline exit. Pending handoffs fire at ≥ deadline — the
            // serial engine would never have dispatched them either.
            break 'windows;
        }

        // Admit the peers' handoffs, then agree on the next window.
        let handoffs = std::mem::take(
            &mut *shared.mailboxes[shard as usize]
                .lock()
                .expect("shard thread panicked"),
        );
        stats.handoffs_in += handoffs.len() as u64;
        for h in handoffs {
            world.admit_handoff(h, &mut q);
        }
        let local_next = q.peek_time();
        shared.slots[shard as usize]
            .lock()
            .expect("shard thread panicked")
            .next_time = local_next;
        shared.barrier.wait();
        stats.barriers += 1;
        let mut global_next: Option<SimTime> = None;
        for s in 0..shards {
            let t = shared.slots[s]
                .lock()
                .expect("shard thread panicked")
                .next_time;
            global_next = match (global_next, t) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            };
        }
        let Some(next) = global_next else {
            break 'windows; // every queue drained — nothing can happen again
        };
        // A YAWNS-style jump: windows with no events anywhere are
        // skipped in one hop instead of barriered through one lookahead
        // at a time.
        w_start = w_end.max(next);
    }

    // ---- end-of-run filtering ----------------------------------------

    let mut dropped_samples = 0usize;
    let mut reverted: Vec<PopDelta> = Vec::new();
    let mut fct_keep = fct_keys.len();
    if done {
        // Keep exactly what the serial engine processed: keys at or
        // before the stop key. (`stop_key` is `None` only for the
        // zero-flow run, where the serial engine processes nothing.)
        let keep = |k: &StampKey| {
            stop_key
                .as_ref()
                .is_some_and(|sk| k.order(sk) != Ordering::Greater)
        };
        for &(ref k, kind) in &pops {
            if keep(k) {
                match kind {
                    PopKind::Normal => normal_events += 1,
                    PopKind::Sample | PopKind::Fault => replicated_events += 1,
                }
            } else if kind == PopKind::Sample {
                dropped_samples += 1;
            }
        }
        reverted = deltas
            .into_iter()
            .filter(|(k, _)| !keep(k))
            .map(|(_, d)| d)
            .collect();
        debug_assert!(
            reverted.iter().all(|d| !d.done_grew),
            "a flow completed past the stop key"
        );
        // Per-shard pops happen in key order, so filtered FCT records
        // are exactly a tail.
        while fct_keep > 0 && !keep(&fct_keys[fct_keep - 1]) {
            fct_keep -= 1;
        }
        // Ghosts the serial run absorbed before stopping: every logged
        // cancellation strictly before the stop key.
        let tail = match &stop_key {
            Some(sk) => q
                .stamped_ghosts()
                .filter(|&(at, stamp)| StampKey { at, stamp }.order(sk) == Ordering::Less)
                .count() as u64,
            None => 0,
        };
        q.add_ghost_pops(tail);
        ghost_credits += tail;
    } else {
        // Deadline or drained exit: the serial engine absorbs every
        // remaining ghost before the deadline.
        let tail = q.stamped_ghosts().filter(|&(at, _)| at < deadline).count() as u64;
        q.add_ghost_pops(tail);
        ghost_credits += tail;
    }
    world.drop_last_occupancy(dropped_samples);

    // ---- piece assembly ----------------------------------------------

    let mut base = RunResults::default();
    world.fold_counters_into(&mut base);
    let mut irn = world.irn_counters();
    for d in &reverted {
        for (node, dpfc, ddrops) in d.nodes.iter().flatten() {
            base.pfc.subtract(dpfc);
            if let Some(per) = base.pfc_by_switch.get_mut(node) {
                per.subtract(dpfc);
            }
            base.drops.subtract(ddrops);
        }
        base.drops.subtract(&d.wire);
        irn.subtract(&d.irn);
    }
    debug_assert_eq!(
        fct_keys.len(),
        world.fct_records().len(),
        "FCT journal out of sync"
    );
    debug_assert_eq!(
        fct_keys.len() - fct_keep,
        reverted.iter().filter(|d| d.fct_grew).count(),
        "FCT tail drop disagrees with the reverted journal"
    );
    let fct: Vec<(StampKey, FctRecord)> = fct_keys
        .iter()
        .take(fct_keep)
        .copied()
        .zip(world.fct_records().iter().take(fct_keep).copied())
        .collect();
    stats.events_processed = q.stats().processed;

    ShardPiece {
        unfinished: world.counting_flows() - world.done_flows(),
        base,
        fct,
        irn,
        normal_events,
        replicated_events,
        ghost_credits,
        queue: q.stats(),
        stats,
    }
}

/// Deterministically merges the shard pieces into serial-identical
/// [`RunResults`].
fn merge_pieces(pieces: Vec<ShardPiece>) -> RunResults {
    let mut r = RunResults::default();

    // FCT records interleave across shards in dispatch-key order — the
    // exact order the serial engine pushed them.
    let mut all_fct: Vec<(StampKey, FctRecord)> =
        pieces.iter().flat_map(|p| p.fct.iter().copied()).collect();
    all_fct.sort_by(|a, b| a.0.order(&b.0));
    for (_, rec) in &all_fct {
        r.fct.push(*rec);
    }

    // Events: each normal pop happened in exactly one shard; replicated
    // pops happened in all of them identically (asserted) and count
    // once; ghost credits are per-timer and every timer is armed in
    // exactly one shard.
    let replicated = pieces[0].replicated_events;
    for p in &pieces {
        assert_eq!(
            p.replicated_events, replicated,
            "replicated event schedules diverged across shards"
        );
        r.events_processed += p.normal_events + p.ghost_credits;
    }
    r.events_processed += replicated;

    // IRN: `flows` is replicated registration state (identical in every
    // shard); the run-time fields were each observed in exactly one
    // shard.
    r.irn = pieces[0].irn;
    for p in &pieces[1..] {
        assert_eq!(p.irn.flows, r.irn.flows, "flow registration diverged");
        let mut rt = p.irn;
        rt.flows = 0;
        r.irn.merge(&rt);
    }

    for p in pieces {
        r.pfc.merge(&p.base.pfc);
        for (node, c) in p.base.pfc_by_switch {
            r.pfc_by_switch.insert(node, c); // switch ownership is disjoint
        }
        r.drops.merge(&p.base.drops);
        for (node, series) in p.base.occupancy {
            r.occupancy.insert(node, series);
        }
        r.unfinished_flows += p.unfinished;
        r.rdma_stranded += p.base.rdma_stranded;
        r.flow_stalls += p.base.flow_stalls;
        // Queue stats fold: sums for counters and populations, max for
        // depth (entry size is identical by construction).
        r.queue.pending += p.queue.pending;
        r.queue.max_pending += p.queue.max_pending;
        r.queue.max_depth = r.queue.max_depth.max(p.queue.max_depth);
        r.queue.entry_bytes = p.queue.entry_bytes;
        r.queue.slab_capacity += p.queue.slab_capacity;
        r.queue.processed += p.queue.processed;
        r.queue.past_clamps += p.queue.past_clamps;
        r.queue.timers_pending += p.queue.timers_pending;
        r.queue.timer_cancels += p.queue.timer_cancels;
        r.queue.ghost_pops += p.queue.ghost_pops;
        r.queue.stale_timer_pops += p.queue.stale_timer_pops;
        r.shards.push(p.stats);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FabricSim, PolicyChoice};
    use dcn_net::{ClosConfig, FlowId, NodeId, Priority};
    use dcn_sim::{BitRate, Bytes, FaultSchedule, SimDuration};

    fn spec(
        id: u64,
        src: NodeId,
        dst: NodeId,
        size: u64,
        class: TrafficClass,
        start_us: u64,
    ) -> FlowSpec {
        FlowSpec {
            id: FlowId::new(id),
            src,
            dst,
            size: Bytes::new(size),
            start: SimTime::from_micros(start_us),
            class,
            priority: match class {
                TrafficClass::Lossy => Priority::new(1),
                _ => Priority::new(3),
            },
        }
    }

    /// A hybrid mix with plenty of cross-ToR traffic.
    fn hybrid_flows(topo: &Topology, n_flows: u64) -> Vec<FlowSpec> {
        let hosts: Vec<NodeId> = topo.hosts().collect();
        let n = hosts.len();
        (0..n_flows)
            .map(|i| {
                let s = (i as usize * 5 + 1) % n;
                let mut d = (i as usize * 3 + n / 2) % n;
                if d == s {
                    d = (d + 1) % n;
                }
                let class = if i % 2 == 0 {
                    TrafficClass::Lossless
                } else {
                    TrafficClass::Lossy
                };
                spec(
                    i,
                    hosts[s],
                    hosts[d],
                    40_000 + 5_000 * (i % 5),
                    class,
                    (i % 4) * 10,
                )
            })
            .collect()
    }

    fn run_serial(
        topo: &Topology,
        cfg: &FabricConfig,
        flows: &[FlowSpec],
        deadline: SimTime,
    ) -> (bool, RunResults) {
        let mut sim = FabricSim::new(topo.clone(), cfg.clone());
        for f in flows {
            sim.add_flow(*f);
        }
        let done = sim.run_until_done(deadline);
        (done, sim.results())
    }

    fn run_sharded(
        topo: &Topology,
        cfg: &FabricConfig,
        flows: &[FlowSpec],
        shards: usize,
        deadline: SimTime,
    ) -> (bool, RunResults) {
        let mut sim = ShardedFabricSim::new(topo.clone(), cfg.clone(), shards);
        for f in flows {
            sim.add_flow(*f);
        }
        let done = sim.run_until_done(deadline);
        (done, sim.results())
    }

    /// Digest equality plus the reconciliations the digest doesn't cover.
    fn assert_matches_serial(
        topo: &Topology,
        cfg: &FabricConfig,
        flows: &[FlowSpec],
        shards: usize,
        deadline: SimTime,
    ) {
        let (serial_done, serial) = run_serial(topo, cfg, flows, deadline);
        let (sharded_done, sharded) = run_sharded(topo, cfg, flows, shards, deadline);
        assert_eq!(serial_done, sharded_done, "{shards}-shard done status");
        assert_eq!(
            serial.digest(),
            sharded.digest(),
            "{shards}-shard digest (fct {} vs {}, events {} vs {})",
            serial.fct.len(),
            sharded.fct.len(),
            serial.events_processed,
            sharded.events_processed,
        );
        assert_eq!(serial.fct.records(), sharded.fct.records());
        assert_eq!(serial.events_processed, sharded.events_processed);
        assert_eq!(serial.pfc_by_switch, sharded.pfc_by_switch);
        assert_eq!(serial.rdma_stranded, sharded.rdma_stranded);
        assert_eq!(serial.flow_stalls, sharded.flow_stalls);
        assert!(!sharded.shards.is_empty(), "shard stats surfaced");
    }

    #[test]
    fn one_shard_single_switch_matches_serial() {
        let topo = Topology::single_switch(6, BitRate::from_gbps(25), SimDuration::from_micros(1));
        let cfg = FabricConfig {
            policy: PolicyChoice::l2bm(),
            ..FabricConfig::default()
        };
        let flows = hybrid_flows(&topo, 10);
        assert_matches_serial(&topo, &cfg, &flows, 1, SimTime::from_millis(100));
    }

    #[test]
    fn clos_matches_serial_at_every_shard_count() {
        let topo = Topology::clos(&ClosConfig::small(4));
        let cfg = FabricConfig {
            policy: PolicyChoice::l2bm(),
            ..FabricConfig::default()
        };
        let flows = hybrid_flows(&topo, 16);
        for shards in [1, 2] {
            assert_matches_serial(&topo, &cfg, &flows, shards, SimTime::from_millis(100));
        }
    }

    #[test]
    fn deadline_exit_matches_serial() {
        let topo = Topology::clos(&ClosConfig::small(4));
        let cfg = FabricConfig::default();
        // Too much data to finish in 100 µs: the run ends unfinished.
        let flows: Vec<FlowSpec> = hybrid_flows(&topo, 12)
            .into_iter()
            .map(|mut f| {
                f.size = Bytes::new(10_000_000);
                f
            })
            .collect();
        let deadline = SimTime::from_micros(100);
        let (done, serial) = run_serial(&topo, &cfg, &flows, deadline);
        assert!(!done, "deadline exit exercised");
        assert!(serial.unfinished_flows > 0);
        for shards in [1, 2] {
            assert_matches_serial(&topo, &cfg, &flows, shards, deadline);
        }
    }

    #[test]
    fn faulted_run_matches_serial() {
        let topo = Topology::clos(&ClosConfig::small(4));
        // Flap a fabric link mid-run and corrupt another: fault events
        // replicate across shards, endpoint work stays owner-local.
        let mut faults = FaultSchedule::none();
        let fabric_link = topo
            .links()
            .iter()
            .find(|l| {
                topo.host_uplink_switch(l.a.node).is_none()
                    && topo.host_uplink_switch(l.b.node).is_none()
            })
            .expect("clos has fabric links");
        faults.link_flap(
            fabric_link.id.index() as u32,
            SimTime::from_micros(30),
            SimDuration::from_micros(200),
        );
        faults.corruption_window(
            fabric_link.id.index() as u32,
            SimTime::from_micros(400),
            SimDuration::from_micros(300),
            1e-6,
        );
        let cfg = FabricConfig {
            policy: PolicyChoice::l2bm(),
            faults,
            ..FabricConfig::default()
        };
        let flows = hybrid_flows(&topo, 16);
        for shards in [1, 2] {
            assert_matches_serial(&topo, &cfg, &flows, shards, SimTime::from_millis(100));
        }
    }

    #[test]
    fn watchdog_run_matches_serial() {
        let topo = Topology::clos(&ClosConfig::small(4));
        let cfg = FabricConfig {
            flow_watchdog: Some(SimDuration::from_micros(500)),
            ..FabricConfig::default()
        };
        let flows = hybrid_flows(&topo, 16);
        for shards in [1, 2] {
            assert_matches_serial(&topo, &cfg, &flows, shards, SimTime::from_millis(100));
        }
    }

    #[test]
    fn zero_flow_run_matches_serial() {
        let topo = Topology::clos(&ClosConfig::small(2));
        let cfg = FabricConfig::default();
        for shards in [1, 2] {
            assert_matches_serial(&topo, &cfg, &[], shards, SimTime::from_millis(10));
        }
    }

    #[test]
    fn requested_shards_clamp_to_tor_count() {
        let topo = Topology::clos(&ClosConfig::small(2));
        let sim = ShardedFabricSim::new(topo, FabricConfig::default(), 64);
        assert_eq!(sim.shards(), 2, "small clos has two ToRs");
    }
}
