//! End-host model: a PFC-reactive NIC with per-priority queues.
//!
//! The NIC reuses the switch crate's [`EgressPort`] (eight priority
//! FIFOs, round-robin, one packet in flight) but has no buffer limits —
//! host memory is not the bottleneck the paper studies. It honours PFC
//! pause frames from its ToR per priority, which is how switch-side
//! back-pressure reaches DCQCN/DCTCP senders.

use dcn_net::{NodeId, Packet, PortId, Priority};
use dcn_sim::{BitRate, Bytes, SimDuration, SimTime, TimerHandle};
use dcn_switch::{Charge, EgressPort, InFlight, Pool, QueuedPacket, TxStart};

/// One committed leg of a packet train: a packet whose serialization
/// slot and `Deliver` event are already booked on the NIC's wire.
#[derive(Debug, Clone)]
pub struct TrainLeg {
    /// When this leg's serialization starts (legs are back-to-back).
    pub start: SimTime,
    /// This leg's serialization time.
    pub serialize: SimDuration,
    /// When this leg's booked `Deliver` fires at the link peer.
    pub deliver_at: SimTime,
    /// A copy of the leg's packet. The original rides the already
    /// scheduled `Deliver`; a split requeues this copy and suppresses
    /// the orphaned event at dispatch, which keeps the common commit
    /// path on plain (cheap) heap events instead of cancellable
    /// timers.
    pub packet: Packet,
}

/// A committed packet train: N back-to-back serializations of the sole
/// non-empty priority, represented by one completion timer instead of N
/// `HostTxComplete` events.
#[derive(Debug)]
pub struct Train {
    /// The single priority every leg belongs to.
    pub prio: Priority,
    /// Legs in commit (FIFO) order; `legs[0]` is the NIC's in-flight
    /// record.
    pub legs: Vec<TrainLeg>,
    /// Wheel handle of the train-completion timer.
    pub done: TimerHandle,
}

/// One end host's transmit path.
#[derive(Debug)]
pub struct Host {
    id: NodeId,
    nic: EgressPort,
    paused: [bool; Priority::COUNT],
    link_rate: BitRate,
    train: Option<Train>,
}

impl Host {
    /// Creates a host whose single NIC port runs at `link_rate`.
    pub fn new(id: NodeId, link_rate: BitRate) -> Host {
        Host {
            id,
            nic: EgressPort::new(),
            paused: [false; Priority::COUNT],
            link_rate,
            train: None,
        }
    }

    /// This host's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether a priority is currently paused by the ToR.
    pub fn is_paused(&self, priority: Priority) -> bool {
        self.paused[priority.index()]
    }

    /// Applies a PFC pause/resume for one priority.
    pub fn set_paused(&mut self, priority: Priority, paused: bool) {
        self.paused[priority.index()] = paused;
    }

    /// Queues a packet for transmission.
    pub fn enqueue(&mut self, packet: Packet) {
        self.nic.enqueue(QueuedPacket {
            packet,
            in_port: PortId::new(0),
            charge: Charge {
                reserved: Bytes::ZERO,
                pooled: Bytes::ZERO,
                pool: Pool::Shared,
            },
        });
    }

    /// Starts the next transmission if the NIC is idle and an unpaused
    /// priority has a packet. Mirrors the switch's [`TxStart`] protocol.
    pub fn try_start(&mut self) -> Option<TxStart> {
        let paused = self.paused;
        let packet = self.nic.start_next(|p| paused[p.index()])?;
        let serialize = self.link_rate.tx_time(packet.size);
        Some(TxStart {
            port: PortId::new(0),
            packet,
            serialize,
        })
    }

    /// Completes the in-flight transmission and starts the next one.
    ///
    /// # Panics
    ///
    /// Panics if nothing was in flight.
    pub fn tx_complete(&mut self) -> Option<TxStart> {
        let _ = self.nic.finish_tx();
        self.try_start()
    }

    /// Packets waiting in the NIC (excluding in flight).
    pub fn queued(&self) -> usize {
        self.nic.queued_total()
    }

    /// Packets waiting at one priority (excluding in flight).
    pub fn queued_at(&self, priority: Priority) -> usize {
        self.nic.queued_at(priority)
    }

    /// The single non-empty priority, if exactly one FIFO has packets.
    pub fn sole_nonempty(&self) -> Option<Priority> {
        self.nic.sole_nonempty()
    }

    // ---- packet-train support ------------------------------------------

    /// The active train's priority, if a train is committed.
    pub fn train_priority(&self) -> Option<Priority> {
        self.train.as_ref().map(|t| t.prio)
    }

    /// Commits a train. The first leg must already be the NIC's
    /// in-flight record (via [`Host::try_start`]); later legs were
    /// removed from the queue with [`Host::pop_front`].
    pub fn set_train(&mut self, train: Train) {
        debug_assert!(self.train.is_none(), "train committed over a train");
        self.train = Some(train);
    }

    /// Takes the active train for a split, leaving the NIC in flight.
    pub fn take_train(&mut self) -> Option<Train> {
        self.train.take()
    }

    /// Completes the whole train: every leg departed, so the NIC goes
    /// idle.
    pub fn finish_train(&mut self) {
        self.train = None;
        let _ = self.nic.finish_tx();
    }

    /// Removes the head-of-line packet of one priority for use as a
    /// train leg (does not touch the in-flight record or round-robin
    /// pointer).
    pub fn pop_front(&mut self, priority: Priority) -> Option<QueuedPacket> {
        self.nic.pop_front(priority)
    }

    /// Returns a revoked train leg's packet to the front of its queue.
    pub fn requeue_front(&mut self, packet: Packet) {
        self.nic.requeue_front(QueuedPacket {
            packet,
            in_port: PortId::new(0),
            charge: Charge {
                reserved: Bytes::ZERO,
                pooled: Bytes::ZERO,
                pool: Pool::Shared,
            },
        });
    }

    /// Points the NIC's in-flight record at the given train leg (split
    /// reconstruction: the leg currently on the wire takes over from
    /// leg 0).
    pub fn set_in_flight_leg(&mut self, leg: &TrainLeg, prio: Priority) {
        self.nic.set_in_flight(InFlight {
            flow: leg.packet.flow,
            seq: leg.packet.seq,
            priority: prio,
            size: leg.packet.size,
            in_port: PortId::new(0),
            charge: Charge {
                reserved: Bytes::ZERO,
                pooled: Bytes::ZERO,
                pool: Pool::Shared,
            },
        });
    }

    /// Completes the in-flight transmission without starting the next
    /// one (the train-aware world decides how to start it).
    ///
    /// # Panics
    ///
    /// Panics if nothing was in flight.
    pub fn finish_tx(&mut self) {
        let _ = self.nic.finish_tx();
    }

    /// Serialization time of a packet on this host's link.
    pub fn tx_time(&self, size: Bytes) -> SimDuration {
        self.link_rate.tx_time(size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_net::{FlowId, TrafficClass};

    fn pkt(prio: u8, seq: u64) -> Packet {
        Packet::data(
            FlowId::new(1),
            NodeId::new(0),
            NodeId::new(1),
            Priority::new(prio),
            TrafficClass::Lossless,
            seq,
            Bytes::new(1_000),
            Bytes::new(48),
        )
    }

    #[test]
    fn sends_in_order_when_unpaused() {
        let mut h = Host::new(NodeId::new(0), BitRate::from_gbps(25));
        h.enqueue(pkt(3, 0));
        h.enqueue(pkt(3, 1));
        let t0 = h.try_start().expect("idle NIC starts");
        assert_eq!(t0.packet.seq, 0);
        assert_eq!(t0.serialize.as_nanos(), 336);
        assert!(h.try_start().is_none(), "busy");
        let t1 = h.tx_complete().expect("next starts");
        assert_eq!(t1.packet.seq, 1);
        assert!(h.tx_complete().is_none());
    }

    #[test]
    fn pause_blocks_only_that_priority() {
        let mut h = Host::new(NodeId::new(0), BitRate::from_gbps(25));
        h.set_paused(Priority::new(3), true);
        h.enqueue(pkt(3, 0));
        h.enqueue(pkt(1, 1));
        let t = h.try_start().expect("lossy priority unaffected");
        assert_eq!(t.packet.priority, Priority::new(1));
        // Priority 3 stays queued.
        assert_eq!(h.queued(), 1);
        h.tx_complete();
        assert!(h.try_start().is_none(), "only paused traffic remains");
        h.set_paused(Priority::new(3), false);
        let t = h.try_start().expect("resume releases it");
        assert_eq!(t.packet.seq, 0);
    }
}
