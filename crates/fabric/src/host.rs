//! End-host model: a PFC-reactive NIC with per-priority queues.
//!
//! The NIC reuses the switch crate's [`EgressPort`] (eight priority
//! FIFOs, round-robin, one packet in flight) but has no buffer limits —
//! host memory is not the bottleneck the paper studies. It honours PFC
//! pause frames from its ToR per priority, which is how switch-side
//! back-pressure reaches DCQCN/DCTCP senders.

use dcn_net::{NodeId, Packet, PortId, Priority};
use dcn_sim::{BitRate, Bytes, SimDuration};
use dcn_switch::{Charge, EgressPort, Pool, QueuedPacket, TxStart};

/// One end host's transmit path.
#[derive(Debug)]
pub struct Host {
    id: NodeId,
    nic: EgressPort,
    paused: [bool; Priority::COUNT],
    link_rate: BitRate,
}

impl Host {
    /// Creates a host whose single NIC port runs at `link_rate`.
    pub fn new(id: NodeId, link_rate: BitRate) -> Host {
        Host {
            id,
            nic: EgressPort::new(),
            paused: [false; Priority::COUNT],
            link_rate,
        }
    }

    /// This host's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether a priority is currently paused by the ToR.
    pub fn is_paused(&self, priority: Priority) -> bool {
        self.paused[priority.index()]
    }

    /// Applies a PFC pause/resume for one priority.
    pub fn set_paused(&mut self, priority: Priority, paused: bool) {
        self.paused[priority.index()] = paused;
    }

    /// Queues a packet for transmission.
    pub fn enqueue(&mut self, packet: Packet) {
        self.nic.enqueue(QueuedPacket {
            packet,
            in_port: PortId::new(0),
            charge: Charge {
                reserved: Bytes::ZERO,
                pooled: Bytes::ZERO,
                pool: Pool::Shared,
            },
        });
    }

    /// Starts the next transmission if the NIC is idle and an unpaused
    /// priority has a packet. Mirrors the switch's [`TxStart`] protocol.
    pub fn try_start(&mut self) -> Option<TxStart> {
        let paused = self.paused;
        let packet = self.nic.start_next(|p| paused[p.index()])?;
        let serialize = self.link_rate.tx_time(packet.size);
        Some(TxStart {
            port: PortId::new(0),
            packet,
            serialize,
        })
    }

    /// Completes the in-flight transmission and starts the next one.
    ///
    /// # Panics
    ///
    /// Panics if nothing was in flight.
    pub fn tx_complete(&mut self) -> Option<TxStart> {
        let _ = self.nic.finish_tx();
        self.try_start()
    }

    /// Packets waiting in the NIC (excluding in flight).
    pub fn queued(&self) -> usize {
        self.nic.queued_total()
    }

    /// Serialization time of a packet on this host's link.
    pub fn tx_time(&self, size: Bytes) -> SimDuration {
        self.link_rate.tx_time(size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_net::{FlowId, TrafficClass};

    fn pkt(prio: u8, seq: u64) -> Packet {
        Packet::data(
            FlowId::new(1),
            NodeId::new(0),
            NodeId::new(1),
            Priority::new(prio),
            TrafficClass::Lossless,
            seq,
            Bytes::new(1_000),
            Bytes::new(48),
        )
    }

    #[test]
    fn sends_in_order_when_unpaused() {
        let mut h = Host::new(NodeId::new(0), BitRate::from_gbps(25));
        h.enqueue(pkt(3, 0));
        h.enqueue(pkt(3, 1));
        let t0 = h.try_start().expect("idle NIC starts");
        assert_eq!(t0.packet.seq, 0);
        assert_eq!(t0.serialize.as_nanos(), 336);
        assert!(h.try_start().is_none(), "busy");
        let t1 = h.tx_complete().expect("next starts");
        assert_eq!(t1.packet.seq, 1);
        assert!(h.tx_complete().is_none());
    }

    #[test]
    fn pause_blocks_only_that_priority() {
        let mut h = Host::new(NodeId::new(0), BitRate::from_gbps(25));
        h.set_paused(Priority::new(3), true);
        h.enqueue(pkt(3, 0));
        h.enqueue(pkt(1, 1));
        let t = h.try_start().expect("lossy priority unaffected");
        assert_eq!(t.packet.priority, Priority::new(1));
        // Priority 3 stays queued.
        assert_eq!(h.queued(), 1);
        h.tx_complete();
        assert!(h.try_start().is_none(), "only paused traffic remains");
        h.set_paused(Priority::new(3), false);
        let t = h.try_start().expect("resume releases it");
        assert_eq!(t.packet.seq, 0);
    }
}
