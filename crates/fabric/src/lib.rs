//! The integrated packet-level DCN simulator.
//!
//! This crate wires everything together into one deterministic
//! discrete-event loop: hosts with PFC-reactive NICs running DCTCP
//! (lossy class) or DCQCN (lossless class), shared-memory switches with a
//! pluggable buffer-management policy (DT / DT2 / ABM / L2BM), links with
//! serialization + propagation, ECMP routing, and the measurement hooks
//! the paper's evaluation needs (FCT records, 1 ms occupancy sampling,
//! PFC frame counters, drop counters).
//!
//! # Example — a 5-into-1 lossless incast through one switch
//!
//! ```
//! use dcn_fabric::{FabricConfig, FabricSim, PolicyChoice};
//! use dcn_net::{NodeId, Priority, TrafficClass, Topology};
//! use dcn_sim::{BitRate, Bytes, SimDuration, SimTime};
//! use dcn_workload::FlowSpec;
//!
//! let topo = Topology::single_switch(6, BitRate::from_gbps(25), SimDuration::from_micros(1));
//! let cfg = FabricConfig {
//!     policy: PolicyChoice::L2bm(Default::default()),
//!     ..FabricConfig::default()
//! };
//! let mut sim = FabricSim::new(topo, cfg);
//! for (i, src) in (0..5).enumerate() {
//!     sim.add_flow(FlowSpec {
//!         id: dcn_net::FlowId::new(i as u64),
//!         src: NodeId::new(src),
//!         dst: NodeId::new(5),
//!         size: Bytes::new(200_000),
//!         start: SimTime::ZERO,
//!         class: TrafficClass::Lossless,
//!         priority: Priority::new(3),
//!     });
//! }
//! assert!(sim.run_until_done(SimTime::from_millis(100)));
//! let results = sim.results();
//! assert_eq!(results.fct.len(), 5);
//! assert_eq!(results.drops.lossless_packets, 0, "lossless stayed lossless");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod flows;
mod host;
mod results;
mod world;

pub use config::{FabricConfig, PolicyChoice};
pub use flows::{FlowRuntime, FlowState};
pub use host::Host;
pub use results::RunResults;
pub use world::{Event, FabricSim, World};
