//! The integrated packet-level DCN simulator.
//!
//! This crate wires everything together into one deterministic
//! discrete-event loop: hosts with PFC-reactive NICs running DCTCP
//! (lossy class) or DCQCN (lossless class), shared-memory switches with a
//! pluggable buffer-management policy (DT / DT2 / ABM / L2BM), links with
//! serialization + propagation, ECMP routing, and the measurement hooks
//! the paper's evaluation needs (FCT records, 1 ms occupancy sampling,
//! PFC frame counters, drop counters).
//!
//! # Example — a 5-into-1 lossless incast through one switch
//!
//! ```
//! use dcn_fabric::{FabricConfig, FabricSim, PolicyChoice};
//! use dcn_net::{NodeId, Priority, TrafficClass, Topology};
//! use dcn_sim::{BitRate, Bytes, SimDuration, SimTime};
//! use dcn_workload::FlowSpec;
//!
//! let topo = Topology::single_switch(6, BitRate::from_gbps(25), SimDuration::from_micros(1));
//! let cfg = FabricConfig {
//!     policy: PolicyChoice::L2bm(Default::default()),
//!     ..FabricConfig::default()
//! };
//! let mut sim = FabricSim::new(topo, cfg);
//! for (i, src) in (0..5).enumerate() {
//!     sim.add_flow(FlowSpec {
//!         id: dcn_net::FlowId::new(i as u64),
//!         src: NodeId::new(src),
//!         dst: NodeId::new(5),
//!         size: Bytes::new(200_000),
//!         start: SimTime::ZERO,
//!         class: TrafficClass::Lossless,
//!         priority: Priority::new(3),
//!     });
//! }
//! assert!(sim.run_until_done(SimTime::from_millis(100)));
//! let results = sim.results();
//! assert_eq!(results.fct.len(), 5);
//! assert_eq!(results.drops.lossless_packets, 0, "lossless stayed lossless");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod flows;
mod host;
mod results;
mod shard;
mod world;

pub use config::{FabricConfig, PolicyChoice, RdmaTransport, TrainConfig};
pub use flows::{FlowRuntime, FlowState, FlowTable};
pub use host::Host;
pub use results::{RunResults, TrainStats};
pub use shard::ShardedFabricSim;
pub use world::{Event, FabricSim, World};

/// Compile-time proof that per-cell fabric construction is `Send`-clean.
///
/// A [`World`] itself is deliberately **not** `Send` (its flight
/// recorder is an `Rc<RefCell<…>>` shared with every switch), so the
/// parallel sweep engine never moves a live simulation between threads.
/// Instead each worker thread receives only the plain-data inputs below
/// and builds its own `World`, and ships back only the plain-data
/// [`RunResults`]. These assertions pin that contract: if a non-`Send`
/// handle ever leaks into a config or result type, the crate stops
/// compiling rather than the sweep engine breaking at a distance.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<FabricConfig>();
    assert_send::<PolicyChoice>();
    assert_send::<dcn_net::Topology>();
    assert_send::<dcn_workload::FlowSpec>();
    assert_send::<RunResults>();
};

#[cfg(test)]
mod send_clean_tests {
    use super::*;
    use dcn_net::{FlowId, NodeId, Priority, Topology, TrafficClass};
    use dcn_sim::{BitRate, Bytes, SimDuration, SimTime};
    use dcn_workload::FlowSpec;

    /// A whole simulation cell — construction, run, results — executes
    /// on a spawned thread from `Send` inputs alone.
    #[test]
    fn world_builds_and_runs_on_a_worker_thread() {
        let topo = Topology::single_switch(3, BitRate::from_gbps(25), SimDuration::from_micros(1));
        let cfg = FabricConfig::default();
        let results = std::thread::spawn(move || {
            let mut sim = FabricSim::new(topo, cfg);
            sim.add_flow(FlowSpec {
                id: FlowId::new(1),
                src: NodeId::new(0),
                dst: NodeId::new(2),
                size: Bytes::new(50_000),
                start: SimTime::ZERO,
                class: TrafficClass::Lossy,
                priority: Priority::new(1),
            });
            assert!(sim.run_until_done(SimTime::from_millis(50)));
            sim.results()
        })
        .join()
        .expect("worker cell completes");
        assert_eq!(results.fct.len(), 1);
    }
}
