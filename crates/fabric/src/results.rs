//! Aggregated results of one simulation run.

use std::collections::BTreeMap;

use dcn_metrics::{DropCounters, FctSet, OccupancySeries, PfcCounters};
use dcn_net::NodeId;

/// Everything the paper's evaluation reads out of a run.
#[derive(Debug, Clone, Default)]
pub struct RunResults {
    /// Completed-flow records (both classes).
    pub fct: FctSet,
    /// PFC pause/resume frames summed over all switches.
    pub pfc: PfcCounters,
    /// PFC counters per switch.
    pub pfc_by_switch: BTreeMap<NodeId, PfcCounters>,
    /// Drops summed over all switches.
    pub drops: DropCounters,
    /// Buffer-occupancy traces per switch (if sampling was enabled).
    pub occupancy: BTreeMap<NodeId, OccupancySeries>,
    /// Flows that had not finished when the run ended.
    pub unfinished_flows: usize,
    /// Total events processed (simulator throughput diagnostics).
    pub events_processed: u64,
}

impl RunResults {
    /// Total PFC pause frames (the paper's Fig. 7(d) / Table II metric).
    pub fn pause_frames(&self) -> u64 {
        self.pfc.pause_frames()
    }
}
