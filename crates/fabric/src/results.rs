//! Aggregated results of one simulation run.

use std::collections::BTreeMap;

use dcn_metrics::{DropCounters, FctSet, IrnCounters, OccupancySeries, PfcCounters};
use dcn_net::NodeId;
use dcn_sim::QueueStats;

/// Host-NIC packet-train coalescing counters. Diagnostics only — like
/// [`QueueStats`], deliberately excluded from [`RunResults::digest`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrainStats {
    /// Trains committed (each replaced `legs` per-packet completions
    /// with one wheel timer).
    pub trains: u64,
    /// Total legs across all committed trains.
    pub legs: u64,
    /// Trains split mid-flight by a PFC XOFF or a competing-priority
    /// injection (revoked legs went back to their queue).
    pub splits: u64,
}

/// Everything the paper's evaluation reads out of a run.
#[derive(Debug, Clone, Default)]
pub struct RunResults {
    /// Completed-flow records (both classes).
    pub fct: FctSet,
    /// PFC pause/resume frames summed over all switches.
    pub pfc: PfcCounters,
    /// PFC counters per switch.
    pub pfc_by_switch: BTreeMap<NodeId, PfcCounters>,
    /// Drops summed over all switches.
    pub drops: DropCounters,
    /// Buffer-occupancy traces per switch (if sampling was enabled).
    pub occupancy: BTreeMap<NodeId, OccupancySeries>,
    /// Flows that had not finished when the run ended.
    pub unfinished_flows: usize,
    /// Total events processed (simulator throughput diagnostics).
    pub events_processed: u64,
    /// Event-queue counters: pending high-water mark, heap depth, entry
    /// size, past-time clamps. Diagnostics only — deliberately **not**
    /// part of [`RunResults::digest`], which fingerprints simulated
    /// behavior, not scheduler internals.
    pub queue: QueueStats,
    /// Packet-train coalescing counters (zero when trains are off).
    pub trains: TrainStats,
    /// IRN (lossy RDMA) transport counters. All zero — and excluded
    /// from [`RunResults::digest`] — when no flow ran the IRN
    /// transport, so legacy digests are unchanged by IRN support.
    pub irn: IrnCounters,
    /// DCQCN senders found stranded (unsent bytes, no pacing event) —
    /// a transport-liveness defect that must stay zero; asserted by the
    /// golden-digest and chaos checks. Not part of the digest.
    pub rdma_stranded: u64,
    /// Liveness-watchdog stall episodes on RDMA flows (zero unless
    /// [`crate::FabricConfig::flow_watchdog`] is set). Not part of the
    /// digest.
    pub flow_stalls: u64,
    /// Per-shard executor statistics from a sharded run (empty for the
    /// serial engine). Diagnostics only — the values depend on how the
    /// run was parallelized, so they are deliberately excluded from
    /// [`RunResults::digest`], which must be identical at every shard
    /// count.
    pub shards: Vec<dcn_sim::ShardStats>,
}

impl RunResults {
    /// Total PFC pause frames (the paper's Fig. 7(d) / Table II metric).
    pub fn pause_frames(&self) -> u64 {
        self.pfc.pause_frames()
    }

    /// A stable FNV-1a digest over everything a report can read out of
    /// the run: per-flow completion records, PFC/drop totals, occupancy
    /// samples and the event count.
    ///
    /// Two runs of the same configuration and seed produce the same
    /// digest; the parallel sweep engine's regression tests compare
    /// digests across `--jobs` values to prove scheduling independence.
    pub fn digest(&self) -> u64 {
        self.digest_inner(true)
    }

    /// [`RunResults::digest`] minus the event count: fingerprints *what
    /// the network did* (per-flow records, PFC, drops, occupancy)
    /// without *how many events it took*. Packet-train coalescing
    /// replaces N per-packet completions with one timer, so a trained
    /// run can match an untrained run's behavior digest while their
    /// full digests necessarily differ.
    pub fn behavior_digest(&self) -> u64 {
        self.digest_inner(false)
    }

    fn digest_inner(&self, include_events: bool) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        for r in self.fct.records() {
            mix(r.flow.as_u64());
            mix(r.start.as_nanos());
            mix(r.finish.as_nanos());
            mix(r.size.as_u64());
        }
        mix(self.pfc.pause_frames());
        mix(self.pfc.resume_frames());
        mix(self.pfc.watchdog_fires());
        mix(self.drops.lossy_packets);
        mix(self.drops.lossy_bytes);
        mix(self.drops.lossless_packets);
        mix(self.drops.lossless_bytes);
        for (node, series) in &self.occupancy {
            mix(node.index() as u64);
            for &(at, occ) in series.samples() {
                mix(at.as_nanos());
                mix(occ.as_u64());
            }
        }
        mix(self.unfinished_flows as u64);
        // IRN counters join the fingerprint only when the run actually
        // carried IRN flows: a DCQCN-only run mixes nothing here and
        // keeps its pre-IRN digest byte-identical.
        if self.irn.flows > 0 {
            mix(self.irn.flows);
            mix(self.irn.nacks_switch);
            mix(self.irn.nacks_receiver);
            mix(self.irn.retransmitted_packets);
            mix(self.irn.retransmitted_bytes);
            mix(self.irn.rto_fires);
            mix(self.drops.lossy_rdma_packets);
            mix(self.drops.lossy_rdma_bytes);
        }
        if include_events {
            mix(self.events_processed);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_sensitive() {
        let empty = RunResults::default();
        assert_eq!(empty.digest(), RunResults::default().digest());
        let r = RunResults {
            events_processed: 1,
            ..RunResults::default()
        };
        assert_ne!(r.digest(), empty.digest());
        let mut r = RunResults::default();
        r.drops.lossy_packets = 1;
        assert_ne!(r.digest(), empty.digest());
    }

    #[test]
    fn irn_counters_only_digest_when_irn_flows_ran() {
        let empty = RunResults::default();
        // Phantom IRN activity with zero IRN flows (impossible in a real
        // run) must not perturb the digest: the gate is the flow count.
        let mut r = RunResults::default();
        r.irn.nacks_switch = 5;
        r.rdma_stranded = 2;
        r.flow_stalls = 3;
        assert_eq!(r.digest(), empty.digest());
        r.irn.flows = 1;
        assert_ne!(r.digest(), empty.digest());
    }
}
