//! Fabric-level configuration: which buffer-management policy runs on
//! the switches, plus transport tunables.

use dcn_sim::{FaultSchedule, SimDuration, TraceConfig};
use dcn_switch::{AbmPolicy, BufferPolicy, DtPolicy, OccamyPolicy, SwitchConfig};
use dcn_transport::{DcqcnConfig, DctcpConfig, IrnConfig};
use l2bm::{BShareConfig, BSharePolicy, L2bmConfig, L2bmPolicy};

/// Which PFC-threshold policy every switch runs — the four columns of
/// the paper's comparison plus the two extended-arena policies
/// (Occamy, BShare).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyChoice {
    /// Classic DT with the given α (the paper's DT is 0.125, DT2 0.5).
    Dt(f64),
    /// ABM adapted to the ingress pool, with the given α.
    Abm(f64),
    /// L2BM, the paper's contribution.
    L2bm(L2bmConfig),
    /// Occamy: DT-style threshold with preemptive eviction of the
    /// deepest unprotected lossy backlog, with the given α. The RDMA
    /// lossless priority is protected from eviction.
    Occamy(f64),
    /// BShare: queueing-delay-target-driven sharing, a second consumer
    /// of the L2BM sojourn machinery.
    BShare(BShareConfig),
}

impl PolicyChoice {
    /// The paper's "DT" baseline (α = 0.125, RoCEv2 default).
    pub fn dt() -> Self {
        PolicyChoice::Dt(0.125)
    }

    /// The paper's "DT2" baseline (α = 0.5).
    pub fn dt2() -> Self {
        PolicyChoice::Dt(0.5)
    }

    /// The paper's ABM comparison point (α = 0.5).
    pub fn abm() -> Self {
        PolicyChoice::Abm(0.5)
    }

    /// L2BM with paper defaults.
    pub fn l2bm() -> Self {
        PolicyChoice::L2bm(L2bmConfig::default())
    }

    /// Occamy with DT2-equivalent α = 0.5 and the fabric's lossless
    /// RDMA priority (3) protected from eviction.
    pub fn occamy() -> Self {
        PolicyChoice::Occamy(0.5)
    }

    /// BShare with default delay target.
    pub fn bshare() -> Self {
        PolicyChoice::BShare(BShareConfig::default())
    }

    /// Builds a fresh policy instance for one switch.
    pub fn build(&self) -> Box<dyn BufferPolicy> {
        match *self {
            PolicyChoice::Dt(alpha) => Box::new(DtPolicy::new(alpha)),
            PolicyChoice::Abm(alpha) => Box::new(AbmPolicy::new(alpha)),
            PolicyChoice::L2bm(cfg) => Box::new(L2bmPolicy::new(cfg)),
            PolicyChoice::Occamy(alpha) => Box::new(
                OccamyPolicy::new(alpha).with_protected_priorities(&[dcn_net::Priority::new(3)]),
            ),
            PolicyChoice::BShare(cfg) => Box::new(BSharePolicy::new(cfg)),
        }
    }

    /// Display label matching the paper's figures (DT / DT2 / ABM / L2BM)
    /// plus the arena extensions (Occamy / BShare).
    pub fn label(&self) -> String {
        match *self {
            PolicyChoice::Dt(alpha) if (alpha - 0.125).abs() < 1e-9 => "DT".into(),
            PolicyChoice::Dt(alpha) if (alpha - 0.5).abs() < 1e-9 => "DT2".into(),
            PolicyChoice::Dt(alpha) => format!("DT(a={alpha})"),
            PolicyChoice::Abm(_) => "ABM".into(),
            PolicyChoice::L2bm(_) => "L2BM".into(),
            PolicyChoice::Occamy(_) => "Occamy".into(),
            PolicyChoice::BShare(_) => "BShare".into(),
        }
    }
}

/// Host-NIC packet-train coalescing: back-to-back serializations on an
/// uncontended NIC (exactly one non-empty, unpaused priority) collapse
/// into one train — per-leg deliveries ride cancellable wheel timers
/// and a single completion replaces N per-packet `HostTxComplete`
/// events. A mid-train PFC XOFF of the train's priority or a
/// competing-priority injection splits the train lazily: legs already
/// on the wire stand, unstarted legs are revoked back into the queue.
///
/// Disabled by default: batching moves the *scheduling instants* of
/// deliveries (not their fire times), which permutes event sequence
/// numbers and can flip exact-nanosecond ties, so trained runs are
/// behaviorally equivalent but not byte-identical to the golden
/// digests. Enable for throughput, not for digest comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainConfig {
    /// Master switch; `false` keeps the per-packet event pair.
    pub enable: bool,
    /// Most legs one train may commit (bounds split/revocation cost).
    pub max_burst: usize,
    /// Minimum packets available at the sole priority (including the
    /// one starting now) before a train forms.
    pub min_queue: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            enable: false,
            max_burst: 32,
            min_queue: 2,
        }
    }
}

impl TrainConfig {
    /// Train coalescing with default burst limits.
    pub fn enabled() -> Self {
        TrainConfig {
            enable: true,
            ..TrainConfig::default()
        }
    }
}

/// Which transport the fabric's RDMA flows run — the two universes of
/// the lossless-vs-lossy resilience comparison.
///
/// A flow spec declares *what* it is (`TrafficClass::Lossless` = RDMA);
/// this selector decides *how* that RDMA is carried. With
/// [`RdmaTransport::Irn`], lossless-class specs get IRN endpoints and
/// their packets ride the droppable `LossyRdma` class: no PFC, switch-
/// and receiver-generated NACKs, go-back-N retransmission and a backed-
/// off RTO. FCT/slowdown reports still group these flows as RDMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RdmaTransport {
    /// Lossless RDMA: DCQCN rate control over PFC-protected queues
    /// (the paper's universe). The default — a config that never
    /// selects [`RdmaTransport::Irn`] is byte-identical to a build
    /// without IRN support.
    #[default]
    Dcqcn,
    /// Lossy RDMA: IRN-style NACK/retransmission without PFC.
    Irn,
}

impl RdmaTransport {
    /// Display label for experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            RdmaTransport::Dcqcn => "DCQCN",
            RdmaTransport::Irn => "IRN",
        }
    }
}

/// Full configuration of a [`crate::FabricSim`].
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Per-switch MMU/PFC/ECN configuration.
    pub switch: SwitchConfig,
    /// Buffer-management policy for every switch.
    pub policy: PolicyChoice,
    /// DCTCP tunables (lossy flows).
    pub dctcp: DctcpConfig,
    /// DCQCN tunables (lossless flows).
    pub dcqcn: DcqcnConfig,
    /// Which transport carries RDMA (lossless-class) flow specs.
    pub rdma_transport: RdmaTransport,
    /// IRN tunables (used when [`FabricConfig::rdma_transport`] is
    /// [`RdmaTransport::Irn`]).
    pub irn: IrnConfig,
    /// Opt-in RDMA-flow liveness watchdog: if an unfinished RDMA flow
    /// (either transport) makes no receiver progress over a whole
    /// interval, a `FlowStalled` trace event is recorded and the run's
    /// `flow_stalls` defect counter bumped — once per stall episode.
    /// `None` (the default) arms no timers and adds no events, keeping
    /// legacy digests byte-identical.
    pub flow_watchdog: Option<SimDuration>,
    /// Buffer-occupancy sampling period (paper: 1 ms). `None` disables
    /// sampling.
    pub sample_interval: Option<SimDuration>,
    /// Seed for the switches' probabilistic ECN marking.
    pub seed: u64,
    /// Flight-recorder configuration. Disabled by default; when enabled
    /// one shared recorder collects lifecycle events from every switch
    /// and transport in the fabric.
    pub trace: TraceConfig,
    /// Injected faults (link failures, corruption windows, stuck PFC
    /// pauses). Empty by default: a zero-fault schedule adds no events
    /// and draws no random numbers, so healthy runs are byte-identical
    /// to a build without fault support.
    pub faults: FaultSchedule,
    /// Host-NIC packet-train coalescing (off by default; see
    /// [`TrainConfig`]).
    pub train: TrainConfig,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            switch: SwitchConfig::default(),
            policy: PolicyChoice::dt(),
            dctcp: DctcpConfig::default(),
            dcqcn: DcqcnConfig::default(),
            rdma_transport: RdmaTransport::default(),
            irn: IrnConfig::default(),
            flow_watchdog: None,
            sample_interval: Some(SimDuration::from_millis(1)),
            seed: 1,
            trace: TraceConfig::default(),
            faults: FaultSchedule::none(),
            train: TrainConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(PolicyChoice::dt().label(), "DT");
        assert_eq!(PolicyChoice::dt2().label(), "DT2");
        assert_eq!(PolicyChoice::abm().label(), "ABM");
        assert_eq!(PolicyChoice::l2bm().label(), "L2BM");
        assert_eq!(PolicyChoice::occamy().label(), "Occamy");
        assert_eq!(PolicyChoice::bshare().label(), "BShare");
        assert_eq!(PolicyChoice::Dt(0.25).label(), "DT(a=0.25)");
    }

    #[test]
    fn build_produces_named_policies() {
        assert_eq!(PolicyChoice::dt().build().name(), "DT");
        assert_eq!(PolicyChoice::abm().build().name(), "ABM");
        assert_eq!(PolicyChoice::l2bm().build().name(), "L2BM");
        assert_eq!(PolicyChoice::occamy().build().name(), "Occamy");
        assert_eq!(PolicyChoice::bshare().build().name(), "BShare");
    }

    #[test]
    fn rdma_transport_defaults_to_dcqcn() {
        let cfg = FabricConfig::default();
        assert_eq!(cfg.rdma_transport, RdmaTransport::Dcqcn);
        assert!(cfg.flow_watchdog.is_none());
        assert_eq!(RdmaTransport::Dcqcn.label(), "DCQCN");
        assert_eq!(RdmaTransport::Irn.label(), "IRN");
    }

    #[test]
    fn occamy_choice_protects_rdma_priority() {
        // The fabric maps lossless RDMA to priority 3; the built policy
        // must never plan an eviction of that priority. Covered in depth
        // by the switch crate; here we just pin the protection wiring.
        match PolicyChoice::occamy() {
            PolicyChoice::Occamy(alpha) => assert!((alpha - 0.5).abs() < 1e-12),
            other => panic!("unexpected choice {other:?}"),
        }
    }
}
