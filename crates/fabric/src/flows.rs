//! Per-flow transport runtime: one DCTCP or DCQCN endpoint pair.

use dcn_net::TrafficClass;
use dcn_sim::{SimDuration, SimTime};
use dcn_transport::{DcqcnReceiver, DcqcnSender, DctcpReceiver, DctcpSender};
use dcn_workload::FlowSpec;

/// The sender/receiver pair of one flow, typed by traffic class.
#[derive(Debug)]
pub enum FlowRuntime {
    /// A lossy flow: DCTCP endpoints.
    Tcp {
        /// Sender state machine.
        sender: DctcpSender,
        /// Receiver state machine.
        receiver: DctcpReceiver,
    },
    /// A lossless flow: DCQCN endpoints.
    Rdma {
        /// Sender (reaction point).
        sender: DcqcnSender,
        /// Receiver (notification point).
        receiver: DcqcnReceiver,
    },
}

/// A flow plus its lifecycle bookkeeping.
#[derive(Debug)]
pub struct FlowState {
    /// The immutable flow description.
    pub spec: FlowSpec,
    /// The protocol endpoints.
    pub runtime: FlowRuntime,
    /// Whether the FCT record has been emitted.
    pub recorded: bool,
    /// Ideal (empty-network) FCT, computed at registration while every
    /// route is healthy so a mid-run link failure cannot poison the
    /// slowdown denominator of flows that finish after it.
    pub ideal: SimDuration,
}

impl FlowState {
    /// Whether both endpoints consider the flow finished (receiver got
    /// every byte; sender has nothing outstanding).
    pub fn is_done(&self) -> bool {
        match &self.runtime {
            FlowRuntime::Tcp { sender, receiver } => {
                sender.is_completed() && receiver.finished_at().is_some()
            }
            FlowRuntime::Rdma { sender, receiver } => {
                !sender.has_more() && receiver.finished_at().is_some()
            }
        }
    }

    /// When the receiver got the last byte, if it has.
    pub fn finished_at(&self) -> Option<SimTime> {
        match &self.runtime {
            FlowRuntime::Tcp { receiver, .. } => receiver.finished_at(),
            FlowRuntime::Rdma { receiver, .. } => receiver.finished_at(),
        }
    }

    /// The flow's traffic class.
    pub fn class(&self) -> TrafficClass {
        self.spec.class
    }
}
