//! Per-flow transport runtime: one DCTCP, DCQCN or IRN endpoint pair,
//! and the dense flow-id → flow-index table the per-packet hot path
//! uses.

use dcn_net::{FlowId, TrafficClass};
use dcn_sim::{SimDuration, SimTime, TimerHandle};
use dcn_transport::{
    DcqcnReceiver, DcqcnSender, DctcpReceiver, DctcpSender, IrnReceiver, IrnSender,
};
use dcn_workload::FlowSpec;

/// The sender/receiver pair of one flow, typed by transport.
#[derive(Debug)]
pub enum FlowRuntime {
    /// A lossy flow: DCTCP endpoints.
    Tcp {
        /// Sender state machine.
        sender: DctcpSender,
        /// Receiver state machine.
        receiver: DctcpReceiver,
    },
    /// A lossless flow: DCQCN endpoints.
    Rdma {
        /// Sender (reaction point).
        sender: DcqcnSender,
        /// Receiver (notification point).
        receiver: DcqcnReceiver,
    },
    /// A lossy-RDMA flow: IRN endpoints (NACK-driven retransmission,
    /// no PFC). Selected by [`crate::RdmaTransport::Irn`] for
    /// lossless-class specs; the packets ride `TrafficClass::LossyRdma`.
    Irn {
        /// Sender state machine.
        sender: IrnSender,
        /// Receiver state machine.
        receiver: IrnReceiver,
    },
}

/// Wheel-timer handles owned by one flow's sender. Each slot is the
/// handle of the single outstanding deadline of that kind (`None` when
/// not armed): re-arming cancels the old entry instead of orphaning a
/// generation-stamped tombstone in the heap, which is what keeps the
/// pending-event population bounded for long-lived flows.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowTimers {
    /// DCTCP/IRN retransmission deadline.
    pub rto: Option<TimerHandle>,
    /// DCQCN α-decay timer.
    pub alpha: Option<TimerHandle>,
    /// DCQCN rate-increase timer.
    pub rate: Option<TimerHandle>,
    /// Opt-in RDMA liveness-watchdog deadline (see
    /// [`crate::FabricConfig::flow_watchdog`]).
    pub flow_watchdog: Option<TimerHandle>,
}

/// A flow plus its lifecycle bookkeeping.
#[derive(Debug)]
pub struct FlowState {
    /// The immutable flow description.
    pub spec: FlowSpec,
    /// The protocol endpoints.
    pub runtime: FlowRuntime,
    /// Outstanding cancellable timers for this flow.
    pub timers: FlowTimers,
    /// Whether the FCT record has been emitted.
    pub recorded: bool,
    /// Ideal (empty-network) FCT, computed at registration while every
    /// route is healthy so a mid-run link failure cannot poison the
    /// slowdown denominator of flows that finish after it.
    pub ideal: SimDuration,
    /// Receiver progress (in-order bytes) seen at the last liveness-
    /// watchdog fire. Only meaningful while the watchdog is armed.
    pub watchdog_progress: u64,
    /// Whether the current no-progress episode has already been
    /// counted; cleared when progress resumes, so a flow stalling twice
    /// counts two stall episodes, not one per watchdog fire.
    pub stall_flagged: bool,
}

impl FlowState {
    /// Whether both endpoints consider the flow finished (receiver got
    /// every byte; sender has nothing outstanding).
    pub fn is_done(&self) -> bool {
        match &self.runtime {
            FlowRuntime::Tcp { sender, receiver } => {
                sender.is_completed() && receiver.finished_at().is_some()
            }
            FlowRuntime::Rdma { sender, receiver } => {
                !sender.has_more() && receiver.finished_at().is_some()
            }
            FlowRuntime::Irn { sender, receiver } => {
                sender.is_completed() && receiver.finished_at().is_some()
            }
        }
    }

    /// When the receiver got the last byte, if it has.
    pub fn finished_at(&self) -> Option<SimTime> {
        match &self.runtime {
            FlowRuntime::Tcp { receiver, .. } => receiver.finished_at(),
            FlowRuntime::Rdma { receiver, .. } => receiver.finished_at(),
            FlowRuntime::Irn { receiver, .. } => receiver.finished_at(),
        }
    }

    /// In-order bytes delivered to the receiver so far (the liveness
    /// watchdog's progress measure, comparable across transports).
    pub fn received(&self) -> u64 {
        match &self.runtime {
            FlowRuntime::Tcp { receiver, .. } => receiver.received(),
            FlowRuntime::Rdma { receiver, .. } => receiver.received(),
            FlowRuntime::Irn { receiver, .. } => receiver.received(),
        }
    }

    /// The flow's traffic class.
    pub fn class(&self) -> TrafficClass {
        self.spec.class
    }
}

/// Dense flow-id → flow-index lookup for the per-packet hot path.
///
/// Workload generators hand out flow ids as `base + counter` — one
/// contiguous, ascending run per generator (e.g. RDMA flows from 0, TCP
/// background from `1 << 40`). Registration therefore sees a handful of
/// dense id *banks*, and lookup is a scan over those banks plus one
/// bounds-checked `Vec` index: no hashing, no SipHash state, ~2 compares
/// for every packet of a two-workload experiment. Ids that extend no
/// existing bank (hand-written tests, examples) each open a bank of
/// their own, so arbitrary id patterns stay correct — merely a linear
/// scan over more banks.
#[derive(Debug, Default)]
pub struct FlowTable {
    banks: Vec<Bank>,
}

#[derive(Debug)]
struct Bank {
    /// First flow id covered by this bank.
    base: u64,
    /// `ix[i]` is the dense flow index of id `base + i`.
    ix: Vec<u32>,
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// The dense flow index registered for `id`, if any.
    #[inline]
    pub fn get(&self, id: FlowId) -> Option<usize> {
        let id = id.as_u64();
        for bank in &self.banks {
            let offset = id.wrapping_sub(bank.base);
            if offset < bank.ix.len() as u64 {
                return Some(bank.ix[offset as usize] as usize);
            }
        }
        None
    }

    /// Registers `id → ix`. The caller (flow registration) checks for
    /// duplicates via [`FlowTable::get`] first; inserting a present id
    /// is a logic error.
    pub fn insert(&mut self, id: FlowId, ix: usize) {
        debug_assert!(self.get(id).is_none(), "flow id {id} already registered");
        let id = id.as_u64();
        let ix = u32::try_from(ix).expect("flow count fits u32");
        for bank in &mut self.banks {
            if id == bank.base + bank.ix.len() as u64 {
                bank.ix.push(ix);
                return;
            }
        }
        self.banks.push(Bank {
            base: id,
            ix: vec![ix],
        });
    }

    /// Number of id banks (diagnostics: should stay at the number of
    /// workload generators feeding the run).
    pub fn banks(&self) -> usize {
        self.banks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_dense_banks_resolve_without_hashing() {
        let mut t = FlowTable::new();
        for i in 0..100u64 {
            t.insert(FlowId::new(i), i as usize);
        }
        for i in 0..50u64 {
            t.insert(FlowId::new((1 << 40) + i), 100 + i as usize);
        }
        assert_eq!(t.banks(), 2);
        assert_eq!(t.get(FlowId::new(7)), Some(7));
        assert_eq!(t.get(FlowId::new((1 << 40) + 49)), Some(149));
        assert_eq!(t.get(FlowId::new(100)), None);
        assert_eq!(t.get(FlowId::new((1 << 40) + 50)), None);
        assert_eq!(t.get(FlowId::new(u64::MAX)), None);
    }

    #[test]
    fn sparse_ids_open_their_own_banks() {
        let mut t = FlowTable::new();
        t.insert(FlowId::new(5), 0);
        t.insert(FlowId::new(900), 1);
        t.insert(FlowId::new(6), 2); // extends the first bank
        assert_eq!(t.banks(), 2);
        assert_eq!(t.get(FlowId::new(5)), Some(0));
        assert_eq!(t.get(FlowId::new(6)), Some(2));
        assert_eq!(t.get(FlowId::new(900)), Some(1));
        assert_eq!(t.get(FlowId::new(7)), None);
    }

    #[test]
    fn matches_a_hashmap_on_random_ids() {
        use std::collections::HashMap;
        let mut rng = dcn_sim::SimRng::seed_from_u64(0xF10);
        let mut t = FlowTable::new();
        let mut reference = HashMap::new();
        let mut ix = 0usize;
        for _ in 0..500 {
            let id = FlowId::new(rng.below(1 << 12) * 1_000 + rng.below(3));
            if reference.contains_key(&id) {
                continue;
            }
            t.insert(id, ix);
            reference.insert(id, ix);
            ix += 1;
        }
        for (&id, &want) in &reference {
            assert_eq!(t.get(id), Some(want));
        }
        for probe in 0..10_000u64 {
            let id = FlowId::new(probe * 77);
            assert_eq!(t.get(id), reference.get(&id).copied());
        }
    }
}
