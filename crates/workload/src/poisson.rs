//! Poisson-arrival random-pair traffic at a target load.

use dcn_net::{FlowId, NodeId, Priority, TrafficClass};
use dcn_sim::{BitRate, Bytes, EmpiricalCdf, SimDuration, SimRng, SimTime};

/// One flow to inject: who sends how much to whom, when, at what class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Unique flow id.
    pub id: FlowId,
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Payload bytes to transfer.
    pub size: Bytes,
    /// When the sender starts.
    pub start: SimTime,
    /// Lossless (RDMA/DCQCN) or lossy (TCP/DCTCP).
    pub class: TrafficClass,
    /// 802.1p priority queue the flow uses.
    pub priority: Priority,
}

/// Generates flows between random host pairs with Poisson arrivals whose
/// rate realizes a target load on the hosts' access links.
///
/// Load is defined as in the paper's workload setup: with `H` sources of
/// access rate `R` and mean flow size `S̄`, the aggregate arrival rate is
/// `λ = load · H · R / (8 · S̄)` flows per second.
#[derive(Debug, Clone)]
pub struct PoissonTraffic {
    sources: Vec<NodeId>,
    dests: Vec<NodeId>,
    sizes: EmpiricalCdf,
    load: f64,
    link_rate: BitRate,
    class: TrafficClass,
    priority: Priority,
    /// Rack index per host (same length/order as the host-id universe);
    /// when present, destinations are restricted to other racks.
    rack_of: Option<Vec<(NodeId, usize)>>,
    first_flow_id: u64,
}

/// Builder for [`PoissonTraffic`].
#[derive(Debug, Clone)]
pub struct PoissonTrafficBuilder {
    inner: PoissonTraffic,
}

impl PoissonTraffic {
    /// Starts building a generator over `sources` (destinations default
    /// to the same set) drawing sizes from `sizes`.
    ///
    /// # Panics
    ///
    /// Panics if `sources` has fewer than two hosts.
    pub fn builder(sources: Vec<NodeId>, sizes: EmpiricalCdf) -> PoissonTrafficBuilder {
        assert!(sources.len() >= 2, "need at least two hosts");
        PoissonTrafficBuilder {
            inner: PoissonTraffic {
                dests: sources.clone(),
                sources,
                sizes,
                load: 0.5,
                link_rate: BitRate::from_gbps(25),
                class: TrafficClass::Lossy,
                priority: Priority::new(1),
                rack_of: None,
                first_flow_id: 0,
            },
        }
    }

    /// Mean inter-arrival time implied by the configured load.
    pub fn mean_interarrival(&self) -> SimDuration {
        let lambda = self.load * self.sources.len() as f64 * self.link_rate.as_f64()
            / (8.0 * self.sizes.mean());
        SimDuration::from_secs_f64(1.0 / lambda)
    }

    /// Generates all flows arriving within `[0, window)`.
    ///
    /// Deterministic given `rng`'s seed. Flow ids are consecutive from
    /// the configured base.
    pub fn generate(&self, window: SimDuration, rng: &mut SimRng) -> Vec<FlowSpec> {
        let mean_gap = self.mean_interarrival();
        let mut flows = Vec::new();
        let mut t = SimTime::ZERO + rng.exponential(mean_gap);
        let horizon = SimTime::ZERO + window;
        let mut next_id = self.first_flow_id;
        while t < horizon {
            let src = self.sources[rng.below(self.sources.len() as u64) as usize];
            let dst = self.pick_dst(src, rng);
            let size = Bytes::new(self.sizes.sample(rng).max(1));
            flows.push(FlowSpec {
                id: FlowId::new(next_id),
                src,
                dst,
                size,
                start: t,
                class: self.class,
                priority: self.priority,
            });
            next_id += 1;
            t += rng.exponential(mean_gap);
        }
        flows
    }

    fn pick_dst(&self, src: NodeId, rng: &mut SimRng) -> NodeId {
        if let Some(racks) = &self.rack_of {
            let src_rack = racks
                .iter()
                .find(|(n, _)| *n == src)
                .map(|&(_, r)| r)
                .expect("source host missing from rack map");
            let candidates: Vec<NodeId> = self
                .dests
                .iter()
                .copied()
                .filter(|d| {
                    *d != src
                        && racks
                            .iter()
                            .find(|(n, _)| n == d)
                            .map(|&(_, r)| r != src_rack)
                            .unwrap_or(true)
                })
                .collect();
            assert!(
                !candidates.is_empty(),
                "no inter-rack destination for {src}"
            );
            candidates[rng.below(candidates.len() as u64) as usize]
        } else {
            // Uniform over destinations, excluding self if present.
            loop {
                let d = self.dests[rng.below(self.dests.len() as u64) as usize];
                if d != src {
                    return d;
                }
            }
        }
    }
}

impl PoissonTrafficBuilder {
    /// Target load on the source access links (0 < load ≤ 1 typically,
    /// values above 1 model overload).
    ///
    /// # Panics
    ///
    /// Panics if `load` is not positive.
    pub fn load(mut self, load: f64) -> Self {
        assert!(load > 0.0, "load must be positive");
        self.inner.load = load;
        self
    }

    /// Access-link rate used in the load formula.
    pub fn link_rate(mut self, rate: BitRate) -> Self {
        self.inner.link_rate = rate;
        self
    }

    /// Traffic class and priority queue for all generated flows.
    pub fn class(mut self, class: TrafficClass, priority: Priority) -> Self {
        self.inner.class = class;
        self.inner.priority = priority;
        self
    }

    /// Restricts destinations to this set (defaults to the source set).
    ///
    /// # Panics
    ///
    /// Panics if `dests` is empty.
    pub fn dests(mut self, dests: Vec<NodeId>) -> Self {
        assert!(!dests.is_empty(), "destination set must be non-empty");
        self.inner.dests = dests;
        self
    }

    /// Provides a host→rack map and restricts each flow to cross racks
    /// (the paper's "servers … send data to servers under other leaf
    /// switches").
    pub fn inter_rack(mut self, rack_of: Vec<(NodeId, usize)>) -> Self {
        self.inner.rack_of = Some(rack_of);
        self
    }

    /// First flow id to allocate (so multiple generators don't collide).
    pub fn first_flow_id(mut self, id: u64) -> Self {
        self.inner.first_flow_id = id;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> PoissonTraffic {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::EmpiricalCdf;

    fn fixed_size_cdf(bytes: u64) -> EmpiricalCdf {
        EmpiricalCdf::new(vec![(bytes, 1.0)]).expect("valid single-knot cdf")
    }

    fn hosts(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    #[test]
    fn load_sets_arrival_rate() {
        // 4 hosts × 25 Gbps × load 0.5 / (8 × 1 MB) = 6250 flows/s.
        let t = PoissonTraffic::builder(hosts(4), fixed_size_cdf(1_000_000))
            .load(0.5)
            .link_rate(BitRate::from_gbps(25))
            .build();
        let gap = t.mean_interarrival().as_secs_f64();
        assert!((gap - 1.0 / 6_250.0).abs() < 1e-9, "gap {gap}");
    }

    #[test]
    fn generated_count_matches_load() {
        let t = PoissonTraffic::builder(hosts(4), fixed_size_cdf(1_000_000))
            .load(0.5)
            .link_rate(BitRate::from_gbps(25))
            .build();
        let mut rng = SimRng::seed_from_u64(3);
        let flows = t.generate(SimDuration::from_millis(100), &mut rng);
        // Expect ~625 flows in 100 ms; Poisson sd ~25.
        assert!((500..750).contains(&flows.len()), "{} flows", flows.len());
    }

    #[test]
    fn flows_are_time_ordered_and_ids_consecutive() {
        let t = PoissonTraffic::builder(hosts(4), fixed_size_cdf(10_000))
            .first_flow_id(100)
            .build();
        let mut rng = SimRng::seed_from_u64(4);
        let flows = t.generate(SimDuration::from_millis(1), &mut rng);
        assert!(!flows.is_empty());
        for (i, w) in flows.windows(2).enumerate() {
            assert!(w[1].start >= w[0].start);
            let _ = i;
        }
        assert_eq!(flows[0].id, FlowId::new(100));
        assert_eq!(
            flows.last().unwrap().id.as_u64(),
            100 + flows.len() as u64 - 1
        );
    }

    #[test]
    fn no_self_flows() {
        let t = PoissonTraffic::builder(hosts(3), fixed_size_cdf(10_000)).build();
        let mut rng = SimRng::seed_from_u64(5);
        for f in t.generate(SimDuration::from_millis(2), &mut rng) {
            assert_ne!(f.src, f.dst);
        }
    }

    #[test]
    fn inter_rack_restriction() {
        let hs = hosts(4);
        let racks = vec![(hs[0], 0), (hs[1], 0), (hs[2], 1), (hs[3], 1)];
        let t = PoissonTraffic::builder(hs.clone(), fixed_size_cdf(10_000))
            .inter_rack(racks.clone())
            .build();
        let mut rng = SimRng::seed_from_u64(6);
        for f in t.generate(SimDuration::from_millis(2), &mut rng) {
            let rs = racks.iter().find(|(n, _)| *n == f.src).unwrap().1;
            let rd = racks.iter().find(|(n, _)| *n == f.dst).unwrap().1;
            assert_ne!(rs, rd, "{} -> {} stayed in rack {rs}", f.src, f.dst);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let t = PoissonTraffic::builder(hosts(4), fixed_size_cdf(10_000)).build();
        let a = t.generate(SimDuration::from_millis(2), &mut SimRng::seed_from_u64(7));
        let b = t.generate(SimDuration::from_millis(2), &mut SimRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn separate_dest_set() {
        let srcs = hosts(2);
        let dsts: Vec<NodeId> = (10..14).map(NodeId::new).collect();
        let t = PoissonTraffic::builder(srcs, fixed_size_cdf(10_000))
            .dests(dsts.clone())
            .build();
        let mut rng = SimRng::seed_from_u64(8);
        for f in t.generate(SimDuration::from_millis(1), &mut rng) {
            assert!(dsts.contains(&f.dst));
        }
    }
}
