//! Traffic workload generators for the L2BM reproduction.
//!
//! The paper drives its evaluation with two workloads (§IV):
//!
//! * **Web search** — flows sampled from the heavy-tailed web-search
//!   flow-size CDF, arriving as a Poisson process whose rate realizes a
//!   target *load* on the host access links, each flow between a random
//!   pair of servers ([`PoissonTraffic`], [`web_search_cdf`]).
//! * **Incast** — a target server requests an `x`-MB file striped over
//!   `N` random other servers, which all respond simultaneously
//!   ([`IncastWorkload`]); queries arrive Poisson.
//!
//! Both produce [`FlowSpec`]s, the fabric simulator's input.
//!
//! # Example
//!
//! ```
//! use dcn_net::{NodeId, Priority, TrafficClass};
//! use dcn_sim::{BitRate, SimDuration, SimRng};
//! use dcn_workload::{web_search_cdf, PoissonTraffic};
//!
//! let hosts: Vec<NodeId> = (0..8).map(NodeId::new).collect();
//! let traffic = PoissonTraffic::builder(hosts, web_search_cdf())
//!     .load(0.4)
//!     .link_rate(BitRate::from_gbps(25))
//!     .class(TrafficClass::Lossless, Priority::new(3))
//!     .build();
//! let mut rng = SimRng::seed_from_u64(1);
//! let flows = traffic.generate(SimDuration::from_millis(1), &mut rng);
//! assert!(flows.iter().all(|f| f.src != f.dst));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod incast;
mod poisson;
mod websearch;

pub use incast::{IncastQuery, IncastWorkload};
pub use poisson::{FlowSpec, PoissonTraffic, PoissonTrafficBuilder};
pub use websearch::web_search_cdf;
