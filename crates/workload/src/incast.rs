//! Incast (fan-in burst) query generation.
//!
//! A query is a target server requesting an `x`-byte file striped over
//! `N` random other servers; all `N` respond simultaneously with `x/N`
//! bytes each (the paper's §IV-B setup: `x = 1 MB`, `N ∈ {5, 10, 15}`,
//! Poisson query arrivals — 376 queries in 0.5 s in their run). The query
//! completes when its slowest response finishes, so per-query response
//! time is the max FCT over its flows.

use dcn_net::{FlowId, NodeId, Priority, TrafficClass};
use dcn_sim::{Bytes, SimDuration, SimRng, SimTime};

use crate::poisson::FlowSpec;

/// One generated incast query: the requester and its response flows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncastQuery {
    /// Query sequence number.
    pub id: u64,
    /// The requesting (receiving) server.
    pub target: NodeId,
    /// When the request is issued (responses start then; the request
    /// itself is negligible and not simulated).
    pub at: SimTime,
    /// The `N` response flows, all starting at `at`.
    pub flows: Vec<FlowSpec>,
}

impl IncastQuery {
    /// Ids of this query's response flows.
    pub fn flow_ids(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.flows.iter().map(|f| f.id)
    }
}

/// Generates Poisson-arriving incast queries.
#[derive(Debug, Clone)]
pub struct IncastWorkload {
    hosts: Vec<NodeId>,
    fanout: usize,
    request_size: Bytes,
    mean_gap: SimDuration,
    class: TrafficClass,
    priority: Priority,
    first_flow_id: u64,
}

impl IncastWorkload {
    /// Creates a generator.
    ///
    /// * `hosts` — the server pool; targets and responders are drawn here.
    /// * `fanout` — `N`, responders per query.
    /// * `request_size` — `x`, total bytes per query (each responder
    ///   sends `x / N`, remainder going to the first responder).
    /// * `mean_gap` — mean inter-query time (Poisson). The paper's run
    ///   (376 queries / 0.5 s) corresponds to ≈ 1.33 ms.
    ///
    /// # Panics
    ///
    /// Panics if `fanout == 0`, `fanout >= hosts.len()`, or
    /// `request_size < fanout` bytes.
    pub fn new(
        hosts: Vec<NodeId>,
        fanout: usize,
        request_size: Bytes,
        mean_gap: SimDuration,
    ) -> IncastWorkload {
        assert!(fanout > 0, "fanout must be positive");
        assert!(
            fanout < hosts.len(),
            "fanout {} needs more than {} hosts",
            fanout,
            hosts.len()
        );
        assert!(
            request_size.as_u64() >= fanout as u64,
            "request smaller than one byte per responder"
        );
        IncastWorkload {
            hosts,
            fanout,
            request_size,
            mean_gap,
            class: TrafficClass::Lossless,
            priority: Priority::new(3),
            first_flow_id: 0,
        }
    }

    /// Sets the traffic class and priority of response flows (default:
    /// lossless RDMA on priority 3, as in the paper's burst deep-dive).
    pub fn class(mut self, class: TrafficClass, priority: Priority) -> Self {
        self.class = class;
        self.priority = priority;
        self
    }

    /// First flow id to allocate.
    pub fn first_flow_id(mut self, id: u64) -> Self {
        self.first_flow_id = id;
        self
    }

    /// Generates all queries arriving within `[0, window)`.
    pub fn generate(&self, window: SimDuration, rng: &mut SimRng) -> Vec<IncastQuery> {
        let horizon = SimTime::ZERO + window;
        let mut queries = Vec::new();
        let mut t = SimTime::ZERO + rng.exponential(self.mean_gap);
        let mut next_flow = self.first_flow_id;
        let mut qid = 0;
        while t < horizon {
            let target_ix = rng.below(self.hosts.len() as u64) as usize;
            let target = self.hosts[target_ix];
            // Choose N distinct responders ≠ target: shuffle a candidate
            // index list and take the first N.
            let mut candidates: Vec<usize> =
                (0..self.hosts.len()).filter(|&i| i != target_ix).collect();
            rng.shuffle(&mut candidates);
            let per_flow = self.request_size / self.fanout as u64;
            let remainder = self.request_size - per_flow * self.fanout as u64;
            let flows: Vec<FlowSpec> = candidates[..self.fanout]
                .iter()
                .enumerate()
                .map(|(k, &ix)| {
                    let size = if k == 0 {
                        per_flow + remainder
                    } else {
                        per_flow
                    };
                    let spec = FlowSpec {
                        id: FlowId::new(next_flow),
                        src: self.hosts[ix],
                        dst: target,
                        size,
                        start: t,
                        class: self.class,
                        priority: self.priority,
                    };
                    next_flow += 1;
                    spec
                })
                .collect();
            queries.push(IncastQuery {
                id: qid,
                target,
                at: t,
                flows,
            });
            qid += 1;
            t += rng.exponential(self.mean_gap);
        }
        queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    fn workload() -> IncastWorkload {
        IncastWorkload::new(
            hosts(16),
            5,
            Bytes::from_mb(1),
            SimDuration::from_micros(1_330),
        )
    }

    #[test]
    fn query_structure() {
        let mut rng = SimRng::seed_from_u64(1);
        let queries = workload().generate(SimDuration::from_millis(50), &mut rng);
        assert!(!queries.is_empty());
        for q in &queries {
            assert_eq!(q.flows.len(), 5);
            let total: u64 = q.flows.iter().map(|f| f.size.as_u64()).sum();
            assert_eq!(total, 1_000_000);
            for f in &q.flows {
                assert_eq!(f.dst, q.target);
                assert_ne!(f.src, q.target);
                assert_eq!(f.start, q.at);
            }
            // Responders are distinct.
            let mut srcs: Vec<NodeId> = q.flows.iter().map(|f| f.src).collect();
            srcs.sort();
            srcs.dedup();
            assert_eq!(srcs.len(), 5);
        }
    }

    #[test]
    fn paper_rate_gives_about_376_queries_per_half_second() {
        let mut rng = SimRng::seed_from_u64(2);
        let queries = workload().generate(SimDuration::from_millis(500), &mut rng);
        // 0.5 s / 1.33 ms ≈ 376; allow Poisson noise.
        assert!((300..450).contains(&queries.len()), "{}", queries.len());
    }

    #[test]
    fn flow_ids_unique_and_consecutive() {
        let mut rng = SimRng::seed_from_u64(3);
        let queries = workload()
            .first_flow_id(1_000)
            .generate(SimDuration::from_millis(20), &mut rng);
        let ids: Vec<u64> = queries
            .iter()
            .flat_map(|q| q.flows.iter().map(|f| f.id.as_u64()))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(*id, 1_000 + i as u64);
        }
    }

    #[test]
    fn remainder_goes_to_first_responder() {
        let w = IncastWorkload::new(
            hosts(8),
            3,
            Bytes::new(1_000_003),
            SimDuration::from_millis(1),
        );
        let mut rng = SimRng::seed_from_u64(4);
        let queries = w.generate(SimDuration::from_millis(10), &mut rng);
        let q = &queries[0];
        assert_eq!(q.flows[0].size.as_u64(), 333_334 + 1);
        assert_eq!(q.flows[1].size.as_u64(), 333_334);
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn fanout_must_fit_pool() {
        let _ = IncastWorkload::new(hosts(4), 4, Bytes::from_mb(1), SimDuration::from_millis(1));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = workload().generate(SimDuration::from_millis(10), &mut SimRng::seed_from_u64(9));
        let b = workload().generate(SimDuration::from_millis(10), &mut SimRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
