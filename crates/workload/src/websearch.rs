//! The web-search flow-size distribution.

use dcn_sim::EmpiricalCdf;

/// The web-search flow-size CDF used throughout DCN buffer-management
/// studies (originally measured for the DCTCP paper; this is the knot set
/// distributed with the HPCC/DCQCN ns-3 forks that the L2BM paper builds
/// on). Sizes in bytes; mean ≈ 1.6 MB; max 30 MB.
///
/// # Example
///
/// ```
/// use dcn_workload::web_search_cdf;
/// let cdf = web_search_cdf();
/// // Heavy-tailed: the median flow is small...
/// assert!(cdf.quantile(0.5) <= 100_000);
/// // ...but the top decile is multi-megabyte.
/// assert!(cdf.quantile(0.95) >= 5_000_000);
/// ```
pub fn web_search_cdf() -> EmpiricalCdf {
    EmpiricalCdf::new(vec![
        (0, 0.0),
        (10_000, 0.15),
        (20_000, 0.20),
        (30_000, 0.30),
        (50_000, 0.40),
        (80_000, 0.53),
        (200_000, 0.60),
        (1_000_000, 0.70),
        (2_000_000, 0.80),
        (5_000_000, 0.90),
        (10_000_000, 0.97),
        (30_000_000, 1.0),
    ])
    .expect("static knots form a valid CDF")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::SimRng;

    #[test]
    fn mean_is_about_1_6_mb() {
        let cdf = web_search_cdf();
        let m = cdf.mean();
        assert!((1.2e6..2.2e6).contains(&m), "mean {m}");
    }

    #[test]
    fn samples_bounded_by_30mb() {
        let cdf = web_search_cdf();
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(cdf.sample(&mut rng) <= 30_000_000);
        }
    }

    #[test]
    fn heavy_tail_shape() {
        let cdf = web_search_cdf();
        // Over half the flows are < 100 KB but they carry a small share
        // of bytes compared to the > 1 MB elephants.
        assert!(cdf.quantile(0.53) <= 80_000);
        assert!(cdf.quantile(0.9) >= 2_000_000);
    }
}
