//! Shared-memory switch model with PFC, ECN and pluggable buffer
//! management.
//!
//! This crate implements the switch architecture of the L2BM paper's
//! §II-A (Fig. 1): an output-queued shared-memory switch whose Memory
//! Management Unit (MMU) maintains *virtual counter* pools at both
//! ingress and egress. A packet is admitted only if both the ingress pool
//! and its destination egress pool admit it; both counters are decremented
//! when the packet departs.
//!
//! * [`MmuState`] — the counter pools: per-(port, priority) ingress
//!   shared/reserved/headroom charges, egress queue bytes, drain-rate
//!   estimation, pause bookkeeping.
//! * [`BufferPolicy`] — the pluggable PFC-threshold algorithm evaluated
//!   by the paper: [`DtPolicy`] (classic Dynamic Threshold, the
//!   paper's DT with α = 0.125 and DT2 with α = 0.5) and [`AbmPolicy`]
//!   (ABM, SIGCOMM'22, applied to the ingress pool). The L2BM policy
//!   itself lives in the `l2bm` crate.
//! * [`SharedMemorySwitch`] — ties the MMU, the eight-priority egress
//!   queues with round-robin scheduling, the PFC pause/resume state
//!   machine, and ECN marking together. It is a passive component: the
//!   fabric event loop calls [`SharedMemorySwitch::receive`],
//!   [`SharedMemorySwitch::tx_complete`] and
//!   [`SharedMemorySwitch::handle_pfc`] and acts on the returned
//!   [`TxStart`] / [`PfcEmit`] instructions.
//!
//! # Example
//!
//! ```
//! use dcn_net::{FlowId, NodeId, Packet, PortId, Priority, TrafficClass};
//! use dcn_sim::{BitRate, Bytes, SimTime};
//! use dcn_switch::{DtPolicy, SharedMemorySwitch, SwitchConfig};
//!
//! let mut sw = SharedMemorySwitch::new(
//!     NodeId::new(0),
//!     SwitchConfig::default(),
//!     vec![BitRate::from_gbps(25); 4],
//!     Box::new(DtPolicy::new(0.125)),
//!     7,
//! );
//! let pkt = Packet::data(
//!     FlowId::new(1), NodeId::new(10), NodeId::new(11),
//!     Priority::new(3), TrafficClass::Lossless,
//!     0, Bytes::new(1_000), Bytes::new(48),
//! );
//! let res = sw.receive(SimTime::ZERO, pkt, PortId::new(0), PortId::new(1));
//! assert!(res.admitted());
//! // The egress port was idle, so transmission starts immediately.
//! assert!(res.tx.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod mmu;
mod policy;
mod queue;
mod switch;

pub use config::{EcnConfig, SwitchConfig};
pub use mmu::{Charge, MmuState, Pool, QueueIndex};
pub use policy::{AbmPolicy, BufferPolicy, DtPolicy, OccamyPolicy};
pub use queue::{EgressPort, InFlight, QueuedPacket};
pub use switch::{
    DropReason, PfcEmit, ReceiveOutcome, ReceiveResult, SharedMemorySwitch, TxCompleteResult,
    TxStart,
};
