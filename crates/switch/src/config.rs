//! Switch and ECN configuration.

use dcn_sim::{Bytes, SimDuration};

/// RED-style ECN marking parameters for one traffic class.
///
/// Marking probability is 0 below `kmin`, rises linearly to `pmax` at
/// `kmax`, and is 1 above `kmax` — the scheme DCQCN's congestion point
/// uses. Setting `kmin == kmax` gives DCTCP's step marking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcnConfig {
    /// Queue length where marking starts.
    pub kmin: Bytes,
    /// Queue length where marking probability reaches `pmax`.
    pub kmax: Bytes,
    /// Marking probability at `kmax`.
    pub pmax: f64,
}

impl EcnConfig {
    /// DCTCP-style step marking at `k`.
    pub fn step(k: Bytes) -> Self {
        EcnConfig {
            kmin: k,
            kmax: k,
            pmax: 1.0,
        }
    }

    /// Marking probability for an instantaneous queue of `q` bytes.
    pub fn mark_probability(&self, q: Bytes) -> f64 {
        if q <= self.kmin {
            0.0
        } else if q >= self.kmax {
            if q == self.kmax && self.kmin == self.kmax {
                // step scheme: anything above k marks; exactly k does not.
                0.0
            } else {
                1.0
            }
        } else {
            self.pmax * (q.as_f64() - self.kmin.as_f64())
                / (self.kmax.as_f64() - self.kmin.as_f64())
        }
    }
}

/// Static configuration of a [`crate::SharedMemorySwitch`].
///
/// Defaults follow the paper's setup (§IV): 4 MB shared buffer, PFC with
/// XON at half the pause threshold, DCQCN-style ECN on the lossless class
/// and DCTCP step marking on the lossy class.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchConfig {
    /// Total shared buffer (the `B` of the threshold formulas). Paper: 4 MB.
    pub total_buffer: Bytes,
    /// Per-ingress-queue guaranteed (static) buffer, used before the
    /// shared pool and not counted against it.
    pub reserved_per_queue: Bytes,
    /// Per-ingress-queue headroom for in-flight lossless bytes after a
    /// pause frame is sent. Sized ≳ 2·BDP + 2·MTU of the attached link.
    pub headroom_per_queue: Bytes,
    /// A queue that sent XOFF sends XON once its shared occupancy falls
    /// to this fraction of the current pause threshold.
    pub xon_fraction: f64,
    /// Dynamic-threshold α for *egress* lossy queues (drops above).
    pub egress_alpha_lossy: f64,
    /// ECN marking for the lossless (RDMA/DCQCN) class.
    pub ecn_lossless: EcnConfig,
    /// ECN marking for the lossy (TCP/DCTCP) class.
    pub ecn_lossy: EcnConfig,
    /// MTU used for congestion heuristics (e.g. ABM's congested-queue
    /// detection), not a hard limit on packet size.
    pub mtu: Bytes,
    /// PFC storm watchdog: if an egress queue stays paused longer than
    /// this, it is force-resumed and a `PfcWatchdogFired` trace event is
    /// recorded — mirroring real ASIC pause watchdogs. `None` (the
    /// default) disables the watchdog and schedules no extra events, so
    /// healthy-fabric runs are bit-identical with or without it.
    pub pfc_watchdog: Option<SimDuration>,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            total_buffer: Bytes::from_mb(4),
            reserved_per_queue: Bytes::ZERO,
            headroom_per_queue: Bytes::from_kb(25),
            xon_fraction: 0.5,
            egress_alpha_lossy: 0.5,
            // DCQCN defaults scaled for 25–100G links.
            ecn_lossless: EcnConfig {
                kmin: Bytes::from_kb(100),
                kmax: Bytes::from_kb(400),
                pmax: 0.2,
            },
            // DCTCP step marking around 85 KB (≈ 65 packets × 1.3 KB).
            ecn_lossy: EcnConfig::step(Bytes::from_kb(85)),
            mtu: Bytes::new(1_048),
            pfc_watchdog: None,
        }
    }
}

impl SwitchConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message if a fraction is out of `[0, 1]`, a probability
    /// is invalid, or `kmin > kmax`.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.xon_fraction) {
            return Err(format!("xon_fraction {} out of [0,1]", self.xon_fraction));
        }
        if self.egress_alpha_lossy <= 0.0 {
            return Err("egress_alpha_lossy must be positive".into());
        }
        for (name, e) in [("lossless", &self.ecn_lossless), ("lossy", &self.ecn_lossy)] {
            if e.kmin > e.kmax {
                return Err(format!("ecn_{name}: kmin > kmax"));
            }
            if !(0.0..=1.0).contains(&e.pmax) {
                return Err(format!("ecn_{name}: pmax {} out of [0,1]", e.pmax));
            }
        }
        if self.total_buffer == Bytes::ZERO {
            return Err("total_buffer must be non-zero".into());
        }
        if self.pfc_watchdog == Some(SimDuration::ZERO) {
            return Err("pfc_watchdog threshold must be non-zero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(SwitchConfig::default().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = SwitchConfig {
            xon_fraction: 1.5,
            ..SwitchConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SwitchConfig {
            ecn_lossy: EcnConfig {
                kmin: Bytes::from_kb(10),
                kmax: Bytes::from_kb(5),
                pmax: 0.5,
            },
            ..SwitchConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SwitchConfig {
            total_buffer: Bytes::ZERO,
            ..SwitchConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn red_ramp() {
        let e = EcnConfig {
            kmin: Bytes::from_kb(100),
            kmax: Bytes::from_kb(400),
            pmax: 0.2,
        };
        assert_eq!(e.mark_probability(Bytes::from_kb(50)), 0.0);
        assert_eq!(e.mark_probability(Bytes::from_kb(100)), 0.0);
        let mid = e.mark_probability(Bytes::from_kb(250));
        assert!((mid - 0.1).abs() < 1e-9);
        assert_eq!(e.mark_probability(Bytes::from_kb(400)), 1.0);
        assert_eq!(e.mark_probability(Bytes::from_kb(900)), 1.0);
    }

    #[test]
    fn step_marking() {
        let e = EcnConfig::step(Bytes::from_kb(85));
        assert_eq!(e.mark_probability(Bytes::from_kb(85)), 0.0);
        assert_eq!(e.mark_probability(Bytes::new(85_001)), 1.0);
    }
}
