//! The Memory Management Unit: virtual counter pools.
//!
//! Packets are physically stored once (in the egress queues); the MMU
//! tracks them in *two* sets of counters, exactly as the paper describes
//! (§II-A): an ingress counter per (ingress port, priority) used for PFC
//! thresholds, and an egress counter per (egress port, priority) used for
//! output-queue thresholds and ECN. Both are charged at admission and
//! discharged at departure.
//!
//! Ingress bytes are charged in three layers: the queue's *reserved*
//! (static) allotment first, then the *shared* pool (bounded by the
//! policy's PFC threshold), then — for lossless traffic that arrives
//! after/above the pause threshold — the queue's *headroom*.

use dcn_net::{PortId, Priority};
use dcn_sim::{BitRate, Bytes, SimDuration, SimTime};

use crate::config::SwitchConfig;

/// Identifies one (port, priority) queue within a switch; used for both
/// ingress and egress counter indexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueueIndex {
    /// The port.
    pub port: PortId,
    /// The priority.
    pub priority: Priority,
}

impl QueueIndex {
    /// Creates a queue index.
    pub const fn new(port: PortId, priority: Priority) -> Self {
        QueueIndex { port, priority }
    }

    /// Flat index into per-queue arrays.
    pub fn flat(self) -> usize {
        self.port.index() * Priority::COUNT + self.priority.index()
    }
}

/// Which pool the non-reserved part of a packet was charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pool {
    /// The shared service pool.
    Shared,
    /// The per-queue headroom pool (lossless overflow after pause).
    Headroom,
}

/// How one admitted packet's bytes were charged; stored with the packet
/// and replayed in reverse at departure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Charge {
    /// Bytes charged to the queue's reserved allotment.
    pub reserved: Bytes,
    /// Bytes charged to `pool`.
    pub pooled: Bytes,
    /// Pool the non-reserved bytes went to.
    pub pool: Pool,
}

impl Charge {
    /// Total bytes of the charge.
    pub fn total(&self) -> Bytes {
        self.reserved + self.pooled
    }
}

/// Drain-rate estimator state for one ingress queue (used by ABM's
/// normalized-dequeue-rate factor).
#[derive(Debug, Clone, Copy, Default)]
struct DrainEstimator {
    window_start: SimTime,
    acc: u64,
    rate_bps: f64,
    measured: bool,
}

const DRAIN_WINDOW: SimDuration = SimDuration::from_micros(50);

impl DrainEstimator {
    fn record(&mut self, now: SimTime, size: Bytes) {
        self.acc += size.as_u64();
        let elapsed = now.saturating_since(self.window_start);
        if elapsed >= DRAIN_WINDOW {
            self.rate_bps = self.acc as f64 * 8.0 / elapsed.as_secs_f64();
            self.acc = 0;
            self.window_start = now;
            self.measured = true;
        }
    }
}

/// The MMU counter state of one switch.
///
/// All mutation goes through [`MmuState::charge`] / [`MmuState::discharge`]
/// so the aggregate counters can never drift from the per-queue ones
/// (property-tested).
#[derive(Debug)]
pub struct MmuState {
    n_ports: usize,
    total_buffer: Bytes,
    reserved_cap: Bytes,
    /// Per-port headroom cap (each of the port's queues may hold this
    /// much paused-overflow traffic).
    headroom_cap: Vec<Bytes>,
    mtu: Bytes,
    link_rate: Vec<BitRate>,

    // Ingress side, indexed by QueueIndex::flat.
    in_reserved: Vec<Bytes>,
    in_shared: Vec<Bytes>,
    in_headroom: Vec<Bytes>,
    drain: Vec<DrainEstimator>,

    // Egress side, indexed by QueueIndex::flat.
    out_bytes: Vec<Bytes>,
    /// Number of non-empty egress priority queues per port, for the
    /// round-robin drain-share estimate.
    out_active: Vec<usize>,
    /// Egress (port, priority) paused by a downstream XOFF.
    out_paused: Vec<bool>,

    shared_used: Bytes,
    headroom_used: Bytes,
    reserved_used: Bytes,

    /// Ingress queues of each priority whose occupancy is ≥ 1 MTU,
    /// maintained incrementally by `charge`/`discharge` so ABM's
    /// per-packet threshold never scans the port list.
    congested_ingress: [usize; Priority::COUNT],
    /// Ingress queues with non-zero occupancy, maintained incrementally.
    active_ingress: usize,
}

impl MmuState {
    /// Creates MMU state for a switch with the given per-port link rates.
    ///
    /// # Panics
    ///
    /// Panics if `link_rate` is empty.
    pub fn new(cfg: &SwitchConfig, link_rate: Vec<BitRate>) -> MmuState {
        assert!(!link_rate.is_empty(), "switch needs at least one port");
        let n_ports = link_rate.len();
        let nq = n_ports * Priority::COUNT;
        MmuState {
            n_ports,
            total_buffer: cfg.total_buffer,
            reserved_cap: cfg.reserved_per_queue,
            headroom_cap: vec![cfg.headroom_per_queue; n_ports],
            mtu: cfg.mtu,
            link_rate,
            in_reserved: vec![Bytes::ZERO; nq],
            in_shared: vec![Bytes::ZERO; nq],
            in_headroom: vec![Bytes::ZERO; nq],
            drain: vec![DrainEstimator::default(); nq],
            out_bytes: vec![Bytes::ZERO; nq],
            out_active: vec![0; n_ports],
            out_paused: vec![false; nq],
            shared_used: Bytes::ZERO,
            headroom_used: Bytes::ZERO,
            reserved_used: Bytes::ZERO,
            congested_ingress: [0; Priority::COUNT],
            active_ingress: 0,
        }
    }

    // ---- capacity and aggregate views -------------------------------

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.n_ports
    }

    /// The shared pool capacity `B`.
    pub fn shared_capacity(&self) -> Bytes {
        self.total_buffer
    }

    /// Total shared-pool usage `Q(t)`.
    pub fn shared_used(&self) -> Bytes {
        self.shared_used
    }

    /// Unallocated shared buffer `B − Q(t)`.
    pub fn shared_remaining(&self) -> Bytes {
        self.total_buffer.saturating_sub(self.shared_used)
    }

    /// Total bytes stored in the switch (reserved + shared + headroom).
    pub fn total_stored(&self) -> Bytes {
        self.reserved_used + self.shared_used + self.headroom_used
    }

    /// Total headroom usage.
    pub fn headroom_used(&self) -> Bytes {
        self.headroom_used
    }

    /// Link rate of a port.
    ///
    /// # Panics
    ///
    /// Panics if the port is out of range.
    pub fn link_rate(&self, port: PortId) -> BitRate {
        self.link_rate[port.index()]
    }

    /// Configured MTU (for congestion heuristics).
    pub fn mtu(&self) -> Bytes {
        self.mtu
    }

    // ---- per-queue views --------------------------------------------

    /// Shared-pool bytes of an ingress queue — the quantity PFC
    /// thresholds compare against.
    pub fn ingress_shared(&self, q: QueueIndex) -> Bytes {
        self.in_shared[q.flat()]
    }

    /// Total ingress bytes of a queue (reserved + shared + headroom).
    pub fn ingress_total(&self, q: QueueIndex) -> Bytes {
        let i = q.flat();
        self.in_reserved[i] + self.in_shared[i] + self.in_headroom[i]
    }

    /// Headroom bytes of an ingress queue.
    pub fn ingress_headroom(&self, q: QueueIndex) -> Bytes {
        self.in_headroom[q.flat()]
    }

    /// Reserved allotment still free for an ingress queue.
    pub fn reserved_available(&self, q: QueueIndex) -> Bytes {
        self.reserved_cap.saturating_sub(self.in_reserved[q.flat()])
    }

    /// Headroom still free for an ingress queue.
    pub fn headroom_available(&self, q: QueueIndex) -> Bytes {
        self.headroom_cap[q.port.index()].saturating_sub(self.in_headroom[q.flat()])
    }

    /// Overrides the headroom cap of one port's queues. Real deployments
    /// size headroom per port from the attached link's bandwidth-delay
    /// product (in-flight bytes between XOFF emission and it taking
    /// effect upstream); the fabric layer does this automatically.
    ///
    /// # Panics
    ///
    /// Panics if the port is out of range.
    pub fn set_headroom_cap(&mut self, port: PortId, cap: Bytes) {
        self.headroom_cap[port.index()] = cap;
    }

    /// Egress queue bytes (including any packet being serialized).
    pub fn egress_bytes(&self, q: QueueIndex) -> Bytes {
        self.out_bytes[q.flat()]
    }

    /// Whether a downstream XOFF currently pauses this egress queue.
    pub fn egress_paused(&self, q: QueueIndex) -> bool {
        self.out_paused[q.flat()]
    }

    /// Estimated drain rate of an egress queue under round-robin: the
    /// port rate divided by the number of non-empty priority queues
    /// (at least 1). Zero if the queue is paused.
    pub fn egress_drain_rate(&self, q: QueueIndex) -> BitRate {
        if self.out_paused[q.flat()] {
            return BitRate::ZERO;
        }
        let active = self.out_active[q.port.index()].max(1);
        self.link_rate[q.port.index()] / active as u64
    }

    /// Like [`MmuState::egress_drain_rate`] but ignoring any downstream
    /// pause — the drain the queue *would* have. L2BM's sojourn estimator
    /// uses this so that PFC back-pressure is not mistaken for congestion
    /// (the paper's "mitigate PFC diffusion" rule).
    pub fn egress_drain_rate_ignoring_pause(&self, q: QueueIndex) -> BitRate {
        let active = self.out_active[q.port.index()].max(1);
        self.link_rate[q.port.index()] / active as u64
    }

    /// Measured drain rate of an *ingress* queue, normalized by its
    /// port's link rate and capped at 1. Optimistically 1.0 until the
    /// first measurement window completes (ABM's behaviour for fresh
    /// queues).
    pub fn ingress_normalized_drain(&self, q: QueueIndex) -> f64 {
        let d = &self.drain[q.flat()];
        // A (nearly) empty queue has nothing meaningful to measure; a
        // stale low estimate from an old burst must not throttle the
        // next one, so report the optimistic default.
        if !d.measured || self.ingress_total(q) < self.mtu {
            return 1.0;
        }
        let cap = self.link_rate[q.port.index()].as_f64();
        if cap == 0.0 {
            return 1.0;
        }
        (d.rate_bps / cap).min(1.0)
    }

    /// Number of ingress queues of `priority` whose occupancy is at
    /// least one MTU — ABM's "congested queues of this priority" count.
    ///
    /// O(1): the count is maintained incrementally by
    /// [`MmuState::charge`] / [`MmuState::discharge`].
    pub fn congested_ingress_count(&self, priority: Priority) -> usize {
        self.congested_ingress[priority.index()]
    }

    /// Number of ingress queues with non-zero occupancy. O(1): maintained
    /// incrementally by [`MmuState::charge`] / [`MmuState::discharge`].
    pub fn active_ingress_count(&self) -> usize {
        self.active_ingress
    }

    /// Reference implementation of [`MmuState::congested_ingress_count`]
    /// by full scan. Kept for differential testing of the incremental
    /// counters — not for the admission path.
    pub fn congested_ingress_count_naive(&self, priority: Priority) -> usize {
        (0..self.n_ports)
            .filter(|&p| {
                let q = QueueIndex::new(PortId::new(p as u16), priority);
                self.ingress_total(q) >= self.mtu
            })
            .count()
    }

    /// Iterates over all ingress queues with non-zero occupancy (full
    /// scan — for reporting and tests, not the admission path; use
    /// [`MmuState::active_ingress_count`] for the count).
    pub fn active_ingress_queues(&self) -> impl Iterator<Item = QueueIndex> + '_ {
        (0..self.n_ports)
            .flat_map(move |p| {
                Priority::all().map(move |prio| QueueIndex::new(PortId::new(p as u16), prio))
            })
            .filter(|&q| self.ingress_total(q) > Bytes::ZERO)
    }

    /// Adjusts the incremental congested/active counters for ingress
    /// queue `q` whose total went from `before` to `after`.
    fn ingress_total_changed(&mut self, q: QueueIndex, before: Bytes, after: Bytes) {
        if before < self.mtu && after >= self.mtu {
            self.congested_ingress[q.priority.index()] += 1;
        } else if before >= self.mtu && after < self.mtu {
            self.congested_ingress[q.priority.index()] -= 1;
        }
        if before == Bytes::ZERO && after > Bytes::ZERO {
            self.active_ingress += 1;
        } else if before > Bytes::ZERO && after == Bytes::ZERO {
            self.active_ingress -= 1;
        }
    }

    // ---- mutation -----------------------------------------------------

    /// Splits `size` into a charge for ingress queue `q` given the pool
    /// choice for the non-reserved remainder. Does not mutate.
    pub fn plan_charge(&self, q: QueueIndex, size: Bytes, pool: Pool) -> Charge {
        let reserved = self.reserved_available(q).min(size);
        Charge {
            reserved,
            pooled: size - reserved,
            pool,
        }
    }

    /// Applies a charge for a packet entering via ingress `q_in` and
    /// queued at egress `q_out`.
    pub fn charge(&mut self, q_in: QueueIndex, q_out: QueueIndex, c: Charge) {
        let i = q_in.flat();
        let before = self.ingress_total(q_in);
        self.in_reserved[i] += c.reserved;
        self.reserved_used += c.reserved;
        match c.pool {
            Pool::Shared => {
                self.in_shared[i] += c.pooled;
                self.shared_used += c.pooled;
            }
            Pool::Headroom => {
                self.in_headroom[i] += c.pooled;
                self.headroom_used += c.pooled;
            }
        }
        self.ingress_total_changed(q_in, before, self.ingress_total(q_in));
        let o = q_out.flat();
        if self.out_bytes[o] == Bytes::ZERO && c.total() > Bytes::ZERO {
            self.out_active[q_out.port.index()] += 1;
        }
        self.out_bytes[o] += c.total();
    }

    /// Reverses a charge when the packet departs; records the dequeue in
    /// the ingress drain estimator.
    pub fn discharge(&mut self, now: SimTime, q_in: QueueIndex, q_out: QueueIndex, c: Charge) {
        let i = q_in.flat();
        let before = self.ingress_total(q_in);
        self.in_reserved[i] -= c.reserved;
        self.reserved_used -= c.reserved;
        match c.pool {
            Pool::Shared => {
                self.in_shared[i] -= c.pooled;
                self.shared_used -= c.pooled;
            }
            Pool::Headroom => {
                self.in_headroom[i] -= c.pooled;
                self.headroom_used -= c.pooled;
            }
        }
        self.ingress_total_changed(q_in, before, self.ingress_total(q_in));
        let o = q_out.flat();
        self.out_bytes[o] -= c.total();
        if self.out_bytes[o] == Bytes::ZERO && c.total() > Bytes::ZERO {
            self.out_active[q_out.port.index()] -= 1;
        }
        self.drain[i].record(now, c.total());
    }

    /// Sets the downstream pause state of an egress queue. Returns
    /// whether the state changed.
    pub fn set_egress_paused(&mut self, q: QueueIndex, paused: bool) -> bool {
        let slot = &mut self.out_paused[q.flat()];
        if *slot == paused {
            false
        } else {
            *slot = paused;
            true
        }
    }

    /// Debug invariant: aggregate counters equal the sums of per-queue
    /// counters, and ingress totals equal egress totals.
    pub fn check_conservation(&self) -> Result<(), String> {
        let sum_sh: Bytes = self.in_shared.iter().copied().sum();
        let sum_hr: Bytes = self.in_headroom.iter().copied().sum();
        let sum_rs: Bytes = self.in_reserved.iter().copied().sum();
        let sum_out: Bytes = self.out_bytes.iter().copied().sum();
        if sum_sh != self.shared_used {
            return Err(format!("shared {} != sum {}", self.shared_used, sum_sh));
        }
        if sum_hr != self.headroom_used {
            return Err(format!("headroom {} != sum {}", self.headroom_used, sum_hr));
        }
        if sum_rs != self.reserved_used {
            return Err(format!("reserved {} != sum {}", self.reserved_used, sum_rs));
        }
        let total_in = sum_sh + sum_hr + sum_rs;
        if total_in != sum_out {
            return Err(format!(
                "ingress total {total_in} != egress total {sum_out}"
            ));
        }
        for prio in Priority::all() {
            let naive = self.congested_ingress_count_naive(prio);
            let inc = self.congested_ingress[prio.index()];
            if naive != inc {
                return Err(format!(
                    "congested[{}] incremental {inc} != naive {naive}",
                    prio.index()
                ));
            }
        }
        let naive_active = self.active_ingress_queues().count();
        if naive_active != self.active_ingress {
            return Err(format!(
                "active ingress incremental {} != naive {naive_active}",
                self.active_ingress
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mmu() -> MmuState {
        let cfg = SwitchConfig {
            reserved_per_queue: Bytes::new(2_000),
            headroom_per_queue: Bytes::new(10_000),
            ..SwitchConfig::default()
        };
        MmuState::new(&cfg, vec![BitRate::from_gbps(25); 4])
    }

    fn q(port: u16, prio: u8) -> QueueIndex {
        QueueIndex::new(PortId::new(port), Priority::new(prio))
    }

    #[test]
    fn charge_uses_reserved_first() {
        let m = mmu();
        let c = m.plan_charge(q(0, 3), Bytes::new(1_500), Pool::Shared);
        assert_eq!(c.reserved, Bytes::new(1_500));
        assert_eq!(c.pooled, Bytes::ZERO);
        let c2 = m.plan_charge(q(0, 3), Bytes::new(3_000), Pool::Shared);
        assert_eq!(c2.reserved, Bytes::new(2_000));
        assert_eq!(c2.pooled, Bytes::new(1_000));
    }

    #[test]
    fn charge_discharge_round_trip() {
        let mut m = mmu();
        let qi = q(0, 3);
        let qo = q(2, 3);
        let c = m.plan_charge(qi, Bytes::new(5_000), Pool::Shared);
        m.charge(qi, qo, c);
        assert_eq!(m.ingress_total(qi), Bytes::new(5_000));
        assert_eq!(m.ingress_shared(qi), Bytes::new(3_000));
        assert_eq!(m.egress_bytes(qo), Bytes::new(5_000));
        assert_eq!(m.shared_used(), Bytes::new(3_000));
        m.check_conservation().unwrap();
        m.discharge(SimTime::from_micros(10), qi, qo, c);
        assert_eq!(m.ingress_total(qi), Bytes::ZERO);
        assert_eq!(m.total_stored(), Bytes::ZERO);
        m.check_conservation().unwrap();
    }

    #[test]
    fn headroom_pool_is_separate() {
        let mut m = mmu();
        let qi = q(1, 3);
        let qo = q(2, 3);
        // Exhaust reserved first so the remainder lands in headroom.
        let c = m.plan_charge(qi, Bytes::new(6_000), Pool::Headroom);
        m.charge(qi, qo, c);
        assert_eq!(m.ingress_headroom(qi), Bytes::new(4_000));
        assert_eq!(m.shared_used(), Bytes::ZERO);
        assert_eq!(m.headroom_available(qi), Bytes::new(6_000));
        m.check_conservation().unwrap();
    }

    #[test]
    fn egress_active_counts_drive_drain_estimate() {
        let mut m = mmu();
        let qo3 = q(3, 3);
        let qo1 = q(3, 1);
        assert_eq!(m.egress_drain_rate(qo3), BitRate::from_gbps(25));
        let c = m.plan_charge(q(0, 3), Bytes::new(3_000), Pool::Shared);
        m.charge(q(0, 3), qo3, c);
        let c2 = m.plan_charge(q(1, 1), Bytes::new(3_000), Pool::Shared);
        m.charge(q(1, 1), qo1, c2);
        // Two active priorities share the port under round-robin.
        assert_eq!(
            m.egress_drain_rate(qo3).as_bps(),
            BitRate::from_gbps(25).as_bps() / 2
        );
    }

    #[test]
    fn paused_egress_has_zero_drain() {
        let mut m = mmu();
        let qo = q(3, 3);
        assert!(m.set_egress_paused(qo, true));
        assert!(!m.set_egress_paused(qo, true), "no change");
        assert_eq!(m.egress_drain_rate(qo), BitRate::ZERO);
        assert!(m.set_egress_paused(qo, false));
    }

    #[test]
    fn congested_count_uses_mtu() {
        let mut m = mmu();
        assert_eq!(m.congested_ingress_count(Priority::new(3)), 0);
        let c = m.plan_charge(q(0, 3), Bytes::new(1_048), Pool::Shared);
        m.charge(q(0, 3), q(2, 3), c);
        assert_eq!(m.congested_ingress_count(Priority::new(3)), 1);
        assert_eq!(m.congested_ingress_count(Priority::new(1)), 0);
    }

    #[test]
    fn drain_estimator_measures_rate() {
        let mut m = mmu();
        let qi = q(0, 3);
        let qo = q(2, 3);
        assert_eq!(m.ingress_normalized_drain(qi), 1.0);
        // Dequeue 125 KB over 100 µs = 10 Gbps on a 25 Gbps port -> 0.4.
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            let c = m.plan_charge(qi, Bytes::new(1_250), Pool::Shared);
            m.charge(qi, qo, c);
            t += SimDuration::from_micros(1);
            m.discharge(t, qi, qo, c);
        }
        // Keep the queue non-empty: an empty queue reports the
        // optimistic 1.0 regardless of history.
        let c = m.plan_charge(qi, Bytes::new(2_000), Pool::Shared);
        m.charge(qi, qo, c);
        let nd = m.ingress_normalized_drain(qi);
        assert!((nd - 0.4).abs() < 0.05, "normalized drain {nd}");
    }

    #[test]
    fn active_ingress_queue_iteration() {
        let mut m = mmu();
        assert_eq!(m.active_ingress_queues().count(), 0);
        let c = m.plan_charge(q(0, 3), Bytes::new(500), Pool::Shared);
        m.charge(q(0, 3), q(1, 3), c);
        let active: Vec<QueueIndex> = m.active_ingress_queues().collect();
        assert_eq!(active, vec![q(0, 3)]);
    }
}
