//! The pluggable buffer-management (PFC-threshold) policy interface and
//! the two baselines the paper compares against.
//!
//! A policy answers one question — *how many shared-pool bytes may
//! ingress queue `q` hold before the switch sends XOFF (lossless) or
//! drops (lossy)?* — and may observe enqueue/dequeue/pause events to
//! maintain its own state (L2BM's sojourn-time module does).

use std::fmt::Debug;

use dcn_sim::{Bytes, SimTime};

use crate::mmu::{MmuState, QueueIndex};

/// A PFC-threshold algorithm for the ingress pool.
///
/// Implementations must be deterministic functions of the MMU state and
/// their own event-driven state; the switch invokes the callbacks *after*
/// updating the MMU counters for the triggering packet.
pub trait BufferPolicy: Debug {
    /// Short name used in reports ("DT", "ABM", "L2BM"...).
    fn name(&self) -> &str;

    /// The current shared-pool threshold for ingress queue `q` at
    /// simulated time `now`.
    fn pfc_threshold(&self, mmu: &MmuState, q: QueueIndex, now: SimTime) -> Bytes;

    /// A packet of `size` bytes entered via `q_in`, queued at `q_out`.
    /// MMU counters already include it.
    fn on_enqueue(
        &mut self,
        mmu: &MmuState,
        now: SimTime,
        q_in: QueueIndex,
        q_out: QueueIndex,
        size: Bytes,
    ) {
        let _ = (mmu, now, q_in, q_out, size);
    }

    /// A packet of `size` bytes departed. MMU counters already exclude it.
    fn on_dequeue(
        &mut self,
        mmu: &MmuState,
        now: SimTime,
        q_in: QueueIndex,
        q_out: QueueIndex,
        size: Bytes,
    ) {
        let _ = (mmu, now, q_in, q_out, size);
    }

    /// The downstream pause state of egress queue `q_out` changed. The
    /// MMU already reflects the new state.
    fn on_egress_pause_changed(
        &mut self,
        mmu: &MmuState,
        now: SimTime,
        q_out: QueueIndex,
        paused: bool,
    ) {
        let _ = (mmu, now, q_out, paused);
    }

    /// Plans a preemptive eviction after admission has rejected an
    /// arrival: given the rejected packet (ingress queue `q_in`,
    /// intended egress queue `q_out`, `size` wire bytes), names the
    /// egress queue whose *newest* packet should be evicted to make
    /// room, or `None` to let the drop stand. The switch pops the
    /// victim queue's tail, reverses its MMU charge, and re-tests
    /// admission, calling the hook again while the arrival still does
    /// not fit (bounded by a per-arrival eviction cap). Only lossy
    /// packets are ever evicted — a victim whose tail turns out to be
    /// lossless aborts the attempt.
    ///
    /// The default implementation returns `None`, which keeps every
    /// non-preemptive policy on a rejection path byte-identical to a
    /// build without the hook: no extra events, no extra RNG draws.
    fn plan_eviction(
        &self,
        mmu: &MmuState,
        now: SimTime,
        q_in: QueueIndex,
        q_out: QueueIndex,
        size: Bytes,
    ) -> Option<QueueIndex> {
        let _ = (mmu, now, q_in, q_out, size);
        None
    }
}

/// Classic Dynamic Threshold (Choudhury & Hahne): every queue's threshold
/// is `α × (B − Q(t))`, the remaining shared buffer scaled by one global
/// control factor.
///
/// The paper evaluates `α = 0.125` ("DT", Microsoft's RoCEv2 setting) and
/// `α = 0.5` ("DT2", a common switch default).
///
/// # Example
///
/// ```
/// use dcn_switch::DtPolicy;
/// let dt = DtPolicy::new(0.125);
/// let dt2 = DtPolicy::new(0.5);
/// assert_ne!(dt.alpha(), dt2.alpha());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DtPolicy {
    alpha: f64,
}

impl DtPolicy {
    /// Creates a DT policy with control factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive and finite.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        DtPolicy { alpha }
    }

    /// The control factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl BufferPolicy for DtPolicy {
    fn name(&self) -> &str {
        "DT"
    }

    fn pfc_threshold(&self, mmu: &MmuState, _q: QueueIndex, _now: SimTime) -> Bytes {
        mmu.shared_remaining().scale(self.alpha)
    }
}

/// ABM (Active Buffer Management, SIGCOMM'22) applied to the ingress
/// pool, as the paper's comparison does:
///
/// `T(q) = α_p / n_p × (B − Q(t)) × d(q)`
///
/// where `n_p` is the number of congested ingress queues of `q`'s
/// priority (≥ 1 MTU buffered) and `d(q)` is the queue's measured drain
/// rate normalized by its port speed. ABM was designed for egress pools
/// and lossy traffic only; the paper's point — which this reproduction
/// preserves — is that even adapted to ingress, it cannot account for
/// flow control (see DESIGN.md interpretation notes).
#[derive(Debug, Clone, PartialEq)]
pub struct AbmPolicy {
    /// Per-priority α (`alpha[p]` for priority p).
    alpha: [f64; dcn_net::Priority::COUNT],
    /// Floor on the normalized-drain factor. ABM measures dequeue rates
    /// at egress queues; transplanted to ingress queues the raw
    /// measurement is noisy enough to starve queues outright, so the
    /// factor is clamped to `[drain_floor, 1]`.
    drain_floor: f64,
}

impl AbmPolicy {
    /// Creates ABM with the same α for every priority.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive and finite.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        AbmPolicy {
            alpha: [alpha; dcn_net::Priority::COUNT],
            drain_floor: 0.25,
        }
    }

    /// Creates ABM with an explicit per-priority α vector.
    ///
    /// # Panics
    ///
    /// Panics if any α is not positive and finite.
    pub fn with_per_priority_alpha(alpha: [f64; dcn_net::Priority::COUNT]) -> Self {
        for a in alpha {
            assert!(a > 0.0 && a.is_finite(), "alpha must be positive");
        }
        AbmPolicy {
            alpha,
            drain_floor: 0.25,
        }
    }

    /// Overrides the drain-factor floor (see the struct docs).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ floor ≤ 1`.
    pub fn with_drain_floor(mut self, floor: f64) -> Self {
        assert!((0.0..=1.0).contains(&floor), "floor must be in [0,1]");
        self.drain_floor = floor;
        self
    }
}

impl BufferPolicy for AbmPolicy {
    fn name(&self) -> &str {
        "ABM"
    }

    fn pfc_threshold(&self, mmu: &MmuState, q: QueueIndex, _now: SimTime) -> Bytes {
        let n_p = mmu.congested_ingress_count(q.priority).max(1) as f64;
        let drain = mmu.ingress_normalized_drain(q).max(self.drain_floor);
        let factor = self.alpha[q.priority.index()] / n_p * drain;
        mmu.shared_remaining().scale(factor)
    }
}

/// Occamy-style preemptive buffer management: a DT-shaped threshold
/// (`α × (B − Q(t))`) plus *preemption* — when an arrival is rejected,
/// the policy names the most buffer-hogging unprotected egress queue and
/// the switch evicts that queue's newest packet to make room, repeating
/// until the arrival fits or no eligible victim remains.
///
/// Victim selection is a deterministic scan in flat queue order
/// (`port × priority`): the candidate with the most egress-queued bytes
/// wins, ties going to the lowest flat index. Two guards keep preemption
/// from eating itself:
///
/// * priorities in the *protected* set (the lossless/RDMA classes) are
///   never selected, and
/// * when the arrival's own egress queue is itself evictable, a victim
///   must hold *strictly more* bytes than it — a queue cannot churn its
///   peers to grow past them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccamyPolicy {
    alpha: f64,
    /// Bit `i` set ⇔ priority `i` is never selected as an eviction victim.
    protected: u8,
}

impl OccamyPolicy {
    /// Creates an Occamy policy with control factor `alpha` and no
    /// protected priorities.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive and finite.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        OccamyPolicy {
            alpha,
            protected: 0,
        }
    }

    /// Marks `priorities` as never-evictable (the lossless classes).
    pub fn with_protected_priorities(mut self, priorities: &[dcn_net::Priority]) -> Self {
        for p in priorities {
            self.protected |= 1 << p.index();
        }
        self
    }

    /// The control factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Whether `priority` is exempt from eviction.
    pub fn is_protected(&self, priority: dcn_net::Priority) -> bool {
        self.protected & (1 << priority.index()) != 0
    }
}

impl BufferPolicy for OccamyPolicy {
    fn name(&self) -> &str {
        "Occamy"
    }

    fn pfc_threshold(&self, mmu: &MmuState, _q: QueueIndex, _now: SimTime) -> Bytes {
        mmu.shared_remaining().scale(self.alpha)
    }

    fn plan_eviction(
        &self,
        mmu: &MmuState,
        _now: SimTime,
        _q_in: QueueIndex,
        q_out: QueueIndex,
        _size: Bytes,
    ) -> Option<QueueIndex> {
        // The bar a victim must clear: non-empty, and deeper than the
        // arrival's own queue when that queue could itself be evicted.
        let own = if self.is_protected(q_out.priority) {
            Bytes::ZERO
        } else {
            mmu.egress_bytes(q_out)
        };
        let mut best: Option<(Bytes, QueueIndex)> = None;
        for port in 0..mmu.port_count() {
            for priority in dcn_net::Priority::all() {
                if self.is_protected(priority) {
                    continue;
                }
                let q = QueueIndex::new(dcn_net::PortId::new(port as u16), priority);
                let bytes = mmu.egress_bytes(q);
                // Strict `>` on both bars keeps the first (lowest flat
                // index) queue on ties — the documented determinism rule.
                if bytes > own && best.is_none_or(|(b, _)| bytes > b) {
                    best = Some((bytes, q));
                }
            }
        }
        best.map(|(_, q)| q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SwitchConfig;
    use crate::mmu::Pool;
    use dcn_net::{PortId, Priority};
    use dcn_sim::{BitRate, SimTime};

    fn mmu() -> MmuState {
        MmuState::new(&SwitchConfig::default(), vec![BitRate::from_gbps(25); 4])
    }

    fn q(port: u16, prio: u8) -> QueueIndex {
        QueueIndex::new(PortId::new(port), Priority::new(prio))
    }

    #[test]
    fn dt_threshold_tracks_remaining() {
        let mut m = mmu();
        let dt = DtPolicy::new(0.125);
        // Empty switch: T = 0.125 × 4 MB = 500 KB.
        assert_eq!(
            dt.pfc_threshold(&m, q(0, 3), SimTime::ZERO),
            Bytes::new(500_000)
        );
        // Fill 2 MB: T halves.
        let c = m.plan_charge(q(1, 3), Bytes::from_mb(2), Pool::Shared);
        m.charge(q(1, 3), q(2, 3), c);
        assert_eq!(
            dt.pfc_threshold(&m, q(0, 3), SimTime::ZERO),
            Bytes::new(250_000)
        );
    }

    #[test]
    fn dt_threshold_is_queue_independent() {
        let m = mmu();
        let dt = DtPolicy::new(0.5);
        assert_eq!(
            dt.pfc_threshold(&m, q(0, 1), SimTime::ZERO),
            dt.pfc_threshold(&m, q(3, 7), SimTime::ZERO)
        );
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn dt_rejects_zero_alpha() {
        let _ = DtPolicy::new(0.0);
    }

    #[test]
    fn abm_divides_by_congested_count() {
        let mut m = mmu();
        let abm = AbmPolicy::new(0.5);
        let base = abm.pfc_threshold(&m, q(0, 3), SimTime::ZERO);
        // Make two other queues of the same priority congested (≥ MTU).
        for port in 1..3 {
            let qi = q(port, 3);
            let c = m.plan_charge(qi, Bytes::new(2_000), Pool::Shared);
            m.charge(qi, q(3, 3), c);
        }
        let t = abm.pfc_threshold(&m, q(0, 3), SimTime::ZERO);
        // Remaining shrank by 4 KB and n_p went from 1 to 2.
        assert!(t < base.scale(0.51));
        // Other priorities are unaffected by priority-3 congestion.
        let other = abm.pfc_threshold(&m, q(0, 1), SimTime::ZERO);
        assert!(other > t);
    }

    #[test]
    fn abm_scales_with_drain() {
        let m = mmu();
        let abm = AbmPolicy::new(0.5);
        // Fresh queue: optimistic drain 1.0 => same as DT(0.5).
        let dt = DtPolicy::new(0.5);
        assert_eq!(
            abm.pfc_threshold(&m, q(0, 3), SimTime::ZERO),
            dt.pfc_threshold(&m, q(0, 3), SimTime::ZERO)
        );
    }

    /// Charges `bytes` into egress queue `eq` (ingress chosen disjointly).
    fn fill_egress(m: &mut MmuState, eq: QueueIndex, bytes: u64) {
        let c = m.plan_charge(q(0, eq.priority.as_u8()), Bytes::new(bytes), Pool::Shared);
        m.charge(q(0, eq.priority.as_u8()), eq, c);
    }

    #[test]
    fn occamy_threshold_matches_dt() {
        let m = mmu();
        let occ = OccamyPolicy::new(0.5);
        let dt = DtPolicy::new(0.5);
        assert_eq!(
            occ.pfc_threshold(&m, q(0, 3), SimTime::ZERO),
            dt.pfc_threshold(&m, q(0, 3), SimTime::ZERO)
        );
    }

    #[test]
    fn occamy_picks_deepest_unprotected_queue() {
        let mut m = mmu();
        let occ = OccamyPolicy::new(0.5).with_protected_priorities(&[Priority::new(3)]);
        fill_egress(&mut m, q(1, 1), 5_000);
        fill_egress(&mut m, q(2, 1), 9_000);
        fill_egress(&mut m, q(2, 3), 50_000); // deepest, but protected
        let victim = occ.plan_eviction(&m, SimTime::ZERO, q(0, 3), q(3, 3), Bytes::new(1_000));
        assert_eq!(victim, Some(q(2, 1)), "deepest lossy queue wins");
    }

    #[test]
    fn occamy_returns_none_on_empty_switch() {
        let m = mmu();
        let occ = OccamyPolicy::new(0.5);
        assert_eq!(
            occ.plan_eviction(&m, SimTime::ZERO, q(0, 1), q(1, 1), Bytes::new(1_000)),
            None
        );
    }

    #[test]
    fn occamy_requires_victim_deeper_than_own_evictable_queue() {
        let mut m = mmu();
        let occ = OccamyPolicy::new(0.5);
        fill_egress(&mut m, q(1, 1), 9_000);
        fill_egress(&mut m, q(2, 1), 5_000);
        // Arrival bound for the deepest queue itself: nothing is deeper.
        assert_eq!(
            occ.plan_eviction(&m, SimTime::ZERO, q(0, 1), q(1, 1), Bytes::new(1_000)),
            None
        );
        // Arrival bound for the shallower queue: the deep one is fair game.
        assert_eq!(
            occ.plan_eviction(&m, SimTime::ZERO, q(0, 1), q(2, 1), Bytes::new(1_000)),
            Some(q(1, 1))
        );
    }

    #[test]
    fn occamy_tie_breaks_to_lowest_flat_index() {
        let mut m = mmu();
        let occ = OccamyPolicy::new(0.5);
        fill_egress(&mut m, q(2, 1), 5_000);
        fill_egress(&mut m, q(1, 1), 5_000);
        let victim = occ.plan_eviction(&m, SimTime::ZERO, q(0, 3), q(3, 3), Bytes::new(1_000));
        assert_eq!(victim, Some(q(1, 1)));
    }

    #[test]
    fn non_preemptive_policies_never_plan_evictions() {
        let mut m = mmu();
        fill_egress(&mut m, q(1, 1), 9_000);
        let at = SimTime::ZERO;
        let dt = DtPolicy::new(0.125);
        let abm = AbmPolicy::new(0.5);
        assert_eq!(
            dt.plan_eviction(&m, at, q(0, 1), q(2, 1), Bytes::new(1_000)),
            None
        );
        assert_eq!(
            abm.plan_eviction(&m, at, q(0, 1), q(2, 1), Bytes::new(1_000)),
            None
        );
    }

    #[test]
    fn abm_per_priority_alpha() {
        let mut alphas = [0.5; 8];
        alphas[3] = 0.125;
        let abm = AbmPolicy::with_per_priority_alpha(alphas);
        let m = mmu();
        let hi = abm.pfc_threshold(&m, q(0, 1), SimTime::ZERO);
        let lo = abm.pfc_threshold(&m, q(0, 3), SimTime::ZERO);
        assert!(hi > lo);
    }
}
